//! Property tests: the compile-time analysis and the run-time inspector
//! must produce equivalent communication schedules whenever both apply
//! (paper §3.2 presents them as two evaluations of the same formulas).

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::analysis::{analyze, analyze_stripe, LoopSpec, StripeSpec};
use kali_repro::kali::{run_inspector, AffineMap};

use proptest::prelude::*;

/// Run both analyses for one loop spec and compare their signatures on
/// every processor.
fn assert_equivalent(spec: &LoopSpec) {
    let nprocs = spec.on_dist.nprocs();
    let machine = Machine::new(nprocs, CostModel::ideal());
    let spec_clone = spec.clone();
    let inspector_schedules = machine.run(|proc| {
        let exec: Vec<usize> = spec_clone.exec_set(proc.rank()).iter().collect();
        let maps = spec_clone.ref_maps.clone();
        let data_n = spec_clone.data_dist.n();
        run_inspector(proc, &spec_clone.data_dist, &exec, |i, refs| {
            for g in &maps {
                if let Some(v) = g.apply(i) {
                    if v < data_n {
                        refs.push(v);
                    }
                }
            }
        })
        .signature()
    });
    for (rank, inspector_schedule) in inspector_schedules.iter().enumerate().take(nprocs) {
        let ct = analyze(spec, rank)
            .expect("unit-stride affine loops must have a closed form")
            .signature();
        assert_eq!(
            &ct, inspector_schedule,
            "rank {rank}: compile-time and inspector schedules disagree"
        );
    }
}

#[test]
fn figure1_shift_is_equivalent_under_block_and_cyclic() {
    for dist in [DimDist::block(100, 4), DimDist::cyclic(100, 4)] {
        let spec = LoopSpec {
            range: (0, 99),
            on_dist: dist.clone(),
            on_map: AffineMap::identity(),
            data_dist: dist,
            ref_maps: vec![AffineMap::shift(1)],
        };
        assert_equivalent(&spec);
    }
}

#[test]
fn three_point_stencil_is_equivalent_under_block_cyclic() {
    let dist = DimDist::block_cyclic(120, 8, 7);
    let spec = LoopSpec {
        range: (1, 119),
        on_dist: dist.clone(),
        on_map: AffineMap::identity(),
        data_dist: dist,
        ref_maps: vec![
            AffineMap::shift(-1),
            AffineMap::identity(),
            AffineMap::shift(1),
        ],
    };
    assert_equivalent(&spec);
}

/// Run the stripe closed form and the run-time inspector over the same
/// congruence class and compare their signatures on every processor.
fn assert_stripe_equivalent(spec: &StripeSpec) {
    let nprocs = spec.on_dist.nprocs();
    let machine = Machine::new(nprocs, CostModel::ideal());
    let spec_clone = spec.clone();
    let inspector_schedules = machine.run(|proc| {
        let exec: Vec<usize> = spec_clone.exec_set(proc.rank()).iter().collect();
        let maps = spec_clone.ref_maps.clone();
        let data_n = spec_clone.data_dist.n();
        run_inspector(proc, &spec_clone.data_dist, &exec, |i, refs| {
            for g in &maps {
                if let Some(v) = g.apply(i) {
                    if v < data_n {
                        refs.push(v);
                    }
                }
            }
        })
        .signature()
    });
    for (rank, inspector_schedule) in inspector_schedules.iter().enumerate().take(nprocs) {
        let ct = analyze_stripe(spec, rank)
            .expect("unit-stride stripe loops must have a closed form")
            .signature();
        assert_eq!(
            &ct, inspector_schedule,
            "rank {rank}: stripe closed form and inspector schedules disagree"
        );
    }
}

#[test]
fn redblack_stripes_are_equivalent_under_every_distribution() {
    // Both halves of a red–black three-point relaxation, over block, cyclic
    // and block-cyclic placements: the stripe closed form must reproduce
    // the inspector's schedule exactly — with zero messages.
    let n = 83;
    let p = 4;
    for dist in [
        DimDist::block(n, p),
        DimDist::cyclic(n, p),
        DimDist::block_cyclic(n, p, 5),
    ] {
        for lo in [0usize, 1] {
            let spec = StripeSpec {
                lo,
                hi: n,
                step: 2,
                on_dist: dist.clone(),
                data_dist: dist.clone(),
                ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
            };
            assert_stripe_equivalent(&spec);
        }
    }
}

/// Exhaustive executability check: for every iteration of `exec(p)`, every
/// reference is either local or covered by the receive schedule, and the
/// receive schedule contains nothing else.
fn assert_schedule_is_exact(spec: &LoopSpec, rank: usize) {
    let s = analyze(spec, rank).unwrap();
    let recv = s.recv_index_set();
    let mut needed = kali_repro::distrib::IndexSet::new();
    for i in spec.exec_set(rank).iter() {
        for g in &spec.ref_maps {
            if let Some(v) = g.apply(i) {
                if v < spec.data_dist.n() && !spec.data_dist.is_local(rank, v) {
                    needed.insert(v);
                }
            }
        }
    }
    assert_eq!(
        recv.iter().collect::<Vec<_>>(),
        needed.iter().collect::<Vec<_>>(),
        "rank {rank}: receive set is not exactly the set of nonlocal references"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compile_time_matches_inspector_for_random_affine_loops(
        n in 16usize..160,
        p_exp in 1u32..4,
        shift_a in -3i64..4,
        shift_b in -3i64..4,
        kind in 0usize..3,
        block in 1usize..9,
    ) {
        let p = 1usize << p_exp;
        let dist = match kind {
            0 => DimDist::block(n, p),
            1 => DimDist::cyclic(n, p),
            _ => DimDist::block_cyclic(n, p, block),
        };
        let spec = LoopSpec {
            range: (0, n),
            on_dist: dist.clone(),
            on_map: AffineMap::identity(),
            data_dist: dist,
            ref_maps: vec![AffineMap::shift(shift_a), AffineMap::shift(shift_b)],
        };
        assert_equivalent(&spec);
    }

    #[test]
    fn stripe_closed_form_matches_inspector_for_random_strided_loops(
        n in 16usize..160,
        p in 2usize..8,
        step in 2usize..5,
        lo in 0usize..4,
        shift_a in -2i64..3,
        shift_b in -2i64..3,
        kind in 0usize..3,
        block in 1usize..9,
    ) {
        let dist = match kind {
            0 => DimDist::block(n, p),
            1 => DimDist::cyclic(n, p),
            _ => DimDist::block_cyclic(n, p, block),
        };
        let spec = StripeSpec {
            lo,
            hi: n,
            step,
            on_dist: dist.clone(),
            data_dist: dist,
            ref_maps: vec![AffineMap::shift(shift_a), AffineMap::shift(shift_b)],
        };
        assert_stripe_equivalent(&spec);
    }

    #[test]
    fn compile_time_schedules_are_exact_for_random_loops(
        n in 16usize..200,
        p in 2usize..10,
        shift in -4i64..5,
        kind in 0usize..3,
    ) {
        let dist = match kind {
            0 => DimDist::block(n, p),
            1 => DimDist::cyclic(n, p),
            _ => DimDist::block_cyclic(n, p, 3),
        };
        let spec = LoopSpec {
            range: (0, n),
            on_dist: dist.clone(),
            on_map: AffineMap::identity(),
            data_dist: dist,
            ref_maps: vec![AffineMap::shift(shift), AffineMap::identity()],
        };
        for rank in 0..p {
            assert_schedule_is_exact(&spec, rank);
        }
    }
}
