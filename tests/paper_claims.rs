//! Integration tests that pin the *shape* claims of the paper's evaluation
//! (§4) at reduced scale, so `cargo test` exercises the same trends the full
//! table binaries reproduce.

use kali_repro::dmsim::CostModel;
use kali_repro::solvers::{run_jacobi_experiment, ExperimentParams};

fn row(cost: CostModel, nprocs: usize, mesh_side: usize, sweeps: usize) -> ExperimentParams {
    ExperimentParams {
        cost,
        nprocs,
        mesh_side,
        sweeps,
        compute_speedup: true,
        extrapolate_from: Some(2),
        overlap: true,
        disable_schedule_cache: false,
        convergence_check_every: None,
    }
}

#[test]
fn simulated_times_are_deterministic_across_runs() {
    let params = row(CostModel::ncube7(), 8, 32, 20);
    let a = run_jacobi_experiment(&params);
    let b = run_jacobi_experiment(&params);
    assert_eq!(a.times.total.to_bits(), b.times.total.to_bits());
    assert_eq!(a.times.inspector.to_bits(), b.times.inspector.to_bits());
    // The queue high-water mark is a thread-scheduling observation, not a
    // simulated quantity — it is the one report field outside the
    // determinism contract.
    let masked = |mut c: kali_repro::solvers::CommReport| {
        c.queue_peak = 0;
        c
    };
    assert_eq!(masked(a.comm), masked(b.comm));
}

#[test]
fn inspector_overhead_is_small_at_100_sweeps_and_large_at_1_sweep() {
    // Figure 7 / §4: at 100 sweeps the NCUBE/7 inspector overhead stays
    // modest; with a single sweep it dominates (paper: 45–93 %).
    let hundred = run_jacobi_experiment(&row(CostModel::ncube7(), 16, 64, 100));
    assert!(
        hundred.times.inspector_overhead() < 0.15,
        "overhead at 100 sweeps = {:.3}",
        hundred.times.inspector_overhead()
    );
    let single = run_jacobi_experiment(&ExperimentParams {
        extrapolate_from: None,
        ..row(CostModel::ncube7(), 16, 64, 1)
    });
    assert!(
        single.times.inspector_overhead() > 0.30,
        "single-sweep overhead = {:.3}",
        single.times.inspector_overhead()
    );
    // iPSC/2: overhead below ~1–2 % at 100 sweeps (paper: < 1 %).
    let ipsc = run_jacobi_experiment(&row(CostModel::ipsc2(), 16, 64, 100));
    assert!(
        ipsc.times.inspector_overhead() < 0.03,
        "iPSC overhead = {:.4}",
        ipsc.times.inspector_overhead()
    );
}

#[test]
fn ncube_inspector_time_is_u_shaped_in_processor_count() {
    // §4: "the time for the inspector starts high, decreases to a minimum
    // [near] 16 processors, and then increases slowly."
    let inspector = |p: usize| {
        run_jacobi_experiment(&row(CostModel::ncube7(), p, 128, 100))
            .times
            .inspector
    };
    let at2 = inspector(2);
    let at16 = inspector(16);
    let at64 = inspector(64);
    assert!(at2 > at16, "inspector(2) = {at2}, inspector(16) = {at16}");
    assert!(
        at64 > at16,
        "inspector(64) = {at64}, inspector(16) = {at16}"
    );
}

#[test]
fn ipsc_inspector_time_decreases_monotonically_to_32_processors() {
    // §4: "This behavior is not seen [on the iPSC] because the
    // locality-checking loop always dominates."
    let mut prev = f64::INFINITY;
    for p in [2usize, 4, 8, 16, 32] {
        let t = run_jacobi_experiment(&row(CostModel::ipsc2(), p, 128, 100))
            .times
            .inspector;
        assert!(
            t < prev,
            "iPSC inspector time rose at {p} processors: {t} >= {prev}"
        );
        prev = t;
    }
}

#[test]
fn executor_time_scales_close_to_linearly_on_both_machines() {
    for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
        let t4 = run_jacobi_experiment(&row(cost.clone(), 4, 64, 100))
            .times
            .executor;
        let t16 = run_jacobi_experiment(&row(cost.clone(), 16, 64, 100))
            .times
            .executor;
        let ratio = t4 / t16;
        assert!(
            ratio > 3.0 && ratio < 4.6,
            "{}: 4->16 processor executor ratio = {ratio:.2} (expected ≈ 4)",
            cost.name
        );
    }
}

#[test]
fn speedup_grows_with_problem_size() {
    // Figures 9 and 10: at a fixed processor count, larger meshes get closer
    // to ideal speedup.
    for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
        let p = 16usize;
        let small = run_jacobi_experiment(&row(cost.clone(), p, 32, 100))
            .speedup
            .unwrap();
        let large = run_jacobi_experiment(&row(cost.clone(), p, 128, 100))
            .speedup
            .unwrap();
        assert!(
            large > small,
            "{}: speedup should grow with mesh size ({small:.1} -> {large:.1})",
            cost.name
        );
        assert!(
            large <= p as f64 + 0.1,
            "{}: speedup {large} exceeds P",
            cost.name
        );
    }
}

#[test]
fn ncube_overhead_exceeds_ipsc_overhead_at_every_processor_count() {
    // The paper's central machine comparison: the NCUBE/7's expensive calls
    // and messages make the run-time analysis visible, the iPSC/2's do not.
    for p in [4usize, 16, 32] {
        let ncube = run_jacobi_experiment(&row(CostModel::ncube7(), p, 64, 100));
        let ipsc = run_jacobi_experiment(&row(CostModel::ipsc2(), p, 64, 100));
        assert!(
            ncube.times.inspector_overhead() > ipsc.times.inspector_overhead(),
            "p = {p}"
        );
    }
}
