//! Real-process smoke tests for the `kali-mp` backend.
//!
//! Every test here goes through [`MpMachine::run`]: the coordinator
//! re-executes this test binary once per rank, each worker process rebuilds
//! its inputs from scratch, connects the Unix-domain socket mesh, runs the
//! SPMD program, and ships its `Wire`-encoded result back over the control
//! socket.  Nothing is shared between ranks but bytes on sockets.

use kali_repro::baseline::sequential_jacobi;
use kali_repro::distrib::DimDist;
use kali_repro::meshes::RegularGrid;
use kali_repro::mp::MpMachine;
use kali_repro::process::Process;
use kali_repro::solvers::{gather_global, jacobi_sweeps, JacobiConfig};

#[test]
fn ring_and_collectives_work_across_real_processes() {
    let nprocs = 3;
    let results =
        MpMachine::new(nprocs).run("ring_and_collectives_work_across_real_processes", |p| {
            let me = p.rank();
            let n = p.nprocs();
            // A ring: pass a token one hop and check provenance.
            p.send((me + 1) % n, 7, me as u64);
            let token: u64 = p.recv((me + n - 1) % n, 7);
            // Collectives over the same sockets.
            let gathered = p.allgather(vec![me as u64]);
            let sum = p.allreduce_sum_f64(0.1 * (me as f64 + 1.0));
            let wire = p.counters().wire_bytes;
            (token, gathered, sum, wire)
        });
    let results = results.expect("coordinator gets results");
    assert_eq!(results.len(), nprocs);
    let expected_sum = results[0].2;
    for (rank, (token, gathered, sum, wire)) in results.iter().enumerate() {
        assert_eq!(*token, ((rank + nprocs - 1) % nprocs) as u64, "ring hop");
        assert_eq!(
            *gathered,
            (0..nprocs).map(|r| vec![r as u64]).collect::<Vec<_>>()
        );
        assert_eq!(
            sum.to_bits(),
            expected_sum.to_bits(),
            "allreduce must be bitwise identical on every rank"
        );
        assert!(*wire > 0, "rank {rank}: real transport meters real bytes");
    }
}

#[test]
fn jacobi_on_real_processes_matches_the_sequential_reference() {
    let grid = RegularGrid::square(12);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let sweeps = 5;
    let nprocs = 4;
    let results = MpMachine::new(nprocs).run(
        "jacobi_on_real_processes_matches_the_sequential_reference",
        |proc| {
            // Each worker process rebuilt `mesh` and `initial` itself by
            // re-running this test body — the distribution below is the
            // only coordination, and it is derived, not shared.
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            jacobi_sweeps(
                proc,
                &mesh,
                &dist,
                &initial,
                &JacobiConfig::with_sweeps(sweeps),
            )
            .local_a
        },
    );
    let results = results.expect("coordinator gets results");
    let dist = DimDist::block(mesh.len(), nprocs);
    let field = gather_global(&dist, &results);
    let expected = sequential_jacobi(&mesh, &initial, sweeps);
    assert_eq!(
        field.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "real-process Jacobi vs sequential reference"
    );
}

#[test]
#[should_panic(expected = "mp worker rank 0 panicked: deliberate mp worker failure")]
fn a_worker_panic_is_reported_on_the_coordinator_with_rank_and_message() {
    // Rank 0 panics mid-run; the other ranks block receiving from it and
    // die on the closed sockets.  The coordinator must re-report rank 0's
    // own message — not a timeout, not a hang, not a sibling's EOF error.
    MpMachine::new(3).run(
        "a_worker_panic_is_reported_on_the_coordinator_with_rank_and_message",
        |p| {
            if p.rank() == 0 {
                panic!("deliberate mp worker failure");
            }
            let v: u64 = p.recv(0, 1);
            v
        },
    );
}
