//! Backend equivalence: the same Kali program must produce **bit-identical**
//! results on the `dmsim` simulator, on the `kali-native` threaded backend,
//! and on the `kali-mp` multi-process socket backend.
//!
//! This is the contract that makes the `Process` abstraction trustworthy:
//! the runtime layer (inspector, executor, redistribution) fixes the
//! iteration order and the communication schedule, so the floating-point
//! arithmetic happens in exactly the same order on every backend — only the
//! notion of time differs (simulated seconds vs wall-clock).
//!
//! The mp column runs on **real OS processes** (`MpMachine::run`
//! re-executes this test binary, one child per rank): every value crosses a
//! Unix-domain socket through the `Wire` codec, and every rank rebuilds the
//! meshes and distributions from scratch, so nothing rides along in shared
//! memory.  The mp run call is placed *first* in each test body, before the
//! dmsim/native runs, so a spawned worker reaches its call site with the
//! least re-executed work.

use kali_repro::baseline::sequential_jacobi;
use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::inspector::owner_computes_iters;
use kali_repro::kali::{execute_sweep, redistribute, run_inspector, ExecutorConfig};
use kali_repro::meshes::{greedy_partition, AdjacencyMesh, RegularGrid, UnstructuredMeshBuilder};
use kali_repro::mp::MpMachine;
use kali_repro::native::NativeMachine;
use kali_repro::process::Process;
use kali_repro::solvers::{
    adaptive_jacobi_sequential, adaptive_jacobi_sweeps, final_placement, jacobi_sweeps,
    partitioned_dist, AdaptiveConfig, JacobiConfig,
};

/// Gather a distributed solution back into global numbering (the shared
/// helper next to the adaptive solver).
use kali_repro::solvers::gather_global as gather;

/// The Figure 4 Jacobi program, expressed once over any backend.
fn jacobi_on<P: Process>(
    proc: &mut P,
    mesh: &AdjacencyMesh,
    initial: &[f64],
    sweeps: usize,
    dist_of: impl Fn(usize) -> DimDist,
) -> Vec<f64> {
    let dist = dist_of(proc.nprocs());
    jacobi_sweeps(
        proc,
        mesh,
        &dist,
        initial,
        &JacobiConfig::with_sweeps(sweeps),
    )
    .local_a
}

fn assert_backends_agree(
    test: &str,
    mesh: &AdjacencyMesh,
    initial: &[f64],
    sweeps: usize,
    nprocs: usize,
    dist_of: impl Fn(usize) -> DimDist + Sync,
) {
    // Real processes first: in a re-executed worker, `run` is the exit
    // point and nothing below this line executes.
    let mp = MpMachine::new(nprocs).run(test, |proc| {
        jacobi_on(proc, mesh, initial, sweeps, &dist_of)
    });
    let simulated = Machine::new(nprocs, CostModel::ideal())
        .run(|proc| jacobi_on(proc, mesh, initial, sweeps, &dist_of));
    let native =
        NativeMachine::new(nprocs).run(|proc| jacobi_on(proc, mesh, initial, sweeps, &dist_of));

    let dist = dist_of(nprocs);
    let simulated = gather(&dist, &simulated);
    let native = gather(&dist, &native);
    // Bitwise, not approximate: same iteration order, same schedules, same
    // arithmetic — the backends may only differ in timing.
    assert_eq!(
        simulated.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "dmsim and native Jacobi results diverge ({nprocs} procs)"
    );
    // `None` only inside a re-executed worker passing a call it was not
    // spawned for; the coordinator always gets the rank-ordered results.
    if let Some(mp) = mp {
        let mp = gather(&dist, &mp);
        assert_eq!(
            mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "mp and native Jacobi results diverge ({nprocs} procs)"
        );
    }

    let sequential = sequential_jacobi(mesh, initial, sweeps);
    assert_eq!(native, sequential, "native backend vs sequential reference");
}

#[test]
fn jacobi_is_bit_identical_across_backends_on_the_paper_grid() {
    let grid = RegularGrid::square(24);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    for nprocs in [1usize, 2, 4, 8] {
        assert_backends_agree(
            "jacobi_is_bit_identical_across_backends_on_the_paper_grid",
            &mesh,
            &initial,
            10,
            nprocs,
            |p| DimDist::block(mesh.len(), p),
        );
    }
}

#[test]
fn jacobi_is_bit_identical_across_backends_on_scrambled_unstructured_mesh() {
    // Scrambled numbering fragments the schedules, exercising the
    // binary-search receive path and multi-partner exchanges.
    let mesh = UnstructuredMeshBuilder::new(12, 12)
        .seed(41)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 31) % 17) as f64 * 0.5)
        .collect();
    for dist_kind in 0..3usize {
        let n = mesh.len();
        assert_backends_agree(
            "jacobi_is_bit_identical_across_backends_on_scrambled_unstructured_mesh",
            &mesh,
            &initial,
            6,
            4,
            move |p| match dist_kind {
                0 => DimDist::block(n, p),
                1 => DimDist::cyclic(n, p),
                _ => DimDist::block_cyclic(n, p, 7),
            },
        );
    }
}

#[test]
fn jacobi_is_bit_identical_across_backends_under_partitioned_irregular_dist() {
    // The irregular path end to end, on both backends: the owner map comes
    // from the mesh partitioner, each rank contributes only its slice, and
    // the translation tables are assembled with the collective owner-map
    // machinery (crystal router on dmsim, channel all-to-all on native).
    let mesh = UnstructuredMeshBuilder::new(14, 11)
        .seed(77)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 37) % 19) as f64 * 0.25)
        .collect();
    let sweeps = 6;
    let nprocs = 4;

    // Real processes: each rank rebuilds the mesh and runs the partitioner
    // itself — the owner map genuinely cannot be shared, only exchanged.
    let mp = MpMachine::new(nprocs).run(
        "jacobi_is_bit_identical_across_backends_under_partitioned_irregular_dist",
        |proc| {
            let dist = partitioned_dist(proc, &mesh);
            jacobi_sweeps(
                proc,
                &mesh,
                &dist,
                &initial,
                &JacobiConfig::with_sweeps(sweeps),
            )
            .local_a
        },
    );
    let simulated = Machine::new(nprocs, CostModel::ideal()).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        jacobi_sweeps(
            proc,
            &mesh,
            &dist,
            &initial,
            &JacobiConfig::with_sweeps(sweeps),
        )
        .local_a
    });
    let native = NativeMachine::new(nprocs).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        jacobi_sweeps(
            proc,
            &mesh,
            &dist,
            &initial,
            &JacobiConfig::with_sweeps(sweeps),
        )
        .local_a
    });

    // The partitioner is deterministic, so the same distribution can be
    // rebuilt here to reassemble global numbering.
    let dist = DimDist::custom(greedy_partition(&mesh, nprocs), nprocs);
    let simulated = gather(&dist, &simulated);
    let native = gather(&dist, &native);
    assert_eq!(
        simulated.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "dmsim and native diverge under the partitioned irregular distribution"
    );
    if let Some(mp) = mp {
        let mp = gather(&dist, &mp);
        assert_eq!(
            mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "mp diverges under the partitioned irregular distribution"
        );
    }
    let sequential = sequential_jacobi(&mesh, &initial, sweeps);
    assert_eq!(
        native, sequential,
        "partitioned-irregular Jacobi vs sequential reference"
    );
}

#[test]
fn schedule_cache_lifecycle_is_identical_across_backends_under_adaptation() {
    // The full adapt–redistribute–sweep sequence: every adaptation bumps
    // the data version (forcing re-inspection), every rebalance changes
    // the distribution fingerprint and must reclaim the retired
    // placement's schedules.  The cache's hit/miss/eviction bookkeeping is
    // part of the runtime contract, so it must agree between backends, and
    // the numerical results must stay bit-identical.
    let mesh = UnstructuredMeshBuilder::new(12, 12)
        .seed(63)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 13) % 29) as f64 * 0.2)
        .collect();
    let config = AdaptiveConfig {
        sweeps: 12,
        adapt_every: Some(4), // adapt before sweeps 4 and 8
        rebalance: true,      // …and redistribute to the rebalanced placement
        ..AdaptiveConfig::default()
    };
    let nprocs = 4;

    let simulated = Machine::new(nprocs, CostModel::ideal()).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let native = NativeMachine::new(nprocs).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });

    for (rank, (s, n)) in simulated.iter().zip(&native).enumerate() {
        // Cache lifecycle, identical on both backends and matching the
        // adaptation schedule exactly:
        for o in [s, n] {
            assert_eq!(o.adaptations, 2, "rank {rank}");
            assert_eq!(
                o.cache_misses, 3,
                "rank {rank}: one inspector run per mesh generation"
            );
            assert_eq!(o.cache_hits, 9, "rank {rank}: all other sweeps hit");
            assert_eq!(
                o.cache_evictions, 2,
                "rank {rank}: each redistribution reclaims the stale placement"
            );
            assert_eq!(
                o.cache_resident_entries, 1,
                "rank {rank}: only the live schedule stays resident"
            );
            assert!(o.cache_resident_bytes > 0, "rank {rank}");
        }
        assert_eq!(
            (s.cache_hits, s.cache_misses, s.cache_evictions),
            (n.cache_hits, n.cache_misses, n.cache_evictions),
            "rank {rank}: counters diverge between backends"
        );
    }

    // Numerical agreement: dmsim vs native vs the sequential replay.
    let init_dist = DimDist::custom(greedy_partition(&mesh, nprocs), nprocs);
    let final_dist = final_placement(&mesh, &init_dist, &config);
    let simulated = gather(
        &final_dist,
        &simulated.into_iter().map(|o| o.local_a).collect::<Vec<_>>(),
    );
    let native = gather(
        &final_dist,
        &native.into_iter().map(|o| o.local_a).collect::<Vec<_>>(),
    );
    assert_eq!(
        simulated.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "dmsim and native diverge across the adapt-redistribute-sweep sequence"
    );
    let expected = adaptive_jacobi_sequential(&mesh, &initial, &config);
    assert_eq!(
        native, expected,
        "adaptive run vs its deterministic sequential replay"
    );
}

#[test]
fn convergence_checks_do_not_break_backend_agreement() {
    let grid = RegularGrid::square(12);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let config = JacobiConfig {
        sweeps: 8,
        convergence_check_every: Some(2),
        ..JacobiConfig::default()
    };
    let dist_of = |p| DimDist::block(mesh.len(), p);
    let simulated = Machine::new(4, CostModel::ideal())
        .run(|proc| jacobi_sweeps(proc, &mesh, &dist_of(proc.nprocs()), &initial, &config).local_a);
    let native = NativeMachine::new(4)
        .run(|proc| jacobi_sweeps(proc, &mesh, &dist_of(proc.nprocs()), &initial, &config).local_a);
    assert_eq!(
        gather(&dist_of(4), &simulated),
        gather(&dist_of(4), &native)
    );
}

/// One inspector/executor shift sweep (Figure 1), on any backend.
fn shift_on<P: Process>(proc: &mut P, n: usize) -> Vec<f64> {
    let dist = DimDist::block(n, proc.nprocs());
    let rank = proc.rank();
    let local_a: Vec<f64> = dist
        .local_set(rank)
        .iter()
        .map(|g| (g * g) as f64)
        .collect();
    let exec = owner_computes_iters(&dist, rank, n - 1);
    let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
    let mut out = local_a.clone();
    execute_sweep(
        proc,
        ExecutorConfig::default(),
        &schedule,
        &dist,
        &local_a,
        |i, fetch| {
            out[dist.local_index(i)] = fetch.fetch(i + 1);
        },
    );
    out
}

#[test]
fn inspector_executor_shift_matches_across_backends() {
    let n = 96;
    let simulated = Machine::new(8, CostModel::ideal()).run(|proc| shift_on(proc, n));
    let native = NativeMachine::new(8).run(|proc| shift_on(proc, n));
    assert_eq!(simulated, native);
}

#[test]
fn multidim_phase_change_demo_is_bit_identical_across_backends() {
    // The 2-D phase-change demo end to end: alternating-direction smoothing
    // over a [block, *]-distributed field, with the live field redistributed
    // to [*, block] and back between phases under the phase-change strategy.
    // Acceptance criterion of the multi-dimensional API: dmsim, native and
    // the sequential replay agree bit for bit under both strategies.
    use kali_repro::solvers::{
        gather_multidim, multidim_field, multidim_sequential, multidim_sweeps, row_placement,
        MultiDimConfig, PhaseStrategy,
    };

    let mut config = MultiDimConfig::new(14, 11);
    config.rounds = 2;
    config.sweeps_per_phase = 3;
    let initial = multidim_field(config.rows, config.cols);
    let expected = multidim_sequential(&config, &initial);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    for strategy in [PhaseStrategy::RowsThroughout, PhaseStrategy::PhaseChange] {
        config.strategy = strategy;
        for nprocs in [1usize, 2, 4] {
            let simulated = Machine::new(nprocs, CostModel::ideal())
                .run(|proc| multidim_sweeps(proc, &config, &initial));
            let native =
                NativeMachine::new(nprocs).run(|proc| multidim_sweeps(proc, &config, &initial));
            let final_dist = row_placement(&config, nprocs);
            let sim_field = gather_multidim(
                &final_dist,
                &simulated
                    .iter()
                    .map(|o| o.local_a.clone())
                    .collect::<Vec<_>>(),
            );
            let native_field = gather_multidim(
                &final_dist,
                &native.iter().map(|o| o.local_a.clone()).collect::<Vec<_>>(),
            );
            assert_eq!(
                bits(&sim_field),
                bits(&native_field),
                "dmsim vs native, {} on {nprocs} procs",
                strategy.name()
            );
            assert_eq!(
                bits(&sim_field),
                bits(&expected),
                "distributed vs sequential replay, {} on {nprocs} procs",
                strategy.name()
            );
            // Both stencils plan through the compile-time path on every
            // backend: no inspector runs anywhere.
            for o in simulated.iter().chain(&native) {
                assert_eq!(o.cache_misses, 0);
            }
        }
    }
}

#[test]
fn cg_residual_history_is_bit_identical_across_backends() {
    // The reduction-heavy solver: two dot products per iteration through
    // the typed pipeline.  The residual history — a *scalar* trace of every
    // reduction — must agree bit for bit between dmsim, native and the
    // sequential replay, under both block and partitioned placements.
    use kali_repro::solvers::{cg_sequential, cg_solve, CgConfig};

    let mesh = UnstructuredMeshBuilder::new(11, 12)
        .seed(29)
        .scramble_numbering(true)
        .build();
    let b: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 23) % 17) as f64 * 0.2 - 1.3)
        .collect();
    let config = CgConfig::with_iters(20);
    let nprocs = 4;
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    for partitioned in [false, true] {
        // Real processes; the outcome struct is not `Wire`, so the worker
        // ships the two vectors the equivalence claims are about.
        let mp = MpMachine::new(nprocs).run(
            "cg_residual_history_is_bit_identical_across_backends",
            |proc| {
                let dist = if partitioned {
                    partitioned_dist(proc, &mesh)
                } else {
                    DimDist::block(mesh.len(), proc.nprocs())
                };
                let outcome = cg_solve(proc, &mesh, &dist, &b, &config);
                (outcome.residual_history, outcome.local_x)
            },
        );
        let simulated = Machine::new(nprocs, CostModel::ideal()).run(|proc| {
            let dist = if partitioned {
                partitioned_dist(proc, &mesh)
            } else {
                DimDist::block(mesh.len(), proc.nprocs())
            };
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        let native = NativeMachine::new(nprocs).run(|proc| {
            let dist = if partitioned {
                partitioned_dist(proc, &mesh)
            } else {
                DimDist::block(mesh.len(), proc.nprocs())
            };
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        let replay_dist = if partitioned {
            DimDist::custom(greedy_partition(&mesh, nprocs), nprocs)
        } else {
            DimDist::block(mesh.len(), nprocs)
        };
        let (seq_x, seq_history) = cg_sequential(&mesh, &b, &config, &replay_dist);
        for (s, n) in simulated.iter().zip(&native) {
            assert_eq!(
                bits(&s.residual_history),
                bits(&seq_history),
                "dmsim vs replay (partitioned = {partitioned})"
            );
            assert_eq!(
                bits(&n.residual_history),
                bits(&seq_history),
                "native vs replay (partitioned = {partitioned})"
            );
            assert_eq!(s.stats.reductions, n.stats.reductions);
            assert_eq!(
                (s.stats.cache.hits, s.stats.cache.misses),
                (n.stats.cache.hits, n.stats.cache.misses),
                "cache lifecycle must agree between backends"
            );
        }
        let sim_x = gather(
            &replay_dist,
            &simulated
                .iter()
                .map(|o| o.local_x.clone())
                .collect::<Vec<_>>(),
        );
        let nat_x = gather(
            &replay_dist,
            &native.iter().map(|o| o.local_x.clone()).collect::<Vec<_>>(),
        );
        assert_eq!(bits(&sim_x), bits(&nat_x));
        assert_eq!(bits(&sim_x), bits(&seq_x));
        if let Some(mp) = mp {
            for (rank, (history, _)) in mp.iter().enumerate() {
                assert_eq!(
                    bits(history),
                    bits(&seq_history),
                    "mp rank {rank} vs replay (partitioned = {partitioned})"
                );
            }
            let mp_x = gather(
                &replay_dist,
                &mp.into_iter().map(|(_, x)| x).collect::<Vec<_>>(),
            );
            assert_eq!(
                bits(&mp_x),
                bits(&seq_x),
                "mp solution vs replay (partitioned = {partitioned})"
            );
        }
    }
}

#[test]
fn redblack_field_and_change_history_are_bit_identical_across_backends() {
    // Two stripe loops (distinct ids, one session cache), change-norm
    // reductions fused into the half-sweeps: field and history must agree
    // bit for bit across dmsim, native and the sequential replay.
    use kali_repro::solvers::{redblack_sequential, redblack_sweeps, RedBlackConfig};

    let mesh = UnstructuredMeshBuilder::new(12, 10)
        .seed(47)
        .scramble_numbering(true)
        .build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 31) % 29) as f64 * 0.15)
        .collect();
    let config = RedBlackConfig {
        sweeps: 10,
        check_every: Some(2),
        ..RedBlackConfig::default()
    };
    let nprocs = 4;
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    let mp = MpMachine::new(nprocs).run(
        "redblack_field_and_change_history_are_bit_identical_across_backends",
        |proc| {
            let dist = partitioned_dist(proc, &mesh);
            let outcome = redblack_sweeps(proc, &mesh, &dist, &initial, &config);
            (outcome.change_history, outcome.local_a)
        },
    );
    let simulated = Machine::new(nprocs, CostModel::ideal()).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        redblack_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let native = NativeMachine::new(nprocs).run(|proc| {
        let dist = partitioned_dist(proc, &mesh);
        redblack_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let replay_dist = DimDist::custom(greedy_partition(&mesh, nprocs), nprocs);
    let (seq_a, seq_history) = redblack_sequential(&mesh, &initial, &config, &replay_dist);

    for (rank, (s, n)) in simulated.iter().zip(&native).enumerate() {
        assert_eq!(bits(&s.change_history), bits(&seq_history), "rank {rank}");
        assert_eq!(bits(&n.change_history), bits(&seq_history), "rank {rank}");
        for o in [s, n] {
            assert_eq!(o.stats.loops_allocated, 2, "rank {rank}");
            assert_eq!(
                o.stats.cache.misses, 2,
                "rank {rank}: one inspector run per colour"
            );
            assert_eq!(o.stats.reductions, 2 * 5, "rank {rank}: two per check");
        }
    }
    let sim_a = gather(
        &replay_dist,
        &simulated
            .iter()
            .map(|o| o.local_a.clone())
            .collect::<Vec<_>>(),
    );
    let nat_a = gather(
        &replay_dist,
        &native.iter().map(|o| o.local_a.clone()).collect::<Vec<_>>(),
    );
    assert_eq!(bits(&sim_a), bits(&nat_a));
    assert_eq!(bits(&sim_a), bits(&seq_a));
    if let Some(mp) = mp {
        for (rank, (history, _)) in mp.iter().enumerate() {
            assert_eq!(bits(history), bits(&seq_history), "mp rank {rank}");
        }
        let mp_a = gather(
            &replay_dist,
            &mp.into_iter().map(|(_, a)| a).collect::<Vec<_>>(),
        );
        assert_eq!(bits(&mp_a), bits(&seq_a), "mp field vs replay");
    }
}

#[test]
fn redistribution_works_on_the_native_backend() {
    let n = 97;
    let native = NativeMachine::new(4).run(|proc| {
        let from = DimDist::block(n, proc.nprocs());
        let to = DimDist::cyclic(n, proc.nprocs());
        let rank = proc.rank();
        let local: Vec<u64> = from.local_set(rank).iter().map(|g| g as u64).collect();
        let moved = redistribute(proc, &from, &to, &local);
        let expected: Vec<u64> = to.local_set(rank).iter().map(|g| g as u64).collect();
        assert_eq!(moved, expected, "rank {rank}");
        moved.len()
    });
    assert_eq!(native.iter().sum::<usize>(), n);
}
