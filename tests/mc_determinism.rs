//! Delivery-order determinism: the wildcard-delivery policy of the dmsim
//! engine is a **schedule perturbation, not a semantics knob**.
//!
//! The runtime's correctness argument says every solve is determinate: the
//! planned schedules pair every send with exactly one receive, reductions
//! combine in a fixed tree order, and wildcard receives only ever drain a
//! set of messages whose processing order cannot reach the numerics.  The
//! model checker's re-execution leg tests exactly that claim: a solve under
//! an adversarial or randomly shuffled delivery order must be **bitwise**
//! identical — fields, reduction histories, structural counts — to the FIFO
//! baseline, and the native backend (whose thread interleavings are a
//! physical delivery perturbation) must agree too.
//!
//! The property test drives random `Shuffle(seed)` orders across every
//! solver × distribution × rank-count combination; the fixed test pins the
//! named adversarial policies (LIFO, systematic rotation) on every solver.

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, DeliveryPolicy, Machine};
use kali_repro::meshes::{self, AdjacencyMesh, UnstructuredMeshBuilder};
use kali_repro::native::NativeMachine;
use kali_repro::process::Process;
use kali_repro::solvers::{
    adaptive_jacobi_sweeps, cg_solve, jacobi_sweeps, redblack_sweeps, AdaptiveConfig, CgConfig,
    JacobiConfig, RedBlackConfig,
};

const SOLVERS: [&str; 4] = ["jacobi", "adaptive", "cg", "red-black"];
const DISTS: [&str; 4] = ["block", "cyclic", "block-cyclic", "irregular"];

fn test_mesh(seed: u64) -> AdjacencyMesh {
    UnstructuredMeshBuilder::new(8, 8)
        .seed(seed)
        .scramble_numbering(true)
        .build()
}

fn make_dist(mesh: &AdjacencyMesh, kind: &str, nprocs: usize) -> DimDist {
    let n = mesh.len();
    match kind {
        "block" => DimDist::block(n, nprocs),
        "cyclic" => DimDist::cyclic(n, nprocs),
        "block-cyclic" => DimDist::block_cyclic(n, nprocs, 3),
        "irregular" => DimDist::custom(meshes::greedy_partition(mesh, nprocs), nprocs),
        other => panic!("unknown distribution kind {other}"),
    }
}

/// Run one solver and reduce its outcome to the delivery-order-invariant
/// fingerprint the determinism contract pins bitwise on every backend:
/// field values, reduction histories and structural counts.  Clocks,
/// simulated cost counters and the queue high-water mark are excluded —
/// those may legally move when deliveries are reordered or the backend
/// changes.
fn fingerprint<P: Process>(
    proc: &mut P,
    solver: &str,
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    field: &[f64],
) -> Vec<u64> {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    match solver {
        "jacobi" => {
            let config = JacobiConfig {
                sweeps: 4,
                convergence_check_every: Some(1),
                workers: Some(2),
                chunk: Some(8),
                ..JacobiConfig::default()
            };
            let o = jacobi_sweeps(proc, mesh, dist, field, &config);
            let mut fp = bits(&o.local_a);
            fp.extend(bits(&o.change_history));
            fp.extend([o.reductions, o.recv_elements as u64, o.recv_partners as u64]);
            fp
        }
        "adaptive" => {
            let config = AdaptiveConfig {
                sweeps: 4,
                adapt_every: Some(2),
                rebalance: true,
                cache_capacity: 4,
                ..AdaptiveConfig::default()
            };
            let o = adaptive_jacobi_sweeps(proc, mesh, dist, field, &config);
            let mut fp = bits(&o.local_a);
            fp.extend([o.adaptations, o.cache_hits, o.cache_misses]);
            fp
        }
        "cg" => {
            let config = CgConfig::with_iters(4);
            let o = cg_solve(proc, mesh, dist, field, &config);
            let mut fp = bits(&o.local_x);
            fp.extend(bits(&o.residual_history));
            fp.extend([o.iterations as u64, o.stats.reductions]);
            fp
        }
        "red-black" => {
            let config = RedBlackConfig {
                sweeps: 4,
                check_every: Some(1),
                ..RedBlackConfig::default()
            };
            let o = redblack_sweeps(proc, mesh, dist, field, &config);
            let mut fp = bits(&o.local_a);
            fp.extend(bits(&o.change_history));
            fp.extend([
                o.stats.reductions,
                o.red_recv_elements as u64,
                o.black_recv_elements as u64,
            ]);
            fp
        }
        other => panic!("unknown solver {other}"),
    }
}

fn input_field(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect()
}

#[test]
fn adversarial_policies_replay_the_fifo_baseline_on_every_solver() {
    let nprocs = 4;
    let mesh = test_mesh(1990);
    let field = input_field(mesh.len());
    for solver in SOLVERS {
        let dist = make_dist(&mesh, "irregular", nprocs);
        let base = Machine::new(nprocs, CostModel::ideal())
            .run(|proc| fingerprint(proc, solver, &mesh, &dist, &field));
        for policy in [
            DeliveryPolicy::Lifo,
            DeliveryPolicy::Shuffle(0xA5),
            DeliveryPolicy::Systematic(1),
        ] {
            let run = Machine::new(nprocs, CostModel::ideal())
                .with_delivery(policy)
                .run(|proc| fingerprint(proc, solver, &mesh, &dist, &field));
            assert_eq!(run, base, "{solver} under {policy:?} diverged from FIFO");
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Any shuffled wildcard-delivery order, on any solver, under any
        /// distribution kind and rank count: the solve is bitwise identical
        /// to the FIFO baseline, and the native backend agrees.
        #[test]
        fn any_shuffled_delivery_replays_the_fifo_baseline_bitwise(
            seed in 1u64..10_000,
            solver_idx in 0usize..SOLVERS.len(),
            dist_idx in 0usize..DISTS.len(),
            procs_idx in 0usize..2,
        ) {
            let nprocs = [2usize, 4][procs_idx];
            let solver = SOLVERS[solver_idx];
            let mesh = test_mesh(1 + seed % 7);
            let field = input_field(mesh.len());
            let dist = make_dist(&mesh, DISTS[dist_idx], nprocs);

            let base = Machine::new(nprocs, CostModel::ideal())
                .run(|proc| fingerprint(proc, solver, &mesh, &dist, &field));
            let shuffled = Machine::new(nprocs, CostModel::ideal())
                .with_delivery(DeliveryPolicy::Shuffle(seed))
                .run(|proc| fingerprint(proc, solver, &mesh, &dist, &field));
            prop_assert_eq!(&shuffled, &base);

            let native = NativeMachine::new(nprocs)
                .run(|proc| fingerprint(proc, solver, &mesh, &dist, &field));
            prop_assert_eq!(&native, &base);
        }
    }
}
