//! Reduction determinism: `execute_reduce` is **order-fixed**.
//!
//! The typed reduction pipeline promises one combining order everywhere —
//! per-rank folds in ascending iteration order, cross-rank combining with
//! the fixed binomial-tree bracketing — so a reduction's value is bitwise identical
//! across the dmsim simulator, the native threaded backend, the `kali-mp`
//! multi-process socket backend (real OS processes; every partial crosses a
//! socket through the `Wire` codec), and a sequential replay folding the
//! same partial structure.  These tests pin
//! that promise down with rounding-sensitive `f64` sums (values for which a
//! different fold order provably rounds differently) over block, cyclic,
//! block-cyclic and irregular placements, and check that reduction traffic
//! is metered: counts and bytes surface in the solvers' `CommReport`.

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::{AffineMap, Max, Min, Norm2, Process, Reduce, ReduceOp, Session, Sum};
use kali_repro::mp::MpMachine;
use kali_repro::native::NativeMachine;
use kali_repro::solvers::{replay_reduce, replay_sum};

/// One planned reduce sweep over `dist`: every rank contributes `v[i]` for
/// its owned `i`, reduced under `R`.  The canonical "loop whose value is a
/// reduction" program, runnable on any backend.
fn reduce_on<P: Process, R: ReduceOp<Input = f64, Acc = f64>>(
    proc: &mut P,
    dist: &DimDist,
    v: &[f64],
    _op: Reduce<R>,
) -> f64 {
    let mut session = Session::new();
    let loop_ = session.loop_1d(dist.n(), dist.clone());
    let schedule = session.plan(proc, &loop_, dist, &[AffineMap::identity()]);
    let local: Vec<f64> = dist.local_set(proc.rank()).iter().map(|g| v[g]).collect();
    session.execute_reduce(
        proc,
        &loop_,
        &schedule,
        dist,
        &local,
        Reduce::<R>::new(),
        |i, fetch| fetch.fetch(i),
    )
}

/// Rounding-sensitive values: different fold orders round differently.
fn sensitive_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.1 * (i as f64 + 1.0)).collect()
}

fn distributions(n: usize, p: usize) -> Vec<(&'static str, DimDist)> {
    vec![
        ("block", DimDist::block(n, p)),
        ("cyclic", DimDist::cyclic(n, p)),
        ("block-cyclic", DimDist::block_cyclic(n, p, 3)),
        (
            "irregular",
            DimDist::custom((0..n).map(|i| (i * 7 + 3) % p).collect(), p),
        ),
    ]
}

#[test]
fn f64_sums_are_bitwise_identical_across_backends_and_replay() {
    let n = 67;
    let v = sensitive_values(n);
    for nprocs in [1usize, 2, 4] {
        for (name, dist) in distributions(n, nprocs) {
            // Real OS processes first: in a re-executed worker, `run` is the
            // exit point; each worker rebuilds `dist` deterministically.
            let mp = MpMachine::new(nprocs).run(
                "f64_sums_are_bitwise_identical_across_backends_and_replay",
                |proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()),
            );
            let simulated = Machine::new(nprocs, CostModel::ideal())
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            let native = NativeMachine::new(nprocs)
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            let replayed = replay_sum(&dist, |i| v[i]);
            for (rank, (s, nv)) in simulated.iter().zip(&native).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    replayed.to_bits(),
                    "{name} on {nprocs} procs: dmsim rank {rank} vs replay"
                );
                assert_eq!(
                    nv.to_bits(),
                    replayed.to_bits(),
                    "{name} on {nprocs} procs: native rank {rank} vs replay"
                );
            }
            if let Some(mp) = mp {
                for (rank, m) in mp.iter().enumerate() {
                    assert_eq!(
                        m.to_bits(),
                        replayed.to_bits(),
                        "{name} on {nprocs} procs: mp rank {rank} vs replay"
                    );
                }
            }
        }
    }
}

#[test]
fn min_max_and_norm2_agree_across_backends_and_replay() {
    let n = 41;
    let v: Vec<f64> = (0..n)
        .map(|i| (((i * 37) % 19) as f64 - 9.0) * 0.37)
        .collect();
    let nprocs = 4;
    let dist = DimDist::cyclic(n, nprocs);

    let mp_norm = MpMachine::new(nprocs).run(
        "min_max_and_norm2_agree_across_backends_and_replay",
        |proc| reduce_on(proc, &dist, &v, Reduce::<Norm2>::new()),
    );
    let sim_min = Machine::new(nprocs, CostModel::ideal())
        .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Min<f64>>::new()));
    let nat_max = NativeMachine::new(nprocs)
        .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Max<f64>>::new()));
    let sim_norm = Machine::new(nprocs, CostModel::ideal())
        .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Norm2>::new()));

    let min_replay = replay_reduce::<Min<f64>, _, _>(&dist, |i| v[i]);
    let max_replay = replay_reduce::<Max<f64>, _, _>(&dist, |i| v[i]);
    let norm_replay = replay_reduce::<Norm2, _, _>(&dist, |i| v[i]);
    assert!(sim_min.iter().all(|m| m.to_bits() == min_replay.to_bits()));
    assert!(nat_max.iter().all(|m| m.to_bits() == max_replay.to_bits()));
    assert!(sim_norm
        .iter()
        .all(|m| m.to_bits() == norm_replay.to_bits()));
    if let Some(mp_norm) = mp_norm {
        assert!(mp_norm.iter().all(|m| m.to_bits() == norm_replay.to_bits()));
    }
    // Sanity against the plain definitions (order-insensitive for min/max).
    let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(min_replay, lo);
    assert_eq!(max_replay, hi);
    assert!((norm_replay - v.iter().map(|x| x * x).sum::<f64>().sqrt()).abs() < 1e-12);
}

#[test]
fn the_fold_order_is_the_contract_not_an_accident() {
    // Under a cyclic placement the deterministic order differs from the
    // plain global-order sum — and the backends still agree with the
    // replay, proving they follow the contract rather than coincidence.
    let n = 24;
    let v = sensitive_values(n);
    let nprocs = 4;
    let dist = DimDist::cyclic(n, nprocs);
    let global: f64 = v.iter().sum();
    let replayed = replay_sum(&dist, |i| v[i]);
    assert_ne!(replayed.to_bits(), global.to_bits());
    let simulated = Machine::new(nprocs, CostModel::ideal())
        .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
    assert!(simulated.iter().all(|s| s.to_bits() == replayed.to_bits()));
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (DimDist, Vec<f64>)> {
        (16usize..80, 1usize..6, 0usize..4, 1u64..100).prop_map(|(n, p, kind, seed)| {
            let dist = match kind {
                0 => DimDist::block(n, p),
                1 => DimDist::cyclic(n, p),
                2 => DimDist::block_cyclic(n, p, 3),
                _ => DimDist::custom((0..n).map(|i| (i * 7 + 3) % p).collect(), p),
            };
            let v: Vec<f64> = (0..n)
                .map(|i| 0.1 * seed as f64 * (i as f64 + 1.0) - 0.37 * ((i % 7) as f64))
                .collect();
            (dist, v)
        })
    }

    /// Ragged and power-of-two rank counts for the tree-bracketing
    /// property: the binomial tree looks different at each of these.
    fn arb_tree_case() -> impl Strategy<Value = (DimDist, Vec<f64>)> {
        (16usize..80, 0usize..5, 0usize..4, 1u64..100).prop_map(|(n, p_pick, kind, seed)| {
            let p = [2usize, 3, 4, 7, 8][p_pick];
            let dist = match kind {
                0 => DimDist::block(n, p),
                1 => DimDist::cyclic(n, p),
                2 => DimDist::block_cyclic(n, p, 3),
                _ => DimDist::custom((0..n).map(|i| (i * 7 + 3) % p).collect(), p),
            };
            let v: Vec<f64> = (0..n)
                .map(|i| 0.1 * seed as f64 * (i as f64 + 1.0) - 0.37 * ((i % 7) as f64))
                .collect();
            (dist, v)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any placement, any rounding-sensitive values: dmsim, native and
        /// the sequential replay produce the same bits.
        #[test]
        fn random_cases_stay_bitwise_identical(case in arb_case()) {
            let (dist, v) = case;
            let nprocs = dist.nprocs();
            let replayed = replay_sum(&dist, |i| v[i]);
            let simulated = Machine::new(nprocs, CostModel::ideal())
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            let native = NativeMachine::new(nprocs)
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            for s in simulated.iter().chain(&native) {
                prop_assert_eq!(s.to_bits(), replayed.to_bits());
            }
        }

        /// Tree-allreduce determinism at P ∈ {2,3,4,7,8}: the binomial
        /// bracketing (ragged trees included) gives bitwise-identical
        /// rounding-sensitive f64 sums on dmsim, native and the sequential
        /// replay, which folds partials with `tree_combine_partials`.
        #[test]
        fn tree_allreduce_is_bitwise_identical_at_ragged_rank_counts(case in arb_tree_case()) {
            let (dist, v) = case;
            let nprocs = dist.nprocs();
            let replayed = replay_sum(&dist, |i| v[i]);
            let simulated = Machine::new(nprocs, CostModel::ideal())
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            let native = NativeMachine::new(nprocs)
                .run(|proc| reduce_on(proc, &dist, &v, Reduce::<Sum<f64>>::new()));
            for s in simulated.iter().chain(&native) {
                prop_assert_eq!(s.to_bits(), replayed.to_bits());
            }
        }
    }
}

#[test]
fn reduction_messages_and_bytes_surface_in_the_comm_report() {
    use kali_repro::dmsim::CostModel;
    use kali_repro::solvers::{run_jacobi_experiment, ExperimentParams};

    let nprocs = 4;
    let sweeps = 8;
    let base = ExperimentParams {
        cost: CostModel::ncube7(),
        nprocs,
        mesh_side: 12,
        sweeps,
        compute_speedup: false,
        extrapolate_from: None,
        overlap: true,
        disable_schedule_cache: false,
        convergence_check_every: None,
    };
    let quiet = run_jacobi_experiment(&base);
    assert_eq!(quiet.comm.reductions, 0);
    assert_eq!(quiet.comm.reduction_bytes, 0);
    assert_eq!(quiet.final_change, None);

    let checked = run_jacobi_experiment(&ExperimentParams {
        convergence_check_every: Some(2),
        ..base
    });
    let reductions_performed = (sweeps / 2) as u64;
    let reductions_machine = reductions_performed * nprocs as u64;
    assert_eq!(checked.comm.reductions, reductions_machine);
    // The tree's 2(P−1) messages of 8 bytes per reduction, summed over the
    // per-rank shares the session meters.
    assert_eq!(
        checked.comm.reduction_bytes,
        reductions_performed * 2 * (nprocs as u64 - 1) * 8
    );
    assert!(checked.final_change.is_some());
    // The collective's traffic is real: it shows up in the machine-wide
    // message counters, exactly 2(P−1) messages per reduction — at most
    // 2(P−1), never the flat allgather-fold's P·(P−1).
    let extra_msgs = checked.comm.messages - quiet.comm.messages;
    assert_eq!(extra_msgs, reductions_performed * 2 * (nprocs as u64 - 1));
    assert!(
        extra_msgs / reductions_performed <= 2 * (nprocs as u64 - 1),
        "per-reduction messages must be <= 2(P-1)"
    );
    // The reduce columns render in the report line.
    assert!(kali_repro::solvers::CommReport::table_header().contains("reduce"));
    assert!(checked
        .comm
        .to_table_line()
        .contains(&reductions_machine.to_string()));
}
