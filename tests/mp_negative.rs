//! Negative transport tests for the `kali-mp` backend: corrupted frames
//! must fail **fast and structured** — the panic names the receiving rank,
//! the peer rank and the tag — never hang or misdecode.
//!
//! The tests build a two-rank transport over a socketpair and feed rank 1's
//! receiver raw bytes crafted to be wrong in a specific way: a truncated
//! length prefix, a length prefix exceeding the payload bound, a truncated
//! payload, and a well-formed frame whose type hash does not match the
//! receiver's expectation.

use std::io::Write;
use std::os::unix::net::UnixStream;

use kali_repro::mp::frame::{frame_bytes, type_hash, HEADER_LEN, MAX_PAYLOAD};
use kali_repro::mp::MpProc;
use kali_repro::process::Process;

/// Rank 1's transport with a raw handle to rank 0's end of the wire.
fn rigged_rank1() -> (MpProc, UnixStream) {
    let (theirs, ours) = UnixStream::pair().expect("socketpair");
    let proc = MpProc::from_peer_streams(1, 2, vec![Some(ours), None]);
    (proc, theirs)
}

/// Run `f`, which must panic, and return the panic message.
fn panic_message_of(f: impl FnOnce()) -> String {
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .expect_err("the corrupted frame must panic, not hang or succeed");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic message is text")
}

#[test]
fn truncated_length_prefix_names_rank_and_tag() {
    let (mut proc, mut wire) = rigged_rank1();
    // Two bytes of what should be a 4-byte length prefix, then EOF.
    wire.write_all(&[0x10, 0x00]).expect("raw write");
    drop(wire);
    let msg = panic_message_of(|| {
        let _: u64 = proc.recv(0, 0x7);
    });
    assert!(msg.contains("mp rank 1"), "names the receiver: {msg}");
    assert!(msg.contains("rank 0"), "names the peer: {msg}");
    assert!(msg.contains("0x7"), "names the tag: {msg}");
    assert!(
        msg.contains("truncated length prefix"),
        "says what was corrupt: {msg}"
    );
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (mut proc, mut wire) = rigged_rank1();
    // A full 24-byte header whose length prefix exceeds MAX_PAYLOAD: the
    // reader must reject it up front instead of trying to allocate it.
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes()); // len
    header.extend_from_slice(&0u64.to_le_bytes()); // seq
    header.extend_from_slice(&0x9u64.to_le_bytes()); // tag
    header.extend_from_slice(&type_hash::<u64>().to_le_bytes());
    wire.write_all(&header).expect("raw write");
    drop(wire);
    let msg = panic_message_of(|| {
        let _: u64 = proc.recv(0, 0x9);
    });
    assert!(msg.contains("mp rank 1"), "names the receiver: {msg}");
    assert!(msg.contains("exceeds"), "names the bound: {msg}");
    assert!(msg.contains("0x9"), "names the tag: {msg}");
}

#[test]
fn truncated_payload_names_expected_and_received_lengths() {
    let (mut proc, mut wire) = rigged_rank1();
    // A header promising 8 payload bytes, but only 3 arrive before EOF.
    let frame = frame_bytes(0, 0xa, type_hash::<u64>(), &7u64.to_le_bytes());
    wire.write_all(&frame[..HEADER_LEN + 3]).expect("raw write");
    drop(wire);
    let msg = panic_message_of(|| {
        let _: u64 = proc.recv(0, 0xa);
    });
    assert!(msg.contains("mp rank 1"), "names the receiver: {msg}");
    assert!(msg.contains("truncated frame payload"), "{msg}");
    assert!(msg.contains("3 of 8"), "cites the byte counts: {msg}");
}

#[test]
fn type_hash_mismatch_names_the_expected_type() {
    let (mut proc, mut wire) = rigged_rank1();
    // A perfectly well-formed u64 frame — but the receiver asked for f64.
    let frame = frame_bytes(0, 0xb, type_hash::<u64>(), &7u64.to_le_bytes());
    wire.write_all(&frame).expect("raw write");
    let msg = panic_message_of(|| {
        let _: f64 = proc.recv(0, 0xb);
    });
    assert!(msg.contains("type mismatch"), "{msg}");
    assert!(msg.contains("mp rank 1"), "names the receiver: {msg}");
    assert!(msg.contains("rank 0"), "names the sender: {msg}");
    assert!(msg.contains("0xb"), "names the tag: {msg}");
    assert!(msg.contains("f64"), "names the expected type: {msg}");
}

#[test]
fn peer_hangup_mid_wait_is_a_structured_error_not_a_hang() {
    let (mut proc, wire) = rigged_rank1();
    drop(wire); // rank 0 "dies" before sending anything
    let msg = panic_message_of(|| {
        let _: u64 = proc.recv(0, 0xc);
    });
    assert!(msg.contains("hung up"), "{msg}");
    assert!(msg.contains("mp rank 1"), "names the waiter: {msg}");
    assert!(msg.contains("0xc"), "names the tag: {msg}");
}
