//! Negative model checking: `kali::mc` rejects corrupted traces precisely.
//!
//! The positive direction is covered by the `mc_all` sweep (every
//! solver/distribution/backend configuration records a trace the
//! happens-before analyzer accepts).  This suite establishes the other
//! half: when a recorded execution trace **does** contain a race, the
//! analyzer reports it as the *specific* [`Violation`] variant the defect
//! deserves.
//!
//! Each race test starts from a genuinely recorded trace — a shift-stencil
//! sweep executed by a real [`Session`] through the chunked executor on the
//! dmsim machine, which `check_trace` accepts violation-free — then splices
//! the minimal corrupting events in:
//!
//! | corruption                                            | expected violation  |
//! |-------------------------------------------------------|---------------------|
//! | duplicated message on a channel, no epoch between     | `TagReuseRace`      |
//! | …epoch marker on the sender only                      | `MessageRace`       |
//! | circular send/recv wait (hand-built two-rank cycle)   | `RecvBeforeSend`    |
//! | duplicated chunk claim overlapping the original       | `ChunkSinkConflict` |

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::{check_trace, AffineMap, Session, Violation};
use kali_repro::process::{Event, EventKind, Tag};

/// Execute one traced chunked shift-stencil sweep on a 2-rank dmsim
/// machine and return the per-rank event traces.
fn recorded_stencil() -> Vec<Vec<Event>> {
    Machine::new(2, CostModel::ideal()).run(|proc| {
        let n = 24;
        let dist = DimDist::block(n, proc.nprocs());
        let mut session = Session::new().with_workers(2);
        session.set_chunk_size(3);
        let loop_ = session.loop_1d(n - 1, dist.clone());
        let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::shift(1)]);
        let local: Vec<f64> = dist
            .local_set(proc.rank())
            .iter()
            .map(|g| g as f64)
            .collect();
        let mut out = local.clone();
        session.start_trace(proc);
        session.execute_chunked(
            proc,
            &loop_,
            &schedule,
            &dist,
            &local,
            |i, fetch| fetch.fetch(i + 1),
            |i, v| out[dist.local_index(i)] = v,
        );
        session.take_trace(proc)
    })
}

/// The position and identity of the first point-to-point message in a
/// recorded trace set: `(src, send index, dst, recv index, tag)`.
fn first_message(traces: &[Vec<Event>]) -> (usize, usize, usize, usize, Tag) {
    for (src, trace) in traces.iter().enumerate() {
        for (send_idx, ev) in trace.iter().enumerate() {
            if let EventKind::Send { dst, tag } = ev.kind {
                let recv_idx = traces[dst]
                    .iter()
                    .position(
                        |e| matches!(e.kind, EventKind::Recv { src: s, tag: t } if s == src && t == tag),
                    )
                    .expect("the recorded send must have a matching receive");
                return (src, send_idx, dst, recv_idx, tag);
            }
        }
    }
    panic!("the recorded stencil must exchange at least one message");
}

#[test]
fn pristine_recorded_traces_pass() {
    let traces = recorded_stencil();
    assert!(traces.iter().all(|t| !t.is_empty()));
    assert_eq!(check_trace(&traces), vec![]);
}

#[test]
fn injected_channel_reuse_is_a_tag_reuse_race() {
    let mut traces = recorded_stencil();
    let (src, send_idx, dst, recv_idx, tag) = first_message(&traces);

    // Splice a second message onto the same `(src, dst, tag)` channel,
    // directly adjacent to the recorded one: no acknowledgement flows back
    // between them and no collective separates the epochs, so nothing stops
    // the two in-flight messages from being delivered in either order.
    let first_seq = traces[src][send_idx].seq;
    let dup_send = Event {
        rank: src,
        seq: first_seq + 100,
        kind: EventKind::Send { dst, tag },
    };
    let dup_recv = Event {
        rank: dst,
        seq: traces[dst][recv_idx].seq + 100,
        kind: EventKind::Recv { src, tag },
    };
    traces[src].insert(send_idx + 1, dup_send);
    traces[dst].insert(recv_idx + 1, dup_recv);

    let violations = check_trace(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::TagReuseRace { src: s, dst: d, tag: t, first_seq: f, .. }
                if s == src && d == dst && t == tag && f == first_seq
        )),
        "expected TagReuseRace on channel {src}->{dst} tag {tag:#x}, got:\n{violations:#?}"
    );
}

#[test]
fn sender_only_epoch_separation_is_a_message_race() {
    let mut traces = recorded_stencil();
    let (src, send_idx, dst, recv_idx, tag) = first_message(&traces);

    // Same channel reuse, but the *sender* passes an epoch marker between
    // its two sends while the receiver posts both receives back to back:
    // the receiver's window still admits either delivery order.
    let marker = Event {
        rank: src,
        seq: traces[src][send_idx].seq + 50,
        kind: EventKind::Collective { op: "barrier" },
    };
    let dup_send = Event {
        rank: src,
        seq: traces[src][send_idx].seq + 100,
        kind: EventKind::Send { dst, tag },
    };
    let first_recv_seq = traces[dst][recv_idx].seq;
    let dup_recv = Event {
        rank: dst,
        seq: first_recv_seq + 100,
        kind: EventKind::Recv { src, tag },
    };
    traces[src].insert(send_idx + 1, marker);
    traces[src].insert(send_idx + 2, dup_send);
    traces[dst].insert(recv_idx + 1, dup_recv);

    let violations = check_trace(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::MessageRace { src: s, dst: d, tag: t, first_seq: f, .. }
                if s == src && d == dst && t == tag && f == first_recv_seq
        )),
        "expected MessageRace on channel {src}->{dst} tag {tag:#x}, got:\n{violations:#?}"
    );
}

#[test]
fn circular_waits_are_a_recv_before_send_violation() {
    // Two ranks that each observe the other's message before it was sent
    // cannot be ordered by any happens-before-consistent schedule.  (A real
    // backend cannot record this trace — which is exactly why the analyzer
    // must reject it rather than order it.)
    let ev = |rank: usize, seq: u64, kind: EventKind| Event { rank, seq, kind };
    let traces = vec![
        vec![
            ev(0, 0, EventKind::Recv { src: 1, tag: 0x20 }),
            ev(0, 1, EventKind::Send { dst: 1, tag: 0x10 }),
        ],
        vec![
            ev(1, 0, EventKind::Recv { src: 0, tag: 0x10 }),
            ev(1, 1, EventKind::Send { dst: 0, tag: 0x20 }),
        ],
    ];
    let violations = check_trace(&traces);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::RecvBeforeSend { events } if events.len() >= 2)),
        "expected RecvBeforeSend, got:\n{violations:#?}"
    );
}

#[test]
fn overlapping_chunk_claims_are_a_sink_conflict() {
    let mut traces = recorded_stencil();

    // Duplicate a recorded chunk claim so two workers of the same sweep and
    // phase claim overlapping iteration windows — two writers for one sink
    // slot.
    let (rank, idx) = traces
        .iter()
        .enumerate()
        .find_map(|(r, t)| {
            t.iter()
                .position(|e| matches!(e.kind, EventKind::ChunkClaim { .. }))
                .map(|i| (r, i))
        })
        .expect("the chunked executor must record chunk claims");
    let mut dup = traces[rank][idx].clone();
    dup.seq += 100;
    let sweep = match dup.kind {
        EventKind::ChunkClaim { sweep, .. } => sweep,
        _ => unreachable!(),
    };
    traces[rank].insert(idx + 1, dup);

    let violations = check_trace(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::ChunkSinkConflict { rank: r, sweep: s, .. } if r == rank && s == sweep
        )),
        "expected ChunkSinkConflict on rank {rank}, got:\n{violations:#?}"
    );
}
