//! Integration test for the redistribution extension: switch the live
//! solution array between distributions mid-computation and keep getting the
//! sequential answer.

use kali_repro::baseline::sequential_jacobi;
use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::redistribute;
use kali_repro::meshes::RegularGrid;
use kali_repro::solvers::{jacobi_sweeps, JacobiConfig};

#[test]
fn jacobi_survives_a_mid_run_redistribution() {
    let grid = RegularGrid::square(20);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let nprocs = 4;
    let expected = sequential_jacobi(&mesh, &initial, 8);

    let machine = Machine::new(nprocs, CostModel::ideal());
    let results = machine.run(|proc| {
        let block = DimDist::block(mesh.len(), proc.nprocs());
        let cyclic = DimDist::cyclic(mesh.len(), proc.nprocs());

        // Phase 1: four sweeps under the block distribution.
        let phase1 = jacobi_sweeps(proc, &mesh, &block, &initial, &JacobiConfig::with_sweeps(4));

        // Redistribute the live solution to a cyclic distribution…
        let cyclic_local = redistribute(proc, &block, &cyclic, &phase1.local_a);

        // …reassemble a globally replicated field for the next phase's
        // set-up (jacobi_sweeps scatters from a replicated initial field).
        let flat: Vec<(usize, f64)> = cyclic
            .local_set(proc.rank())
            .iter()
            .zip(cyclic_local.iter())
            .map(|(g, &v)| (g, v))
            .collect();
        let all = kali_repro::dmsim::collectives::allgather(proc, flat, 16);
        let mut mid = vec![0.0f64; mesh.len()];
        for piece in all {
            for (g, v) in piece {
                mid[g] = v;
            }
        }

        // Phase 2: four more sweeps under the cyclic distribution.
        let phase2 = jacobi_sweeps(proc, &mesh, &cyclic, &mid, &JacobiConfig::with_sweeps(4));
        (proc.rank(), phase2.local_a)
    });

    let cyclic = DimDist::cyclic(mesh.len(), nprocs);
    let mut global = vec![0.0f64; mesh.len()];
    for (rank, local) in results {
        for (l, v) in local.into_iter().enumerate() {
            global[cyclic.global_index(rank, l)] = v;
        }
    }
    assert_eq!(global, expected);
}
