//! Cross-crate integration tests: numerical equivalence of the three
//! implementations (sequential, hand-coded message passing, Kali) and
//! distribution independence of the Kali program.

use kali_repro::baseline::{handcoded_jacobi, sequential_jacobi};
use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::meshes::{AdjacencyMesh, RegularGrid, UnstructuredMeshBuilder};
use kali_repro::solvers::{jacobi_sweeps, JacobiConfig};

/// Gather a distributed solution back into global numbering.
fn gather(dist: &DimDist, locals: &[Vec<f64>]) -> Vec<f64> {
    let mut global = vec![0.0f64; dist.n()];
    for (rank, local) in locals.iter().enumerate() {
        for (l, v) in local.iter().enumerate() {
            global[dist.global_index(rank, l)] = *v;
        }
    }
    global
}

fn kali_solution(
    mesh: &AdjacencyMesh,
    initial: &[f64],
    sweeps: usize,
    nprocs: usize,
    dist_of: impl Fn(usize) -> DimDist + Sync,
) -> Vec<f64> {
    let machine = Machine::new(nprocs, CostModel::ideal());
    let outcomes = machine.run(|proc| {
        let dist = dist_of(proc.nprocs());
        jacobi_sweeps(
            proc,
            mesh,
            &dist,
            initial,
            &JacobiConfig::with_sweeps(sweeps),
        )
        .local_a
    });
    gather(&dist_of(nprocs), &outcomes)
}

#[test]
fn kali_handcoded_and_sequential_agree_bitwise_on_the_paper_workload() {
    let grid = RegularGrid::square(24);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let sweeps = 12;
    let expected = sequential_jacobi(&mesh, &initial, sweeps);

    for nprocs in [2usize, 4, 8] {
        let kali = kali_solution(&mesh, &initial, sweeps, nprocs, |p| {
            DimDist::block(mesh.len(), p)
        });
        assert_eq!(kali, expected, "Kali vs sequential, {nprocs} processors");

        let machine = Machine::new(nprocs, CostModel::ideal());
        let hand = machine.run(|proc| handcoded_jacobi(proc, &mesh, &initial, sweeps).local_a);
        let hand = gather(&DimDist::block(mesh.len(), nprocs), &hand);
        assert_eq!(
            hand, expected,
            "hand-coded vs sequential, {nprocs} processors"
        );
    }
}

#[test]
fn kali_is_distribution_independent_on_an_unstructured_mesh() {
    // The same program text must produce the same answer under block,
    // cyclic, block-cyclic and user-defined distributions (paper §2.4).
    let mesh = UnstructuredMeshBuilder::new(14, 14).seed(3).build();
    let n = mesh.len();
    let initial: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64).collect();
    let sweeps = 6;
    let expected = sequential_jacobi(&mesh, &initial, sweeps);
    let nprocs = 4;

    let block = kali_solution(&mesh, &initial, sweeps, nprocs, |p| DimDist::block(n, p));
    let cyclic = kali_solution(&mesh, &initial, sweeps, nprocs, |p| DimDist::cyclic(n, p));
    let bc = kali_solution(&mesh, &initial, sweeps, nprocs, |p| {
        DimDist::block_cyclic(n, p, 5)
    });
    let custom = kali_solution(&mesh, &initial, sweeps, nprocs, |p| {
        DimDist::custom((0..n).map(|i| (i * 7 + 1) % p).collect(), p)
    });

    assert_eq!(block, expected);
    assert_eq!(cyclic, expected);
    assert_eq!(bc, expected);
    assert_eq!(custom, expected);
}

#[test]
fn kali_matches_handcoded_communication_volume_on_block_distribution() {
    // For the block-distributed grid both versions must move exactly the
    // same halo elements per sweep.
    let grid = RegularGrid::square(32);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let nprocs = 4;
    let sweeps = 3;

    let machine = Machine::new(nprocs, CostModel::ideal());
    let (_, kali_stats) = machine.run_stats(|proc| {
        let dist = DimDist::block(mesh.len(), proc.nprocs());
        jacobi_sweeps(
            proc,
            &mesh,
            &dist,
            &initial,
            &JacobiConfig::with_sweeps(sweeps),
        );
    });
    let (hand_out, hand_stats) =
        machine.run_stats(|proc| handcoded_jacobi(proc, &mesh, &initial, sweeps));

    // Executor halo traffic: 6 boundary messages of 32 f64 per sweep.
    let halo_bytes_per_sweep: u64 = 6 * 32 * 8;
    assert!(kali_stats.totals.bytes_sent >= sweeps as u64 * halo_bytes_per_sweep);
    assert!(hand_stats.totals.bytes_sent >= sweeps as u64 * halo_bytes_per_sweep);
    // The Kali executor must not move more halo data than the hand-coded
    // version (the inspector's records add only metadata, exchanged once).
    let kali_executor_bytes = kali_stats.totals.bytes_sent;
    let hand_total_bytes = hand_stats.totals.bytes_sent;
    // Allow for the one-time inspector record exchange (≤ 64 records of 48 B).
    assert!(
        kali_executor_bytes <= hand_total_bytes + 64 * 48,
        "kali moved {kali_executor_bytes} bytes, hand-coded {hand_total_bytes}"
    );
    // Ghost-region sizes must agree with the Kali schedules.
    assert_eq!(hand_out[1].ghost_elements, 64);
}

#[test]
fn single_processor_runs_need_no_communication() {
    let grid = RegularGrid::square(16);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let machine = Machine::new(1, CostModel::ncube7());
    let (outcomes, stats) = machine.run_stats(|proc| {
        let dist = DimDist::block(mesh.len(), proc.nprocs());
        jacobi_sweeps(proc, &mesh, &dist, &initial, &JacobiConfig::with_sweeps(5))
    });
    assert_eq!(stats.totals.msgs_sent, 0);
    assert_eq!(outcomes[0].recv_elements, 0);
    assert_eq!(
        gather(
            &DimDist::block(mesh.len(), 1),
            &[outcomes[0].local_a.clone()]
        ),
        sequential_jacobi(&mesh, &initial, 5)
    );
}
