//! Chunked-executor determinism: worker count and chunk size are
//! **performance knobs, not semantics knobs**.
//!
//! The intra-rank parallel executor splits every sweep into fixed-boundary
//! chunks, runs them on a worker pool, and merges per-chunk values, cost
//! counters and reduction contributions in ascending iteration order — so
//! the knobs can change wall-clock time but never a single bit of a result,
//! a residual history, or a metered counter.  These tests pin that contract
//! for all three solvers (Jacobi, CG, red–black Gauss–Seidel) across a
//! grid of `(workers, chunk)` settings, against the scalar single-worker
//! run, against the sequential replays, and on the native backend.

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::meshes::{AdjacencyMesh, RegularGrid, UnstructuredMeshBuilder};
use kali_repro::native::NativeMachine;
use kali_repro::process::{Counters, Process};
use kali_repro::solvers::{
    cg_sequential, cg_solve, gather_global, jacobi_sequential, jacobi_sweeps, redblack_sequential,
    redblack_sweeps, CgConfig, CgOutcome, JacobiConfig, JacobiOutcome, RedBlackConfig,
    RedBlackOutcome,
};

const NPROCS: usize = 4;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The knob-independence contract covers every metered counter *except* the
/// pending-queue high-water mark: queue occupancy is a backend/scheduling
/// observation (it moves with chunk boundaries and thread interleaving),
/// not a semantic output.
fn masked(c: Counters) -> Counters {
    Counters { queue_peak: 0, ..c }
}

/// The knob grid shared by the fixed tests: the scalar baseline is
/// `(workers 1, chunk auto)`; every other point must match it bitwise.
fn knob_grid() -> Vec<(usize, usize)> {
    vec![(1, 0), (1, 1), (2, 0), (2, 3), (3, 7), (4, 0), (4, 64)]
}

fn run_jacobi(
    mesh: &AdjacencyMesh,
    initial: &[f64],
    workers: usize,
    chunk: usize,
) -> Vec<JacobiOutcome> {
    let config = JacobiConfig {
        sweeps: 8,
        convergence_check_every: Some(2),
        workers: Some(workers),
        chunk: Some(chunk),
        ..JacobiConfig::default()
    };
    Machine::new(NPROCS, CostModel::ideal()).run(|proc| {
        let dist = DimDist::block(mesh.len(), proc.nprocs());
        jacobi_sweeps(proc, mesh, &dist, initial, &config)
    })
}

#[test]
fn jacobi_is_bitwise_identical_at_every_worker_count_and_chunk_size() {
    let grid = RegularGrid::square(14);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let dist = DimDist::block(mesh.len(), NPROCS);
    let expected = jacobi_sequential(&mesh, &initial, 8);

    let baseline = run_jacobi(&mesh, &initial, 1, 0);
    let base_field = gather_global(
        &dist,
        &baseline
            .iter()
            .map(|o| o.local_a.clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        bits(&base_field),
        bits(&expected),
        "scalar baseline vs sequential"
    );

    for (workers, chunk) in knob_grid() {
        let outcomes = run_jacobi(&mesh, &initial, workers, chunk);
        let field = gather_global(
            &dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            bits(&field),
            bits(&base_field),
            "field must not depend on (workers {workers}, chunk {chunk})"
        );
        for (rank, (o, b)) in outcomes.iter().zip(&baseline).enumerate() {
            assert_eq!(
                bits(&o.change_history),
                bits(&b.change_history),
                "rank {rank} change history at (workers {workers}, chunk {chunk})"
            );
            assert_eq!(
                masked(o.counters),
                masked(b.counters),
                "rank {rank} merged counters at (workers {workers}, chunk {chunk})"
            );
            assert_eq!(o.reductions, b.reductions);
            assert_eq!(o.reduction_bytes, b.reduction_bytes);
        }
    }
}

#[test]
fn cg_residual_history_is_knob_independent_and_replays_bitwise() {
    let mesh = UnstructuredMeshBuilder::new(10, 10)
        .seed(23)
        .scramble_numbering(true)
        .build();
    let b: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
        .collect();
    let dist = DimDist::block(mesh.len(), NPROCS);
    let run = |workers: usize, chunk: usize| -> Vec<CgOutcome> {
        let config = CgConfig {
            iters: 20,
            workers: Some(workers),
            chunk: Some(chunk),
            ..CgConfig::default()
        };
        Machine::new(NPROCS, CostModel::ideal()).run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            cg_solve(proc, &mesh, &dist, &b, &config)
        })
    };
    let (seq_x, seq_history) = cg_sequential(&mesh, &b, &CgConfig::with_iters(20), &dist);

    let baseline = run(1, 0);
    for (workers, chunk) in knob_grid() {
        let outcomes = run(workers, chunk);
        let x = gather_global(
            &dist,
            &outcomes
                .iter()
                .map(|o| o.local_x.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            bits(&x),
            bits(&seq_x),
            "solution vs sequential at (workers {workers}, chunk {chunk})"
        );
        for (rank, (o, b)) in outcomes.iter().zip(&baseline).enumerate() {
            assert_eq!(
                bits(&o.residual_history),
                bits(&seq_history),
                "rank {rank} residual history at (workers {workers}, chunk {chunk})"
            );
            assert_eq!(
                masked(o.counters),
                masked(b.counters),
                "rank {rank} merged counters at (workers {workers}, chunk {chunk})"
            );
            assert_eq!(o.stats.reductions, b.stats.reductions);
            assert_eq!(o.stats.reduction_bytes, b.stats.reduction_bytes);
        }
    }
}

#[test]
fn redblack_field_and_change_history_are_knob_independent() {
    let mesh = UnstructuredMeshBuilder::new(9, 9).seed(31).build();
    let initial: Vec<f64> = (0..mesh.len())
        .map(|i| ((i * 29) % 23) as f64 * 0.125)
        .collect();
    let dist = DimDist::block(mesh.len(), NPROCS);
    let run = |workers: usize, chunk: usize| -> Vec<RedBlackOutcome> {
        let config = RedBlackConfig {
            sweeps: 6,
            check_every: Some(2),
            workers: Some(workers),
            chunk: Some(chunk),
            ..RedBlackConfig::default()
        };
        Machine::new(NPROCS, CostModel::ideal()).run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            redblack_sweeps(proc, &mesh, &dist, &initial, &config)
        })
    };
    let seq_config = RedBlackConfig {
        sweeps: 6,
        check_every: Some(2),
        ..RedBlackConfig::default()
    };
    let (seq_a, seq_history) = redblack_sequential(&mesh, &initial, &seq_config, &dist);

    let baseline = run(1, 0);
    for (workers, chunk) in knob_grid() {
        let outcomes = run(workers, chunk);
        let a = gather_global(
            &dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            bits(&a),
            bits(&seq_a),
            "field vs sequential at (workers {workers}, chunk {chunk})"
        );
        for (rank, (o, b)) in outcomes.iter().zip(&baseline).enumerate() {
            assert_eq!(bits(&o.change_history), bits(&seq_history));
            assert_eq!(
                masked(o.counters),
                masked(b.counters),
                "rank {rank} merged counters at (workers {workers}, chunk {chunk})"
            );
        }
    }
}

#[test]
fn native_backend_agrees_with_dmsim_at_four_workers() {
    // The native backend takes the same chunked path (plus packed pooled
    // messaging); at 4 workers it must still match the simulator and the
    // sequential reference bit for bit.
    let grid = RegularGrid::square(12);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    let dist = DimDist::block(mesh.len(), NPROCS);
    let config = JacobiConfig {
        sweeps: 6,
        convergence_check_every: Some(3),
        workers: Some(4),
        chunk: Some(16),
        ..JacobiConfig::default()
    };
    let native = NativeMachine::new(NPROCS).run(|proc| {
        let dist = DimDist::block(mesh.len(), proc.nprocs());
        jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    let field = gather_global(
        &dist,
        &native.iter().map(|o| o.local_a.clone()).collect::<Vec<_>>(),
    );
    assert_eq!(bits(&field), bits(&jacobi_sequential(&mesh, &initial, 6)));

    let simulated = Machine::new(NPROCS, CostModel::ideal()).run(|proc| {
        let dist = DimDist::block(mesh.len(), proc.nprocs());
        jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
    });
    for (n, s) in native.iter().zip(&simulated) {
        assert_eq!(bits(&n.change_history), bits(&s.change_history));
        assert_eq!(n.local_a.len(), s.local_a.len());
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_knobs() -> impl Strategy<Value = (usize, usize, u64)> {
        const CHUNKS: [usize; 7] = [0, 1, 3, 7, 17, 64, 2048];
        (1usize..6, 0usize..CHUNKS.len(), 1u64..50)
            .prop_map(|(workers, c, seed)| (workers, CHUNKS[c], seed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any `(workers, chunk)` and any mesh seed: the Jacobi field, its
        /// change history and the merged per-rank counters are bitwise
        /// identical to the scalar single-worker run and the sequential
        /// replay.
        #[test]
        fn any_knobs_replay_the_scalar_jacobi_bitwise(case in arb_knobs()) {
            let (workers, chunk, seed) = case;
            let mesh = UnstructuredMeshBuilder::new(8, 8).seed(seed).build();
            let initial: Vec<f64> =
                (0..mesh.len()).map(|i| (i % 11) as f64 * 0.3).collect();
            let dist = DimDist::block(mesh.len(), NPROCS);
            let expected = jacobi_sequential(&mesh, &initial, 5);

            let run = |w: usize, c: usize| {
                let config = JacobiConfig {
                    sweeps: 5,
                    convergence_check_every: Some(2),
                    workers: Some(w),
                    chunk: Some(c),
                    ..JacobiConfig::default()
                };
                Machine::new(NPROCS, CostModel::ideal()).run(|proc| {
                    let dist = DimDist::block(mesh.len(), proc.nprocs());
                    jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
                })
            };
            let baseline = run(1, 0);
            let outcomes = run(workers, chunk);
            let field = gather_global(
                &dist,
                &outcomes.iter().map(|o| o.local_a.clone()).collect::<Vec<_>>(),
            );
            prop_assert_eq!(bits(&field), bits(&expected));
            let totals = |os: &[JacobiOutcome]| -> Counters {
                os.iter().fold(Counters::default(), |mut acc, o| {
                    acc.flops += o.counters.flops;
                    acc.mem_refs += o.counters.mem_refs;
                    acc.loop_iters += o.counters.loop_iters;
                    acc.msgs_sent += o.counters.msgs_sent;
                    acc.bytes_sent += o.counters.bytes_sent;
                    acc.nonlocal_refs += o.counters.nonlocal_refs;
                    acc
                })
            };
            prop_assert_eq!(totals(&outcomes), totals(&baseline));
            for (o, b) in outcomes.iter().zip(&baseline) {
                prop_assert_eq!(masked(o.counters), masked(b.counters));
                prop_assert_eq!(bits(&o.change_history), bits(&b.change_history));
            }
        }
    }
}
