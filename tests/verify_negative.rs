//! Negative verification: `kali::verify` rejects corrupted plans precisely.
//!
//! The positive direction is covered by `verify_all` (every solver/bench
//! configuration plans clean on both backends).  This suite establishes the
//! other half of the static-analysis contract: when a planned communication
//! schedule **is** defective, the checker reports the defect as the
//! *specific* [`Violation`] variant the corruption deserves — not a generic
//! failure, and not a pass.
//!
//! Each test starts from a genuinely planned schedule set (a 3-point
//! Jacobi-style stencil planned by a real [`Session`] on the dmsim
//! machine, which `check_schedule_set` accepts violation-free), hand-corrupts
//! one invariant, and asserts the matching variant fires:
//!
//! | corruption                              | expected violation          |
//! |-----------------------------------------|-----------------------------|
//! | receive record with no matching send    | `DanglingRecv`              |
//! | send record with no matching receive    | `DanglingSend`              |
//! | matched records with different extents  | `ByteCountMismatch`         |
//! | receive buffer offsets not dense        | `NonDenseRecvLayout`        |
//! | two receive records covering one index  | `OverlappingRecvRanges`     |
//! | body reference the plan never fetched   | `UnresolvableRef`           |
//! | rank-divergent collective call sequence | `DivergentCollectives`      |
//! | record claiming another rank's endpoint | `RecordRankMismatch`        |
//! | record sending a rank to itself         | `SelfMessage`               |
//! | zero-length range record                | `EmptyRecord`               |
//! | records out of `(peer, low)` order      | `UnsortedRecords`           |
//! | declared buffer length off by one       | `RecvLenMismatch`           |
//! | record range absent from the lookup     | `LookupMiss`                |
//! | iteration list out of order             | `UnsortedIterations`        |
//! | iteration in both local & nonlocal list | `OverlappingIterationLists` |
//! | schedule stored under the wrong rank    | `ScheduleRankMismatch`      |
//! | nonlocal iteration filed as local       | `LocalIterNonlocalRef`      |
//! | modelled send/recv with no counterpart  | `UnmatchedMessage`          |
//! | circular blocking-receive dependence    | `DeadlockCycle`             |
//! | more in-flight sweeps than tag span     | `SweepTagCollision`         |
//!
//! Three variants guard *constant* spaces no planned-schedule corruption
//! can reach, so they are constructed directly (with the justification in
//! `constant_space_violations_render_precisely`): `TagWindowOverlap` (the
//! component windows are compile-time constants whose overlap fails the
//! build), `TagOutOfWindow` (executor tags are congruence-bounded inside
//! their window by construction) and `BracketingMismatch` (only a *live*
//! backend reduction disagreeing with the replay produces one — exercised
//! by `verify_all`'s live allreduce).  The four trace-level variants
//! (`TagReuseRace`, `MessageRace`, `RecvBeforeSend`, `ChunkSinkConflict`)
//! are driven from real recorded traces in `tests/mc_negative.rs`.
//!
//! `every_violation_variant_is_constructible_and_renders` closes the loop:
//! an exhaustive wildcard-free match over every variant, so adding a
//! variant without extending this audit fails to compile.

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::verify::{
    bracket_leaf, check_collective_sequence, check_deadlock_model, check_sweep_tag_wrap,
    check_tag_windows, BracketHash, ModelOp, OpKind, RecordKind,
};
use kali_repro::kali::{
    check_plan_refs, check_schedule, check_schedule_set, AffineMap, CollectiveCall, CommSchedule,
    Norm2, RangeRecord, Reduce, ReduceOp, Session, Span, Sum, Violation,
};
use kali_repro::process::tags;

const N: usize = 32;
const P: usize = 4;

/// Plan the 3-point stencil `A[i-1], A[i], A[i+1]` over the interior
/// iterations `1..N-1` of a block distribution on every rank of a
/// `P`-process dmsim machine, returning the per-rank schedules (cloned out
/// of the session cache so tests can corrupt them) and each rank's
/// collective-call trace after two reductions.
fn planned_stencil() -> (Vec<CommSchedule>, Vec<Vec<CollectiveCall>>) {
    let results = Machine::new(P, CostModel::ideal()).run(|proc| {
        let dist = DimDist::block(N, P);
        let mut session = Session::new();
        let loop_ = session.loop_over(Span::new(1, N - 1), dist.clone());
        let refs = [
            AffineMap::shift(-1),
            AffineMap::identity(),
            AffineMap::shift(1),
        ];
        let schedule = session.plan(proc, &loop_, &dist, &refs);
        let local: Vec<f64> = dist
            .local_set(proc.rank())
            .iter()
            .map(|g| g as f64 + 0.5)
            .collect();
        // Two collectives so the trace has a sequence worth diverging.
        let _ = session.execute_reduce(
            proc,
            &loop_,
            &schedule,
            &dist,
            &local,
            Reduce::<Sum<f64>>::new(),
            |i, fetch| fetch.fetch(i),
        );
        let _ = session.execute_reduce(
            proc,
            &loop_,
            &schedule,
            &dist,
            &local,
            Reduce::<Norm2>::new(),
            |i, fetch| fetch.fetch(i),
        );
        ((*schedule).clone(), session.collective_trace().to_vec())
    });
    results.into_iter().unzip()
}

/// The stencil's reference pattern, as the executor body would issue it.
fn stencil_refs(i: usize, out: &mut Vec<usize>) {
    if i > 0 {
        out.push(i - 1);
    }
    out.push(i);
    if i + 1 < N {
        out.push(i + 1);
    }
}

#[test]
fn pristine_plans_pass_all_checks() {
    let (set, traces) = planned_stencil();
    assert_eq!(check_schedule_set(&set), vec![]);
    let dist = DimDist::block(N, P);
    for s in &set {
        assert_eq!(check_plan_refs(s, dist.as_dyn(), stencil_refs), vec![]);
    }
    assert_eq!(check_collective_sequence(&traces), vec![]);
    // Every rank traced exactly the two reductions, in order.
    for trace in &traces {
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].op, "sum-f64");
        assert_eq!(trace[1].op, "norm2");
    }
}

#[test]
fn dangling_recv_record_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1 now claims it will also receive [20,23) from rank 3 — but rank
    // 3 plans no such send.
    let buffer = set[1].recv_len;
    set[1].recv_records.push(kali_repro::kali::RangeRecord {
        from_proc: 3,
        to_proc: 1,
        low: 20,
        high: 23,
        buffer,
    });
    set[1].recv_len += 3;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::DanglingRecv { rank: 1, record }
                if record.from_proc == 3 && record.low == 20
        )),
        "expected DanglingRecv, got:\n{violations:#?}"
    );
}

#[test]
fn dangling_send_record_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 2 forgets it was going to receive from rank 1; rank 1's planned
    // send to rank 2 is now unexpected on arrival.
    set[2].recv_records.retain(|r| r.from_proc != 1);
    set[2].recv_len = set[2].recv_records.iter().map(|r| r.len()).sum();
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::DanglingSend { rank: 1, record } if record.to_proc == 2
        )),
        "expected DanglingSend from rank 1 to rank 2, got:\n{violations:#?}"
    );
}

#[test]
fn mismatched_byte_counts_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 0's send to rank 1 grows by one element; the matched receive on
    // rank 1 still expects the original extent, so the two sides would
    // exchange different byte counts.
    let record = set[0]
        .send_records
        .iter_mut()
        .find(|r| r.to_proc == 1)
        .expect("rank 0 sends its high boundary to rank 1");
    record.high += 1;
    let (low, send_high) = (record.low, record.high);
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::ByteCountMismatch { from: 0, to: 1, low: l, send_high: sh, .. }
                if l == low && sh == send_high
        )),
        "expected ByteCountMismatch on the 0->1 message, got:\n{violations:#?}"
    );
}

#[test]
fn non_dense_recv_layout_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Interior ranks receive from both neighbours; shifting the second
    // record's buffer offset leaves a hole in the packed receive buffer.
    let rank = 1;
    assert!(set[rank].recv_records.len() >= 2);
    set[rank].recv_records[1].buffer += 2;
    let violations = check_schedule_set(&set);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::NonDenseRecvLayout { rank: r, .. } if r == rank)),
        "expected NonDenseRecvLayout on rank {rank}, got:\n{violations:#?}"
    );
}

#[test]
fn overlapping_recv_ranges_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1's two halo receives ([7,8) from rank 0 and [16,17) from rank
    // 2) are made to claim a common element: every global index has exactly
    // one home, so two sources for one element is a protocol error.
    let rank = 1;
    let first_low = set[rank].recv_records[0].low;
    set[rank].recv_records[1].low = first_low;
    set[rank].recv_records[1].high = first_low + 1;
    let violations = check_schedule_set(&set);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::OverlappingRecvRanges { rank: r, .. } if r == rank)),
        "expected OverlappingRecvRanges on rank {rank}, got:\n{violations:#?}"
    );
}

#[test]
fn references_outside_the_plan_are_rejected() {
    let (set, _) = planned_stencil();
    let dist = DimDist::block(N, P);
    // A body that suddenly reads 5 elements ahead was never planned for:
    // the stencil's schedule only fetched the ±1 halo.
    let violations = check_plan_refs(&set[1], dist.as_dyn(), |i, out| {
        stencil_refs(i, out);
        if i + 5 < N {
            out.push(i + 5);
        }
    });
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::UnresolvableRef { rank: 1, .. })),
        "expected UnresolvableRef on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn rank_divergent_collective_sequences_are_rejected() {
    let (_, mut traces) = planned_stencil();
    // Rank 2 swaps the order of its two reductions — the SPMD conformance
    // rule (every rank issues the same collectives in the same order) is
    // broken even though the *set* of calls matches.
    traces[2].reverse();
    let violations = check_collective_sequence(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::DivergentCollectives {
                rank: 2,
                position: 0,
                ..
            }
        )),
        "expected DivergentCollectives on rank 2, got:\n{violations:#?}"
    );

    // A rank issuing an *extra* trailing collective diverges too (the
    // classic "reduce inside a rank-conditional" bug).
    let (_, mut traces) = planned_stencil();
    let extra = traces[3][0];
    traces[3].push(extra);
    let violations = check_collective_sequence(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::DivergentCollectives {
                rank: 3,
                position: 2,
                reference: None,
                ..
            }
        )),
        "expected trailing DivergentCollectives on rank 3, got:\n{violations:#?}"
    );
}

#[test]
fn record_claiming_another_ranks_endpoint_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1's first receive record suddenly claims rank 2 as its
    // destination — a record stored on the wrong processor.
    set[1].recv_records[0].to_proc = 2;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::RecordRankMismatch {
                rank: 1,
                kind: RecordKind::Recv,
                ..
            }
        )),
        "expected RecordRankMismatch on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn self_message_records_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1 now claims to receive its own halo from itself: local data
    // never travels through the message layer.
    set[1].recv_records[0].from_proc = 1;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::SelfMessage {
                rank: 1,
                kind: RecordKind::Recv,
                ..
            }
        )),
        "expected SelfMessage on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn empty_range_records_are_rejected() {
    let (mut set, _) = planned_stencil();
    // A zero-length record describes no data; the planner never emits one.
    set[1].recv_records[0].high = set[1].recv_records[0].low;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::EmptyRecord {
                rank: 1,
                kind: RecordKind::Recv,
                ..
            }
        )),
        "expected EmptyRecord on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn unsorted_records_are_rejected() {
    let (mut set, _) = planned_stencil();
    // The executor unpacks receives in `(from_proc, low)` order; swapping
    // rank 1's two halo records breaks that contract.
    assert!(set[1].recv_records.len() >= 2);
    set[1].recv_records.swap(0, 1);
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::UnsortedRecords {
                rank: 1,
                kind: RecordKind::Recv,
                index: 1,
            }
        )),
        "expected UnsortedRecords on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn declared_buffer_length_mismatch_is_rejected() {
    let (mut set, _) = planned_stencil();
    // The declared communication-buffer length no longer matches the sum of
    // the record extents.
    set[1].recv_len += 1;
    let declared = set[1].recv_len;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::RecvLenMismatch { rank: 1, declared: d, actual } if d == declared && actual + 1 == d
        )),
        "expected RecvLenMismatch on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn record_ranges_absent_from_the_lookup_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Shift rank 1's first halo record to a global range the (immutable)
    // lookup table has never heard of: the executor's binary search would
    // miss at run time.  Length and buffer offset are preserved so only the
    // lookup invariant breaks within this schedule.
    let len = set[1].recv_records[0].len();
    set[1].recv_records[0].low = 25;
    set[1].recv_records[0].high = 25 + len;
    let violations = check_schedule(&set[1]);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::LookupMiss {
                rank: 1,
                global: 25
            }
        )),
        "expected LookupMiss on rank 1 global 25, got:\n{violations:#?}"
    );
}

#[test]
fn unsorted_iteration_lists_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Iteration lists are strictly ascending (the executor relies on it for
    // the owner-computes partition); swap two entries.
    assert!(set[1].local_iters.len() >= 2);
    set[1].local_iters.swap(0, 1);
    let violations = check_schedule(&set[1]);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::UnsortedIterations {
                rank: 1,
                list: "local",
                index: 1,
            }
        )),
        "expected UnsortedIterations on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn overlapping_iteration_lists_are_rejected() {
    let (mut set, _) = planned_stencil();
    // An iteration executed both as local and as nonlocal would run twice.
    let dup = set[1].local_iters[0];
    let pos = set[1].nonlocal_iters.partition_point(|&i| i < dup);
    set[1].nonlocal_iters.insert(pos, dup);
    let violations = check_schedule(&set[1]);
    assert!(
        violations.iter().any(
            |v| matches!(*v, Violation::OverlappingIterationLists { rank: 1, iter } if iter == dup)
        ),
        "expected OverlappingIterationLists on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn schedule_stored_under_the_wrong_rank_is_rejected() {
    let (mut set, _) = planned_stencil();
    // `set[r]` must be rank `r`'s schedule — an SPMD plan that lands in the
    // wrong slot corrupts every cross-rank check downstream.
    set[2].rank = 3;
    let violations = check_schedule_set(&set);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::ScheduleRankMismatch { index: 2, rank: 3 })),
        "expected ScheduleRankMismatch at index 2, got:\n{violations:#?}"
    );
}

#[test]
fn nonlocal_iteration_filed_as_local_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1's first nonlocal iteration (its lower boundary, which reads
    // the rank-0 halo) is misfiled into the local list: the executor would
    // run it before the halo arrives.
    let moved = set[1].nonlocal_iters.remove(0);
    let pos = set[1].local_iters.partition_point(|&i| i < moved);
    set[1].local_iters.insert(pos, moved);
    let dist = DimDist::block(N, P);
    let violations = check_plan_refs(&set[1], dist.as_dyn(), stencil_refs);
    assert!(
        violations.iter().any(
            |v| matches!(*v, Violation::LocalIterNonlocalRef { rank: 1, iter, .. } if iter == moved)
        ),
        "expected LocalIterNonlocalRef on rank 1 iteration {moved}, got:\n{violations:#?}"
    );
}

#[test]
fn unmatched_modelled_messages_are_rejected() {
    // A send nobody receives and a receive nobody sends, in the executor's
    // point-to-point deadlock model.
    let ops = vec![
        vec![ModelOp {
            kind: OpKind::Send,
            peer: 1,
            key: 0x7,
        }],
        vec![ModelOp {
            kind: OpKind::Recv,
            peer: 0,
            key: 0x9,
        }],
    ];
    let violations = check_deadlock_model(&ops, "audit");
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::UnmatchedMessage { from: 0, to: 1, label } if label.contains("never received")
        )),
        "expected the orphaned send, got:\n{violations:#?}"
    );
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::UnmatchedMessage { from: 0, to: 1, label } if label.contains("recv key")
        )),
        "expected the sourceless recv, got:\n{violations:#?}"
    );
}

#[test]
fn circular_blocking_receives_are_rejected() {
    // Both ranks block in a receive before posting their send — the classic
    // head-to-head deadlock.  Every operation sits on the cycle.
    let head_to_head = |peer: usize| {
        vec![
            ModelOp {
                kind: OpKind::Recv,
                peer,
                key: 0,
            },
            ModelOp {
                kind: OpKind::Send,
                peer,
                key: 0,
            },
        ]
    };
    let ops = vec![head_to_head(1), head_to_head(0)];
    let violations = check_deadlock_model(&ops, "audit");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::DeadlockCycle { events } if events.len() == 4)),
        "expected a 4-event DeadlockCycle, got:\n{violations:#?}"
    );
}

#[test]
fn sweep_tag_exhaustion_is_rejected() {
    // The realistic bound passes…
    assert_eq!(check_sweep_tag_wrap(1024), vec![]);
    // …but more concurrently un-retired sweeps than the executor window has
    // tags must alias: sweeps 0 and SPAN share a tag.
    let span = tags::SPAN as usize;
    let violations = check_sweep_tag_wrap(span + 1);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::SweepTagCollision { sweep_a: 0, sweep_b, .. } if sweep_b == span)),
        "expected SweepTagCollision between sweeps 0 and SPAN, got:\n{violations:#?}"
    );
}

/// Three variants guard constant spaces no schedule corruption can reach;
/// constructing them directly documents what each would report.
///
/// * `TagWindowOverlap`: the component windows are `const`s in
///   `kali_process::tags` whose overlap fails the build, so the runtime
///   mirror (`check_tag_windows`) can only ever return clean — asserted
///   here.
/// * `TagOutOfWindow`: executor tags are `BASE + (sweep mod SPAN)`,
///   congruence-bounded inside their window for every sweep index.
/// * `BracketingMismatch`: only a live backend reduction disagreeing with
///   the sequential replay produces one; `verify_all` runs that comparison
///   on both real backends every sweep.
#[test]
fn constant_space_violations_render_precisely() {
    assert_eq!(check_tag_windows(), vec![]);

    let v = Violation::TagWindowOverlap {
        a: "executor",
        b: "halo",
    };
    let s = v.to_string();
    assert!(s.contains("executor") && s.contains("halo") && s.contains("overlap"));

    let v = Violation::TagOutOfWindow {
        tag: 0x2a,
        window: "executor",
    };
    let s = v.to_string();
    assert!(s.contains("0x2a") && s.contains("executor"));

    let expected = BracketHash::combine(bracket_leaf(0), bracket_leaf(1));
    let found = bracket_leaf(1);
    assert_ne!(expected, found);
    let v = Violation::BracketingMismatch {
        nprocs: 2,
        rank: Some(1),
        expected,
        found,
    };
    let s = v.to_string();
    assert!(s.contains("P=2") && s.contains("rank 1"));
}

/// Every variant's name — an exhaustive match with **no wildcard**, so
/// adding a `Violation` variant without extending this audit fails to
/// compile.
fn variant_name(v: &Violation) -> &'static str {
    match v {
        Violation::RecordRankMismatch { .. } => "RecordRankMismatch",
        Violation::SelfMessage { .. } => "SelfMessage",
        Violation::EmptyRecord { .. } => "EmptyRecord",
        Violation::UnsortedRecords { .. } => "UnsortedRecords",
        Violation::OverlappingRecvRanges { .. } => "OverlappingRecvRanges",
        Violation::NonDenseRecvLayout { .. } => "NonDenseRecvLayout",
        Violation::RecvLenMismatch { .. } => "RecvLenMismatch",
        Violation::LookupMiss { .. } => "LookupMiss",
        Violation::UnsortedIterations { .. } => "UnsortedIterations",
        Violation::OverlappingIterationLists { .. } => "OverlappingIterationLists",
        Violation::ScheduleRankMismatch { .. } => "ScheduleRankMismatch",
        Violation::DanglingRecv { .. } => "DanglingRecv",
        Violation::DanglingSend { .. } => "DanglingSend",
        Violation::ByteCountMismatch { .. } => "ByteCountMismatch",
        Violation::LocalIterNonlocalRef { .. } => "LocalIterNonlocalRef",
        Violation::UnresolvableRef { .. } => "UnresolvableRef",
        Violation::UnmatchedMessage { .. } => "UnmatchedMessage",
        Violation::DeadlockCycle { .. } => "DeadlockCycle",
        Violation::DivergentCollectives { .. } => "DivergentCollectives",
        Violation::TagWindowOverlap { .. } => "TagWindowOverlap",
        Violation::TagOutOfWindow { .. } => "TagOutOfWindow",
        Violation::SweepTagCollision { .. } => "SweepTagCollision",
        Violation::BracketingMismatch { .. } => "BracketingMismatch",
        Violation::TagReuseRace { .. } => "TagReuseRace",
        Violation::MessageRace { .. } => "MessageRace",
        Violation::RecvBeforeSend { .. } => "RecvBeforeSend",
        Violation::ChunkSinkConflict { .. } => "ChunkSinkConflict",
    }
}

#[test]
fn every_violation_variant_is_constructible_and_renders() {
    let rec = RangeRecord {
        from_proc: 0,
        to_proc: 1,
        low: 4,
        high: 8,
        buffer: 0,
    };
    let call = CollectiveCall {
        op: "sum-f64",
        acc_bytes: 8,
    };
    let all: Vec<Violation> = vec![
        Violation::RecordRankMismatch {
            rank: 2,
            kind: RecordKind::Recv,
            record: rec,
        },
        Violation::SelfMessage {
            rank: 1,
            kind: RecordKind::Send,
            record: rec,
        },
        Violation::EmptyRecord {
            rank: 1,
            kind: RecordKind::Recv,
            record: rec,
        },
        Violation::UnsortedRecords {
            rank: 1,
            kind: RecordKind::Send,
            index: 2,
        },
        Violation::OverlappingRecvRanges {
            rank: 1,
            first: rec,
            second: rec,
        },
        Violation::NonDenseRecvLayout {
            rank: 1,
            record: rec,
            expected_buffer: 3,
        },
        Violation::RecvLenMismatch {
            rank: 1,
            declared: 5,
            actual: 4,
        },
        Violation::LookupMiss { rank: 1, global: 7 },
        Violation::UnsortedIterations {
            rank: 1,
            list: "local",
            index: 1,
        },
        Violation::OverlappingIterationLists { rank: 1, iter: 9 },
        Violation::ScheduleRankMismatch { index: 2, rank: 3 },
        Violation::DanglingRecv {
            rank: 1,
            record: rec,
        },
        Violation::DanglingSend {
            rank: 0,
            record: rec,
        },
        Violation::ByteCountMismatch {
            from: 0,
            to: 1,
            low: 4,
            recv_high: 8,
            send_high: 9,
        },
        Violation::LocalIterNonlocalRef {
            rank: 1,
            iter: 8,
            global: 7,
        },
        Violation::UnresolvableRef {
            rank: 1,
            iter: 8,
            global: 13,
        },
        Violation::UnmatchedMessage {
            from: 0,
            to: 1,
            label: "audit".to_string(),
        },
        Violation::DeadlockCycle {
            events: vec!["rank 0 recv from 1".to_string()],
        },
        Violation::DivergentCollectives {
            rank: 2,
            position: 0,
            reference: Some(call),
            found: None,
        },
        Violation::TagWindowOverlap {
            a: "executor",
            b: "halo",
        },
        Violation::TagOutOfWindow {
            tag: 0x2a,
            window: "executor",
        },
        Violation::SweepTagCollision {
            sweep_a: 0,
            sweep_b: 1,
            tag: 0x100,
        },
        Violation::BracketingMismatch {
            nprocs: 2,
            rank: None,
            expected: 1,
            found: 2,
        },
        Violation::TagReuseRace {
            src: 0,
            dst: 1,
            tag: 0x100,
            first_seq: 1,
            second_seq: 2,
        },
        Violation::MessageRace {
            src: 0,
            dst: 1,
            tag: 0x100,
            first_seq: 1,
            second_seq: 2,
        },
        Violation::RecvBeforeSend {
            events: vec!["rank 0 recv tag 0x100 from 1".to_string()],
        },
        Violation::ChunkSinkConflict {
            rank: 0,
            sweep: 3,
            first: (0, 4),
            second: (2, 6),
        },
    ];
    let mut names: Vec<&str> = all.iter().map(variant_name).collect();
    for (v, name) in all.iter().zip(&names) {
        assert!(!v.to_string().is_empty(), "{name} must render");
    }
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        27,
        "every Violation variant must appear exactly once in the audit"
    );
}
