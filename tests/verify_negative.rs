//! Negative verification: `kali::verify` rejects corrupted plans precisely.
//!
//! The positive direction is covered by `verify_all` (every solver/bench
//! configuration plans clean on both backends).  This suite establishes the
//! other half of the static-analysis contract: when a planned communication
//! schedule **is** defective, the checker reports the defect as the
//! *specific* [`Violation`] variant the corruption deserves — not a generic
//! failure, and not a pass.
//!
//! Each test starts from a genuinely planned schedule set (a 3-point
//! Jacobi-style stencil planned by a real [`Session`] on the dmsim
//! machine, which `check_schedule_set` accepts violation-free), hand-corrupts
//! one invariant, and asserts the matching variant fires:
//!
//! | corruption                              | expected violation          |
//! |-----------------------------------------|-----------------------------|
//! | receive record with no matching send    | `DanglingRecv`              |
//! | send record with no matching receive    | `DanglingSend`              |
//! | matched records with different extents  | `ByteCountMismatch`         |
//! | receive buffer offsets not dense        | `NonDenseRecvLayout`        |
//! | two receive records covering one index  | `OverlappingRecvRanges`     |
//! | body reference the plan never fetched   | `UnresolvableRef`           |
//! | rank-divergent collective call sequence | `DivergentCollectives`      |

use kali_repro::distrib::DimDist;
use kali_repro::dmsim::{CostModel, Machine};
use kali_repro::kali::verify::check_collective_sequence;
use kali_repro::kali::{
    check_plan_refs, check_schedule_set, AffineMap, CollectiveCall, CommSchedule, Norm2, Reduce,
    Session, Span, Sum, Violation,
};

const N: usize = 32;
const P: usize = 4;

/// Plan the 3-point stencil `A[i-1], A[i], A[i+1]` over the interior
/// iterations `1..N-1` of a block distribution on every rank of a
/// `P`-process dmsim machine, returning the per-rank schedules (cloned out
/// of the session cache so tests can corrupt them) and each rank's
/// collective-call trace after two reductions.
fn planned_stencil() -> (Vec<CommSchedule>, Vec<Vec<CollectiveCall>>) {
    let results = Machine::new(P, CostModel::ideal()).run(|proc| {
        let dist = DimDist::block(N, P);
        let mut session = Session::new();
        let loop_ = session.loop_over(Span::new(1, N - 1), dist.clone());
        let refs = [
            AffineMap::shift(-1),
            AffineMap::identity(),
            AffineMap::shift(1),
        ];
        let schedule = session.plan(proc, &loop_, &dist, &refs);
        let local: Vec<f64> = dist
            .local_set(proc.rank())
            .iter()
            .map(|g| g as f64 + 0.5)
            .collect();
        // Two collectives so the trace has a sequence worth diverging.
        let _ = session.execute_reduce(
            proc,
            &loop_,
            &schedule,
            &dist,
            &local,
            Reduce::<Sum<f64>>::new(),
            |i, fetch| fetch.fetch(i),
        );
        let _ = session.execute_reduce(
            proc,
            &loop_,
            &schedule,
            &dist,
            &local,
            Reduce::<Norm2>::new(),
            |i, fetch| fetch.fetch(i),
        );
        ((*schedule).clone(), session.collective_trace().to_vec())
    });
    results.into_iter().unzip()
}

/// The stencil's reference pattern, as the executor body would issue it.
fn stencil_refs(i: usize, out: &mut Vec<usize>) {
    if i > 0 {
        out.push(i - 1);
    }
    out.push(i);
    if i + 1 < N {
        out.push(i + 1);
    }
}

#[test]
fn pristine_plans_pass_all_checks() {
    let (set, traces) = planned_stencil();
    assert_eq!(check_schedule_set(&set), vec![]);
    let dist = DimDist::block(N, P);
    for s in &set {
        assert_eq!(check_plan_refs(s, dist.as_dyn(), stencil_refs), vec![]);
    }
    assert_eq!(check_collective_sequence(&traces), vec![]);
    // Every rank traced exactly the two reductions, in order.
    for trace in &traces {
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].op, "sum-f64");
        assert_eq!(trace[1].op, "norm2");
    }
}

#[test]
fn dangling_recv_record_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1 now claims it will also receive [20,23) from rank 3 — but rank
    // 3 plans no such send.
    let buffer = set[1].recv_len;
    set[1].recv_records.push(kali_repro::kali::RangeRecord {
        from_proc: 3,
        to_proc: 1,
        low: 20,
        high: 23,
        buffer,
    });
    set[1].recv_len += 3;
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::DanglingRecv { rank: 1, record }
                if record.from_proc == 3 && record.low == 20
        )),
        "expected DanglingRecv, got:\n{violations:#?}"
    );
}

#[test]
fn dangling_send_record_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 2 forgets it was going to receive from rank 1; rank 1's planned
    // send to rank 2 is now unexpected on arrival.
    set[2].recv_records.retain(|r| r.from_proc != 1);
    set[2].recv_len = set[2].recv_records.iter().map(|r| r.len()).sum();
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::DanglingSend { rank: 1, record } if record.to_proc == 2
        )),
        "expected DanglingSend from rank 1 to rank 2, got:\n{violations:#?}"
    );
}

#[test]
fn mismatched_byte_counts_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 0's send to rank 1 grows by one element; the matched receive on
    // rank 1 still expects the original extent, so the two sides would
    // exchange different byte counts.
    let record = set[0]
        .send_records
        .iter_mut()
        .find(|r| r.to_proc == 1)
        .expect("rank 0 sends its high boundary to rank 1");
    record.high += 1;
    let (low, send_high) = (record.low, record.high);
    let violations = check_schedule_set(&set);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::ByteCountMismatch { from: 0, to: 1, low: l, send_high: sh, .. }
                if l == low && sh == send_high
        )),
        "expected ByteCountMismatch on the 0->1 message, got:\n{violations:#?}"
    );
}

#[test]
fn non_dense_recv_layout_is_rejected() {
    let (mut set, _) = planned_stencil();
    // Interior ranks receive from both neighbours; shifting the second
    // record's buffer offset leaves a hole in the packed receive buffer.
    let rank = 1;
    assert!(set[rank].recv_records.len() >= 2);
    set[rank].recv_records[1].buffer += 2;
    let violations = check_schedule_set(&set);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::NonDenseRecvLayout { rank: r, .. } if r == rank)),
        "expected NonDenseRecvLayout on rank {rank}, got:\n{violations:#?}"
    );
}

#[test]
fn overlapping_recv_ranges_are_rejected() {
    let (mut set, _) = planned_stencil();
    // Rank 1's two halo receives ([7,8) from rank 0 and [16,17) from rank
    // 2) are made to claim a common element: every global index has exactly
    // one home, so two sources for one element is a protocol error.
    let rank = 1;
    let first_low = set[rank].recv_records[0].low;
    set[rank].recv_records[1].low = first_low;
    set[rank].recv_records[1].high = first_low + 1;
    let violations = check_schedule_set(&set);
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::OverlappingRecvRanges { rank: r, .. } if r == rank)),
        "expected OverlappingRecvRanges on rank {rank}, got:\n{violations:#?}"
    );
}

#[test]
fn references_outside_the_plan_are_rejected() {
    let (set, _) = planned_stencil();
    let dist = DimDist::block(N, P);
    // A body that suddenly reads 5 elements ahead was never planned for:
    // the stencil's schedule only fetched the ±1 halo.
    let violations = check_plan_refs(&set[1], dist.as_dyn(), |i, out| {
        stencil_refs(i, out);
        if i + 5 < N {
            out.push(i + 5);
        }
    });
    assert!(
        violations
            .iter()
            .any(|v| matches!(*v, Violation::UnresolvableRef { rank: 1, .. })),
        "expected UnresolvableRef on rank 1, got:\n{violations:#?}"
    );
}

#[test]
fn rank_divergent_collective_sequences_are_rejected() {
    let (_, mut traces) = planned_stencil();
    // Rank 2 swaps the order of its two reductions — the SPMD conformance
    // rule (every rank issues the same collectives in the same order) is
    // broken even though the *set* of calls matches.
    traces[2].reverse();
    let violations = check_collective_sequence(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::DivergentCollectives {
                rank: 2,
                position: 0,
                ..
            }
        )),
        "expected DivergentCollectives on rank 2, got:\n{violations:#?}"
    );

    // A rank issuing an *extra* trailing collective diverges too (the
    // classic "reduce inside a rank-conditional" bug).
    let (_, mut traces) = planned_stencil();
    let extra = traces[3][0];
    traces[3].push(extra);
    let violations = check_collective_sequence(&traces);
    assert!(
        violations.iter().any(|v| matches!(
            *v,
            Violation::DivergentCollectives {
                rank: 3,
                position: 2,
                reference: None,
                ..
            }
        )),
        "expected trailing DivergentCollectives on rank 3, got:\n{violations:#?}"
    );
}
