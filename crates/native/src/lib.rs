//! # kali-native — a native threaded backend for the Kali runtime
//!
//! Where `dmsim` *simulates* a distributed-memory machine (logical clocks,
//! calibrated cost models, deterministic timings), this crate *is* one, at
//! the scale of a single host: a [`NativeMachine`] runs one OS thread per
//! SPMD process, and a [`NativeProc`] exchanges messages over unbounded
//! channels.  There are no clocks and no cost charging — the
//! [`Process`](kali_process::Process) cost hooks stay at their no-op
//! defaults — so a Jacobi sweep runs at whatever speed the hardware allows.
//!
//! ## Determinism
//!
//! Message *contents* and every collective result are deterministic:
//! receives match on `(source, tag)`, collectives merge contributions in
//! rank order, and the runtime layer above never depends on arrival order.
//! Running the same program on `dmsim` and on this backend therefore
//! produces identical (bit-for-bit) array contents; the repository-level
//! `backend_equivalence` test holds the two to that.
//!
//! ## Example
//!
//! ```
//! use kali_native::NativeMachine;
//! use kali_process::Process;
//!
//! let machine = NativeMachine::new(4);
//! let results = machine.run(|proc| {
//!     let right = (proc.rank() + 1) % proc.nprocs();
//!     let left = (proc.rank() + proc.nprocs() - 1) % proc.nprocs();
//!     proc.send(right, 7, proc.rank() as u64);
//!     let v: u64 = proc.recv(left, 7);
//!     v
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

#![forbid(unsafe_code)]

pub mod engine;

pub use engine::{NativeMachine, NativeProc};
