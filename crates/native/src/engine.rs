//! The native SPMD engine: threads, channels, and the [`Process`] impl.
//!
//! The engine mirrors `dmsim`'s shape — every process owns the sending
//! halves of all channels and the receiving half of its own, with a pending
//! buffer for out-of-order arrivals — minus everything related to simulated
//! time.  Payloads are type-erased boxes, so a program can exchange any
//! `Send + 'static` value; a type mismatch between a send and the matching
//! receive panics with the offending ranks and tag, exactly like an MPI
//! type error would be fatal.

use std::any::Any;
use std::collections::{HashMap, VecDeque};

use crossbeam::channel::{unbounded, Receiver, Sender};
use kali_process::trace::{Event, EventKind, TraceRecorder};
use kali_process::{tags, Counters, Process, Tag};

/// Tag of the poison packet a panicking worker broadcasts so that peers
/// blocked in `recv` fail fast instead of deadlocking the scoped join.
/// `u64::MAX` is unreachable by any real tag: user/executor/redistribute
/// tags live below bit 63, and collective tags are `2^63 | seq` with
/// `seq < 2^32` plus a stage offset in bits 32..40.
const POISON_TAG: Tag = Tag::MAX;

/// Tag of a buffer-return packet: after [`Process::recv_packed_append`]
/// copies a packed message out, the spent `Vec` travels back to its sender
/// under this tag and lands in the sender's buffer pool, so steady-state
/// packed messaging recycles allocations instead of growing the heap.
/// Like [`POISON_TAG`], unreachable by any real tag (see above).
const RETURN_TAG: Tag = Tag::MAX - 1;

/// Upper bound on pooled send buffers retained per process; returns beyond
/// the cap are simply dropped (the pool is an optimisation, not a ledger).
const POOL_CAP: usize = 64;

/// One `(src, tag)` channel's parked out-of-order arrivals, each payload
/// paired with its send sequence number.
type ParkedQueue = VecDeque<(u64, Box<dyn Any + Send>)>;

/// A message in flight between two native processes.
#[derive(Debug)]
struct Packet {
    src: usize,
    tag: Tag,
    /// Per-`(src, dst)` send sequence number.  Control packets
    /// ([`POISON_TAG`], [`RETURN_TAG`]) carry 0 — they never enter the
    /// pending buffer, so the FIFO debug-assertions never see them.
    seq: u64,
    payload: Box<dyn Any + Send>,
}

/// A native shared-nothing machine: `nprocs` SPMD processes, each on its
/// own OS thread, connected by unbounded channels.
#[derive(Debug, Clone)]
pub struct NativeMachine {
    nprocs: usize,
}

impl NativeMachine {
    /// A machine with `nprocs` processes.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0, "a machine needs at least one process");
        NativeMachine { nprocs }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Run an SPMD program: `f` is executed once per process, in parallel,
    /// and the per-process return values are collected in rank order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut NativeProc) -> R + Sync,
    {
        let p = self.nprocs;
        let mut senders: Vec<Sender<Packet>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Packet>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let mut slots: Vec<Option<R>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.iter_mut().enumerate() {
                let rx = rx.take().expect("receiver taken twice");
                let mut senders = senders.clone();
                // Self-sends bypass the channel (they go to the pending
                // buffer), so replace this rank's own sender with a
                // disconnected one: a live clone of one's own sender would
                // keep the channel from ever disconnecting, making the
                // "all peers hung up" fail-fast path unreachable.
                senders[rank] = unbounded().0;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut proc = NativeProc {
                        rank,
                        nprocs: p,
                        senders,
                        receiver: rx,
                        pending: HashMap::new(),
                        pending_len: 0,
                        queue_peak: 0,
                        send_seqs: vec![0; p],
                        recv_seqs: HashMap::new(),
                        pool: Vec::new(),
                        coll_seq: 0,
                        recorder: TraceRecorder::default(),
                    };
                    // Catch panics so peers blocked in `recv` can be woken
                    // with a poison packet — otherwise the scoped join
                    // would wait forever on them and turn a worker panic
                    // into a deadlock.
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut proc))) {
                        Ok(result) => (rank, result),
                        Err(cause) => {
                            proc.broadcast_poison();
                            std::panic::resume_unwind(cause);
                        }
                    }
                }));
            }
            // Release the parent's sender clones: once the other workers
            // exit, a receiver blocked on a message that will never come
            // sees a disconnect and panics instead of hanging the join.
            drop(senders);
            for h in handles {
                let (rank, result) = h.join().expect("SPMD worker panicked");
                slots[rank] = Some(result);
            }
        });

        slots
            .into_iter()
            .map(|slot| slot.expect("missing worker result"))
            .collect()
    }
}

/// Per-process handle passed to the SPMD program — the native
/// implementation of [`Process`].
pub struct NativeProc {
    rank: usize,
    nprocs: usize,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    /// Out-of-order arrivals, indexed by `(src, tag)` with FIFO order
    /// preserved per key.  A receive probes its key in O(1) instead of
    /// scanning every buffered packet — with many outstanding tags (one per
    /// in-flight sweep and collective) the old linear scan made every
    /// buffered receive O(pending).  Each parked payload keeps its send
    /// sequence number so debug builds can assert per-channel FIFO.
    pending: HashMap<(usize, Tag), ParkedQueue>,
    /// Payloads currently parked across every `pending` queue.
    pending_len: usize,
    /// High-water mark of `pending_len` — surfaced through
    /// [`Process::counters`] as `queue_peak`.
    queue_peak: u64,
    /// Next per-destination send sequence number.
    send_seqs: Vec<u64>,
    /// Debug-build FIFO witness: the last delivered sequence number per
    /// `(src, tag)` channel.  Only populated under `debug_assertions`.
    recv_seqs: HashMap<(usize, Tag), u64>,
    /// Recycled packed send buffers, returned by peers via [`RETURN_TAG`]
    /// packets; drawn from by [`Process::acquire_send_buffer`].
    pool: Vec<Box<dyn Any + Send>>,
    /// Monotonic counter deriving unique tags for collective operations
    /// (all processes call collectives in the same order in an SPMD
    /// program, so the counters stay in lock step).
    coll_seq: u64,
    /// Opt-in execution-trace recorder, driven through the [`Process`]
    /// trace hooks.
    recorder: TraceRecorder,
}

impl NativeProc {
    fn send_packet<T: Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        let seq = self.send_seqs[dst];
        self.send_seqs[dst] += 1;
        self.recorder
            .record(self.rank, EventKind::Send { dst, tag });
        if dst == self.rank {
            // Self-sends bypass the channel and go straight to the pending
            // buffer.
            self.park_pending(self.rank, tag, seq, Box::new(value));
        } else {
            self.senders[dst]
                .send(Packet {
                    src: self.rank,
                    tag,
                    seq,
                    payload: Box::new(value),
                })
                .expect("destination process hung up");
        }
    }

    /// Park an out-of-order arrival in the pending buffer, debug-asserting
    /// that same-`(src, tag)` payloads queue in send order (the channels are
    /// FIFO per peer, so a violation here means the engine reordered them).
    fn park_pending(&mut self, src: usize, tag: Tag, seq: u64, payload: Box<dyn Any + Send>) {
        let queue = self.pending.entry((src, tag)).or_default();
        if cfg!(debug_assertions) {
            if let Some(&(back, _)) = queue.back() {
                debug_assert!(
                    seq > back,
                    "pending queue ({src}, {tag:#x}) reordered: seq {seq} after {back}"
                );
            }
        }
        queue.push_back((seq, payload));
        self.pending_len += 1;
        self.queue_peak = self.queue_peak.max(self.pending_len as u64);
    }

    /// Pull one buffered payload for `(src, tag)`, dropping the queue when
    /// it empties — tags are mostly unique per sweep, so an emptied queue
    /// would otherwise linger in the map forever.
    fn take_pending(&mut self, src: usize, tag: Tag) -> Option<(u64, Box<dyn Any + Send>)> {
        let queue = self.pending.get_mut(&(src, tag))?;
        let payload = queue.pop_front();
        if queue.is_empty() {
            self.pending.remove(&(src, tag));
        }
        if payload.is_some() {
            self.pending_len -= 1;
        }
        payload
    }

    /// Debug-build FIFO witness: every delivery on a `(src, tag)` channel
    /// must carry a strictly larger send sequence number than the previous
    /// one (strictly increasing, not consecutive — sequence numbers are
    /// per-destination across all tags).
    fn note_delivery(&mut self, src: usize, tag: Tag, seq: u64) {
        if cfg!(debug_assertions) {
            if let Some(&prev) = self.recv_seqs.get(&(src, tag)) {
                debug_assert!(
                    seq > prev,
                    "channel ({src}, {tag:#x}) delivered seq {seq} after {prev}: not FIFO"
                );
            }
            self.recv_seqs.insert((src, tag), seq);
        }
    }

    /// Park a returned send buffer in the pool (bounded by [`POOL_CAP`]).
    fn stash_returned(&mut self, buffer: Box<dyn Any + Send>) {
        if self.pool.len() < POOL_CAP {
            self.pool.push(buffer);
        }
    }

    /// Drain everything currently sitting in the channel without blocking:
    /// returned buffers go to the pool, regular packets to the pending
    /// buffer.  Called before handing out a send buffer so returns that
    /// already arrived get recycled.
    fn drain_incoming(&mut self) {
        while let Ok(packet) = self.receiver.try_recv() {
            if packet.tag == POISON_TAG {
                panic!("peer process {} panicked mid-run", packet.src);
            }
            if packet.tag == RETURN_TAG {
                self.stash_returned(packet.payload);
            } else {
                self.park_pending(packet.src, packet.tag, packet.seq, packet.payload);
            }
        }
    }

    fn recv_packet<T: 'static>(&mut self, src: usize, tag: Tag) -> T {
        let (seq, payload) = match self.take_pending(src, tag) {
            Some(entry) => entry,
            None => loop {
                let packet = self
                    .receiver
                    .recv()
                    .expect("all peer processes hung up while waiting for a message");
                if packet.tag == POISON_TAG {
                    panic!("peer process {} panicked mid-run", packet.src);
                }
                if packet.tag == RETURN_TAG {
                    self.stash_returned(packet.payload);
                    continue;
                }
                if packet.tag == tag && packet.src == src {
                    break (packet.seq, packet.payload);
                }
                self.park_pending(packet.src, packet.tag, packet.seq, packet.payload);
            },
        };
        self.note_delivery(src, tag, seq);
        self.recorder
            .record(self.rank, EventKind::Recv { src, tag });
        *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "message payload type mismatch: src={} dst={} tag={} expected {}",
                src,
                self.rank,
                tag,
                std::any::type_name::<T>()
            )
        })
    }

    fn next_collective_tag(&mut self) -> Tag {
        let tag = tags::collective_tag(self.coll_seq);
        self.coll_seq += 1;
        tag
    }

    /// Best-effort poison broadcast on panic: wake every peer that may be
    /// blocked in `recv`.  Send errors are ignored — a peer that already
    /// exited has dropped its receiver and needs no waking.
    fn broadcast_poison(&self) {
        for dst in 0..self.nprocs {
            if dst != self.rank {
                let _ = self.senders[dst].send(Packet {
                    src: self.rank,
                    tag: POISON_TAG,
                    seq: 0,
                    payload: Box::new(()),
                });
            }
        }
    }
}

impl Process for NativeProc {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nprocs(&self) -> usize {
        self.nprocs
    }

    fn send<T: Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        self.send_packet(dst, tag, value);
    }

    fn send_vec<T: Send + 'static>(&mut self, dst: usize, tag: Tag, values: Vec<T>) {
        self.send_packet(dst, tag, values);
    }

    fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        self.recv_packet(src, tag)
    }

    /// Dissemination barrier: `⌈log2 P⌉` rounds of shifted sends.
    fn barrier(&mut self) {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "barrier" });
        let n = self.nprocs;
        if n == 1 {
            return;
        }
        let tag = self.next_collective_tag();
        let me = self.rank;
        let mut k = 1usize;
        while k < n {
            let to = (me + k) % n;
            let from = (me + n - k) % n;
            let round_tag = tag + ((k as u64) << 32);
            self.send_packet(to, round_tag, 0u8);
            let _: u8 = self.recv_packet(from, round_tag);
            k <<= 1;
        }
    }

    /// Direct personalised all-to-all: one message (possibly empty) to every
    /// peer, received and concatenated in rank order, own items in rank
    /// position — a deterministic item order regardless of thread timing.
    fn exchange<T: Send + 'static>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "exchange" });
        let n = self.nprocs;
        let me = self.rank;
        let tag = self.next_collective_tag();
        let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (dst, item) in items {
            assert!(dst < n, "routed item addressed to rank {dst} of {n}");
            buckets[dst].push(item);
        }
        let mut mine = Some(std::mem::take(&mut buckets[me]));
        for (dst, bucket) in buckets.into_iter().enumerate() {
            if dst != me {
                self.send_packet(dst, tag, bucket);
            }
        }
        // Rank-ordered merge (own contribution spliced in at `me`).
        let mut out: Vec<T> = Vec::new();
        for src in 0..n {
            if src == me {
                out.extend(mine.take().expect("own bucket consumed twice"));
            } else {
                let incoming: Vec<T> = self.recv_packet(src, tag);
                out.extend(incoming);
            }
        }
        out
    }

    fn allgather<T: Clone + Send + 'static>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
        self.recorder
            .record(self.rank, EventKind::Collective { op: "allgather" });
        let n = self.nprocs;
        let me = self.rank;
        let tag = self.next_collective_tag();
        // Clone for every peer except the last, then *move* the original
        // into the last send — n−1 clones instead of n.  The copy kept for
        // our own result slot is split off before the move.
        let last_peer = (0..n).rev().find(|&d| d != me);
        let mut mine = Some(match last_peer {
            Some(last) => {
                let own = items.clone();
                for dst in 0..n {
                    if dst != me && dst != last {
                        self.send_packet(dst, tag, items.clone());
                    }
                }
                self.send_packet(last, tag, items);
                own
            }
            // Single-process run: nobody to send to.
            None => items,
        });
        (0..n)
            .map(|src| {
                if src == me {
                    mine.take().expect("own contribution consumed twice")
                } else {
                    self.recv_packet(src, tag)
                }
            })
            .collect()
    }

    /// Hand out a recycled packed buffer when one of the right element type
    /// is in the pool, avoiding an allocation per `(dest, sweep)` message.
    fn acquire_send_buffer<T: Send + 'static>(&mut self, capacity: usize) -> Vec<T> {
        self.drain_incoming();
        if let Some(pos) = self.pool.iter().position(|b| b.is::<Vec<T>>()) {
            let boxed = self.pool.swap_remove(pos);
            let mut buf = *boxed
                .downcast::<Vec<T>>()
                .expect("pool slot type re-checked by position()");
            buf.clear();
            buf.reserve(capacity);
            buf
        } else {
            Vec::with_capacity(capacity)
        }
    }

    /// Zero-copy packed receive: append the incoming payload to `out`, then
    /// hand the spent buffer back to the sender over the return channel so
    /// its allocation is reused for the next sweep.
    fn recv_packed_append<T: Copy + Send + 'static>(
        &mut self,
        src: usize,
        tag: Tag,
        out: &mut Vec<T>,
    ) -> usize {
        let mut values: Vec<T> = self.recv_packet(src, tag);
        let got = values.len();
        out.extend_from_slice(&values);
        values.clear();
        if src == self.rank {
            self.stash_returned(Box::new(values));
        } else {
            // Best effort: the peer may already have exited, in which case
            // the buffer is simply dropped.
            let _ = self.senders[src].send(Packet {
                src: self.rank,
                tag: RETURN_TAG,
                seq: 0,
                payload: Box::new(values),
            });
        }
        got
    }

    // `allreduce` / `allreduce_sum_f64` use the trait's provided
    // binomial-tree implementation over this backend's `send`/`recv`, so
    // the bracketing (and the bits) match dmsim and the sequential replay.

    /// The native backend meters nothing except the pending-queue
    /// high-water mark, which costs one comparison per parked packet.
    fn counters(&self) -> Counters {
        Counters {
            queue_peak: self.queue_peak,
            ..Counters::default()
        }
    }

    fn trace_start(&mut self) {
        self.recorder.start();
    }

    fn trace_take(&mut self) -> Vec<Event> {
        self.recorder.take()
    }

    fn trace_active(&self) -> bool {
        self.recorder.is_active()
    }

    fn trace_emit(&mut self, kind: EventKind) {
        self.recorder.record(self.rank, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs() {
        let m = NativeMachine::new(1);
        let r = m.run(|p| p.rank() * 10 + p.nprocs());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn ring_shift_delivers_values_in_rank_order() {
        let m = NativeMachine::new(8);
        let r = m.run(|p| {
            let right = (p.rank() + 1) % p.nprocs();
            let left = (p.rank() + p.nprocs() - 1) % p.nprocs();
            p.send(right, 1, p.rank() as u64);
            let v: u64 = p.recv(left, 1);
            v
        });
        assert_eq!(r, vec![7, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn self_send_is_allowed() {
        let m = NativeMachine::new(2);
        let r = m.run(|p| {
            p.send(p.rank(), 9, 123u32);
            let v: u32 = p.recv(p.rank(), 9);
            v
        });
        assert_eq!(r, vec![123, 123]);
    }

    #[test]
    fn tags_demultiplex_messages() {
        let m = NativeMachine::new(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.send(1, 10, 100u64);
                p.send(1, 20, 200u64);
                0
            } else {
                // Receive out of order: tag 20 first even though sent second.
                let b: u64 = p.recv(0, 20);
                let a: u64 = p.recv(0, 10);
                (b - a) as usize
            }
        });
        assert_eq!(r[1], 100);
    }

    #[test]
    fn barrier_completes_on_various_sizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            let m = NativeMachine::new(n);
            let r = m.run(|p| {
                p.barrier();
                p.barrier();
                p.rank()
            });
            assert_eq!(r.len(), n);
        }
    }

    #[test]
    fn exchange_delivers_all_items_in_rank_order() {
        for n in [1usize, 2, 4, 6, 8] {
            let m = NativeMachine::new(n);
            let r = m.run(|p| {
                let items: Vec<(usize, (usize, usize))> =
                    (0..p.nprocs()).map(|dst| (dst, (p.rank(), dst))).collect();
                p.exchange(items)
            });
            for (rank, got) in r.into_iter().enumerate() {
                // Rank-ordered merge: items arrive sorted by source rank.
                let expected: Vec<(usize, usize)> = (0..n).map(|src| (src, rank)).collect();
                assert_eq!(got, expected, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        for n in [1, 3, 4, 8] {
            let m = NativeMachine::new(n);
            let r = m.run(|p| p.allgather(vec![p.rank() as u64 * 10]));
            let expected: Vec<Vec<u64>> = (0..n as u64).map(|r| vec![r * 10]).collect();
            for v in r {
                assert_eq!(v, expected);
            }
        }
    }

    #[test]
    fn allreduce_sum_is_identical_on_all_ranks() {
        let m = NativeMachine::new(16);
        let r = m.run(|p| p.allreduce_sum_f64(0.1 * (p.rank() as f64 + 1.0)));
        for w in r.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits(), "bitwise identical sums");
        }
        assert!((r[0] - 13.6).abs() < 1e-9);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let run = || {
            let m = NativeMachine::new(8);
            m.run(|p| {
                let items: Vec<(usize, u64)> = (0..p.nprocs())
                    .map(|d| (d, (p.rank() * 100 + d) as u64))
                    .collect();
                let exchanged = p.exchange(items);
                let sum = p.allreduce_sum_f64(exchanged.iter().sum::<u64>() as f64);
                (exchanged, sum)
            })
        };
        assert_eq!(run(), run(), "results must not depend on thread timing");
    }

    #[test]
    fn buffered_same_tag_messages_stay_fifo() {
        // Three same-(src, tag) packets are parked in the pending buffer by
        // an out-of-order receive; they must still come out in send order
        // (a swap_remove-based buffer would return 1, 3, 2).
        let m = NativeMachine::new(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                for v in [1u64, 2, 3] {
                    p.send(1, 5, v);
                }
                p.send(1, 6, 99u64);
                Vec::new()
            } else {
                let _: u64 = p.recv(0, 6); // buffers the three tag-5 packets
                (0..3).map(|_| p.recv::<u64>(0, 5)).collect()
            }
        });
        assert_eq!(r[1], vec![1, 2, 3], "same-(src, tag) delivery must be FIFO");
    }

    #[test]
    fn many_outstanding_out_of_order_tags_resolve_correctly() {
        // 300 tags, two same-tag packets each, received in reverse tag
        // order: the first receive parks 599 packets in the pending buffer.
        // Exercises the (src, tag)-keyed index — with the old linear scan
        // this was O(pending) per receive — and per-key FIFO under load.
        const TAGS: u64 = 300;
        let m = NativeMachine::new(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                for t in 0..TAGS {
                    p.send(1, t, (t, 0u64));
                    p.send(1, t, (t, 1u64));
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for t in (0..TAGS).rev() {
                    let first: (u64, u64) = p.recv(0, t);
                    let second: (u64, u64) = p.recv(0, t);
                    assert_eq!(first, (t, 0), "per-tag FIFO: first packet of tag {t}");
                    assert_eq!(second, (t, 1), "per-tag FIFO: second packet of tag {t}");
                    got.push(first.0);
                }
                got
            }
        });
        let expected: Vec<u64> = (0..TAGS).rev().collect();
        assert_eq!(r[1], expected);
    }

    #[test]
    fn packed_send_buffers_recycle_through_the_return_channel() {
        // A packed send's buffer must come home: rank 0 sends a packed
        // message, rank 1 copies it out and returns the spent Vec, and rank
        // 0's next acquire_send_buffer hands back the *same allocation*
        // (witnessed by pointer equality).
        let m = NativeMachine::new(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                let mut buf: Vec<u64> = p.acquire_send_buffer(32);
                buf.extend(0..32u64);
                let first_ptr = buf.as_ptr() as usize;
                p.send_packed(1, 7, buf);
                // The dissemination barrier completes only after rank 1 has
                // received and returned the buffer; channels are FIFO per
                // peer, so the return packet precedes rank 1's barrier
                // packet and is parked in the pool on the way.
                p.barrier();
                let again: Vec<u64> = p.acquire_send_buffer(32);
                (first_ptr, again.as_ptr() as usize, again.capacity())
            } else {
                let mut out: Vec<u64> = Vec::new();
                let got = p.recv_packed_append(0, 7, &mut out);
                assert_eq!(got, 32);
                assert_eq!(out, (0..32u64).collect::<Vec<_>>());
                p.barrier();
                (0, 0, 0)
            }
        });
        let (first, second, cap) = r[0];
        assert_eq!(first, second, "recycled buffer must reuse the allocation");
        assert!(cap >= 32);
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn mismatched_receive_fails_fast_when_peers_exit() {
        // Rank 1 waits for a message rank 0 never sends.  Once rank 0
        // exits, every sender for rank 1's channel is gone, so the recv
        // must fail fast instead of deadlocking the join.
        let m = NativeMachine::new(2);
        m.run(|p| {
            if p.rank() == 1 {
                let _: u64 = p.recv(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn worker_panic_propagates_while_peers_block_in_recv() {
        // Rank 0 panics while ranks 1 and 2 are blocked waiting for it; the
        // poison broadcast must wake them so the panic propagates instead
        // of deadlocking the scoped join.
        let m = NativeMachine::new(3);
        m.run(|p| {
            if p.rank() == 0 {
                panic!("deliberate worker failure");
            }
            let _: u64 = p.recv(0, 1);
        });
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn wrong_receive_type_panics() {
        let m = NativeMachine::new(2);
        m.run(|p| {
            if p.rank() == 0 {
                p.send(1, 5, 1u64);
            } else {
                let _: Vec<f64> = p.recv(0, 5);
            }
        });
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn send_out_of_range_panics() {
        let m = NativeMachine::new(2);
        m.run(|p| {
            if p.rank() == 0 {
                p.send(5, 0, 1u8);
            }
        });
    }
}
