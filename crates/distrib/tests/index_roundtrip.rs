//! Round-trip property tests for index translation:
//! `global → (owner, local) → global` must be the identity for every
//! distribution pattern, including the edge sizes that historically break
//! ownership arithmetic (`N < P`, `N % P ≠ 0`, single processor, block
//! sizes that do not divide `N`), plus the replicated multi-dimensional
//! case where every processor holds the full array.

use distrib::{ArrayDist, DimDist, ProcGrid};
use proptest::prelude::*;

/// Exhaustive round-trip check of one distribution.
fn assert_roundtrips(d: &DimDist) {
    let n = d.n();
    let p = d.nprocs();
    for g in 0..n {
        let owner = d.owner(g);
        assert!(owner < p, "owner {owner} of index {g} outside 0..{p}");
        assert!(d.is_local(owner, g));
        let l = d.local_index(g);
        assert!(
            l < d.local_count(owner),
            "local index {l} outside the owner's {} elements",
            d.local_count(owner)
        );
        assert_eq!(
            d.global_index(owner, l),
            g,
            "global {g} -> (owner {owner}, local {l}) does not round-trip"
        );
    }

    // The reverse direction: every (rank, local) pair names a distinct
    // global index whose translation leads back to the same pair.
    let total: usize = (0..p).map(|r| d.local_count(r)).sum();
    assert_eq!(total, n, "local counts must partition the index space");
    for rank in 0..p {
        for l in 0..d.local_count(rank) {
            let g = d.global_index(rank, l);
            assert!(g < n, "global index {g} out of bounds");
            assert_eq!(d.owner(g), rank);
            assert_eq!(d.local_index(g), l);
        }
    }
}

proptest! {
    #[test]
    fn block_roundtrips(n in 1usize..300, p in 1usize..24) {
        assert_roundtrips(&DimDist::block(n, p));
    }

    #[test]
    fn cyclic_roundtrips(n in 1usize..300, p in 1usize..24) {
        assert_roundtrips(&DimDist::cyclic(n, p));
    }

    #[test]
    fn block_cyclic_roundtrips(n in 1usize..300, p in 1usize..24, block in 1usize..12) {
        assert_roundtrips(&DimDist::block_cyclic(n, p, block));
    }

    #[test]
    fn custom_roundtrips(n in 1usize..200, p in 1usize..16, mult in 1usize..30, add in 0usize..30) {
        // Deterministic but irregular owner table.
        let owners = (0..n).map(|i| (i * mult + add) % p).collect();
        assert_roundtrips(&DimDist::custom(owners, p));
    }

    #[test]
    fn replicated_arrays_roundtrip_on_every_rank(
        rows in 1usize..40,
        cols in 1usize..40,
        p in 1usize..9,
    ) {
        // A replicated array has no owner; instead, local and global
        // coordinates coincide on every processor.
        let a = ArrayDist::replicated(ProcGrid::new_1d(p), &[rows, cols]);
        prop_assert!(a.is_replicated());
        prop_assert_eq!(a.owner(&[0, 0]), None);
        for rank in 0..p {
            prop_assert_eq!(a.local_shape(rank), vec![rows, cols]);
            for r in [0, rows / 2, rows - 1] {
                for c in [0, cols / 2, cols - 1] {
                    let local = a.global_to_local(&[r, c]);
                    prop_assert_eq!(a.local_to_global(rank, &local), vec![r, c]);
                    prop_assert!(a.is_local(rank, &[r, c]), "replicated => local everywhere");
                }
            }
        }
    }
}

/// The specific degenerate shapes named in the issue, checked explicitly so
/// a property-sampler can never rotate past them.
#[test]
fn edge_sizes_roundtrip() {
    for p in [1usize, 2, 3, 7, 8, 16] {
        for n in [
            1usize,
            2,
            3,
            p.saturating_sub(1).max(1),
            p,
            p + 1,
            2 * p + 3,
        ] {
            assert_roundtrips(&DimDist::block(n, p));
            assert_roundtrips(&DimDist::cyclic(n, p));
            for block in [1usize, 2, 5] {
                assert_roundtrips(&DimDist::block_cyclic(n, p, block));
            }
        }
    }
}

#[test]
fn fewer_elements_than_processors_leaves_tail_ranks_empty() {
    let d = DimDist::block(3, 8);
    assert_roundtrips(&d);
    let nonempty: Vec<usize> = (0..8).filter(|&r| d.local_count(r) > 0).collect();
    assert!(!nonempty.is_empty());
    assert_eq!((0..8).map(|r| d.local_count(r)).sum::<usize>(), 3);

    let c = DimDist::cyclic(3, 8);
    assert_roundtrips(&c);
    assert_eq!((0..3).map(|r| c.local_count(r)).sum::<usize>(), 3);
    assert!((3..8).all(|r| c.local_count(r) == 0));
}
