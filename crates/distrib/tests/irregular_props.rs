//! Property tests for [`IrregularDist`]: the invariants every distribution
//! must uphold, checked over arbitrary owner tables.
//!
//! * global→local→global round-trip (`global_index ∘ local_index = id` on
//!   owned indices, and the other way around on local offsets),
//! * owner maps are a partition: every index owned exactly once, local sets
//!   pairwise disjoint, counts summing to `n`,
//! * agreement with `BlockDist` when the owner map is the identity block
//!   layout — the irregular machinery degenerates to the regular pattern.

use distrib::{BlockDist, Distribution, IrregularDist};
use proptest::prelude::*;

/// Arbitrary owner tables: arbitrary sizes, processor counts, and per-index
/// owners (including empty parts and single-processor cases).
fn arb_owner_table() -> impl Strategy<Value = (Vec<usize>, usize)> {
    (1usize..12, proptest::collection::vec(0usize..1024, 1..160))
        .prop_map(|(p, raw)| (raw.into_iter().map(|x| x % p).collect(), p))
}

fn assert_roundtrips(owners: &[usize], p: usize) {
    let d = IrregularDist::from_owners(owners.to_vec(), p);
    for (i, &o) in owners.iter().enumerate() {
        let l = d.local_index(i);
        assert!(l < d.local_count(o), "local offset of {i} out of range");
        assert_eq!(d.global_index(o, l), i, "g->l->g identity at {i}");
    }
    for rank in 0..p {
        for l in 0..d.local_count(rank) {
            let g = d.global_index(rank, l);
            assert_eq!(d.owner(g), rank);
            assert_eq!(d.local_index(g), l, "l->g->l identity at {rank}/{l}");
        }
    }
}

fn assert_partition(owners: &[usize], p: usize) {
    let d = IrregularDist::from_owners(owners.to_vec(), p);
    let n = owners.len();
    // Every index owned exactly once across the local sets.
    let mut owned = vec![0usize; n];
    for rank in 0..p {
        let set = d.local_set(rank);
        assert_eq!(set.len(), d.local_count(rank));
        for g in set.iter() {
            owned[g] += 1;
        }
    }
    assert!(
        owned.iter().all(|&c| c == 1),
        "some index not owned exactly once"
    );
    // Pairwise disjoint local sets.
    for a in 0..p.min(5) {
        for b in (a + 1)..p.min(5) {
            assert!(d.local_set(a).is_disjoint(&d.local_set(b)));
        }
    }
    let total: usize = (0..p).map(|r| d.local_count(r)).sum();
    assert_eq!(total, n);
}

fn assert_agrees_with_block(n: usize, p: usize) {
    let irr = IrregularDist::identity_block(n, p);
    let blk = BlockDist::new(n, p);
    assert_eq!(irr.n(), blk.n());
    assert_eq!(irr.nprocs(), blk.nprocs());
    for i in 0..n {
        assert_eq!(irr.owner(i), blk.owner(i), "owner at {i}");
        assert_eq!(irr.local_index(i), blk.local_index(i), "local index at {i}");
    }
    for rank in 0..p {
        assert_eq!(irr.local_count(rank), blk.local_count(rank));
        assert_eq!(irr.local_set(rank), blk.local_set(rank));
        for l in 0..blk.local_count(rank) {
            assert_eq!(irr.global_index(rank, l), blk.global_index(rank, l));
        }
    }
}

fn assert_fingerprint_content_determined(owners: &[usize], p: usize) {
    let a = IrregularDist::from_owners(owners.to_vec(), p);
    let b = IrregularDist::from_owners(owners.to_vec(), p);
    assert_eq!(a.fingerprint(), b.fingerprint());
    // Moving one index to a different owner changes the fingerprint.
    if p > 1 {
        let mut changed = owners.to_vec();
        changed[0] = (changed[0] + 1) % p;
        let c = IrregularDist::from_owners(changed, p);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}

proptest! {
    #[test]
    fn global_local_global_roundtrip(table in arb_owner_table()) {
        let (owners, p) = table;
        assert_roundtrips(&owners, p);
    }

    #[test]
    fn owner_map_is_a_partition(table in arb_owner_table()) {
        let (owners, p) = table;
        assert_partition(&owners, p);
    }

    #[test]
    fn identity_block_owner_map_agrees_with_block_dist(
        n in 1usize..300,
        p in 1usize..17
    ) {
        assert_agrees_with_block(n, p);
    }

    #[test]
    fn fingerprint_is_content_determined(table in arb_owner_table()) {
        let (owners, p) = table;
        assert_fingerprint_content_determined(&owners, p);
    }
}
