//! Property tests for the multi-dimensional decompositions of
//! [`distrib::multi`]:
//!
//! * `ArrayDist` global→local→global round-trips (both through the
//!   multi-index translation and through the flattened [`FlatDist`] view),
//! * `owner` agreement with the equivalent 1-D [`DimDist`] for the
//!   `block_1d` and `block_rows` declarations (the multi-dim machinery must
//!   degenerate exactly to the 1-D patterns the rest of the runtime uses),
//! * replicated arrays and degenerate extents (single-element dimensions,
//!   more processors than rows, `n % p != 0` ragged blocks).

use distrib::{ArrayDist, DimAssign, DimDist, Distribution, FlatDist, ProcGrid};
use proptest::prelude::*;

/// Arbitrary 2-D decompositions over 1-D and 2-D grids, skewed toward
/// degenerate shapes (tiny extents, ragged blocks, p > extent).
fn arb_array_dist() -> impl Strategy<Value = ArrayDist> {
    (1usize..40, 1usize..12, 1usize..7, 0usize..4).prop_map(|(rows, cols, p, kind)| match kind {
        0 => ArrayDist::block_rows(rows, cols, p),
        1 => ArrayDist::block_cols(rows, cols, p),
        2 => ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![
                DimAssign::Distributed(DimDist::cyclic(rows, p)),
                DimAssign::Star(cols),
            ],
        ),
        _ => {
            // 2-D grid: split p into (p, 2) when both extents allow it.
            ArrayDist::new(
                ProcGrid::new_2d(p, 2),
                vec![
                    DimAssign::Distributed(DimDist::block(rows, p)),
                    DimAssign::Distributed(DimDist::cyclic(cols.max(2), 2)),
                ],
            )
        }
    })
}

fn assert_multi_roundtrips(a: &ArrayDist) {
    let shape = a.shape();
    let nprocs = a.grid().len();
    let mut counts = vec![0usize; nprocs];
    for i in 0..shape[0] {
        for j in 0..shape[1] {
            let idx = [i, j];
            let o = a.owner(&idx).expect("distributed array has owners");
            counts[o] += 1;
            let l = a.global_to_local(&idx);
            assert_eq!(a.local_to_global(o, &l), idx, "g->l->g at {idx:?}");
            let ls = a.local_shape(o);
            assert!(l[0] < ls[0] && l[1] < ls[1], "local index out of shape");
        }
    }
    for (rank, &c) in counts.iter().enumerate() {
        assert_eq!(c, a.local_len(rank), "rank {rank} count");
    }
}

fn assert_flat_roundtrips(a: &ArrayDist) {
    let d = FlatDist::new(a.clone());
    let mut seen = vec![false; d.n()];
    for rank in 0..d.nprocs() {
        assert_eq!(d.local_set(rank).len(), d.local_count(rank));
        for l in 0..d.local_count(rank) {
            let g = d.global_index(rank, l);
            assert!(!seen[g], "flat index {g} owned twice");
            seen[g] = true;
            assert_eq!(d.owner(g), rank);
            assert_eq!(d.local_index(g), l, "l->g->l at {rank}/{l}");
        }
    }
    assert!(seen.into_iter().all(|s| s), "some flat index unowned");
}

proptest! {
    #[test]
    fn global_local_global_roundtrip(a in arb_array_dist()) {
        assert_multi_roundtrips(&a);
        assert_flat_roundtrips(&a);
    }

    #[test]
    fn block_1d_agrees_with_the_one_dimensional_block_dist(
        n in 1usize..200,
        p in 1usize..12,
    ) {
        let a = ArrayDist::block_1d(n, p);
        let flat = FlatDist::new(a.clone());
        let d = DimDist::block(n, p);
        for i in 0..n {
            prop_assert_eq!(a.owner(&[i]), Some(d.owner(i)));
            prop_assert_eq!(flat.owner(i), d.owner(i));
            prop_assert_eq!(flat.local_index(i), d.local_index(i));
        }
        for rank in 0..p {
            prop_assert_eq!(flat.local_set(rank), d.local_set(rank));
            prop_assert_eq!(flat.local_count(rank), d.local_count(rank));
        }
    }

    #[test]
    fn block_rows_agrees_with_the_one_dimensional_block_dist_on_rows(
        rows in 1usize..60,
        cols in 1usize..10,
        p in 1usize..9,
    ) {
        let a = ArrayDist::block_rows(rows, cols, p);
        let d = DimDist::block(rows, p);
        for i in 0..rows {
            for j in 0..cols {
                // Whole rows stay together: the owner is the row's 1-D owner
                // regardless of the column.
                prop_assert_eq!(a.owner(&[i, j]), Some(d.owner(i)));
            }
        }
        for rank in 0..p {
            prop_assert_eq!(a.local_shape(rank), vec![d.local_count(rank), cols]);
        }
    }

    #[test]
    fn replicated_arrays_are_everywhere_local(
        rows in 1usize..40,
        cols in 1usize..10,
        p in 1usize..9,
    ) {
        let a = ArrayDist::replicated(ProcGrid::new_1d(p), &[rows, cols]);
        prop_assert!(a.is_replicated());
        for rank in 0..p {
            prop_assert_eq!(a.local_len(rank), rows * cols);
            prop_assert!(a.is_local(rank, &[rows - 1, cols - 1]));
        }
        prop_assert_eq!(a.owner(&[0, 0]), None);
        // The round-trip still holds (translation is the identity).
        let l = a.global_to_local(&[rows - 1, 0]);
        prop_assert_eq!(a.local_to_global(0, &l), vec![rows - 1, 0]);
    }
}

#[test]
fn degenerate_extents_round_trip() {
    // Single-element distributed dimension; more processors than rows;
    // ragged blocks; single processor.
    for a in [
        ArrayDist::block_rows(1, 5, 1),
        ArrayDist::block_rows(3, 2, 8),
        ArrayDist::block_rows(10, 3, 3),
        ArrayDist::block_cols(4, 1, 1),
        ArrayDist::block_cols(2, 3, 5),
    ] {
        assert_multi_roundtrips(&a);
        assert_flat_roundtrips(&a);
    }
}

#[test]
fn flat_dist_fingerprint_changes_with_the_decomposition() {
    let a = FlatDist::new(ArrayDist::block_rows(12, 4, 4));
    let b = FlatDist::new(ArrayDist::block_cols(12, 4, 4));
    assert_ne!(a.fingerprint(), b.fingerprint());
    assert_eq!(
        a.fingerprint(),
        FlatDist::new(ArrayDist::block_rows(12, 4, 4)).fingerprint()
    );
}
