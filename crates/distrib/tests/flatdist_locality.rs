//! The `FlatDist` locality satellite: the memoised per-dimension owner
//! tables must (a) agree exactly with the definitional translation route
//! and (b) make owner resolution measurably cheaper on a large 2-D grid —
//! the inspector performs one such resolution *per reference*, so this is
//! the inspector-side win the ROADMAP item asks for.

use std::hint::black_box;
use std::time::Instant;

use distrib::{ArrayDist, DimAssign, DimDist, Distribution, FlatDist, ProcGrid};

/// The definitional owner route the memoisation replaced: unflatten into a
/// fresh multi-index, dispatch the per-dimension owners, combine through the
/// grid.  Kept here as the reference implementation.
fn definitional_owner(d: &FlatDist, flat: usize) -> usize {
    let idx = d.unflatten(flat);
    d.array().owner(&idx).expect("FlatDist is never replicated")
}

fn large_grid() -> FlatDist {
    // A 1024 × 1024 field over a 4 × 4 processor grid, [block, cyclic]:
    // both dimensions distributed, so both per-dimension tables are hot.
    FlatDist::new(ArrayDist::new(
        ProcGrid::new_2d(4, 4),
        vec![
            DimAssign::Distributed(DimDist::block(1024, 4)),
            DimAssign::Distributed(DimDist::cyclic(1024, 4)),
        ],
    ))
}

#[test]
fn memoised_owner_agrees_with_the_definitional_route_on_a_large_grid() {
    let d = large_grid();
    // A stride that visits every congruence class of both dimensions.
    for flat in (0..d.n()).step_by(997) {
        assert_eq!(d.owner(flat), definitional_owner(&d, flat), "flat {flat}");
        let rank = d.owner(flat);
        let l = d.local_index(flat);
        assert_eq!(d.global_index(rank, l), flat, "roundtrip of flat {flat}");
    }
}

#[test]
fn memoised_owner_beats_the_definitional_route_on_a_large_grid() {
    let d = large_grid();
    let n = d.n();
    let probes = 1usize << 20;

    // Walk a fixed pseudo-random probe sequence (the inspector's reference
    // stream is not sequential either).  Best of three trials per route so
    // scheduler noise cannot flip the comparison.
    let probe = |k: usize| (k.wrapping_mul(2654435761)) % n;
    let time_route = |f: &dyn Fn(usize) -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let mut acc = 0usize;
            for k in 0..probes {
                acc = acc.wrapping_add(f(black_box(probe(k))));
            }
            black_box(acc);
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let memoised = time_route(&|i| d.owner(i));
    let definitional = time_route(&|i| definitional_owner(&d, i));
    assert!(
        memoised < definitional,
        "memoised owner tables must beat the allocating definitional route: \
         memoised {memoised:.4}s vs definitional {definitional:.4}s over {probes} probes"
    );
}
