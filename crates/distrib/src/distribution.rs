//! The [`Distribution`] trait and the built-in regular patterns.
//!
//! A distribution maps the index space `0..n` of one array dimension onto
//! `0..p` processors — the paper's `local : Proc → 2^Arr` function (§2.2).
//! Until this module existed the patterns lived in a closed enum; the
//! analysis layer is now written against this trait instead, so *any* type
//! implementing it — including the owner-table-backed
//! [`IrregularDist`](crate::IrregularDist) — plugs into the inspector,
//! executor, redistribution and schedule cache unchanged.
//!
//! Every implementation must uphold the invariants the paper's analysis
//! assumes:
//!
//! * `owner` is total on `0..n`: every index has exactly one owner;
//! * the `local_set`s of distinct processors are disjoint and their union is
//!   `0..n` (`local(p) ∩ local(q) = ∅`);
//! * `global_index(owner(i), local_index(i)) == i` and
//!   `local_index(global_index(r, l)) == l` for `l < local_count(r)` —
//!   global↔local translation round-trips.
//!
//! [`Distribution::fingerprint`] gives every distribution a stable identity
//! used by the schedule cache: two distributions with different fingerprints
//! may map indices differently, so schedules built under one must never be
//! reused under the other.

use crate::index::{IndexRange, IndexSet};

/// One dimension's data distribution: the pluggable strategy interface.
///
/// Object safe — the [`DimDist`](crate::DimDist) handle stores a
/// `dyn Distribution` so heterogeneous distributions flow through APIs that
/// need a concrete type, while generic runtime entry points (`run_inspector`,
/// `execute_sweep`, `redistribute`) accept any `D: Distribution + ?Sized`
/// directly.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Total number of elements being distributed.
    fn n(&self) -> usize;

    /// Number of processors the elements are distributed over.
    fn nprocs(&self) -> usize;

    /// Owning processor of global index `i`.
    fn owner(&self, i: usize) -> usize;

    /// Local offset of global index `i` within its owner's storage
    /// (global→local translation).
    fn local_index(&self, i: usize) -> usize;

    /// Global index of local offset `l` on processor `rank` (local→global
    /// translation).
    fn global_index(&self, rank: usize, l: usize) -> usize;

    /// Number of elements owned by processor `rank`.
    fn local_count(&self, rank: usize) -> usize;

    /// The paper's `local(p)`: the set of global indices owned by `rank`,
    /// used to enumerate a processor's owner-computes iterations.
    ///
    /// The default builds the set by walking `global_index`; regular
    /// patterns override it with closed-form range constructions.
    fn local_set(&self, rank: usize) -> IndexSet {
        IndexSet::from_indices((0..self.local_count(rank)).map(|l| self.global_index(rank, l)))
    }

    /// True when processor `rank` owns global index `i`.
    fn is_local(&self, rank: usize, i: usize) -> bool {
        self.owner(i) == rank
    }

    /// A short name for reports ("block", "cyclic", "irregular", …).
    fn kind_name(&self) -> &'static str;

    /// Stable identity of the index→owner mapping, for schedule-cache keys
    /// and redistribution checks.
    ///
    /// Two distributions describing the same mapping built the same way
    /// return equal fingerprints; distributions with different mappings
    /// return different fingerprints (modulo hash collisions).  Regular
    /// patterns hash their parameters in O(1); owner-table distributions
    /// hash the table once at construction.
    fn fingerprint(&self) -> u64;
}

/// 64-bit FNV-1a, the stable hash behind [`Distribution::fingerprint`]
/// (deliberately not `DefaultHasher`, whose output may change across Rust
/// releases — fingerprints may be compared across processes).
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Combine two fingerprints order-sensitively (for cache keys covering both
/// the on-clause and the data distribution).
pub fn combine_fingerprints(a: u64, b: u64) -> u64 {
    fnv1a([a, b])
}

/// Contiguous blocks of `ceil(n/p)` elements: `local(p) = { i | ⌈i/B⌉ = p }`
/// (`dist by [block]`).
#[derive(Debug, Clone, Copy)]
pub struct BlockDist {
    n: usize,
    p: usize,
}

impl BlockDist {
    /// Block distribution of `n` elements over `p` processors.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        BlockDist { n, p }
    }

    /// Block length `⌈n/p⌉` (at least 1).
    fn block_len(&self) -> usize {
        self.n.div_ceil(self.p).max(1)
    }
}

impl Distribution for BlockDist {
    fn n(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.p
    }

    fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        (i / self.block_len()).min(self.p - 1)
    }

    fn local_index(&self, i: usize) -> usize {
        i - self.owner(i) * self.block_len()
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        rank * self.block_len() + l
    }

    fn local_count(&self, rank: usize) -> usize {
        let b = self.block_len();
        let lo = (rank * b).min(self.n);
        let hi = ((rank + 1) * b).min(self.n);
        hi - lo
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        let b = self.block_len();
        let lo = (rank * b).min(self.n);
        let hi = ((rank + 1) * b).min(self.n);
        IndexSet::from_range(lo, hi)
    }

    fn kind_name(&self) -> &'static str {
        "block"
    }

    fn fingerprint(&self) -> u64 {
        fnv1a([1, self.n as u64, self.p as u64])
    }
}

/// Round-robin assignment: `local(p) = { i | i ≡ p (mod P) }`
/// (`dist by [cyclic]`).
#[derive(Debug, Clone, Copy)]
pub struct CyclicDist {
    n: usize,
    p: usize,
}

impl CyclicDist {
    /// Cyclic distribution of `n` elements over `p` processors.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        CyclicDist { n, p }
    }
}

impl Distribution for CyclicDist {
    fn n(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.p
    }

    fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        i % self.p
    }

    fn local_index(&self, i: usize) -> usize {
        i / self.p
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        l * self.p + rank
    }

    fn local_count(&self, rank: usize) -> usize {
        let full = self.n / self.p;
        full + usize::from(rank < self.n % self.p)
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        IndexSet::from_indices((rank..self.n).step_by(self.p))
    }

    fn kind_name(&self) -> &'static str {
        "cyclic"
    }

    fn fingerprint(&self) -> u64 {
        fnv1a([2, self.n as u64, self.p as u64])
    }
}

/// Blocks of `block` elements dealt round-robin to processors
/// (`dist by [block-cyclic(b)]`).
#[derive(Debug, Clone, Copy)]
pub struct BlockCyclicDist {
    n: usize,
    p: usize,
    block: usize,
}

impl BlockCyclicDist {
    /// Block-cyclic distribution with the given block size.
    pub fn new(n: usize, p: usize, block: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        assert!(block > 0, "block size must be positive");
        BlockCyclicDist { n, p, block }
    }
}

impl Distribution for BlockCyclicDist {
    fn n(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.p
    }

    fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        (i / self.block) % self.p
    }

    fn local_index(&self, i: usize) -> usize {
        let blk = i / self.block;
        (blk / self.p) * self.block + i % self.block
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        let blk_local = l / self.block;
        let within = l % self.block;
        (blk_local * self.p + rank) * self.block + within
    }

    fn local_count(&self, rank: usize) -> usize {
        // Count elements i in 0..n with (i/block) % p == rank.
        let nblocks = self.n.div_ceil(self.block);
        let mut count = 0usize;
        let mut blk = rank;
        while blk < nblocks {
            let lo = blk * self.block;
            let hi = ((blk + 1) * self.block).min(self.n);
            count += hi - lo;
            blk += self.p;
        }
        count
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        let nblocks = self.n.div_ceil(self.block);
        let mut ranges = Vec::new();
        let mut blk = rank;
        while blk < nblocks {
            let lo = blk * self.block;
            let hi = ((blk + 1) * self.block).min(self.n);
            ranges.push(IndexRange::new(lo, hi));
            blk += self.p;
        }
        IndexSet::from_ranges(ranges)
    }

    fn kind_name(&self) -> &'static str {
        "block-cyclic"
    }

    fn fingerprint(&self) -> u64 {
        fnv1a([3, self.n as u64, self.p as u64, self.block as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_kinds_and_parameters() {
        let fps = [
            BlockDist::new(100, 4).fingerprint(),
            BlockDist::new(100, 5).fingerprint(),
            BlockDist::new(101, 4).fingerprint(),
            CyclicDist::new(100, 4).fingerprint(),
            BlockCyclicDist::new(100, 4, 2).fingerprint(),
            BlockCyclicDist::new(100, 4, 3).fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "fingerprints {i} and {j} collide");
                }
            }
        }
        // Same parameters → same fingerprint (stable identity).
        assert_eq!(
            BlockDist::new(100, 4).fingerprint(),
            BlockDist::new(100, 4).fingerprint()
        );
    }

    #[test]
    fn default_local_set_matches_overrides() {
        // Check the trait's default local_set against the closed forms.
        struct Unopt(CyclicDist);
        impl std::fmt::Debug for Unopt {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.0.fmt(f)
            }
        }
        impl Distribution for Unopt {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn nprocs(&self) -> usize {
                self.0.nprocs()
            }
            fn owner(&self, i: usize) -> usize {
                self.0.owner(i)
            }
            fn local_index(&self, i: usize) -> usize {
                self.0.local_index(i)
            }
            fn global_index(&self, rank: usize, l: usize) -> usize {
                self.0.global_index(rank, l)
            }
            fn local_count(&self, rank: usize) -> usize {
                self.0.local_count(rank)
            }
            fn kind_name(&self) -> &'static str {
                "cyclic-default-set"
            }
            fn fingerprint(&self) -> u64 {
                self.0.fingerprint()
            }
        }
        let d = CyclicDist::new(23, 4);
        let u = Unopt(d);
        for rank in 0..4 {
            assert_eq!(u.local_set(rank), d.local_set(rank), "rank {rank}");
        }
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine_fingerprints(1, 2), combine_fingerprints(2, 1));
        assert_eq!(combine_fingerprints(7, 9), combine_fingerprints(7, 9));
    }
}
