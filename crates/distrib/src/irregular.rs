//! Irregular (owner-table) distributions for unstructured problems.
//!
//! The paper's built-in patterns cover the regular decompositions of its
//! rectangular test grids, but it is explicit that the mechanism is more
//! general: "user-defined distributions are also permitted", given by an
//! explicitly constructed mapping of array elements to processors (§2.2),
//! and the analysis "never needs to know which pattern it is looking at" —
//! the inspector/executor machinery only consumes the `local(p)` sets and
//! the owner function.  For irregular problems this is the whole game: a
//! mesh partitioner assigns nodes to processors by *connectivity*, not by
//! index, and the resulting owner map is exactly such a user-defined
//! distribution.
//!
//! [`IrregularDist`] is that distribution: an explicit owner table plus the
//! translation tables (global→local and local→global) precomputed from it —
//! the run-time equivalent of the closed-form `local(p)` functions of the
//! regular patterns, in the run-time-translation-table style of the
//! PARTI/CHAOS inspector–executor systems that followed the paper.  The
//! tables can be built locally from a full owner map
//! ([`IrregularDist::from_owners`]) or assembled *collectively* from
//! distributed per-processor slices (`kali_core::ownermap`), mirroring how a
//! real machine would never hold the table on one node during partitioning.

use crate::distribution::{fnv1a, Distribution};
use crate::index::IndexSet;

/// A user-defined distribution backed by an explicit owner table with
/// precomputed translation tables.
///
/// Invariants (checked at construction): every entry of the owner table
/// names a processor `< p`, so ownership is total and unique by
/// construction; the translation tables are derived from the owner table and
/// therefore consistent with it.
#[derive(Debug, Clone)]
pub struct IrregularDist {
    /// `owners[i]` is the owning processor of global index `i`.
    owners: Vec<usize>,
    /// Number of processors.
    p: usize,
    /// Global→local translation table: `local_of[i]` is the local offset of
    /// global index `i` within its owner's storage.
    local_of: Vec<usize>,
    /// Local→global translation tables: `locals[r]` lists the global indices
    /// owned by processor `r`, in ascending order.
    locals: Vec<Vec<usize>>,
    /// Content hash of the owner table, computed once at construction.
    fingerprint: u64,
}

impl IrregularDist {
    /// Build the distribution (and its translation tables) from a full owner
    /// table.  `owners[i]` names the processor owning global index `i`;
    /// every entry must be `< p`.
    pub fn from_owners(owners: Vec<usize>, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        assert!(
            owners.iter().all(|&o| o < p),
            "owner table references a processor outside 0..{p}"
        );
        let n = owners.len();
        let mut locals: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut local_of = vec![0usize; n];
        for (i, &o) in owners.iter().enumerate() {
            local_of[i] = locals[o].len();
            locals[o].push(i);
        }
        let fingerprint = fnv1a(
            [4u64, n as u64, p as u64]
                .into_iter()
                .chain(owners.iter().map(|&o| o as u64)),
        );
        IrregularDist {
            owners,
            p,
            local_of,
            locals,
            fingerprint,
        }
    }

    /// The owner map that coincides element-for-element with
    /// [`BlockDist`](crate::BlockDist): contiguous chunks of `⌈n/p⌉`
    /// indices.  Useful as a baseline and in tests proving the irregular
    /// machinery agrees with the regular patterns.
    pub fn identity_block(n: usize, p: usize) -> Self {
        let block = crate::distribution::BlockDist::new(n, p);
        IrregularDist::from_owners((0..n).map(|i| block.owner(i)).collect(), p)
    }

    /// The raw owner table.
    pub fn owners(&self) -> &[usize] {
        &self.owners
    }
}

impl Distribution for IrregularDist {
    fn n(&self) -> usize {
        self.owners.len()
    }

    fn nprocs(&self) -> usize {
        self.p
    }

    fn owner(&self, i: usize) -> usize {
        self.owners[i]
    }

    fn local_index(&self, i: usize) -> usize {
        self.local_of[i]
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        self.locals[rank][l]
    }

    fn local_count(&self, rank: usize) -> usize {
        self.locals[rank].len()
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        IndexSet::from_indices(self.locals[rank].iter().copied())
    }

    fn kind_name(&self) -> &'static str {
        "irregular"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::BlockDist;

    #[test]
    fn translation_tables_are_consistent_with_the_owner_table() {
        let owners = vec![2, 0, 1, 1, 0, 2, 2, 0];
        let d = IrregularDist::from_owners(owners.clone(), 3);
        for (i, &o) in owners.iter().enumerate() {
            assert_eq!(d.owner(i), o);
            assert_eq!(d.global_index(o, d.local_index(i)), i);
        }
        let total: usize = (0..3).map(|r| d.local_count(r)).sum();
        assert_eq!(total, owners.len());
    }

    #[test]
    fn identity_block_agrees_with_block_dist() {
        for (n, p) in [(100, 4), (10, 3), (3, 8), (17, 1)] {
            let irr = IrregularDist::identity_block(n, p);
            let blk = BlockDist::new(n, p);
            for i in 0..n {
                assert_eq!(irr.owner(i), blk.owner(i), "n={n} p={p} i={i}");
                assert_eq!(irr.local_index(i), blk.local_index(i), "n={n} p={p} i={i}");
            }
            for r in 0..p {
                assert_eq!(irr.local_count(r), blk.local_count(r));
                assert_eq!(irr.local_set(r), blk.local_set(r));
            }
        }
    }

    #[test]
    fn fingerprint_tracks_the_owner_table_content() {
        let a = IrregularDist::from_owners(vec![0, 1, 0, 1], 2);
        let b = IrregularDist::from_owners(vec![0, 1, 0, 1], 2);
        let c = IrregularDist::from_owners(vec![1, 0, 0, 1], 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn empty_parts_are_allowed() {
        // A partitioner may leave a processor without nodes (p > n).
        let d = IrregularDist::from_owners(vec![0, 2, 0], 4);
        assert_eq!(d.local_count(1), 0);
        assert_eq!(d.local_count(3), 0);
        assert!(d.local_set(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_owner_is_rejected() {
        IrregularDist::from_owners(vec![0, 5], 3);
    }
}
