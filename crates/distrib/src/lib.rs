//! # distrib — processor arrays and data distributions
//!
//! This crate implements the *data mapping* half of the Kali programming
//! model (Koelbel, Mehrotra, Van Rosendale, PPoPP 1990, §2):
//!
//! * **Processor arrays** ([`ProcGrid`]) — the `processors Procs:
//!   array[1..P]` declaration of the paper.  A grid can be one- or
//!   multi-dimensional; processor ranks are mapped to grid coordinates in
//!   row-major order.
//! * **Distribution patterns** (the [`Distribution`] trait and the
//!   [`DimDist`] handle) — `dist by [block]`, `[cyclic]`,
//!   `[block-cyclic(b)]`, replication, and user-defined distributions given
//!   by an explicit owner table ([`IrregularDist`]).  Mathematically a
//!   distribution is the paper's `local : Proc → 2^Arr` function; the trait
//!   provides `owner(i)`, `local_set(p)`, `local_index(i)` and
//!   `global_index(p, l)` views of it, all mutually consistent, plus a
//!   stable `fingerprint()` identifying the mapping for schedule caching.
//!   New patterns are added by implementing the trait — nothing in the
//!   analysis layer enumerates the built-ins.
//! * **Index sets** ([`IndexSet`]) — sets of disjoint, sorted index ranges
//!   with union / intersection / difference.  The paper's analysis is
//!   phrased entirely in terms of such sets (`exec(p)`, `ref(p)`,
//!   `in(p,q)`, `out(p,q)`); `kali-core` reuses this type for both the
//!   compile-time closed forms and the run-time inspector.
//! * **Multi-dimensional decompositions** ([`ArrayDist`]) — one pattern per
//!   array dimension, with `*` (non-distributed) dimensions, matching the
//!   `dist by [block, *]` declarations of Figure 1.  The row-major
//!   [`FlatDist`] view turns any such decomposition into an ordinary 1-D
//!   [`Distribution`], which is how multi-dimensional arrays flow through
//!   the inspector/executor machinery unchanged (ownership factorises over
//!   dimensions; owned sets are Cartesian products, built by
//!   [`multi::product_flat`]).
//!
//! The analysis layer in `kali-core` is written purely against these
//! interfaces, so new distribution patterns automatically work with the
//! run-time (inspector/executor) analysis, and work with the compile-time
//! analysis whenever closed forms exist.

#![forbid(unsafe_code)]

pub mod dist;
pub mod distribution;
pub mod grid;
pub mod index;
pub mod irregular;
pub mod multi;

pub use dist::DimDist;
pub use distribution::{
    combine_fingerprints, BlockCyclicDist, BlockDist, CyclicDist, Distribution,
};
pub use grid::ProcGrid;
pub use index::{IndexRange, IndexSet};
pub use irregular::IrregularDist;
pub use multi::{flatten_index, product_flat, unflatten_index, ArrayDist, DimAssign, FlatDist};
