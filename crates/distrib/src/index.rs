//! Index sets: disjoint sorted ranges with set algebra.
//!
//! The paper's whole analysis is phrased in terms of sets of array indices
//! and loop iterations: `local(p)`, `exec(p) = f⁻¹(local(p))`,
//! `ref(p) = g⁻¹(local(p))`, `in(p,q)`, `out(p,q)` (§3.1).  For the
//! one-dimensional distributions Kali supports, these sets are unions of a
//! small number of contiguous ranges, so we represent them as sorted,
//! coalesced, half-open ranges — the same representation the paper chooses
//! for its communication records (§3.3), which gives O(log r) membership
//! tests and compact messages.

/// A half-open range of indices `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexRange {
    /// First index in the range.
    pub start: usize,
    /// One past the last index in the range.
    pub end: usize,
}

impl IndexRange {
    /// Create a range; empty ranges (`start >= end`) are allowed and behave
    /// as the empty set.
    pub fn new(start: usize, end: usize) -> Self {
        IndexRange { start, end }
    }

    /// Number of indices in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the range contains no indices.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True if `i` lies inside the range.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.start && i < self.end
    }

    /// Intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &IndexRange) -> IndexRange {
        IndexRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }
}

/// A set of indices stored as sorted, disjoint, coalesced half-open ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IndexSet {
    ranges: Vec<IndexRange>,
}

impl IndexSet {
    /// The empty set.
    pub fn new() -> Self {
        IndexSet { ranges: Vec::new() }
    }

    /// A set containing a single contiguous range.
    pub fn from_range(start: usize, end: usize) -> Self {
        let mut s = IndexSet::new();
        s.insert_range(IndexRange::new(start, end));
        s
    }

    /// Build a set from arbitrary (possibly overlapping, unsorted) ranges.
    pub fn from_ranges<I: IntoIterator<Item = IndexRange>>(ranges: I) -> Self {
        let mut s = IndexSet::new();
        for r in ranges {
            s.insert_range(r);
        }
        s
    }

    /// Build a set from individual indices (duplicates are fine).
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut v: Vec<usize> = indices.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        let mut s = IndexSet::new();
        let mut iter = v.into_iter();
        if let Some(first) = iter.next() {
            let mut start = first;
            let mut prev = first;
            for i in iter {
                if i == prev + 1 {
                    prev = i;
                } else {
                    s.ranges.push(IndexRange::new(start, prev + 1));
                    start = i;
                    prev = i;
                }
            }
            s.ranges.push(IndexRange::new(start, prev + 1));
        }
        s
    }

    /// The coalesced ranges, sorted by start index.
    pub fn ranges(&self) -> &[IndexRange] {
        &self.ranges
    }

    /// Number of ranges (the `r` in the paper's O(log r) search bound).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of indices in the set.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// True if the set contains no indices.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Membership test by binary search over the ranges — O(log r).
    pub fn contains(&self, i: usize) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if i < r.start {
                    std::cmp::Ordering::Greater
                } else if i >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Insert one range, merging with neighbours as needed.
    pub fn insert_range(&mut self, r: IndexRange) {
        if r.is_empty() {
            return;
        }
        // Find insertion point by start.
        let pos = self
            .ranges
            .partition_point(|existing| existing.start < r.start);
        self.ranges.insert(pos, r);
        self.coalesce();
    }

    /// Insert a single index.
    pub fn insert(&mut self, i: usize) {
        self.insert_range(IndexRange::new(i, i + 1));
    }

    fn coalesce(&mut self) {
        if self.ranges.is_empty() {
            return;
        }
        self.ranges.sort_by_key(|r| r.start);
        let mut merged: Vec<IndexRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            if r.is_empty() {
                continue;
            }
            match merged.last_mut() {
                Some(last) if r.start <= last.end => {
                    last.end = last.end.max(r.end);
                }
                _ => merged.push(r),
            }
        }
        self.ranges = merged;
    }

    /// Set union.
    pub fn union(&self, other: &IndexSet) -> IndexSet {
        let mut s = self.clone();
        for r in &other.ranges {
            s.insert_range(*r);
        }
        s
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IndexSet) -> IndexSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = self.ranges[i];
            let b = other.ranges[j];
            let c = a.intersect(&b);
            if !c.is_empty() {
                out.push(c);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IndexSet { ranges: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IndexSet) -> IndexSet {
        let mut out = Vec::new();
        let mut j = 0usize;
        for &a in &self.ranges {
            let mut cur = a;
            while j < other.ranges.len() && other.ranges[j].end <= cur.start {
                j += 1;
            }
            let mut k = j;
            while !cur.is_empty() && k < other.ranges.len() && other.ranges[k].start < cur.end {
                let b = other.ranges[k];
                if b.start > cur.start {
                    out.push(IndexRange::new(cur.start, b.start));
                }
                cur = IndexRange::new(b.end.max(cur.start), cur.end);
                k += 1;
            }
            if !cur.is_empty() {
                out.push(cur);
            }
        }
        IndexSet { ranges: out }
    }

    /// True when the two sets share no indices.
    pub fn is_disjoint(&self, other: &IndexSet) -> bool {
        self.intersect(other).is_empty()
    }

    /// True when every index of `self` is also in `other`.
    pub fn is_subset(&self, other: &IndexSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Iterate over every index in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.start..r.end)
    }
}

impl FromIterator<usize> for IndexSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        IndexSet::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_coalesces_runs() {
        let s = IndexSet::from_indices([5, 1, 2, 3, 9, 10, 3, 2]);
        assert_eq!(
            s.ranges(),
            &[
                IndexRange::new(1, 4),
                IndexRange::new(5, 6),
                IndexRange::new(9, 11)
            ]
        );
        assert_eq!(s.len(), 6);
        assert_eq!(s.range_count(), 3);
    }

    #[test]
    fn insert_merges_adjacent_and_overlapping() {
        let mut s = IndexSet::from_range(0, 5);
        s.insert_range(IndexRange::new(5, 10)); // adjacent
        assert_eq!(s.ranges(), &[IndexRange::new(0, 10)]);
        s.insert_range(IndexRange::new(3, 12)); // overlapping
        assert_eq!(s.ranges(), &[IndexRange::new(0, 12)]);
        s.insert_range(IndexRange::new(20, 20)); // empty, ignored
        assert_eq!(s.range_count(), 1);
    }

    #[test]
    fn contains_uses_all_ranges() {
        let s = IndexSet::from_ranges([IndexRange::new(0, 3), IndexRange::new(10, 13)]);
        assert!(s.contains(0));
        assert!(s.contains(2));
        assert!(!s.contains(3));
        assert!(!s.contains(9));
        assert!(s.contains(12));
        assert!(!s.contains(13));
    }

    #[test]
    fn union_intersection_difference_small_cases() {
        let a = IndexSet::from_ranges([IndexRange::new(0, 10), IndexRange::new(20, 30)]);
        let b = IndexSet::from_ranges([IndexRange::new(5, 25)]);
        assert_eq!(a.union(&b).ranges(), &[IndexRange::new(0, 30)]);
        assert_eq!(
            a.intersect(&b).ranges(),
            &[IndexRange::new(5, 10), IndexRange::new(20, 25)]
        );
        assert_eq!(
            a.difference(&b).ranges(),
            &[IndexRange::new(0, 5), IndexRange::new(25, 30)]
        );
        assert_eq!(b.difference(&a).ranges(), &[IndexRange::new(10, 20)]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = IndexSet::from_range(0, 100);
        let b = IndexSet::from_range(10, 20);
        let c = IndexSet::from_range(200, 300);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(IndexSet::new().is_subset(&b));
        assert!(IndexSet::new().is_disjoint(&IndexSet::new()));
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let s = IndexSet::from_indices([7, 1, 3, 2, 9]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 2, 3, 7, 9]);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = IndexSet::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(0));
        assert!(e.union(&e).is_empty());
        assert!(e.intersect(&IndexSet::from_range(0, 10)).is_empty());
        assert!(e.difference(&IndexSet::from_range(0, 10)).is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        fn arb_indices() -> impl Strategy<Value = Vec<usize>> {
            proptest::collection::vec(0usize..200, 0..60)
        }

        proptest! {
            #[test]
            fn set_semantics_match_btreeset(a in arb_indices(), b in arb_indices()) {
                let sa = IndexSet::from_indices(a.iter().copied());
                let sb = IndexSet::from_indices(b.iter().copied());
                let ra: BTreeSet<usize> = a.iter().copied().collect();
                let rb: BTreeSet<usize> = b.iter().copied().collect();

                let union: Vec<usize> = sa.union(&sb).iter().collect();
                let expect: Vec<usize> = ra.union(&rb).copied().collect();
                prop_assert_eq!(union, expect);

                let inter: Vec<usize> = sa.intersect(&sb).iter().collect();
                let expect: Vec<usize> = ra.intersection(&rb).copied().collect();
                prop_assert_eq!(inter, expect);

                let diff: Vec<usize> = sa.difference(&sb).iter().collect();
                let expect: Vec<usize> = ra.difference(&rb).copied().collect();
                prop_assert_eq!(diff, expect);
            }

            #[test]
            fn ranges_are_sorted_disjoint_and_coalesced(a in arb_indices()) {
                let s = IndexSet::from_indices(a.iter().copied());
                for w in s.ranges().windows(2) {
                    // Strictly separated: coalescing must have merged adjacency.
                    prop_assert!(w[0].end < w[1].start);
                }
                for r in s.ranges() {
                    prop_assert!(r.start < r.end);
                }
                prop_assert_eq!(s.len(), a.iter().copied().collect::<BTreeSet<_>>().len());
            }

            #[test]
            fn contains_matches_membership(a in arb_indices(), probe in 0usize..220) {
                let s = IndexSet::from_indices(a.iter().copied());
                prop_assert_eq!(s.contains(probe), a.contains(&probe));
            }
        }
    }
}
