//! Multi-dimensional array decompositions (paper §2.2, Figure 1).
//!
//! Kali distributes an array by giving one pattern per array dimension —
//! `dist by [block, *]` distributes the rows by blocks and keeps whole rows
//! together (`*` means "not distributed").  The number of distributed
//! dimensions must match the dimensionality of the processor array, exactly
//! as in the paper.  Arrays with no `dist` clause are replicated.

use crate::dist::DimDist;
use crate::grid::ProcGrid;

/// How one array dimension is mapped.
#[derive(Debug, Clone)]
pub enum DimAssign {
    /// The dimension is distributed across one dimension of the processor
    /// grid using the given pattern.
    Distributed(DimDist),
    /// The dimension is not distributed (`*` in Kali): every owner of the
    /// distributed dimensions stores the full extent of this dimension.
    Star(usize),
}

impl DimAssign {
    /// Extent of the array dimension.
    pub fn extent(&self) -> usize {
        match self {
            DimAssign::Distributed(d) => d.n(),
            DimAssign::Star(n) => *n,
        }
    }
}

/// The distribution of a (possibly multi-dimensional) array over a
/// processor grid.
#[derive(Debug, Clone)]
pub struct ArrayDist {
    grid: ProcGrid,
    dims: Vec<DimAssign>,
    /// Positions of the distributed dimensions, in array-dimension order.
    distributed_dims: Vec<usize>,
}

impl ArrayDist {
    /// Create a distribution.  The number of [`DimAssign::Distributed`]
    /// entries must equal the dimensionality of the processor grid (the
    /// paper's rule), and each distributed dimension must be spread over the
    /// same number of processors as the corresponding grid dimension.
    pub fn new(grid: ProcGrid, dims: Vec<DimAssign>) -> Self {
        let distributed_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter_map(|(i, d)| matches!(d, DimAssign::Distributed(_)).then_some(i))
            .collect();
        assert_eq!(
            distributed_dims.len(),
            grid.ndims(),
            "the number of distributed array dimensions ({}) must match the \
             processor-array dimensionality ({})",
            distributed_dims.len(),
            grid.ndims()
        );
        for (k, &dim) in distributed_dims.iter().enumerate() {
            if let DimAssign::Distributed(d) = &dims[dim] {
                assert_eq!(
                    d.nprocs(),
                    grid.extent(k),
                    "array dimension {dim} is distributed over {} processors but grid \
                     dimension {k} has extent {}",
                    d.nprocs(),
                    grid.extent(k)
                );
            }
        }
        ArrayDist {
            grid,
            dims,
            distributed_dims,
        }
    }

    /// A fully replicated array (no `dist` clause): one copy per processor.
    pub fn replicated(grid: ProcGrid, shape: &[usize]) -> Self {
        let dims = shape.iter().map(|&n| DimAssign::Star(n)).collect();
        ArrayDist {
            grid,
            dims,
            distributed_dims: Vec::new(),
        }
    }

    /// A one-dimensional array distributed by blocks over a 1-D grid —
    /// the most common declaration in the paper (`dist by [ block ]`).
    pub fn block_1d(n: usize, p: usize) -> Self {
        ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![DimAssign::Distributed(DimDist::block(n, p))],
        )
    }

    /// A two-dimensional array whose rows are distributed by blocks and whose
    /// columns stay together (`dist by [ block, * ]`), as used for the `adj`
    /// and `coef` arrays in Figure 4.
    pub fn block_rows(rows: usize, cols: usize, p: usize) -> Self {
        ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![
                DimAssign::Distributed(DimDist::block(rows, p)),
                DimAssign::Star(cols),
            ],
        )
    }

    /// The processor grid this array is distributed over.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Shape of the global array.
    pub fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.extent()).collect()
    }

    /// Per-dimension assignments.
    pub fn dims(&self) -> &[DimAssign] {
        &self.dims
    }

    /// True when the array is fully replicated.
    pub fn is_replicated(&self) -> bool {
        self.distributed_dims.is_empty()
    }

    /// Owning processor rank of a global multi-index, or `None` for a
    /// replicated array (every processor holds a copy).
    pub fn owner(&self, index: &[usize]) -> Option<usize> {
        assert_eq!(index.len(), self.dims.len(), "index arity mismatch");
        if self.is_replicated() {
            return None;
        }
        let coords: Vec<usize> = self
            .distributed_dims
            .iter()
            .map(|&dim| match &self.dims[dim] {
                DimAssign::Distributed(d) => d.owner(index[dim]),
                DimAssign::Star(_) => unreachable!(),
            })
            .collect();
        Some(self.grid.rank(&coords))
    }

    /// True when processor `rank` stores the element at `index` (always true
    /// for replicated arrays).
    pub fn is_local(&self, rank: usize, index: &[usize]) -> bool {
        self.owner(index).is_none_or(|o| o == rank)
    }

    /// Shape of the local piece stored on `rank`.
    pub fn local_shape(&self, rank: usize) -> Vec<usize> {
        let coords = if self.is_replicated() {
            Vec::new()
        } else {
            self.grid.coords(rank)
        };
        let mut k = 0usize;
        self.dims
            .iter()
            .map(|d| match d {
                DimAssign::Distributed(dist) => {
                    let c = coords[k];
                    k += 1;
                    dist.local_count(c)
                }
                DimAssign::Star(n) => *n,
            })
            .collect()
    }

    /// Number of elements stored on `rank`.
    pub fn local_len(&self, rank: usize) -> usize {
        self.local_shape(rank).iter().product()
    }

    /// Translate a global multi-index into the owner's local multi-index.
    pub fn global_to_local(&self, index: &[usize]) -> Vec<usize> {
        assert_eq!(index.len(), self.dims.len(), "index arity mismatch");
        self.dims
            .iter()
            .zip(index)
            .map(|(d, &i)| match d {
                DimAssign::Distributed(dist) => dist.local_index(i),
                DimAssign::Star(_) => i,
            })
            .collect()
    }

    /// Translate a local multi-index on `rank` back to the global index.
    pub fn local_to_global(&self, rank: usize, local: &[usize]) -> Vec<usize> {
        assert_eq!(local.len(), self.dims.len(), "index arity mismatch");
        let coords = if self.is_replicated() {
            Vec::new()
        } else {
            self.grid.coords(rank)
        };
        let mut k = 0usize;
        self.dims
            .iter()
            .zip(local)
            .map(|(d, &l)| match d {
                DimAssign::Distributed(dist) => {
                    let c = coords[k];
                    k += 1;
                    dist.global_index(c, l)
                }
                DimAssign::Star(_) => l,
            })
            .collect()
    }

    /// The distribution pattern of array dimension 0, if it is distributed.
    ///
    /// The paper's example programs all distribute the first dimension and
    /// keep the rest with `*`, so this accessor is used heavily by the
    /// solver layer.
    pub fn row_dist(&self) -> Option<&DimDist> {
        match self.dims.first() {
            Some(DimAssign::Distributed(d)) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_1d_owner_and_roundtrip() {
        let a = ArrayDist::block_1d(100, 4);
        assert_eq!(a.shape(), vec![100]);
        assert_eq!(a.owner(&[0]), Some(0));
        assert_eq!(a.owner(&[99]), Some(3));
        assert_eq!(a.local_shape(1), vec![25]);
        let l = a.global_to_local(&[30]);
        assert_eq!(a.local_to_global(1, &l), vec![30]);
    }

    #[test]
    fn block_rows_keeps_columns_together() {
        let a = ArrayDist::block_rows(16, 4, 4);
        assert_eq!(a.shape(), vec![16, 4]);
        // Whole rows live on one processor regardless of column.
        for j in 0..4 {
            assert_eq!(a.owner(&[5, j]), Some(1));
        }
        assert_eq!(a.local_shape(2), vec![4, 4]);
        assert_eq!(a.local_len(2), 16);
        let l = a.global_to_local(&[9, 3]);
        assert_eq!(l, vec![1, 3]);
        assert_eq!(a.local_to_global(2, &l), vec![9, 3]);
    }

    #[test]
    fn replicated_arrays_have_no_owner() {
        let a = ArrayDist::replicated(ProcGrid::new_1d(4), &[10, 10]);
        assert!(a.is_replicated());
        assert_eq!(a.owner(&[3, 3]), None);
        assert!(a.is_local(2, &[3, 3]));
        assert_eq!(a.local_shape(0), vec![10, 10]);
    }

    #[test]
    fn two_dimensional_grid_distribution() {
        // A 6x6 array distributed [block, cyclic] over a 2x3 grid.
        let grid = ProcGrid::new_2d(2, 3);
        let a = ArrayDist::new(
            grid,
            vec![
                DimAssign::Distributed(DimDist::block(6, 2)),
                DimAssign::Distributed(DimDist::cyclic(6, 3)),
            ],
        );
        // Element (4, 5): row block 1, column 5 % 3 = 2 -> rank 1*3+2 = 5.
        assert_eq!(a.owner(&[4, 5]), Some(5));
        // Every element has exactly one owner and roundtrips.
        let mut counts = [0usize; 6];
        for i in 0..6 {
            for j in 0..6 {
                let o = a.owner(&[i, j]).unwrap();
                counts[o] += 1;
                let l = a.global_to_local(&[i, j]);
                assert_eq!(a.local_to_global(o, &l), vec![i, j]);
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 36);
        for (rank, &c) in counts.iter().enumerate() {
            assert_eq!(c, a.local_len(rank), "rank {rank}");
        }
    }

    #[test]
    fn cyclic_rows_matches_figure_1_array_b() {
        // Figure 1: B : array[1..N,1..M] dist by [cyclic, *].
        let a = ArrayDist::new(
            ProcGrid::new_1d(10),
            vec![
                DimAssign::Distributed(DimDist::cyclic(100, 10)),
                DimAssign::Star(7),
            ],
        );
        // "processor 1 would store elements in rows 1, 11, 21, ..." (0-based:
        // processor 0 stores rows 0, 10, 20, ...).
        assert_eq!(a.owner(&[0, 3]), Some(0));
        assert_eq!(a.owner(&[10, 6]), Some(0));
        assert_eq!(a.owner(&[21, 0]), Some(1));
        assert_eq!(a.local_shape(0), vec![10, 7]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_grid_dimensionality_panics() {
        ArrayDist::new(
            ProcGrid::new_2d(2, 2),
            vec![DimAssign::Distributed(DimDist::block(10, 4))],
        );
    }

    #[test]
    #[should_panic(expected = "has extent")]
    fn mismatched_processor_count_panics() {
        ArrayDist::new(
            ProcGrid::new_1d(4),
            vec![DimAssign::Distributed(DimDist::block(10, 5))],
        );
    }
}
