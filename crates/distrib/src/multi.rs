//! Multi-dimensional array decompositions (paper §2.2, Figure 1).
//!
//! Kali distributes an array by giving one pattern per array dimension —
//! `dist by [block, *]` distributes the rows by blocks and keeps whole rows
//! together (`*` means "not distributed").  The number of distributed
//! dimensions must match the dimensionality of the processor array, exactly
//! as in the paper.  Arrays with no `dist` clause are replicated.

use crate::dist::DimDist;
use crate::distribution::{fnv1a, Distribution};
use crate::grid::ProcGrid;
use crate::index::{IndexRange, IndexSet};

/// How one array dimension is mapped.
#[derive(Debug, Clone)]
pub enum DimAssign {
    /// The dimension is distributed across one dimension of the processor
    /// grid using the given pattern.
    Distributed(DimDist),
    /// The dimension is not distributed (`*` in Kali): every owner of the
    /// distributed dimensions stores the full extent of this dimension.
    Star(usize),
}

impl DimAssign {
    /// Extent of the array dimension.
    pub fn extent(&self) -> usize {
        match self {
            DimAssign::Distributed(d) => d.n(),
            DimAssign::Star(n) => *n,
        }
    }

    /// Stable identity of the assignment (see
    /// [`Distribution::fingerprint`]); `*` dimensions hash their extent.
    pub fn fingerprint(&self) -> u64 {
        match self {
            DimAssign::Distributed(d) => d.fingerprint(),
            DimAssign::Star(n) => fnv1a([u64::MAX, *n as u64]),
        }
    }
}

/// The distribution of a (possibly multi-dimensional) array over a
/// processor grid.
#[derive(Debug, Clone)]
pub struct ArrayDist {
    grid: ProcGrid,
    dims: Vec<DimAssign>,
    /// Positions of the distributed dimensions, in array-dimension order.
    distributed_dims: Vec<usize>,
}

impl ArrayDist {
    /// Create a distribution.  The number of [`DimAssign::Distributed`]
    /// entries must equal the dimensionality of the processor grid (the
    /// paper's rule), and each distributed dimension must be spread over the
    /// same number of processors as the corresponding grid dimension.
    pub fn new(grid: ProcGrid, dims: Vec<DimAssign>) -> Self {
        let distributed_dims: Vec<usize> = dims
            .iter()
            .enumerate()
            .filter_map(|(i, d)| matches!(d, DimAssign::Distributed(_)).then_some(i))
            .collect();
        assert_eq!(
            distributed_dims.len(),
            grid.ndims(),
            "the number of distributed array dimensions ({}) must match the \
             processor-array dimensionality ({})",
            distributed_dims.len(),
            grid.ndims()
        );
        for (k, &dim) in distributed_dims.iter().enumerate() {
            if let DimAssign::Distributed(d) = &dims[dim] {
                assert_eq!(
                    d.nprocs(),
                    grid.extent(k),
                    "array dimension {dim} is distributed over {} processors but grid \
                     dimension {k} has extent {}",
                    d.nprocs(),
                    grid.extent(k)
                );
            }
        }
        ArrayDist {
            grid,
            dims,
            distributed_dims,
        }
    }

    /// A fully replicated array (no `dist` clause): one copy per processor.
    pub fn replicated(grid: ProcGrid, shape: &[usize]) -> Self {
        let dims = shape.iter().map(|&n| DimAssign::Star(n)).collect();
        ArrayDist {
            grid,
            dims,
            distributed_dims: Vec::new(),
        }
    }

    /// A one-dimensional array distributed by blocks over a 1-D grid —
    /// the most common declaration in the paper (`dist by [ block ]`).
    pub fn block_1d(n: usize, p: usize) -> Self {
        ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![DimAssign::Distributed(DimDist::block(n, p))],
        )
    }

    /// A two-dimensional array whose rows are distributed by blocks and whose
    /// columns stay together (`dist by [ block, * ]`), as used for the `adj`
    /// and `coef` arrays in Figure 4.
    pub fn block_rows(rows: usize, cols: usize, p: usize) -> Self {
        ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![
                DimAssign::Distributed(DimDist::block(rows, p)),
                DimAssign::Star(cols),
            ],
        )
    }

    /// A two-dimensional array whose columns are distributed by blocks and
    /// whose rows stay together (`dist by [ *, block ]`) — the phase-change
    /// counterpart of [`ArrayDist::block_rows`] used when a program switches
    /// from row-oriented to column-oriented sweeps.
    pub fn block_cols(rows: usize, cols: usize, p: usize) -> Self {
        ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![
                DimAssign::Star(rows),
                DimAssign::Distributed(DimDist::block(cols, p)),
            ],
        )
    }

    /// The processor grid this array is distributed over.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// Shape of the global array.
    pub fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.extent()).collect()
    }

    /// Per-dimension assignments.
    pub fn dims(&self) -> &[DimAssign] {
        &self.dims
    }

    /// True when the array is fully replicated.
    pub fn is_replicated(&self) -> bool {
        self.distributed_dims.is_empty()
    }

    /// Owning processor rank of a global multi-index, or `None` for a
    /// replicated array (every processor holds a copy).
    pub fn owner(&self, index: &[usize]) -> Option<usize> {
        assert_eq!(index.len(), self.dims.len(), "index arity mismatch");
        if self.is_replicated() {
            return None;
        }
        let coords: Vec<usize> = self
            .distributed_dims
            .iter()
            .map(|&dim| match &self.dims[dim] {
                DimAssign::Distributed(d) => d.owner(index[dim]),
                DimAssign::Star(_) => unreachable!(),
            })
            .collect();
        Some(self.grid.rank(&coords))
    }

    /// True when processor `rank` stores the element at `index` (always true
    /// for replicated arrays).
    pub fn is_local(&self, rank: usize, index: &[usize]) -> bool {
        self.owner(index).is_none_or(|o| o == rank)
    }

    /// Shape of the local piece stored on `rank`.
    pub fn local_shape(&self, rank: usize) -> Vec<usize> {
        let coords = if self.is_replicated() {
            Vec::new()
        } else {
            self.grid.coords(rank)
        };
        let mut k = 0usize;
        self.dims
            .iter()
            .map(|d| match d {
                DimAssign::Distributed(dist) => {
                    let c = coords[k];
                    k += 1;
                    dist.local_count(c)
                }
                DimAssign::Star(n) => *n,
            })
            .collect()
    }

    /// Number of elements stored on `rank`.
    pub fn local_len(&self, rank: usize) -> usize {
        self.local_shape(rank).iter().product()
    }

    /// Translate a global multi-index into the owner's local multi-index.
    pub fn global_to_local(&self, index: &[usize]) -> Vec<usize> {
        assert_eq!(index.len(), self.dims.len(), "index arity mismatch");
        self.dims
            .iter()
            .zip(index)
            .map(|(d, &i)| match d {
                DimAssign::Distributed(dist) => dist.local_index(i),
                DimAssign::Star(_) => i,
            })
            .collect()
    }

    /// Translate a local multi-index on `rank` back to the global index.
    pub fn local_to_global(&self, rank: usize, local: &[usize]) -> Vec<usize> {
        assert_eq!(local.len(), self.dims.len(), "index arity mismatch");
        let coords = if self.is_replicated() {
            Vec::new()
        } else {
            self.grid.coords(rank)
        };
        let mut k = 0usize;
        self.dims
            .iter()
            .zip(local)
            .map(|(d, &l)| match d {
                DimAssign::Distributed(dist) => {
                    let c = coords[k];
                    k += 1;
                    dist.global_index(c, l)
                }
                DimAssign::Star(_) => l,
            })
            .collect()
    }

    /// The distribution pattern of array dimension 0, if it is distributed.
    ///
    /// The paper's example programs all distribute the first dimension and
    /// keep the rest with `*`, so this accessor is used heavily by the
    /// solver layer.
    pub fn row_dist(&self) -> Option<&DimDist> {
        match self.dims.first() {
            Some(DimAssign::Distributed(d)) => Some(d),
            _ => None,
        }
    }

    /// Number of array dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The global indices `rank` owns along array dimension `dim`: the full
    /// extent for a `*` dimension, the per-dimension `local(coord)` set for a
    /// distributed one.  Ownership of a multi-index factorises over
    /// dimensions, so the owned set of the whole array is the Cartesian
    /// product of these per-dimension sets (see [`FlatDist::local_set`]).
    pub fn owned_along(&self, dim: usize, rank: usize) -> IndexSet {
        match &self.dims[dim] {
            DimAssign::Star(n) => IndexSet::from_range(0, *n),
            DimAssign::Distributed(d) => {
                let axis = self
                    .distributed_dims
                    .iter()
                    .position(|&x| x == dim)
                    .expect("distributed dim is registered");
                let coord = self.grid.coords(rank)[axis];
                d.local_set(coord)
            }
        }
    }

    /// Stable identity of the whole decomposition — grid layout plus every
    /// per-dimension assignment — for schedule-cache keys (the multi-dim
    /// analogue of [`Distribution::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        let words = std::iter::once(0x4D44u64) // "MD" tag
            .chain(self.grid.dims().iter().map(|&d| d as u64))
            .chain(std::iter::once(u64::MAX))
            .chain(self.dims.iter().map(DimAssign::fingerprint));
        fnv1a(words)
    }
}

/// Row-major linearisation of a multi-index into `shape`.
pub fn flatten_index(shape: &[usize], idx: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), idx.len(), "index arity mismatch");
    let mut flat = 0usize;
    for (&n, &i) in shape.iter().zip(idx) {
        debug_assert!(i < n, "index {i} outside dimension extent {n}");
        flat = flat * n + i;
    }
    flat
}

/// Inverse of [`flatten_index`]: recover the multi-index from the row-major
/// linear index.
pub fn unflatten_index(shape: &[usize], flat: usize) -> Vec<usize> {
    let mut idx = vec![0usize; shape.len()];
    let mut rest = flat;
    for (k, &n) in shape.iter().enumerate().rev() {
        idx[k] = rest % n;
        rest /= n;
    }
    debug_assert_eq!(rest, 0, "flat index outside the array");
    idx
}

/// The row-major flattening of a Cartesian product of per-dimension index
/// sets: `{ flatten(i_0, …, i_{d-1}) | i_k ∈ dims[k] }`.
///
/// Because the flat index of the last dimension is contiguous, every range of
/// the last dimension's set stays one flat range; outer dimensions contribute
/// base offsets.  This is how per-dimension closed forms (owned sets, exec
/// sets, halo sets) become the flat [`IndexSet`]s the 1-D analysis machinery
/// consumes.
pub fn product_flat(dims: &[IndexSet], shape: &[usize]) -> IndexSet {
    assert_eq!(dims.len(), shape.len(), "set arity mismatch");
    assert!(!dims.is_empty(), "need at least one dimension");
    if dims.iter().any(IndexSet::is_empty) {
        return IndexSet::new();
    }
    let mut bases: Vec<usize> = vec![0];
    for (d, set) in dims.iter().enumerate().take(dims.len() - 1) {
        let stride: usize = shape[d + 1..].iter().product();
        let mut next = Vec::with_capacity(bases.len() * set.len());
        for &b in &bases {
            for i in set.iter() {
                next.push(b + i * stride);
            }
        }
        bases = next;
    }
    let last = &dims[dims.len() - 1];
    IndexSet::from_ranges(bases.iter().flat_map(|&b| {
        last.ranges()
            .iter()
            .map(move |r| IndexRange::new(b + r.start, b + r.end))
    }))
}

/// The most array dimensions a [`FlatDist`] supports (bounds the stack
/// scratch its allocation-free translation paths use).
const MAX_FLAT_DIMS: usize = 8;

/// The row-major *flattened* view of an [`ArrayDist`]: a 1-D
/// [`Distribution`] over `0..shape.product()` whose owner function, local
/// storage layout and owned sets are those of the multi-dimensional
/// decomposition.
///
/// This is the bridge between `dist by [block, *]`-style declarations and the
/// 1-D runtime: wrap the `ArrayDist` in a `FlatDist` and the inspector,
/// executor, schedule cache and redistribution all operate on the
/// multi-dimensional array unchanged — local storage is the row-major
/// linearisation of the rank's local shape, exactly how a compiler would lay
/// out the local piece.
///
/// ## Memoised translation
///
/// [`FlatDist::owner`] and [`FlatDist::local_index`] sit on the inspector's
/// innermost path (one locality check *per reference*) and on the executor's
/// fetch path, so the definitional route — unflatten into a fresh `Vec`,
/// dispatch per-dimension owner calls, re-flatten through the owner's local
/// shape — is construction-time work, not per-call work.  `new` memoises,
/// per array dimension, the owner's **rank contribution** (the per-dimension
/// owner composed with the grid stride) and the **local coordinate** of
/// every global coordinate, plus each rank's local row-major strides; both
/// calls then strength-reduce to one div-mod chain over the shape with table
/// lookups — no allocation, no virtual dispatch.  The tables cost
/// `O(Σ_d extent_d)` words, negligible next to the array itself.
#[derive(Debug, Clone)]
pub struct FlatDist {
    array: ArrayDist,
    shape: Vec<usize>,
    n: usize,
    local_shapes: Vec<Vec<usize>>,
    local_counts: Vec<usize>,
    fingerprint: u64,
    /// Per array dimension: each global coordinate's contribution to the
    /// owning rank (per-dimension owner × grid stride); `None` for `*`
    /// dimensions, which contribute nothing.
    rank_contrib: Vec<Option<Vec<usize>>>,
    /// Per array dimension: the local coordinate of each global coordinate;
    /// `None` for `*` dimensions, where local = global.
    local_along: Vec<Option<Vec<usize>>>,
    /// Row-major strides of each rank's local shape.
    local_strides: Vec<Vec<usize>>,
}

impl FlatDist {
    /// Flatten a decomposition.  The array must have at least one distributed
    /// dimension (a replicated array has no owner function to flatten).
    pub fn new(array: ArrayDist) -> Self {
        assert!(
            !array.is_replicated(),
            "a replicated array has no owner function to flatten"
        );
        let shape = array.shape();
        assert!(
            shape.len() <= MAX_FLAT_DIMS,
            "FlatDist supports at most {MAX_FLAT_DIMS} dimensions"
        );
        let n = shape.iter().product();
        let nprocs = array.grid().len();
        let local_shapes: Vec<Vec<usize>> = (0..nprocs).map(|r| array.local_shape(r)).collect();
        let local_counts: Vec<usize> = local_shapes.iter().map(|s| s.iter().product()).collect();
        let fingerprint = array.fingerprint();

        // Memoised per-dimension owner/local tables (see the type docs).
        let mut rank_contrib: Vec<Option<Vec<usize>>> = vec![None; shape.len()];
        let mut local_along: Vec<Option<Vec<usize>>> = vec![None; shape.len()];
        let mut axis = 0usize;
        for (d, assign) in array.dims().iter().enumerate() {
            if let DimAssign::Distributed(dist) = assign {
                let gstride: usize = array.grid().dims()[axis + 1..].iter().product();
                rank_contrib[d] = Some((0..dist.n()).map(|i| dist.owner(i) * gstride).collect());
                local_along[d] = Some((0..dist.n()).map(|i| dist.local_index(i)).collect());
                axis += 1;
            }
        }
        let local_strides: Vec<Vec<usize>> = local_shapes
            .iter()
            .map(|ls| {
                let mut strides = vec![1usize; ls.len()];
                for d in (0..ls.len().saturating_sub(1)).rev() {
                    strides[d] = strides[d + 1] * ls[d + 1];
                }
                strides
            })
            .collect();

        FlatDist {
            array,
            shape,
            n,
            local_shapes,
            local_counts,
            fingerprint,
            rank_contrib,
            local_along,
            local_strides,
        }
    }

    /// One reverse div-mod pass over the shape: recover the multi-index
    /// digits into `digits` (stack scratch) and accumulate the owning rank
    /// from the memoised per-dimension contributions.
    #[inline]
    fn digits_and_rank(&self, flat: usize, digits: &mut [usize; MAX_FLAT_DIMS]) -> usize {
        let mut rest = flat;
        let mut rank = 0usize;
        for d in (0..self.shape.len()).rev() {
            let digit = rest % self.shape[d];
            rest /= self.shape[d];
            digits[d] = digit;
            if let Some(contrib) = &self.rank_contrib[d] {
                rank += contrib[digit];
            }
        }
        debug_assert_eq!(rest, 0, "flat index outside the array");
        rank
    }

    /// The underlying multi-dimensional decomposition.
    pub fn array(&self) -> &ArrayDist {
        &self.array
    }

    /// Shape of the global array.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of array dimensions.
    pub fn ndims(&self) -> usize {
        self.shape.len()
    }

    /// Row-major flat index of a global multi-index.
    pub fn flatten(&self, idx: &[usize]) -> usize {
        flatten_index(&self.shape, idx)
    }

    /// Global multi-index of a row-major flat index.
    pub fn unflatten(&self, flat: usize) -> Vec<usize> {
        unflatten_index(&self.shape, flat)
    }
}

impl Distribution for FlatDist {
    fn n(&self) -> usize {
        self.n
    }

    fn nprocs(&self) -> usize {
        self.array.grid().len()
    }

    fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        let mut digits = [0usize; MAX_FLAT_DIMS];
        self.digits_and_rank(i, &mut digits)
    }

    fn local_index(&self, i: usize) -> usize {
        debug_assert!(i < self.n, "index {i} out of bounds (n = {})", self.n);
        let mut digits = [0usize; MAX_FLAT_DIMS];
        let rank = self.digits_and_rank(i, &mut digits);
        let strides = &self.local_strides[rank];
        let mut l = 0usize;
        for d in 0..self.shape.len() {
            let local = match &self.local_along[d] {
                Some(table) => table[digits[d]],
                None => digits[d],
            };
            l += local * strides[d];
        }
        l
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        let local = unflatten_index(&self.local_shapes[rank], l);
        let idx = self.array.local_to_global(rank, &local);
        self.flatten(&idx)
    }

    fn local_count(&self, rank: usize) -> usize {
        self.local_counts[rank]
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        let dims: Vec<IndexSet> = (0..self.shape.len())
            .map(|d| self.array.owned_along(d, rank))
            .collect();
        product_flat(&dims, &self.shape)
    }

    fn kind_name(&self) -> &'static str {
        "multi-dim"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_1d_owner_and_roundtrip() {
        let a = ArrayDist::block_1d(100, 4);
        assert_eq!(a.shape(), vec![100]);
        assert_eq!(a.owner(&[0]), Some(0));
        assert_eq!(a.owner(&[99]), Some(3));
        assert_eq!(a.local_shape(1), vec![25]);
        let l = a.global_to_local(&[30]);
        assert_eq!(a.local_to_global(1, &l), vec![30]);
    }

    #[test]
    fn block_rows_keeps_columns_together() {
        let a = ArrayDist::block_rows(16, 4, 4);
        assert_eq!(a.shape(), vec![16, 4]);
        // Whole rows live on one processor regardless of column.
        for j in 0..4 {
            assert_eq!(a.owner(&[5, j]), Some(1));
        }
        assert_eq!(a.local_shape(2), vec![4, 4]);
        assert_eq!(a.local_len(2), 16);
        let l = a.global_to_local(&[9, 3]);
        assert_eq!(l, vec![1, 3]);
        assert_eq!(a.local_to_global(2, &l), vec![9, 3]);
    }

    #[test]
    fn replicated_arrays_have_no_owner() {
        let a = ArrayDist::replicated(ProcGrid::new_1d(4), &[10, 10]);
        assert!(a.is_replicated());
        assert_eq!(a.owner(&[3, 3]), None);
        assert!(a.is_local(2, &[3, 3]));
        assert_eq!(a.local_shape(0), vec![10, 10]);
    }

    #[test]
    fn two_dimensional_grid_distribution() {
        // A 6x6 array distributed [block, cyclic] over a 2x3 grid.
        let grid = ProcGrid::new_2d(2, 3);
        let a = ArrayDist::new(
            grid,
            vec![
                DimAssign::Distributed(DimDist::block(6, 2)),
                DimAssign::Distributed(DimDist::cyclic(6, 3)),
            ],
        );
        // Element (4, 5): row block 1, column 5 % 3 = 2 -> rank 1*3+2 = 5.
        assert_eq!(a.owner(&[4, 5]), Some(5));
        // Every element has exactly one owner and roundtrips.
        let mut counts = [0usize; 6];
        for i in 0..6 {
            for j in 0..6 {
                let o = a.owner(&[i, j]).unwrap();
                counts[o] += 1;
                let l = a.global_to_local(&[i, j]);
                assert_eq!(a.local_to_global(o, &l), vec![i, j]);
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 36);
        for (rank, &c) in counts.iter().enumerate() {
            assert_eq!(c, a.local_len(rank), "rank {rank}");
        }
    }

    #[test]
    fn cyclic_rows_matches_figure_1_array_b() {
        // Figure 1: B : array[1..N,1..M] dist by [cyclic, *].
        let a = ArrayDist::new(
            ProcGrid::new_1d(10),
            vec![
                DimAssign::Distributed(DimDist::cyclic(100, 10)),
                DimAssign::Star(7),
            ],
        );
        // "processor 1 would store elements in rows 1, 11, 21, ..." (0-based:
        // processor 0 stores rows 0, 10, 20, ...).
        assert_eq!(a.owner(&[0, 3]), Some(0));
        assert_eq!(a.owner(&[10, 6]), Some(0));
        assert_eq!(a.owner(&[21, 0]), Some(1));
        assert_eq!(a.local_shape(0), vec![10, 7]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_grid_dimensionality_panics() {
        ArrayDist::new(
            ProcGrid::new_2d(2, 2),
            vec![DimAssign::Distributed(DimDist::block(10, 4))],
        );
    }

    #[test]
    #[should_panic(expected = "has extent")]
    fn mismatched_processor_count_panics() {
        ArrayDist::new(
            ProcGrid::new_1d(4),
            vec![DimAssign::Distributed(DimDist::block(10, 5))],
        );
    }

    #[test]
    fn flatten_and_unflatten_roundtrip() {
        let shape = [3usize, 4, 5];
        for flat in 0..60 {
            let idx = unflatten_index(&shape, flat);
            assert_eq!(flatten_index(&shape, &idx), flat);
        }
        assert_eq!(flatten_index(&shape, &[2, 3, 4]), 59);
        assert_eq!(unflatten_index(&shape, 27), vec![1, 1, 2]);
    }

    #[test]
    fn product_flat_matches_explicit_enumeration() {
        let shape = [4usize, 6];
        let rows = IndexSet::from_ranges([IndexRange::new(0, 2), IndexRange::new(3, 4)]);
        let cols = IndexSet::from_ranges([IndexRange::new(1, 3), IndexRange::new(5, 6)]);
        let flat = product_flat(&[rows.clone(), cols.clone()], &shape);
        let mut expected = Vec::new();
        for i in rows.iter() {
            for j in cols.iter() {
                expected.push(i * 6 + j);
            }
        }
        expected.sort_unstable();
        assert_eq!(flat.iter().collect::<Vec<_>>(), expected);
        // An empty factor annihilates the product.
        assert!(product_flat(&[rows, IndexSet::new()], &shape).is_empty());
    }

    #[test]
    fn flat_dist_upholds_the_distribution_invariants() {
        let cases = vec![
            FlatDist::new(ArrayDist::block_1d(23, 4)),
            FlatDist::new(ArrayDist::block_rows(10, 7, 3)),
            FlatDist::new(ArrayDist::block_cols(10, 7, 3)),
            FlatDist::new(ArrayDist::new(
                ProcGrid::new_2d(2, 3),
                vec![
                    DimAssign::Distributed(DimDist::block(8, 2)),
                    DimAssign::Distributed(DimDist::cyclic(9, 3)),
                ],
            )),
        ];
        for d in cases {
            let n = d.n();
            let p = d.nprocs();
            let mut seen = vec![false; n];
            for rank in 0..p {
                let set = d.local_set(rank);
                assert_eq!(set.len(), d.local_count(rank), "count vs set, rank {rank}");
                for g in set.iter() {
                    assert!(!seen[g], "flat index {g} owned twice");
                    seen[g] = true;
                    assert_eq!(d.owner(g), rank);
                    let l = d.local_index(g);
                    assert!(l < d.local_count(rank));
                    assert_eq!(d.global_index(rank, l), g, "roundtrip of {g}");
                }
            }
            assert!(seen.into_iter().all(|s| s), "some flat index has no owner");
        }
    }

    #[test]
    fn flat_block_rows_local_storage_is_row_major() {
        // [block, *] on 8x3 over 4 procs: rank 1 owns rows 2..4, stored as
        // two contiguous rows of 3.
        let d = FlatDist::new(ArrayDist::block_rows(8, 3, 4));
        assert_eq!(d.local_count(1), 6);
        assert_eq!(d.local_index(d.flatten(&[2, 0])), 0);
        assert_eq!(d.local_index(d.flatten(&[2, 2])), 2);
        assert_eq!(d.local_index(d.flatten(&[3, 1])), 4);
        // The owned flat set is one contiguous range (whole rows).
        assert_eq!(d.local_set(1).range_count(), 1);
        // [*, block] on the same array: rank owns whole columns, so the
        // owned flat set is one strided range per row.
        let d = FlatDist::new(ArrayDist::block_cols(8, 12, 4));
        assert_eq!(d.local_set(1).range_count(), 8);
        assert_eq!(d.owner(d.flatten(&[5, 4])), 1);
        assert_eq!(d.local_index(d.flatten(&[5, 4])), 5 * 3 + 1);
    }

    #[test]
    fn memoised_owner_tables_agree_with_the_definitional_route() {
        // The memoised owner/local_index strength reduction must be
        // observationally identical to the definitional computation
        // (unflatten → per-dimension owner → grid rank → local flatten).
        let cases = vec![
            FlatDist::new(ArrayDist::block_rows(13, 7, 4)),
            FlatDist::new(ArrayDist::block_cols(9, 11, 3)),
            FlatDist::new(ArrayDist::new(
                ProcGrid::new_2d(2, 3),
                vec![
                    DimAssign::Distributed(DimDist::block(10, 2)),
                    DimAssign::Distributed(DimDist::cyclic(7, 3)),
                ],
            )),
            FlatDist::new(ArrayDist::new(
                ProcGrid::new(&[2, 2]),
                vec![
                    DimAssign::Distributed(DimDist::cyclic(5, 2)),
                    DimAssign::Star(4),
                    DimAssign::Distributed(DimDist::block_cyclic(9, 2, 2)),
                ],
            )),
        ];
        for d in cases {
            for i in 0..d.n() {
                let idx = d.unflatten(i);
                let rank = d.array().owner(&idx).expect("not replicated");
                assert_eq!(d.owner(i), rank, "owner of flat {i}");
                let local = d.array().global_to_local(&idx);
                let definitional = flatten_index(&d.array().local_shape(rank), &local);
                assert_eq!(d.local_index(i), definitional, "local_index of flat {i}");
            }
        }
    }

    #[test]
    fn fingerprints_distinguish_decompositions() {
        let fps = [
            ArrayDist::block_rows(16, 4, 4).fingerprint(),
            ArrayDist::block_cols(16, 4, 4).fingerprint(),
            ArrayDist::block_rows(16, 5, 4).fingerprint(),
            ArrayDist::block_1d(64, 4).fingerprint(),
            ArrayDist::replicated(ProcGrid::new_1d(4), &[16, 4]).fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "fingerprints {i} and {j} collide");
                }
            }
        }
        assert_eq!(
            ArrayDist::block_rows(16, 4, 4).fingerprint(),
            ArrayDist::block_rows(16, 4, 4).fingerprint()
        );
        assert_eq!(
            FlatDist::new(ArrayDist::block_rows(16, 4, 4)).fingerprint(),
            ArrayDist::block_rows(16, 4, 4).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "replicated")]
    fn flattening_a_replicated_array_panics() {
        FlatDist::new(ArrayDist::replicated(ProcGrid::new_1d(4), &[10]));
    }
}
