//! Processor arrays ("real estate agent", paper §2.1).
//!
//! A [`ProcGrid`] is the declared arrangement of physical processors that
//! data arrays are distributed across — `processors Procs: array[1..P]` in
//! Kali syntax.  The paper lets the run-time system choose `P` dynamically
//! ("the largest feasible P"); [`ProcGrid::largest_1d`] mirrors that.

/// A (possibly multi-dimensional) array of processors.
///
/// Ranks are linearised in row-major order: for a `[rows, cols]` grid the
/// processor at coordinates `(r, c)` has rank `r * cols + c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcGrid {
    dims: Vec<usize>,
}

impl ProcGrid {
    /// A one-dimensional processor array of `p` processors.
    pub fn new_1d(p: usize) -> Self {
        assert!(p > 0, "processor array must not be empty");
        ProcGrid { dims: vec![p] }
    }

    /// A two-dimensional `rows × cols` processor array.
    pub fn new_2d(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "processor array must not be empty");
        ProcGrid {
            dims: vec![rows, cols],
        }
    }

    /// A processor array with arbitrary dimensions.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            !dims.is_empty(),
            "processor array needs at least one dimension"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "every processor-array dimension must be positive"
        );
        ProcGrid {
            dims: dims.to_vec(),
        }
    }

    /// The paper's "real estate agent": choose the largest 1-D processor
    /// array with at most `max_procs` processors out of an `available`
    /// machine — `P in 1..max_procs` with the current implementation's
    /// "largest feasible P" policy (§2.1).
    pub fn largest_1d(available: usize, max_procs: usize) -> Self {
        let p = available.min(max_procs).max(1);
        ProcGrid::new_1d(p)
    }

    /// Extents of each grid dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of grid dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of processors in the grid.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the grid contains exactly one processor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Convert a linear rank to grid coordinates (row-major).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(
            rank < self.len(),
            "rank {rank} outside grid of {}",
            self.len()
        );
        let mut rest = rank;
        let mut coords = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// Convert grid coordinates to a linear rank (row-major).
    pub fn rank(&self, coords: &[usize]) -> usize {
        assert_eq!(
            coords.len(),
            self.dims.len(),
            "coordinate arity does not match grid dimensionality"
        );
        let mut rank = 0;
        for (c, d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coordinate {c} outside dimension extent {d}");
            rank = rank * d + c;
        }
        rank
    }

    /// Extent of the given grid dimension.
    pub fn extent(&self, dim: usize) -> usize {
        self.dims[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_grid() {
        let g = ProcGrid::new_1d(8);
        assert_eq!(g.len(), 8);
        assert_eq!(g.ndims(), 1);
        assert_eq!(g.coords(5), vec![5]);
        assert_eq!(g.rank(&[5]), 5);
    }

    #[test]
    fn two_dimensional_roundtrip() {
        let g = ProcGrid::new_2d(3, 4);
        assert_eq!(g.len(), 12);
        for r in 0..12 {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
        assert_eq!(g.coords(7), vec![1, 3]);
        assert_eq!(g.rank(&[2, 0]), 8);
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let g = ProcGrid::new(&[2, 3, 4]);
        assert_eq!(g.len(), 24);
        for r in 0..24 {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn largest_1d_respects_bounds() {
        assert_eq!(ProcGrid::largest_1d(128, 64).len(), 64);
        assert_eq!(ProcGrid::largest_1d(32, 64).len(), 32);
        assert_eq!(ProcGrid::largest_1d(0, 64).len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn rank_out_of_range_panics() {
        ProcGrid::new_1d(4).coords(4);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_grid_panics() {
        ProcGrid::new_1d(0);
    }
}
