//! One-dimensional distribution patterns (paper §2.2).
//!
//! A distribution maps the index space `0..n` of one array dimension onto
//! `0..p` processors.  Kali's built-in patterns are block, cyclic and
//! block-cyclic; user-defined distributions are supported through an
//! explicit owner table.  All patterns expose the same interface — the
//! paper's `local(p)` function and its inverses — so the analysis layer
//! never needs to know which pattern it is looking at.
//!
//! Index convention: this crate is 0-based ( the paper's examples are
//! 1-based Pascal); the translation is mechanical.

use std::sync::Arc;

use crate::index::{IndexRange, IndexSet};

/// A distribution of `n` array elements over `p` processors.
///
/// Invariants guaranteed by every variant:
/// * every index in `0..n` has exactly one owner (`owner` is total),
/// * `local_sets` of distinct processors are disjoint and their union is
///   `0..n` (the paper's assumption `local(p) ∩ local(q) = ∅`),
/// * `global_index(owner(i), local_index(i)) == i`.
#[derive(Debug, Clone)]
pub enum DimDist {
    /// Contiguous blocks of `ceil(n/p)` elements: `local(p) = { i | ⌈i/B⌉ = p }`.
    Block { n: usize, p: usize },
    /// Round-robin assignment: `local(p) = { i | i ≡ p (mod P) }`.
    Cyclic { n: usize, p: usize },
    /// Blocks of `block` elements dealt round-robin to processors.
    BlockCyclic { n: usize, p: usize, block: usize },
    /// User-defined distribution given by an owner table (`owners[i]` is the
    /// owning processor of global index `i`).
    Custom(Arc<CustomDist>),
}

/// Pre-computed lookup structures for a user-defined distribution.
#[derive(Debug)]
pub struct CustomDist {
    owners: Vec<usize>,
    p: usize,
    /// Local offset of every global index within its owner's storage.
    local_of: Vec<usize>,
    /// For each processor, its owned global indices in ascending order.
    locals: Vec<Vec<usize>>,
}

impl DimDist {
    /// Block distribution of `n` elements over `p` processors.
    pub fn block(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        DimDist::Block { n, p }
    }

    /// Cyclic distribution of `n` elements over `p` processors.
    pub fn cyclic(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        DimDist::Cyclic { n, p }
    }

    /// Block-cyclic distribution with the given block size.
    pub fn block_cyclic(n: usize, p: usize, block: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        assert!(block > 0, "block size must be positive");
        DimDist::BlockCyclic { n, p, block }
    }

    /// User-defined distribution from an owner table.
    ///
    /// `owners[i]` names the processor owning global index `i`; every entry
    /// must be `< p`.
    pub fn custom(owners: Vec<usize>, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        assert!(
            owners.iter().all(|&o| o < p),
            "owner table references a processor outside 0..{p}"
        );
        let n = owners.len();
        let mut locals: Vec<Vec<usize>> = vec![Vec::new(); p];
        let mut local_of = vec![0usize; n];
        for (i, &o) in owners.iter().enumerate() {
            local_of[i] = locals[o].len();
            locals[o].push(i);
        }
        DimDist::Custom(Arc::new(CustomDist {
            owners,
            p,
            local_of,
            locals,
        }))
    }

    /// Total number of elements being distributed.
    pub fn n(&self) -> usize {
        match self {
            DimDist::Block { n, .. }
            | DimDist::Cyclic { n, .. }
            | DimDist::BlockCyclic { n, .. } => *n,
            DimDist::Custom(c) => c.owners.len(),
        }
    }

    /// Number of processors the elements are distributed over.
    pub fn nprocs(&self) -> usize {
        match self {
            DimDist::Block { p, .. }
            | DimDist::Cyclic { p, .. }
            | DimDist::BlockCyclic { p, .. } => *p,
            DimDist::Custom(c) => c.p,
        }
    }

    /// Block length of the block distribution (`⌈n/p⌉`).
    fn block_len(n: usize, p: usize) -> usize {
        n.div_ceil(p).max(1)
    }

    /// Owning processor of global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n(), "index {i} out of bounds (n = {})", self.n());
        match self {
            DimDist::Block { n, p } => (i / Self::block_len(*n, *p)).min(p - 1),
            DimDist::Cyclic { p, .. } => i % p,
            DimDist::BlockCyclic { p, block, .. } => (i / block) % p,
            DimDist::Custom(c) => c.owners[i],
        }
    }

    /// True when processor `rank` owns global index `i`.
    pub fn is_local(&self, rank: usize, i: usize) -> bool {
        self.owner(i) == rank
    }

    /// Local offset of global index `i` within its owner's storage.
    pub fn local_index(&self, i: usize) -> usize {
        match self {
            DimDist::Block { n, p } => {
                let b = Self::block_len(*n, *p);
                i - self.owner(i) * b
            }
            DimDist::Cyclic { p, .. } => i / p,
            DimDist::BlockCyclic { p, block, .. } => {
                let blk = i / block;
                (blk / p) * block + i % block
            }
            DimDist::Custom(c) => c.local_of[i],
        }
    }

    /// Global index of local offset `l` on processor `rank`.
    pub fn global_index(&self, rank: usize, l: usize) -> usize {
        match self {
            DimDist::Block { n, p } => rank * Self::block_len(*n, *p) + l,
            DimDist::Cyclic { p, .. } => l * p + rank,
            DimDist::BlockCyclic { p, block, .. } => {
                let blk_local = l / block;
                let within = l % block;
                (blk_local * p + rank) * block + within
            }
            DimDist::Custom(c) => c.locals[rank][l],
        }
    }

    /// Number of elements owned by processor `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        match self {
            DimDist::Block { n, p } => {
                let b = Self::block_len(*n, *p);
                let lo = (rank * b).min(*n);
                let hi = ((rank + 1) * b).min(*n);
                hi - lo
            }
            DimDist::Cyclic { n, p } => {
                let full = n / p;
                full + usize::from(rank < n % p)
            }
            DimDist::BlockCyclic { n, p, block } => {
                // Count elements i in 0..n with (i/block) % p == rank.
                let nblocks = n.div_ceil(*block);
                let mut count = 0usize;
                let mut blk = rank;
                while blk < nblocks {
                    let lo = blk * block;
                    let hi = ((blk + 1) * block).min(*n);
                    count += hi - lo;
                    blk += p;
                }
                count
            }
            DimDist::Custom(c) => c.locals[rank].len(),
        }
    }

    /// The paper's `local(p)`: the set of global indices owned by `rank`.
    pub fn local_set(&self, rank: usize) -> IndexSet {
        match self {
            DimDist::Block { n, p } => {
                let b = Self::block_len(*n, *p);
                let lo = (rank * b).min(*n);
                let hi = ((rank + 1) * b).min(*n);
                IndexSet::from_range(lo, hi)
            }
            DimDist::Cyclic { n, p } => IndexSet::from_indices((rank..*n).step_by(*p)),
            DimDist::BlockCyclic { n, p, block } => {
                let nblocks = n.div_ceil(*block);
                let mut ranges = Vec::new();
                let mut blk = rank;
                while blk < nblocks {
                    let lo = blk * block;
                    let hi = ((blk + 1) * block).min(*n);
                    ranges.push(IndexRange::new(lo, hi));
                    blk += p;
                }
                IndexSet::from_ranges(ranges)
            }
            DimDist::Custom(c) => IndexSet::from_indices(c.locals[rank].iter().copied()),
        }
    }

    /// A short name for reports ("block", "cyclic", …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            DimDist::Block { .. } => "block",
            DimDist::Cyclic { .. } => "cyclic",
            DimDist::BlockCyclic { .. } => "block-cyclic",
            DimDist::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(d: &DimDist) {
        let n = d.n();
        let p = d.nprocs();
        // Every index owned exactly once; local/global roundtrip holds.
        let mut seen = vec![false; n];
        for rank in 0..p {
            let set = d.local_set(rank);
            assert_eq!(
                set.len(),
                d.local_count(rank),
                "count vs set for rank {rank}"
            );
            for i in set.iter() {
                assert!(!seen[i], "index {i} owned twice");
                seen[i] = true;
                assert_eq!(d.owner(i), rank);
                assert!(d.is_local(rank, i));
                let l = d.local_index(i);
                assert!(l < d.local_count(rank));
                assert_eq!(d.global_index(rank, l), i);
            }
        }
        assert!(seen.into_iter().all(|s| s), "some index has no owner");
        // Total count adds up.
        let total: usize = (0..p).map(|r| d.local_count(r)).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn block_distribution_matches_paper_definition() {
        // local_A(p) = { i | ceil(i/B) = p } with B = ceil(N/P).
        let d = DimDist::block(100, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(24), 0);
        assert_eq!(d.owner(25), 1);
        assert_eq!(d.owner(99), 3);
        assert_eq!(d.local_count(0), 25);
        check_invariants(&d);
    }

    #[test]
    fn block_with_ragged_tail() {
        let d = DimDist::block(10, 4); // blocks of 3: 3,3,3,1
        assert_eq!(d.local_count(0), 3);
        assert_eq!(d.local_count(3), 1);
        check_invariants(&d);
        let d = DimDist::block(3, 8); // more processors than elements
        check_invariants(&d);
    }

    #[test]
    fn cyclic_distribution_matches_paper_definition() {
        // local_B(p) = { i | i ≡ p (mod P) }.
        let d = DimDist::cyclic(10, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_count(0), 4);
        assert_eq!(d.local_count(1), 3);
        check_invariants(&d);
    }

    #[test]
    fn block_cyclic_distribution() {
        let d = DimDist::block_cyclic(20, 3, 2);
        // Blocks of 2 dealt round robin: [0,1]->0, [2,3]->1, [4,5]->2, [6,7]->0 ...
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 1);
        assert_eq!(d.owner(4), 2);
        assert_eq!(d.owner(6), 0);
        check_invariants(&d);
        // Ragged final block.
        check_invariants(&DimDist::block_cyclic(19, 3, 4));
    }

    #[test]
    fn custom_distribution_roundtrips() {
        let owners = vec![2, 0, 1, 1, 0, 2, 2, 0];
        let d = DimDist::custom(owners.clone(), 3);
        for (i, &o) in owners.iter().enumerate() {
            assert_eq!(d.owner(i), o);
        }
        check_invariants(&d);
    }

    #[test]
    fn degenerate_single_processor() {
        for d in [
            DimDist::block(17, 1),
            DimDist::cyclic(17, 1),
            DimDist::block_cyclic(17, 1, 4),
        ] {
            assert_eq!(d.local_count(0), 17);
            check_invariants(&d);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn custom_rejects_bad_owner() {
        DimDist::custom(vec![0, 5], 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_dist() -> impl Strategy<Value = DimDist> {
            (1usize..200, 1usize..17, 1usize..8, 0usize..4).prop_map(|(n, p, block, kind)| {
                match kind {
                    0 => DimDist::block(n, p),
                    1 => DimDist::cyclic(n, p),
                    2 => DimDist::block_cyclic(n, p, block),
                    _ => {
                        let owners = (0..n).map(|i| (i * 7 + 3) % p).collect();
                        DimDist::custom(owners, p)
                    }
                }
            })
        }

        proptest! {
            #[test]
            fn ownership_partitions_the_index_space(d in arb_dist()) {
                check_invariants(&d);
            }

            #[test]
            fn local_sets_are_pairwise_disjoint(d in arb_dist()) {
                let p = d.nprocs();
                for a in 0..p.min(6) {
                    for b in (a + 1)..p.min(6) {
                        prop_assert!(d.local_set(a).is_disjoint(&d.local_set(b)));
                    }
                }
            }
        }
    }
}
