//! [`DimDist`]: the shared handle to one dimension's distribution.
//!
//! A distribution maps the index space `0..n` of one array dimension onto
//! `0..p` processors.  Kali's built-in patterns are block, cyclic and
//! block-cyclic; user-defined distributions are supported through an
//! explicit owner table ([`IrregularDist`]).  All patterns implement the
//! [`Distribution`] trait — the paper's `local(p)` function and its
//! inverses — so the analysis layer never needs to know which pattern it is
//! looking at.
//!
//! `DimDist` is a cheaply clonable, type-erased handle (`Arc<dyn
//! Distribution>`): runtime structures that *store* a distribution
//! (`DistArray`, `ParallelLoop`, `LoopSpec`) hold a `DimDist`, while runtime entry
//! points that merely *consult* one (`run_inspector`, `execute_sweep`,
//! `redistribute`) are generic over `D: Distribution + ?Sized` and accept
//! either a `DimDist` or any concrete implementation directly.
//!
//! Index convention: this crate is 0-based (the paper's examples are
//! 1-based Pascal); the translation is mechanical.

use std::sync::Arc;

use crate::distribution::{BlockCyclicDist, BlockDist, CyclicDist, Distribution};
use crate::index::IndexSet;
use crate::irregular::IrregularDist;

/// A distribution of `n` array elements over `p` processors.
///
/// Invariants guaranteed by every implementation (see [`Distribution`]):
/// * every index in `0..n` has exactly one owner (`owner` is total),
/// * `local_set`s of distinct processors are disjoint and their union is
///   `0..n` (the paper's assumption `local(p) ∩ local(q) = ∅`),
/// * `global_index(owner(i), local_index(i)) == i`.
#[derive(Clone)]
pub struct DimDist {
    inner: Arc<dyn Distribution>,
}

impl std::fmt::Debug for DimDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl DimDist {
    /// Wrap any [`Distribution`] implementation in a shared handle.
    pub fn new(dist: impl Distribution + 'static) -> Self {
        DimDist {
            inner: Arc::new(dist),
        }
    }

    /// Wrap an already shared distribution.
    pub fn from_arc(inner: Arc<dyn Distribution>) -> Self {
        DimDist { inner }
    }

    /// Block distribution of `n` elements over `p` processors.
    pub fn block(n: usize, p: usize) -> Self {
        DimDist::new(BlockDist::new(n, p))
    }

    /// Cyclic distribution of `n` elements over `p` processors.
    pub fn cyclic(n: usize, p: usize) -> Self {
        DimDist::new(CyclicDist::new(n, p))
    }

    /// Block-cyclic distribution with the given block size.
    pub fn block_cyclic(n: usize, p: usize, block: usize) -> Self {
        DimDist::new(BlockCyclicDist::new(n, p, block))
    }

    /// User-defined distribution from an owner table.
    ///
    /// `owners[i]` names the processor owning global index `i`; every entry
    /// must be `< p`.  Equivalent to wrapping [`IrregularDist::from_owners`].
    pub fn custom(owners: Vec<usize>, p: usize) -> Self {
        DimDist::new(IrregularDist::from_owners(owners, p))
    }

    /// Wrap an [`IrregularDist`] (e.g. one produced by a mesh partitioner or
    /// assembled collectively from distributed owner-map slices).
    pub fn irregular(dist: IrregularDist) -> Self {
        DimDist::new(dist)
    }

    /// The row-major flattened view of a multi-dimensional decomposition
    /// (`dist by [block, *]` and friends), as a 1-D distribution handle —
    /// see [`FlatDist`](crate::FlatDist).
    pub fn flattened(array: crate::ArrayDist) -> Self {
        DimDist::new(crate::FlatDist::new(array))
    }

    /// Total number of elements being distributed.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Number of processors the elements are distributed over.
    pub fn nprocs(&self) -> usize {
        self.inner.nprocs()
    }

    /// Owning processor of global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.inner.owner(i)
    }

    /// True when processor `rank` owns global index `i`.
    pub fn is_local(&self, rank: usize, i: usize) -> bool {
        self.inner.is_local(rank, i)
    }

    /// Local offset of global index `i` within its owner's storage.
    pub fn local_index(&self, i: usize) -> usize {
        self.inner.local_index(i)
    }

    /// Global index of local offset `l` on processor `rank`.
    pub fn global_index(&self, rank: usize, l: usize) -> usize {
        self.inner.global_index(rank, l)
    }

    /// Number of elements owned by processor `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        self.inner.local_count(rank)
    }

    /// The paper's `local(p)`: the set of global indices owned by `rank`.
    pub fn local_set(&self, rank: usize) -> IndexSet {
        self.inner.local_set(rank)
    }

    /// A short name for reports ("block", "cyclic", …).
    pub fn kind_name(&self) -> &'static str {
        self.inner.kind_name()
    }

    /// Stable identity of the index→owner mapping (see
    /// [`Distribution::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    /// Borrow the underlying trait object.
    pub fn as_dyn(&self) -> &dyn Distribution {
        &*self.inner
    }
}

/// The handle is itself a [`Distribution`], so `DimDist` flows through every
/// generic runtime entry point unchanged.  Delegates to the inherent
/// methods, which are the single forwarding site to the inner trait object.
impl Distribution for DimDist {
    fn n(&self) -> usize {
        DimDist::n(self)
    }

    fn nprocs(&self) -> usize {
        DimDist::nprocs(self)
    }

    fn owner(&self, i: usize) -> usize {
        DimDist::owner(self, i)
    }

    fn local_index(&self, i: usize) -> usize {
        DimDist::local_index(self, i)
    }

    fn global_index(&self, rank: usize, l: usize) -> usize {
        DimDist::global_index(self, rank, l)
    }

    fn local_count(&self, rank: usize) -> usize {
        DimDist::local_count(self, rank)
    }

    fn local_set(&self, rank: usize) -> IndexSet {
        DimDist::local_set(self, rank)
    }

    fn is_local(&self, rank: usize, i: usize) -> bool {
        DimDist::is_local(self, rank, i)
    }

    fn kind_name(&self) -> &'static str {
        DimDist::kind_name(self)
    }

    fn fingerprint(&self) -> u64 {
        DimDist::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(d: &DimDist) {
        let n = d.n();
        let p = d.nprocs();
        // Every index owned exactly once; local/global roundtrip holds.
        let mut seen = vec![false; n];
        for rank in 0..p {
            let set = d.local_set(rank);
            assert_eq!(
                set.len(),
                d.local_count(rank),
                "count vs set for rank {rank}"
            );
            for i in set.iter() {
                assert!(!seen[i], "index {i} owned twice");
                seen[i] = true;
                assert_eq!(d.owner(i), rank);
                assert!(d.is_local(rank, i));
                let l = d.local_index(i);
                assert!(l < d.local_count(rank));
                assert_eq!(d.global_index(rank, l), i);
            }
        }
        assert!(seen.into_iter().all(|s| s), "some index has no owner");
        // Total count adds up.
        let total: usize = (0..p).map(|r| d.local_count(r)).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn block_distribution_matches_paper_definition() {
        // local_A(p) = { i | ceil(i/B) = p } with B = ceil(N/P).
        let d = DimDist::block(100, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(24), 0);
        assert_eq!(d.owner(25), 1);
        assert_eq!(d.owner(99), 3);
        assert_eq!(d.local_count(0), 25);
        check_invariants(&d);
    }

    #[test]
    fn block_with_ragged_tail() {
        let d = DimDist::block(10, 4); // blocks of 3: 3,3,3,1
        assert_eq!(d.local_count(0), 3);
        assert_eq!(d.local_count(3), 1);
        check_invariants(&d);
        let d = DimDist::block(3, 8); // more processors than elements
        check_invariants(&d);
    }

    #[test]
    fn cyclic_distribution_matches_paper_definition() {
        // local_B(p) = { i | i ≡ p (mod P) }.
        let d = DimDist::cyclic(10, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_count(0), 4);
        assert_eq!(d.local_count(1), 3);
        check_invariants(&d);
    }

    #[test]
    fn block_cyclic_distribution() {
        let d = DimDist::block_cyclic(20, 3, 2);
        // Blocks of 2 dealt round robin: [0,1]->0, [2,3]->1, [4,5]->2, [6,7]->0 ...
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 1);
        assert_eq!(d.owner(4), 2);
        assert_eq!(d.owner(6), 0);
        check_invariants(&d);
        // Ragged final block.
        check_invariants(&DimDist::block_cyclic(19, 3, 4));
    }

    #[test]
    fn custom_distribution_roundtrips() {
        let owners = vec![2, 0, 1, 1, 0, 2, 2, 0];
        let d = DimDist::custom(owners.clone(), 3);
        for (i, &o) in owners.iter().enumerate() {
            assert_eq!(d.owner(i), o);
        }
        assert_eq!(d.kind_name(), "irregular");
        check_invariants(&d);
    }

    #[test]
    fn degenerate_single_processor() {
        for d in [
            DimDist::block(17, 1),
            DimDist::cyclic(17, 1),
            DimDist::block_cyclic(17, 1, 4),
        ] {
            assert_eq!(d.local_count(0), 17);
            check_invariants(&d);
        }
    }

    #[test]
    fn clones_share_the_same_distribution() {
        let d = DimDist::custom((0..64).map(|i| i % 5).collect(), 5);
        let e = d.clone();
        assert_eq!(d.fingerprint(), e.fingerprint());
        assert_eq!(d.local_set(3), e.local_set(3));
    }

    #[test]
    fn handle_accepts_user_supplied_distributions() {
        // A distribution type defined outside this crate's built-ins plugs
        // straight into the handle — the point of the trait refactor.
        #[derive(Debug)]
        struct EvenOdd {
            n: usize,
        }
        impl Distribution for EvenOdd {
            fn n(&self) -> usize {
                self.n
            }
            fn nprocs(&self) -> usize {
                2
            }
            fn owner(&self, i: usize) -> usize {
                i % 2
            }
            fn local_index(&self, i: usize) -> usize {
                i / 2
            }
            fn global_index(&self, rank: usize, l: usize) -> usize {
                2 * l + rank
            }
            fn local_count(&self, rank: usize) -> usize {
                self.n / 2 + usize::from(rank < self.n % 2)
            }
            fn kind_name(&self) -> &'static str {
                "even-odd"
            }
            fn fingerprint(&self) -> u64 {
                crate::distribution::fnv1a([99, self.n as u64])
            }
        }
        let d = DimDist::new(EvenOdd { n: 11 });
        assert_eq!(d.kind_name(), "even-odd");
        check_invariants(&d);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn custom_rejects_bad_owner() {
        DimDist::custom(vec![0, 5], 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_dist() -> impl Strategy<Value = DimDist> {
            (1usize..200, 1usize..17, 1usize..8, 0usize..4).prop_map(|(n, p, block, kind)| {
                match kind {
                    0 => DimDist::block(n, p),
                    1 => DimDist::cyclic(n, p),
                    2 => DimDist::block_cyclic(n, p, block),
                    _ => {
                        let owners = (0..n).map(|i| (i * 7 + 3) % p).collect();
                        DimDist::custom(owners, p)
                    }
                }
            })
        }

        proptest! {
            #[test]
            fn ownership_partitions_the_index_space(d in arb_dist()) {
                check_invariants(&d);
            }

            #[test]
            fn local_sets_are_pairwise_disjoint(d in arb_dist()) {
                let p = d.nprocs();
                for a in 0..p.min(6) {
                    for b in (a + 1)..p.min(6) {
                        prop_assert!(d.local_set(a).is_disjoint(&d.local_set(b)));
                    }
                }
            }
        }
    }
}
