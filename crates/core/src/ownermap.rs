//! Distributed owner maps: translation tables that are themselves
//! distributed, with collective resolution.
//!
//! A regular distribution answers `owner(i)` with arithmetic; an irregular
//! one needs a table.  On a real distributed-memory machine that table is
//! *itself* a distributed array — no processor holds the whole mapping while
//! it is being produced (a mesh partitioner emits each node's owner next to
//! the node's data).  This module provides the two operations the runtime
//! needs on such a table, both collective, in the run-time-translation-table
//! style of the PARTI/CHAOS inspector–executor systems that extended the
//! paper's approach to general distributions:
//!
//! * [`DistOwnerMap::lookup`] — resolve the owners of arbitrary global
//!   indices by routing each query to the processor holding that table
//!   entry and routing the answer back (two all-to-all exchanges — the
//!   run-time equivalent of evaluating the paper's compile-time `owner`
//!   function);
//! * [`DistOwnerMap::assemble`] — replicate the table with one allgather
//!   and build an [`IrregularDist`] whose translation tables are then
//!   consulted locally.  This is the right trade-off for the runtime's
//!   hot paths (the inspector calls `owner` once per reference), and is the
//!   path the partitioned solvers use.

use distrib::{DimDist, IrregularDist};

use crate::process::{tags, Process};

/// One processor's slice of a distributed owner map.
///
/// The table for `n` elements is block-distributed over the machine: rank
/// `r` holds the owners of the global indices in `block(n, p).local_set(r)`.
/// Block layout keeps the slices contiguous and in rank order, so assembly
/// is a plain concatenation.
#[derive(Debug, Clone)]
pub struct DistOwnerMap {
    /// Distribution of the table itself (always block).
    table_dist: DimDist,
    /// Owners of this rank's slice of the index space, in ascending global
    /// index order.
    local_entries: Vec<usize>,
    rank: usize,
}

impl DistOwnerMap {
    /// Wrap this rank's slice of the owner map.  `local_entries[k]` is the
    /// owner of global index `block(n, nprocs).global_index(rank, k)`.
    pub fn new(rank: usize, nprocs: usize, n: usize, local_entries: Vec<usize>) -> Self {
        let table_dist = DimDist::block(n, nprocs);
        assert_eq!(
            local_entries.len(),
            table_dist.local_count(rank),
            "owner-map slice does not match the block layout of the table"
        );
        assert!(
            local_entries.iter().all(|&o| o < nprocs),
            "owner-map slice references a processor outside 0..{nprocs}"
        );
        DistOwnerMap {
            table_dist,
            local_entries,
            rank,
        }
    }

    /// Take this rank's block slice out of a full owner map (useful when a
    /// deterministic partitioner has been run redundantly on every rank, or
    /// in tests).
    pub fn from_global(rank: usize, nprocs: usize, owners: &[usize]) -> Self {
        let table_dist = DimDist::block(owners.len(), nprocs);
        let local_entries = table_dist
            .local_set(rank)
            .iter()
            .map(|g| owners[g])
            .collect();
        DistOwnerMap::new(rank, nprocs, owners.len(), local_entries)
    }

    /// Number of elements the owner map covers.
    pub fn n(&self) -> usize {
        self.table_dist.n()
    }

    /// Resolve the owners of `queries` (arbitrary global indices) with a
    /// collective lookup.  Must be called by every processor of the machine
    /// (with possibly different, possibly empty query lists).
    ///
    /// Round 1 routes each query to the processor holding that table entry
    /// (an all-to-all exchange — the crystal router on the simulator); round
    /// 2 sends each origin one answer message per consulted home.  Both
    /// sides derive the message pattern from the same block layout of the
    /// table, so no handshaking is needed.  Results are returned in query
    /// order.
    pub fn lookup<P: Process>(&self, proc: &mut P, queries: &[usize]) -> Vec<usize> {
        let rank = proc.rank();
        debug_assert_eq!(rank, self.rank, "owner map belongs to a different rank");
        let n = self.n();

        // Round 1: (home of table entry, (origin, position, query)).  Record
        // which homes we consult — they will each answer with one message.
        let mut expect_from: Vec<usize> = Vec::new();
        let outgoing: Vec<(usize, (usize, usize, usize))> = queries
            .iter()
            .enumerate()
            .map(|(pos, &g)| {
                assert!(g < n, "query index {g} out of bounds (n = {n})");
                let home = self.table_dist.owner(g);
                expect_from.push(home);
                (home, (rank, pos, g))
            })
            .collect();
        expect_from.sort_unstable();
        expect_from.dedup();
        let incoming = proc.exchange(outgoing);
        proc.charge_record_handling(incoming.len());

        // Round 2: answer each query from the local slice and send the
        // answers back, one message per origin, in ascending origin order.
        let mut per_origin: Vec<Vec<(usize, usize)>> = vec![Vec::new(); proc.nprocs()];
        for (origin, pos, g) in incoming {
            let owner = self.local_entries[self.table_dist.local_index(g)];
            per_origin[origin].push((pos, owner));
        }
        let tag = tags::ownermap_tag(0);
        for (origin, answers) in per_origin.into_iter().enumerate() {
            if !answers.is_empty() {
                proc.send_vec(origin, tag, answers);
            }
        }
        let mut owners = vec![usize::MAX; queries.len()];
        for home in expect_from {
            let answers: Vec<(usize, usize)> = proc.recv_vec(home, tag);
            for (pos, owner) in answers {
                owners[pos] = owner;
            }
        }
        debug_assert!(
            owners.iter().all(|&o| o != usize::MAX),
            "a query went unanswered"
        );
        owners
    }

    /// Replicate the distributed table onto every processor (one allgather)
    /// and build the [`IrregularDist`] it describes.
    ///
    /// Must be called collectively; every rank receives an identical
    /// distribution (same fingerprint), which is what the schedule cache
    /// and the SPMD hit/miss lockstep rely on.
    pub fn assemble<P: Process>(&self, proc: &mut P) -> IrregularDist {
        let pieces = proc.allgather(self.local_entries.clone());
        // Block slices are contiguous and ordered by rank: concatenate.
        let mut owners = Vec::with_capacity(self.n());
        for piece in pieces {
            owners.extend(piece);
        }
        assert_eq!(owners.len(), self.n(), "assembled table has wrong length");
        proc.charge_record_handling(owners.len());
        IrregularDist::from_owners(owners, proc.nprocs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::Distribution;
    use dmsim::{CostModel, Machine};

    fn scrambled_owners(n: usize, p: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 13 + 5) % p).collect()
    }

    #[test]
    fn assemble_reconstructs_the_full_table_on_every_rank() {
        let n = 53;
        let p = 4;
        let owners = scrambled_owners(n, p);
        let machine = Machine::new(p, CostModel::ideal());
        let expected = owners.clone();
        let dists = machine.run(|proc| {
            let map = DistOwnerMap::from_global(proc.rank(), proc.nprocs(), &owners);
            map.assemble(proc)
        });
        for (rank, d) in dists.iter().enumerate() {
            assert_eq!(d.owners(), &expected[..], "rank {rank}");
            assert_eq!(d.nprocs(), p);
        }
        // Identical fingerprints on every rank — the SPMD lockstep property.
        let fp = dists[0].fingerprint();
        assert!(dists.iter().all(|d| d.fingerprint() == fp));
    }

    #[test]
    fn collective_lookup_matches_the_table() {
        let n = 71;
        let p = 5;
        let owners = scrambled_owners(n, p);
        let machine = Machine::new(p, CostModel::ideal());
        let results = machine.run(|proc| {
            let rank = proc.rank();
            let map = DistOwnerMap::from_global(rank, proc.nprocs(), &owners);
            // Every rank queries a different, overlapping slice of indices,
            // in deliberately non-sorted order.
            let queries: Vec<usize> = (0..n).filter(|i| (i + rank) % 3 != 0).rev().collect();
            let got = map.lookup(proc, &queries);
            (queries, got)
        });
        for (rank, (queries, got)) in results.iter().enumerate() {
            assert_eq!(queries.len(), got.len());
            for (q, o) in queries.iter().zip(got) {
                assert_eq!(*o, owners[*q], "rank {rank} query {q}");
            }
        }
    }

    #[test]
    fn empty_query_lists_are_fine() {
        let n = 16;
        let p = 4;
        let owners = scrambled_owners(n, p);
        let machine = Machine::new(p, CostModel::ideal());
        let results = machine.run(|proc| {
            let map = DistOwnerMap::from_global(proc.rank(), proc.nprocs(), &owners);
            // Only rank 0 asks anything.
            let queries: Vec<usize> = if proc.rank() == 0 {
                vec![3, 9, 15]
            } else {
                vec![]
            };
            map.lookup(proc, &queries)
        });
        assert_eq!(results[0], vec![owners[3], owners[9], owners[15]]);
        assert!(results[1..].iter().all(|r| r.is_empty()));
    }

    #[test]
    fn assembled_distribution_answers_like_the_lookup() {
        let n = 40;
        let p = 4;
        let owners = scrambled_owners(n, p);
        let machine = Machine::new(p, CostModel::ideal());
        let ok = machine.run(|proc| {
            let map = DistOwnerMap::from_global(proc.rank(), proc.nprocs(), &owners);
            let queries: Vec<usize> = (0..n).collect();
            let looked_up = map.lookup(proc, &queries);
            let dist = map.assemble(proc);
            queries.iter().all(|&g| dist.owner(g) == looked_up[g])
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn out_of_bounds_query_panics() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let map = DistOwnerMap::from_global(proc.rank(), proc.nprocs(), &[0, 1, 0, 1]);
            map.lookup(proc, &[9]);
        });
    }
}
