//! Iteration spaces: what a `forall` ranges over.
//!
//! The paper's `forall` construct ranges over arbitrary index spaces —
//! `forall i in 1..N` in Figure 1, but also multi-dimensional spaces like
//! `forall i in 1..N, j in 1..M` once arrays are distributed
//! `by [block, *]`.  The [`IterSpace`] trait captures what the planner
//! needs from a space:
//!
//! * which *linearised* iterations a processor executes under an
//!   owner-computes on-clause ([`IterSpace::exec_iters`], range-aware — a
//!   narrow sub-range never enumerates the whole owned set),
//! * whether a closed-form schedule exists for a set of affine reference
//!   subscripts ([`IterSpace::analyze`]), and
//! * how one affine subscript maps a linearised iteration to a linearised
//!   element of the referenced array ([`IterSpace::apply_map`]), which is
//!   what the inspector fallback enumerates.
//!
//! Two spaces are provided: [`Span`], the 1-D half-open range of the
//! original API, and [`Rect`], a rectangular 2-D/3-D/N-D box over a
//! multi-dimensional array shape.  [`ParallelLoop`](crate::ParallelLoop) is
//! generic over the space, so the same plan→execute pipeline serves both.

use distrib::{product_flat, unflatten_index, DimDist, Distribution, FlatDist, IndexSet};

use crate::analysis::affine::AffineMap;
use crate::analysis::compile_time::{analyze, LoopSpec};
use crate::analysis::multi::{analyze_multi, MultiAffineMap};
use crate::analysis::stripe::{analyze_stripe, StripeSpec};
use crate::inspector::owner_computes_range;
use crate::schedule::CommSchedule;

/// An iteration space a [`ParallelLoop`](crate::ParallelLoop) ranges over.
///
/// Iterations are exposed to the executor in *linearised* form (a single
/// `usize` per iteration) so the 1-D schedule machinery — range records,
/// binary-searchable receive buffers, the schedule cache — serves every
/// dimensionality unchanged.
pub trait IterSpace: Clone + std::fmt::Debug {
    /// The distribution type placing this space's on-clause array (and the
    /// arrays its affine references subscript).
    type Dist: Distribution + Clone + Send + Sync + 'static;

    /// The affine subscript type for references into `Self::Dist`-placed
    /// arrays.
    type Map: Clone;

    /// The linearised iterations `rank` executes under owner-computes, in
    /// ascending order — `exec(p)` intersected with the space's bounds,
    /// computed at the interval-set level (never by enumerating and
    /// filtering the full owned set).
    fn exec_iters(&self, on: &Self::Dist, rank: usize) -> Vec<usize>;

    /// Attempt the closed-form (compile-time) analysis for `rank`; `None`
    /// when no closed form exists and the planner must fall back to the
    /// run-time inspector.
    fn analyze(
        &self,
        on: &Self::Dist,
        data: &Self::Dist,
        refs: &[Self::Map],
        rank: usize,
    ) -> Option<CommSchedule>;

    /// Apply one affine reference subscript to a linearised iteration,
    /// yielding the linearised referenced element — `None` when the
    /// reference leaves the bounds of the `data` array (see the
    /// out-of-bounds policy on [`ParallelLoop::plan`](crate::ParallelLoop::plan)).
    fn apply_map(&self, map: &Self::Map, iter: usize, data: &Self::Dist) -> Option<usize>;

    /// Stable identity of the space itself (bounds and box), folded into the
    /// schedule-cache key: a schedule's iteration lists are a function of
    /// the space, so two loops sharing a `loop_id` but ranging over
    /// different windows must never share a cached schedule.
    fn fingerprint(&self) -> u64;

    /// Preferred chunk-length alignment for the chunked executor, in
    /// iterations.  Chunk boundaries are rounded up to a multiple of this so
    /// each chunk walks memory-friendly units — `1` (the default) means no
    /// preference; [`Rect`] returns its innermost row extent so chunks cover
    /// whole rows of the box (cache-blocked traversal of the row-major
    /// linearisation).  Alignment only shapes chunk boundaries; results are
    /// identical at every alignment.
    fn chunk_align(&self) -> usize {
        1
    }
}

/// A 1-D half-open iteration range `lo..hi` — the space of
/// `forall i in 1..N` and of every loop the original API supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First iteration.
    pub lo: usize,
    /// One past the last iteration.
    pub hi: usize,
}

impl Span {
    /// The range `lo..hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "degenerate range [{lo}, {hi})");
        Span { lo, hi }
    }

    /// The range `0..n`.
    pub fn upto(n: usize) -> Self {
        Span { lo: 0, hi: n }
    }

    /// Number of iterations in the range.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

impl IterSpace for Span {
    type Dist = DimDist;
    type Map = AffineMap;

    fn exec_iters(&self, on: &DimDist, rank: usize) -> Vec<usize> {
        owner_computes_range(on, rank, self.lo, self.hi)
    }

    fn analyze(
        &self,
        on: &DimDist,
        data: &DimDist,
        refs: &[AffineMap],
        rank: usize,
    ) -> Option<CommSchedule> {
        let spec = LoopSpec {
            range: (self.lo, self.hi),
            on_dist: on.clone(),
            on_map: AffineMap::identity(),
            data_dist: data.clone(),
            ref_maps: refs.to_vec(),
        };
        analyze(&spec, rank)
    }

    fn apply_map(&self, map: &AffineMap, iter: usize, data: &DimDist) -> Option<usize> {
        map.apply(iter).filter(|&v| v < data.n())
    }

    fn fingerprint(&self) -> u64 {
        distrib::distribution::fnv1a([0x5350_414E, self.lo as u64, self.hi as u64])
    }
}

/// A strided 1-D iteration set `{ lo, lo + step, lo + 2·step, … } ∩ [lo, hi)`
/// — the space of a *coloured* sweep such as the red or black half of a
/// red–black Gauss–Seidel relaxation (`forall i in 0..n by 2`).
///
/// A stripe loop executes only the congruence class it names, so its
/// schedule covers exactly that class's references: two interleaved stripe
/// loops over the same array (distinct loop ids) share one schedule cache
/// without ever sharing a schedule.
///
/// For unit-stride (shift/identity) reference subscripts the stripe has a
/// closed-form schedule ([`analyze_stripe`](crate::analysis::stripe)):
/// planning exchanges **zero messages** and never runs the inspector.
/// Other subscripts fall back to the (cached) inspector, as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stripe {
    /// First iteration (also the phase of the congruence class).
    pub lo: usize,
    /// One past the last candidate iteration.
    pub hi: usize,
    /// Stride between consecutive iterations.
    pub step: usize,
}

impl Stripe {
    /// The set `{ lo, lo + step, … } ∩ [lo, hi)`.
    pub fn new(lo: usize, hi: usize, step: usize) -> Self {
        assert!(lo <= hi, "degenerate range [{lo}, {hi})");
        assert!(step > 0, "stride must be positive");
        Stripe { lo, hi, step }
    }

    /// Number of iterations in the stripe.
    pub fn len(&self) -> usize {
        (self.hi - self.lo).div_ceil(self.step)
    }

    /// True when the stripe is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// True when `i` belongs to the stripe.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.lo && i < self.hi && (i - self.lo).is_multiple_of(self.step)
    }
}

impl IterSpace for Stripe {
    type Dist = DimDist;
    type Map = AffineMap;

    fn exec_iters(&self, on: &DimDist, rank: usize) -> Vec<usize> {
        owner_computes_range(on, rank, self.lo, self.hi)
            .into_iter()
            .filter(|&i| (i - self.lo).is_multiple_of(self.step))
            .collect()
    }

    fn analyze(
        &self,
        on: &DimDist,
        data: &DimDist,
        refs: &[AffineMap],
        rank: usize,
    ) -> Option<CommSchedule> {
        let spec = StripeSpec {
            lo: self.lo,
            hi: self.hi,
            step: self.step,
            on_dist: on.clone(),
            data_dist: data.clone(),
            ref_maps: refs.to_vec(),
        };
        analyze_stripe(&spec, rank)
    }

    fn apply_map(&self, map: &AffineMap, iter: usize, data: &DimDist) -> Option<usize> {
        map.apply(iter).filter(|&v| v < data.n())
    }

    fn fingerprint(&self) -> u64 {
        distrib::distribution::fnv1a([
            0x5354_5250,
            self.lo as u64,
            self.hi as u64,
            self.step as u64,
        ])
    }
}

/// A rectangular N-D iteration box `(lo_0..hi_0) × … × (lo_{d-1}..hi_{d-1})`
/// within a multi-dimensional array shape, linearised row-major over that
/// shape.
///
/// The space of `forall i in 1..N-1, j in 0..M on A[i,j].loc` once `A` is
/// distributed `by [block, *]` over a processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rect {
    shape: Vec<usize>,
    ranges: Vec<(usize, usize)>,
}

impl Rect {
    /// The full box over `shape` (every index of every dimension).
    pub fn full(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "need at least one dimension");
        Rect {
            shape: shape.to_vec(),
            ranges: shape.iter().map(|&n| (0, n)).collect(),
        }
    }

    /// The interior box over `shape`: `1..n-1` in every dimension — the
    /// natural space of a boundary-preserving stencil.
    pub fn interior(shape: &[usize]) -> Self {
        assert!(
            shape.iter().all(|&n| n >= 2),
            "interior needs every extent >= 2"
        );
        Rect {
            shape: shape.to_vec(),
            ranges: shape.iter().map(|&n| (1, n - 1)).collect(),
        }
    }

    /// Restrict one dimension of the box to `lo..hi`.
    pub fn restrict(mut self, dim: usize, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi <= self.shape[dim],
            "range [{lo}, {hi}) leaves dimension {dim} of extent {}",
            self.shape[dim]
        );
        self.ranges[dim] = (lo, hi);
        self
    }

    /// Bounding shape of the space (the on-array's shape).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The per-dimension half-open ranges of the box.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Number of iterations in the box.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(lo, hi)| hi - lo).product()
    }

    /// True when the box contains no iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The multi-index of a linearised iteration.
    pub fn unflatten(&self, iter: usize) -> Vec<usize> {
        unflatten_index(&self.shape, iter)
    }
}

impl IterSpace for Rect {
    type Dist = FlatDist;
    type Map = MultiAffineMap;

    fn exec_iters(&self, on: &FlatDist, rank: usize) -> Vec<usize> {
        assert_eq!(
            on.shape(),
            &self.shape[..],
            "the iteration space must match the on-clause array's shape"
        );
        let dims: Vec<IndexSet> = (0..self.shape.len())
            .map(|d| {
                on.array()
                    .owned_along(d, rank)
                    .intersect(&IndexSet::from_range(self.ranges[d].0, self.ranges[d].1))
            })
            .collect();
        product_flat(&dims, &self.shape).iter().collect()
    }

    fn analyze(
        &self,
        on: &FlatDist,
        data: &FlatDist,
        refs: &[MultiAffineMap],
        rank: usize,
    ) -> Option<CommSchedule> {
        assert_eq!(
            on.shape(),
            &self.shape[..],
            "the iteration space must match the on-clause array's shape"
        );
        analyze_multi(&self.ranges, on, data, refs, rank)
    }

    fn apply_map(&self, map: &MultiAffineMap, iter: usize, data: &FlatDist) -> Option<usize> {
        if map.ndims() != self.shape.len() || data.ndims() != self.shape.len() {
            return None;
        }
        let idx = self.unflatten(iter);
        let v = map.apply(&idx, data.shape())?;
        Some(data.flatten(&v))
    }

    fn fingerprint(&self) -> u64 {
        distrib::distribution::fnv1a(
            std::iter::once(0x5245_4354u64)
                .chain(self.shape.iter().map(|&n| n as u64))
                .chain(std::iter::once(u64::MAX))
                .chain(
                    self.ranges
                        .iter()
                        .flat_map(|&(lo, hi)| [lo as u64, hi as u64]),
                ),
        )
    }

    /// Cache-blocked chunking: align chunks to whole rows of the box (the
    /// innermost dimension's extent), so each chunk of the row-major
    /// linearisation walks contiguous memory runs.
    fn chunk_align(&self) -> usize {
        self.ranges
            .last()
            .map(|&(lo, hi)| (hi - lo).max(1))
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::ArrayDist;

    #[test]
    fn chunk_alignment_is_rows_for_rect_and_one_elsewhere() {
        assert_eq!(Span::upto(40).chunk_align(), 1);
        assert_eq!(Stripe::new(0, 40, 2).chunk_align(), 1);
        // 6×8 interior box: rows of 8-2 = 6 iterations.
        assert_eq!(Rect::interior(&[8, 8]).chunk_align(), 6);
        assert_eq!(Rect::full(&[4, 16]).chunk_align(), 16);
        // Degenerate innermost range still aligns to at least 1.
        assert_eq!(Rect::full(&[4, 16]).restrict(1, 3, 3).chunk_align(), 1);
    }

    #[test]
    fn span_exec_iters_is_range_aware() {
        let on = DimDist::block(40, 4);
        let full = Span::upto(40);
        assert_eq!(full.exec_iters(&on, 1), (10..20).collect::<Vec<_>>());
        let narrow = Span::new(12, 15);
        assert_eq!(narrow.exec_iters(&on, 1), vec![12, 13, 14]);
        assert!(narrow.exec_iters(&on, 3).is_empty());
        assert!(Span::new(7, 7).is_empty());
        assert_eq!(Span::new(3, 9).len(), 6);
    }

    #[test]
    fn stripe_exec_iters_pick_one_congruence_class() {
        let on = DimDist::block(40, 4);
        let red = Stripe::new(0, 40, 2);
        let black = Stripe::new(1, 40, 2);
        assert_eq!(red.exec_iters(&on, 1), vec![10, 12, 14, 16, 18]);
        assert_eq!(black.exec_iters(&on, 1), vec![11, 13, 15, 17, 19]);
        // Together the two stripes cover every owned index exactly once.
        let mut all: Vec<usize> = (0..4)
            .flat_map(|r| {
                red.exec_iters(&on, r)
                    .into_iter()
                    .chain(black.exec_iters(&on, r))
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
        assert_eq!(red.len(), 20);
        assert_eq!(Stripe::new(0, 7, 3).len(), 3);
        assert!(Stripe::new(5, 5, 2).is_empty());
        assert!(red.contains(6) && !red.contains(7) && !red.contains(40));
        // Distinct stripes never share a fingerprint (cache-key safety).
        assert_ne!(red.fingerprint(), black.fingerprint());
        assert_ne!(red.fingerprint(), Span::upto(40).fingerprint());
        // Unit-stride stripes now plan in closed form — no inspector — and
        // the schedule's iteration lists are exactly `exec_iters`.
        for rank in 0..4 {
            let s = red
                .analyze(&on, &on, &[AffineMap::identity()], rank)
                .expect("unit-stride stripe must have a closed form");
            let mut iters = s.local_iters.clone();
            iters.extend(&s.nonlocal_iters);
            iters.sort_unstable();
            assert_eq!(iters, red.exec_iters(&on, rank));
        }
        // Non-unit-stride subscripts still fall back to the inspector.
        assert!(red.analyze(&on, &on, &[AffineMap::new(2, 0)], 0).is_none());
    }

    #[test]
    fn rect_exec_iters_covers_the_box_exactly_once() {
        let a = FlatDist::new(ArrayDist::block_rows(10, 6, 3));
        let space = Rect::full(&[10, 6]).restrict(0, 1, 9).restrict(1, 2, 5);
        let mut all: Vec<usize> = (0..3).flat_map(|r| space.exec_iters(&a, r)).collect();
        all.sort_unstable();
        let expected: Vec<usize> = (1..9)
            .flat_map(|i| (2..5).map(move |j| i * 6 + j))
            .collect();
        assert_eq!(all, expected);
        assert_eq!(space.len(), 24);
    }

    #[test]
    fn rect_interior_is_one_off_every_face() {
        let space = Rect::interior(&[8, 5]);
        assert_eq!(space.ranges(), &[(1, 7), (1, 4)]);
        assert_eq!(space.len(), 18);
    }

    #[test]
    fn rect_apply_map_linearises_through_the_data_shape() {
        let data = FlatDist::new(ArrayDist::block_rows(8, 5, 2));
        let space = Rect::full(&[8, 5]);
        let m = MultiAffineMap::shifts(&[1, -1]);
        // Iteration (2, 3) -> element (3, 2) -> flat 3*5 + 2.
        assert_eq!(space.apply_map(&m, 2 * 5 + 3, &data), Some(17));
        // (0, 0) -> (1, -1): out of bounds.
        assert_eq!(space.apply_map(&m, 0, &data), None);
        // (7, 4) -> (8, 3): out of bounds in dimension 0.
        assert_eq!(space.apply_map(&m, 7 * 5 + 4, &data), None);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn rect_rejects_mismatched_on_array() {
        let a = FlatDist::new(ArrayDist::block_rows(10, 6, 2));
        Rect::full(&[6, 10]).exec_iters(&a, 0);
    }
}
