//! Communication schedules: the `in(p,q)` / `out(p,q)` sets of the paper.
//!
//! §3.3 and Figure 5 of the paper describe the representation: a schedule is
//! a dynamically allocated array of *range records*
//! `(from_proc, to_proc, low, high, buffer)`, sorted by processor id with the
//! range start as a secondary key, with adjacent ranges combined so that a
//! single message per processor pair suffices and an individual element can
//! be found by binary search in `O(log r)` time.
//!
//! [`CommSchedule`] is that data structure plus the two iteration lists the
//! inspector produces (`local_list` and `nonlocal_list`), which drive the
//! executor's "local iterations / nonlocal iterations" split.

use distrib::{IndexRange, IndexSet};
use kali_process::{Wire, WireError, WireReader};

/// One contiguous block of a distributed array to be communicated between a
/// pair of processors (Figure 5 of the paper).
///
/// `low..high` is a half-open range of **global** indices of the referenced
/// array; `buffer` is the offset of the first of these elements in the
/// receiving processor's communication buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RangeRecord {
    /// Sending processor (the owner of the elements).
    pub from_proc: usize,
    /// Receiving processor (the processor that referenced the elements).
    pub to_proc: usize,
    /// First global index of the block.
    pub low: usize,
    /// One past the last global index of the block.
    pub high: usize,
    /// Offset of the block in the receiver's communication buffer.
    pub buffer: usize,
}

/// Range records are exactly what the inspector's `exchange` ships between
/// ranks ("Form send_list using recv_lists from all processors", Figure 6),
/// so they must cross a real process boundary: five `usize` fields, encoded
/// in declaration order.
impl Wire for RangeRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        let RangeRecord {
            from_proc,
            to_proc,
            low,
            high,
            buffer,
        } = *self;
        from_proc.encode(out);
        to_proc.encode(out);
        low.encode(out);
        high.encode(out);
        buffer.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RangeRecord {
            from_proc: usize::decode(r)?,
            to_proc: usize::decode(r)?,
            low: usize::decode(r)?,
            high: usize::decode(r)?,
            buffer: usize::decode(r)?,
        })
    }
}

impl RangeRecord {
    /// Number of elements covered by the record.
    pub fn len(&self) -> usize {
        self.high.saturating_sub(self.low)
    }

    /// True if the record covers no elements.
    pub fn is_empty(&self) -> bool {
        self.high <= self.low
    }
}

/// The complete communication schedule of one `forall` on one processor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommSchedule {
    /// Rank of the processor this schedule belongs to.
    pub rank: usize,
    /// Blocks this processor must receive, sorted by `(from_proc, low)`.
    /// `to_proc` is always `rank`.
    pub recv_records: Vec<RangeRecord>,
    /// Blocks this processor must send, sorted by `(to_proc, low)`.
    /// `from_proc` is always `rank`.
    pub send_records: Vec<RangeRecord>,
    /// Iterations that reference only local data (`exec(p) ∩ ref(p)`),
    /// in ascending order.
    pub local_iters: Vec<usize>,
    /// Iterations that reference at least one nonlocal element
    /// (`exec(p) − ref(p)`), in ascending order.
    pub nonlocal_iters: Vec<usize>,
    /// Total number of elements to be received (the communication buffer
    /// length).
    pub recv_len: usize,
    /// Lookup table for nonlocal accesses: `(low, high, buffer)` sorted by
    /// `low`.  Global ranges from different senders are disjoint (every
    /// element has one home), so a plain binary search on `low` suffices.
    lookup: Vec<(usize, usize, usize)>,
}

impl CommSchedule {
    /// Build a schedule from the inspector's (or the compile-time
    /// analyser's) raw results.
    ///
    /// * `recv_sets[q]` is the set of global indices this processor must
    ///   receive from processor `q` (`in(p,q)` in the paper's notation);
    ///   entries for `q == rank` must be empty.
    /// * `local_iters` / `nonlocal_iters` are the iteration lists.
    ///
    /// Buffer offsets are assigned in `(from_proc, low)` order, which is the
    /// order in which the executor unpacks incoming messages.  Send records
    /// are *not* filled in here — they are only known after the global
    /// exchange (`out(p,q) = in(q,p)`); use
    /// [`CommSchedule::set_send_records`].
    pub fn from_recv_sets(
        rank: usize,
        recv_sets: &[IndexSet],
        local_iters: Vec<usize>,
        nonlocal_iters: Vec<usize>,
    ) -> Self {
        let mut recv_records = Vec::new();
        let mut offset = 0usize;
        for (q, set) in recv_sets.iter().enumerate() {
            if q == rank {
                assert!(
                    set.is_empty(),
                    "a processor never receives its own elements"
                );
                continue;
            }
            for r in set.ranges() {
                // Zero-length blocks carry no data but would still become
                // records: a `(low, low)` entry sorting after a covering
                // `(lo, hi)` range shadows it in `find`'s binary search, and
                // empty records inflate `range_count` (the r of O(log r)).
                if r.is_empty() {
                    continue;
                }
                recv_records.push(RangeRecord {
                    from_proc: q,
                    to_proc: rank,
                    low: r.start,
                    high: r.end,
                    buffer: offset,
                });
                offset += r.len();
            }
        }
        let mut schedule = CommSchedule {
            rank,
            recv_records,
            send_records: Vec::new(),
            local_iters,
            nonlocal_iters,
            recv_len: offset,
            lookup: Vec::new(),
        };
        schedule.rebuild_lookup();
        schedule
    }

    /// Install the send records produced by the global exchange, sorting
    /// them by `(to_proc, low)` — the paper's "sorted on the `to_proc`
    /// field, again using `low` as the secondary key".
    pub fn set_send_records(&mut self, mut records: Vec<RangeRecord>) {
        for r in &records {
            debug_assert_eq!(r.from_proc, self.rank, "send record must originate here");
        }
        records.sort_by_key(|r| (r.to_proc, r.low));
        self.send_records = records;
    }

    fn rebuild_lookup(&mut self) {
        // Defence in depth: even if a caller hand-assembles records (tests,
        // future analyses), empty ones must never reach the binary search —
        // see the filter in [`CommSchedule::from_recv_sets`].
        self.lookup = self
            .recv_records
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| (r.low, r.high, r.buffer))
            .collect();
        self.lookup.sort_unstable();
    }

    /// Approximate heap footprint of the schedule in bytes — the quantity
    /// the schedule cache sums into its resident-bytes gauge.  Counts the
    /// record vectors, the iteration lists and the lookup table; exact
    /// allocator overhead is not modelled.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.recv_records.len() + self.send_records.len())
                * std::mem::size_of::<RangeRecord>()
            + (self.local_iters.len() + self.nonlocal_iters.len()) * std::mem::size_of::<usize>()
            + self.lookup.len() * std::mem::size_of::<(usize, usize, usize)>()
    }

    /// Number of distinct processors this processor receives from.
    pub fn recv_partner_count(&self) -> usize {
        count_distinct(self.recv_records.iter().map(|r| r.from_proc))
    }

    /// Number of distinct processors this processor sends to.
    pub fn send_partner_count(&self) -> usize {
        count_distinct(self.send_records.iter().map(|r| r.to_proc))
    }

    /// Total number of elements this processor sends.
    pub fn send_len(&self) -> usize {
        self.send_records.iter().map(RangeRecord::len).sum()
    }

    /// Number of range records held (the `r` of the `O(log r)` bound).
    pub fn range_count(&self) -> usize {
        self.recv_records.len()
    }

    /// Group receive records by sending processor, in ascending processor
    /// order.  Each group's records are sorted by `low` and its buffer
    /// region is contiguous.
    pub fn recv_messages(&self) -> Vec<(usize, &[RangeRecord])> {
        group_by_proc(&self.recv_records, |r| r.from_proc)
    }

    /// Group send records by destination processor, in ascending processor
    /// order.
    pub fn send_messages(&self) -> Vec<(usize, &[RangeRecord])> {
        group_by_proc(&self.send_records, |r| r.to_proc)
    }

    /// True when the receive-buffer offsets are densely sequential in
    /// `(from_proc, low)` order — the layout [`CommSchedule::from_recv_sets`]
    /// produces.  The executor's packed receive path relies on this: it
    /// appends each incoming message to one contiguous buffer and every
    /// element must land exactly at its record's `buffer` offset.
    pub fn recv_layout_is_dense(&self) -> bool {
        let mut pos = 0usize;
        let contiguous = self.recv_records.iter().all(|r| {
            let ok = r.buffer == pos;
            pos += r.len();
            ok
        });
        contiguous && pos == self.recv_len
    }

    /// Find the communication-buffer position of a received global index by
    /// binary search over the range records — the access path the executor
    /// uses for nonlocal references (`O(log r)`).
    pub fn find(&self, global: usize) -> Option<usize> {
        self.find_record(global)
            .map(|(low, _, buffer)| buffer + (global - low))
    }

    /// Locate the whole receive record covering a global index — `(low,
    /// high, buffer)` with `low <= global < high` — with one binary search.
    ///
    /// This is [`CommSchedule::find`] without the final offset arithmetic:
    /// the chunked executor hoists the returned record as a chunk-local
    /// window, so a run of references landing in the same record resolves
    /// by offset arithmetic alone and pays the `O(log r)` search only when
    /// the run leaves the window.
    pub fn find_record(&self, global: usize) -> Option<(usize, usize, usize)> {
        let idx = self.lookup.partition_point(|&(low, _, _)| low <= global);
        if idx == 0 {
            return None;
        }
        let (low, high, buffer) = self.lookup[idx - 1];
        (global < high).then_some((low, high, buffer))
    }

    /// The set of global indices this processor receives (for tests and
    /// reporting).
    pub fn recv_index_set(&self) -> IndexSet {
        IndexSet::from_ranges(
            self.recv_records
                .iter()
                .map(|r| IndexRange::new(r.low, r.high)),
        )
    }

    /// The set of global indices this processor sends.
    pub fn send_index_set(&self) -> IndexSet {
        IndexSet::from_ranges(
            self.send_records
                .iter()
                .map(|r| IndexRange::new(r.low, r.high)),
        )
    }

    /// Normalised copy for equality testing: buffer offsets and record order
    /// are implementation details of how the schedule was built, so
    /// comparisons between the compile-time and run-time analyses use the
    /// index sets and iteration lists only.
    pub fn signature(&self) -> ScheduleSignature {
        let mut recv_by_proc: Vec<(usize, Vec<IndexRange>)> = self
            .recv_messages()
            .into_iter()
            .map(|(q, recs)| {
                (
                    q,
                    recs.iter()
                        .map(|r| IndexRange::new(r.low, r.high))
                        .collect(),
                )
            })
            .collect();
        recv_by_proc.sort();
        let mut send_by_proc: Vec<(usize, Vec<IndexRange>)> = self
            .send_messages()
            .into_iter()
            .map(|(q, recs)| {
                (
                    q,
                    recs.iter()
                        .map(|r| IndexRange::new(r.low, r.high))
                        .collect(),
                )
            })
            .collect();
        send_by_proc.sort();
        ScheduleSignature {
            rank: self.rank,
            recv_by_proc,
            send_by_proc,
            local_iters: self.local_iters.clone(),
            nonlocal_iters: self.nonlocal_iters.clone(),
        }
    }
}

/// Order-independent summary of a schedule, used to compare schedules built
/// by different analyses (compile-time vs inspector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSignature {
    /// Processor the schedule belongs to.
    pub rank: usize,
    /// Received ranges grouped by sender.
    pub recv_by_proc: Vec<(usize, Vec<IndexRange>)>,
    /// Sent ranges grouped by receiver.
    pub send_by_proc: Vec<(usize, Vec<IndexRange>)>,
    /// Iterations with only local references.
    pub local_iters: Vec<usize>,
    /// Iterations with at least one nonlocal reference.
    pub nonlocal_iters: Vec<usize>,
}

fn count_distinct<I: Iterator<Item = usize>>(iter: I) -> usize {
    let mut v: Vec<usize> = iter.collect();
    v.sort_unstable();
    v.dedup();
    v.len()
}

fn group_by_proc<F: Fn(&RangeRecord) -> usize>(
    records: &[RangeRecord],
    key: F,
) -> Vec<(usize, &[RangeRecord])> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < records.len() {
        let p = key(&records[start]);
        let mut end = start + 1;
        while end < records.len() && key(&records[end]) == p {
            end += 1;
        }
        out.push((p, &records[start..end]));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schedule() -> CommSchedule {
        // Rank 1 of 4 receives [10,13) from proc 0 and [20,22)+[30,31) from proc 2.
        let recv_sets = vec![
            IndexSet::from_range(10, 13),
            IndexSet::new(),
            IndexSet::from_ranges([IndexRange::new(20, 22), IndexRange::new(30, 31)]),
            IndexSet::new(),
        ];
        let mut s = CommSchedule::from_recv_sets(1, &recv_sets, vec![5, 6], vec![7, 8, 9]);
        s.set_send_records(vec![
            RangeRecord {
                from_proc: 1,
                to_proc: 2,
                low: 15,
                high: 17,
                buffer: 0,
            },
            RangeRecord {
                from_proc: 1,
                to_proc: 0,
                low: 14,
                high: 15,
                buffer: 3,
            },
        ]);
        s
    }

    #[test]
    fn buffer_offsets_are_contiguous_in_record_order() {
        let s = sample_schedule();
        assert_eq!(s.recv_len, 6);
        assert_eq!(s.recv_records[0].buffer, 0);
        assert_eq!(s.recv_records[1].buffer, 3);
        assert_eq!(s.recv_records[2].buffer, 5);
        assert_eq!(s.range_count(), 3);
        assert!(s.recv_layout_is_dense());
    }

    #[test]
    fn perturbed_offsets_are_not_a_dense_layout() {
        let mut s = sample_schedule();
        s.recv_records[1].buffer += 1;
        assert!(!s.recv_layout_is_dense());
    }

    #[test]
    fn find_locates_received_elements() {
        let s = sample_schedule();
        assert_eq!(s.find(10), Some(0));
        assert_eq!(s.find(12), Some(2));
        assert_eq!(s.find(20), Some(3));
        assert_eq!(s.find(21), Some(4));
        assert_eq!(s.find(30), Some(5));
        // Elements never received.
        assert_eq!(s.find(13), None);
        assert_eq!(s.find(9), None);
        assert_eq!(s.find(25), None);
        assert_eq!(s.find(31), None);
    }

    #[test]
    fn find_record_returns_the_covering_window() {
        let s = sample_schedule();
        assert_eq!(s.find_record(10), Some((10, 13, 0)));
        assert_eq!(s.find_record(12), Some((10, 13, 0)));
        assert_eq!(s.find_record(21), Some((20, 22, 3)));
        assert_eq!(s.find_record(30), Some((30, 31, 5)));
        assert_eq!(s.find_record(13), None);
        assert_eq!(s.find_record(9), None);
        assert_eq!(s.find_record(31), None);
        // `find` is exactly `find_record` plus offset arithmetic, so a
        // cached window can never disagree with a fresh search.
        for g in 0..40 {
            assert_eq!(
                s.find(g),
                s.find_record(g).map(|(low, _, buffer)| buffer + (g - low))
            );
        }
    }

    #[test]
    fn messages_group_by_partner() {
        let s = sample_schedule();
        let recv = s.recv_messages();
        assert_eq!(recv.len(), 2);
        assert_eq!(recv[0].0, 0);
        assert_eq!(recv[0].1.len(), 1);
        assert_eq!(recv[1].0, 2);
        assert_eq!(recv[1].1.len(), 2);
        assert_eq!(s.recv_partner_count(), 2);

        let send = s.send_messages();
        assert_eq!(send.len(), 2);
        // Sorted by destination processor.
        assert_eq!(send[0].0, 0);
        assert_eq!(send[1].0, 2);
        assert_eq!(s.send_partner_count(), 2);
        assert_eq!(s.send_len(), 3);
    }

    #[test]
    fn index_sets_round_trip() {
        let s = sample_schedule();
        let recv = s.recv_index_set();
        assert_eq!(recv.len(), 6);
        assert!(recv.contains(11));
        assert!(recv.contains(30));
        assert!(!recv.contains(14));
        let send = s.send_index_set();
        assert_eq!(send.len(), 3);
        assert!(send.contains(16));
    }

    #[test]
    fn empty_schedule_is_well_formed() {
        let sets = vec![IndexSet::new(), IndexSet::new(), IndexSet::new()];
        let s = CommSchedule::from_recv_sets(0, &sets, vec![0, 1, 2], vec![]);
        assert_eq!(s.recv_len, 0);
        assert_eq!(s.range_count(), 0);
        assert_eq!(s.find(0), None);
        assert!(s.recv_messages().is_empty());
        assert_eq!(s.local_iters, vec![0, 1, 2]);
    }

    #[test]
    fn empty_ranges_never_become_records() {
        // Regression: `from_recv_sets` used to emit a RangeRecord for every
        // range of the IndexSet, including zero-length ones.  An empty
        // `(g, g)` record sorting after a covering `(lo, hi)` range makes
        // `find`'s "last range with low <= g" probe land on the empty record
        // and miss the covering one.
        let recv_sets = vec![
            IndexSet::new(),
            IndexSet::from_range(5, 9), // covering range from proc 1
        ];
        let mut s = CommSchedule::from_recv_sets(0, &recv_sets, vec![], vec![]);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.recv_len, 4);
        // Inject an empty record the way a buggy or hand-rolled analysis
        // might, and rebuild the lookup: the search must stay unambiguous.
        s.recv_records.push(RangeRecord {
            from_proc: 1,
            to_proc: 0,
            low: 7,
            high: 7,
            buffer: 99,
        });
        s.rebuild_lookup();
        for g in 5..9 {
            assert_eq!(
                s.find(g),
                Some(g - 5),
                "index {g} must resolve through the covering range"
            );
        }
        assert_eq!(s.find(9), None);
        assert_eq!(s.find(4), None);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let empty = CommSchedule::from_recv_sets(0, &[], vec![], vec![]);
        let full = sample_schedule();
        assert!(empty.approx_bytes() >= std::mem::size_of::<CommSchedule>());
        assert!(full.approx_bytes() > empty.approx_bytes());
    }

    #[test]
    #[should_panic(expected = "never receives its own")]
    fn self_receive_is_rejected() {
        let sets = vec![IndexSet::from_range(0, 1), IndexSet::new()];
        let _ = CommSchedule::from_recv_sets(0, &sets, vec![], vec![]);
    }

    #[test]
    fn signatures_ignore_buffer_layout() {
        let a = sample_schedule();
        let mut b = sample_schedule();
        // Perturb buffer offsets; the signature must not change.
        for r in &mut b.recv_records {
            r.buffer += 100;
        }
        assert_eq!(a.signature(), b.signature());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn find_agrees_with_recv_index_set(
                ranges in proptest::collection::vec((0usize..500, 1usize..20), 0..12)
            ) {
                // Build disjoint sets per "source" processor.
                let nprocs = 5usize;
                let rank = 0usize;
                let mut sets = vec![IndexSet::new(); nprocs];
                let mut claimed = IndexSet::new();
                for (k, (start, len)) in ranges.iter().enumerate() {
                    let q = 1 + (k % (nprocs - 1));
                    let r = IndexRange::new(*start, start + len);
                    let fresh = IndexSet::from_ranges([r]).difference(&claimed);
                    claimed = claimed.union(&fresh);
                    sets[q] = sets[q].union(&fresh);
                }
                let s = CommSchedule::from_recv_sets(rank, &sets, vec![], vec![]);
                let set = s.recv_index_set();
                prop_assert_eq!(set.len(), s.recv_len);
                for g in 0..600usize {
                    prop_assert_eq!(s.find(g).is_some(), set.contains(g), "index {}", g);
                }
                // All buffer positions are distinct and within bounds.
                let mut positions: Vec<usize> = set.iter().filter_map(|g| s.find(g)).collect();
                positions.sort_unstable();
                positions.dedup();
                prop_assert_eq!(positions.len(), s.recv_len);
                prop_assert!(positions.iter().all(|&p| p < s.recv_len));
            }
        }
    }
}
