//! Trace-level happens-before analysis of recorded executions.
//!
//! [`verify`](crate::verify) proves protocol properties from the *plans*;
//! this module proves ordering properties from what actually *ran*.  A
//! backend records an [`Event`] for every point-to-point message, collective
//! entry and chunk claim (see [`TraceRecorder`](crate::process::trace) and
//! the `trace_*` hooks on [`Process`](crate::process::Process));
//! [`check_trace`] then rebuilds the execution's causality graph — per-rank
//! program order plus one edge from each send to its matching receive — and
//! checks:
//!
//! 1. **Causal consistency.**  The graph must be acyclic: a cycle means
//!    some receive completed before its matching send could have been
//!    posted, i.e. the trace is not a possible execution
//!    ([`Violation::RecvBeforeSend`]).  Acyclicity is established with
//!    Kahn's algorithm, which simultaneously yields the **vector clocks**
//!    used by the race checks below — computed offline from the trace, so
//!    recording stays a cheap append.
//! 2. **Message matching.**  The `k`-th send on a `(src, dst, tag)` channel
//!    pairs with the `k`-th receive on that channel (both backends deliver
//!    per-channel FIFO); a count mismatch is an
//!    [`Violation::UnmatchedMessage`].
//! 3. **Channel-reuse races.**  Two consecutive messages on one channel are
//!    safe when the earlier receive happens-before the later send (the
//!    earlier message was provably drained first).  Without that edge the
//!    runtime's discipline requires a collective **epoch marker** between
//!    the two sends on the sender *and* between the two receives on the
//!    receiver — the tree-collective pattern, where SPMD lockstep plus
//!    per-channel FIFO keep reused round tags unambiguous.  No marker on
//!    the sender is a [`Violation::TagReuseRace`]; a sender-side marker
//!    without a receiver-side one is a [`Violation::MessageRace`].
//! 4. **Chunk-sink exclusivity.**  Chunk claims of one `(rank, sweep,
//!    phase)` must cover disjoint iteration positions, or the chunked
//!    executor's sink would apply two writers to one slot
//!    ([`Violation::ChunkSinkConflict`]).
//!
//! The `mc_all` bench driver runs this over every solver × distribution ×
//! backend, and re-executes each solve under perturbed `DeliveryPolicy`
//! schedules (`dmsim`) to confirm the determinism contract holds under any
//! schedule-respecting delivery order.

use std::collections::BTreeMap;

use crate::process::trace::{Event, EventKind};
use crate::process::Tag;
use crate::verify::Violation;

/// Cap on the number of events reported on a causality cycle.
const CYCLE_CAP: usize = 12;

/// One side of a paired message: the event's position in its rank's trace
/// plus the recorder sequence number (for diagnostics).
#[derive(Debug, Clone, Copy)]
struct Endpoint {
    pos: usize,
    seq: u64,
}

/// Analyze a recorded execution trace for causality violations and
/// channel-reuse races.  `traces[r]` must be rank `r`'s event sequence in
/// program order, as returned by the `trace_take` hook of
/// [`Process`](crate::process::Process).
///
/// Returns every violation found (empty = the trace is causally consistent
/// and race-free).  The analysis is offline and rank-count generic; it
/// costs `O(events × ranks)` space for the vector clocks.
pub fn check_trace(traces: &[Vec<Event>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let nprocs = traces.len();

    // Global node numbering: node(rank, pos) = base[rank] + pos.
    let mut base = Vec::with_capacity(nprocs);
    let mut total = 0usize;
    for t in traces {
        base.push(total);
        total += t.len();
    }
    let node = |rank: usize, pos: usize| base[rank] + pos;

    // Pair messages per (src, dst, tag) channel: k-th send matches k-th
    // recv (both backends deliver per-channel FIFO).
    let mut sends: BTreeMap<(usize, usize, Tag), Vec<Endpoint>> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, usize, Tag), Vec<Endpoint>> = BTreeMap::new();
    for (rank, t) in traces.iter().enumerate() {
        for (pos, ev) in t.iter().enumerate() {
            match ev.kind {
                EventKind::Send { dst, tag } => sends
                    .entry((rank, dst, tag))
                    .or_default()
                    .push(Endpoint { pos, seq: ev.seq }),
                EventKind::Recv { src, tag } => recvs
                    .entry((src, rank, tag))
                    .or_default()
                    .push(Endpoint { pos, seq: ev.seq }),
                _ => {}
            }
        }
    }
    for (&(src, dst, tag), snd) in &sends {
        let rcv_len = recvs.get(&(src, dst, tag)).map_or(0, Vec::len);
        if snd.len() != rcv_len {
            out.push(Violation::UnmatchedMessage {
                from: src,
                to: dst,
                label: format!("trace tag {tag:#x}: {} sends, {rcv_len} recvs", snd.len()),
            });
        }
    }
    for (&(src, dst, tag), rcv) in &recvs {
        if !sends.contains_key(&(src, dst, tag)) {
            out.push(Violation::UnmatchedMessage {
                from: src,
                to: dst,
                label: format!("trace tag {tag:#x}: 0 sends, {} recvs", rcv.len()),
            });
        }
    }

    // Causality graph: program order plus send -> matched recv.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indegree = vec![0usize; total];
    for (rank, t) in traces.iter().enumerate() {
        for pos in 1..t.len() {
            edges[node(rank, pos - 1)].push(node(rank, pos));
            indegree[node(rank, pos)] += 1;
        }
    }
    for (&(src, dst, _tag), snd) in &sends {
        if let Some(rcv) = recvs.get(&(src, dst, _tag)) {
            for (s, r) in snd.iter().zip(rcv) {
                edges[node(src, s.pos)].push(node(dst, r.pos));
                indegree[node(dst, r.pos)] += 1;
            }
        }
    }

    // Kahn's algorithm, computing vector clocks as nodes finalize: when a
    // node pops, every predecessor has already merged its clock in, so we
    // stamp the node's own component and propagate to its successors.
    // vc[n][r] = x means: event x-1 of rank r (0-based position) happens
    // before-or-at n.
    let mut vc: Vec<Vec<u32>> = vec![vec![0; nprocs]; total];
    let mut sorted = vec![false; total];
    let mut stack: Vec<usize> = (0..total).filter(|&n| indegree[n] == 0).collect();
    let rank_of = {
        let base = base.clone();
        move |n: usize| match base.binary_search(&n) {
            Ok(r) => {
                // Empty traces share a base offset; the event belongs to
                // the last rank starting here.
                let mut r = r;
                while r + 1 < base.len() && base[r + 1] == n {
                    r += 1;
                }
                r
            }
            Err(r) => r - 1,
        }
    };
    let mut seen = 0usize;
    while let Some(n) = stack.pop() {
        seen += 1;
        sorted[n] = true;
        let r = rank_of(n);
        let pos = n - base[r];
        vc[n][r] = (pos + 1) as u32;
        let succs = std::mem::take(&mut edges[n]);
        let vc_n = vc[n].clone();
        for &m in &succs {
            for (slot, &v) in vc[m].iter_mut().zip(&vc_n) {
                *slot = (*slot).max(v);
            }
            indegree[m] -= 1;
            if indegree[m] == 0 {
                stack.push(m);
            }
        }
        edges[n] = succs;
    }
    if seen != total {
        let mut events = Vec::new();
        'outer: for (rank, t) in traces.iter().enumerate() {
            for (pos, ev) in t.iter().enumerate() {
                if !sorted[node(rank, pos)] {
                    events.push(format!("rank {rank} {}", describe(ev)));
                    if events.len() >= CYCLE_CAP {
                        events.push("...".to_string());
                        break 'outer;
                    }
                }
            }
        }
        out.push(Violation::RecvBeforeSend { events });
    }

    // hb(a, b): a's completion is in b's causal past.  Only meaningful for
    // sorted nodes (cycle members have unreliable clocks).
    let hb = |a_rank: usize, a_pos: usize, b_rank: usize, b_pos: usize| {
        let (a, b) = (node(a_rank, a_pos), node(b_rank, b_pos));
        sorted[a] && sorted[b] && vc[b][a_rank] >= (a_pos + 1) as u32
    };

    // Per-rank prefix counts of collective markers: markers_before[r][p] =
    // number of Collective events in positions [0, p) of rank r.
    let markers_before: Vec<Vec<u32>> = traces
        .iter()
        .map(|t| {
            let mut acc = 0u32;
            let mut prefix = Vec::with_capacity(t.len() + 1);
            prefix.push(0);
            for ev in t {
                if matches!(ev.kind, EventKind::Collective { .. }) {
                    acc += 1;
                }
                prefix.push(acc);
            }
            prefix
        })
        .collect();
    // A Collective event strictly between positions a_pos and b_pos of one
    // rank (the endpoints themselves are sends/receives, never markers).
    let marker_between = |rank: usize, a_pos: usize, b_pos: usize| {
        markers_before[rank][b_pos] > markers_before[rank][a_pos + 1]
    };

    // Channel-reuse rule over consecutive paired messages.
    for (&(src, dst, tag), snd) in &sends {
        let Some(rcv) = recvs.get(&(src, dst, tag)) else {
            continue;
        };
        let paired = snd.len().min(rcv.len());
        for k in 1..paired {
            let (s0, s1) = (snd[k - 1], snd[k]);
            let (r0, r1) = (rcv[k - 1], rcv[k]);
            if hb(dst, r0.pos, src, s1.pos) {
                continue; // earlier message provably drained first
            }
            if !marker_between(src, s0.pos, s1.pos) {
                out.push(Violation::TagReuseRace {
                    src,
                    dst,
                    tag,
                    first_seq: s0.seq,
                    second_seq: s1.seq,
                });
            } else if !marker_between(dst, r0.pos, r1.pos) {
                out.push(Violation::MessageRace {
                    src,
                    dst,
                    tag,
                    first_seq: r0.seq,
                    second_seq: r1.seq,
                });
            }
        }
    }

    // Chunk-sink exclusivity: claims of one (rank, sweep, phase) must be
    // disjoint in iteration position.
    let mut claims: BTreeMap<(usize, u64, usize), Vec<(usize, usize)>> = BTreeMap::new();
    for (rank, t) in traces.iter().enumerate() {
        for ev in t {
            if let EventKind::ChunkClaim {
                sweep,
                phase,
                low,
                high,
            } = ev.kind
            {
                claims
                    .entry((rank, sweep, phase))
                    .or_default()
                    .push((low, high));
            }
        }
    }
    for (&(rank, sweep, _phase), ranges) in &mut claims {
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            if w[1].0 < w[0].1 {
                out.push(Violation::ChunkSinkConflict {
                    rank,
                    sweep,
                    first: w[0],
                    second: w[1],
                });
            }
        }
    }

    out
}

/// Human-readable one-liner for a trace event (cycle diagnostics).
fn describe(ev: &Event) -> String {
    match ev.kind {
        EventKind::Send { dst, tag } => format!("send tag {tag:#x} to {dst}"),
        EventKind::Recv { src, tag } => format!("recv tag {tag:#x} from {src}"),
        EventKind::Collective { op } => format!("collective '{op}'"),
        EventKind::ChunkClaim {
            sweep, low, high, ..
        } => format!("chunk claim sweep {sweep} [{low},{high})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, seq: u64, kind: EventKind) -> Event {
        Event { rank, seq, kind }
    }

    /// A clean 2-rank ping-pong: rank 0 sends, rank 1 receives, replies on
    /// a different tag, rank 0 receives.  No races, no cycles.
    #[test]
    fn clean_ping_pong_passes() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Send { dst: 1, tag: 7 }),
                ev(0, 1, EventKind::Recv { src: 1, tag: 9 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 7 }),
                ev(1, 1, EventKind::Send { dst: 0, tag: 9 }),
            ],
        ];
        assert_eq!(check_trace(&traces), vec![]);
    }

    /// Reusing a tag with an acknowledgement in between is ordered: the
    /// second send happens after the first receive via the ack edge.
    #[test]
    fn acknowledged_reuse_is_ordered() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Send { dst: 1, tag: 7 }),
                ev(0, 1, EventKind::Recv { src: 1, tag: 9 }), // ack
                ev(0, 2, EventKind::Send { dst: 1, tag: 7 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 7 }),
                ev(1, 1, EventKind::Send { dst: 0, tag: 9 }), // ack
                ev(1, 2, EventKind::Recv { src: 0, tag: 7 }),
            ],
        ];
        assert_eq!(check_trace(&traces), vec![]);
    }

    /// Back-to-back sends on one channel with no ordering edge and no
    /// epoch marker: a tag-reuse race.
    #[test]
    fn unseparated_reuse_is_a_tag_reuse_race() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Send { dst: 1, tag: 7 }),
                ev(0, 1, EventKind::Send { dst: 1, tag: 7 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 7 }),
                ev(1, 1, EventKind::Recv { src: 0, tag: 7 }),
            ],
        ];
        let v = check_trace(&traces);
        assert!(
            v.iter().any(|v| matches!(
                v,
                Violation::TagReuseRace {
                    src: 0,
                    dst: 1,
                    tag: 7,
                    first_seq: 0,
                    second_seq: 1
                }
            )),
            "expected TagReuseRace, got: {v:?}"
        );
    }

    /// Sender separated by a collective but receiver not: the receiver
    /// cannot tell which epoch a pending message belongs to.
    #[test]
    fn sender_only_separation_is_a_message_race() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Send { dst: 1, tag: 7 }),
                ev(0, 1, EventKind::Collective { op: "barrier" }),
                ev(0, 2, EventKind::Send { dst: 1, tag: 7 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 7 }),
                ev(1, 1, EventKind::Recv { src: 0, tag: 7 }),
            ],
        ];
        let v = check_trace(&traces);
        assert!(
            v.iter().any(|v| matches!(
                v,
                Violation::MessageRace {
                    src: 0,
                    dst: 1,
                    tag: 7,
                    ..
                }
            )),
            "expected MessageRace, got: {v:?}"
        );
    }

    /// Markers on both endpoints (the tree-collective discipline) excuse
    /// the missing happens-before edge.
    #[test]
    fn epoch_markers_on_both_sides_are_safe() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Send { dst: 1, tag: 7 }),
                ev(0, 1, EventKind::Collective { op: "allreduce" }),
                ev(0, 2, EventKind::Send { dst: 1, tag: 7 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 7 }),
                ev(1, 1, EventKind::Collective { op: "allreduce" }),
                ev(1, 2, EventKind::Recv { src: 0, tag: 7 }),
            ],
        ];
        assert_eq!(check_trace(&traces), vec![]);
    }

    /// A receive with no send anywhere: unmatched.
    #[test]
    fn missing_send_is_unmatched() {
        let traces = vec![vec![], vec![ev(1, 0, EventKind::Recv { src: 0, tag: 5 })]];
        let v = check_trace(&traces);
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::UnmatchedMessage { from: 0, to: 1, .. })),
            "expected UnmatchedMessage, got: {v:?}"
        );
    }

    /// A cross pairing where each rank receives the other's message before
    /// it was sent: a causality cycle.
    #[test]
    fn causality_cycle_is_recv_before_send() {
        let traces = vec![
            vec![
                ev(0, 0, EventKind::Recv { src: 1, tag: 3 }),
                ev(0, 1, EventKind::Send { dst: 1, tag: 4 }),
            ],
            vec![
                ev(1, 0, EventKind::Recv { src: 0, tag: 4 }),
                ev(1, 1, EventKind::Send { dst: 0, tag: 3 }),
            ],
        ];
        let v = check_trace(&traces);
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::RecvBeforeSend { .. })),
            "expected RecvBeforeSend, got: {v:?}"
        );
    }

    /// Overlapping chunk claims of one sweep and phase conflict; disjoint
    /// claims and claims of different phases do not.
    #[test]
    fn chunk_claims_must_be_disjoint_per_phase() {
        let claim = |sweep, phase, low, high| EventKind::ChunkClaim {
            sweep,
            phase,
            low,
            high,
        };
        let clean = vec![vec![
            ev(0, 0, claim(1, 0, 0, 8)),
            ev(0, 1, claim(1, 0, 8, 16)),
            ev(0, 2, claim(1, 1, 0, 8)),
        ]];
        assert_eq!(check_trace(&clean), vec![]);
        let overlapping = vec![vec![
            ev(0, 0, claim(1, 0, 0, 8)),
            ev(0, 1, claim(1, 0, 6, 12)),
        ]];
        let v = check_trace(&overlapping);
        assert!(
            v.iter().any(|v| matches!(
                v,
                Violation::ChunkSinkConflict {
                    rank: 0,
                    sweep: 1,
                    first: (0, 8),
                    second: (6, 12)
                }
            )),
            "expected ChunkSinkConflict, got: {v:?}"
        );
    }
}
