//! Intra-rank worker pool for chunked executor phases.
//!
//! One SPMD rank can use several OS threads to run the *compute* part of an
//! executor phase — the iteration chunks — while all communication and all
//! cost accounting stay on the rank's own thread.  The pool is built on
//! [`std::thread::scope`] (no extra dependencies, no long-lived threads):
//! workers are spawned for the duration of one phase, claim chunk indices
//! from a shared atomic counter, and send `(index, result)` pairs back over
//! a channel.  The caller reassembles results **by chunk index**, so the
//! output is a deterministic function of the chunk boundaries alone — which
//! worker ran which chunk, and in what order, is unobservable.
//!
//! With `workers <= 1` (the default everywhere) the chunks run inline on the
//! calling thread and no threads are spawned, so the dmsim simulator's cost
//! accounting and the single-threaded behaviour are bit-for-bit untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run `run(0..n_chunks)` across up to `workers` threads (the calling
/// thread participates) and return the results in ascending chunk order.
///
/// * Deterministic: the returned `Vec` depends only on `run` and
///   `n_chunks`, never on scheduling.
/// * Panic-safe: a panic inside `run` on any worker propagates to the
///   caller when the scope joins.
/// * Cheap when serial: `workers <= 1` or `n_chunks <= 1` runs inline with
///   no thread, no channel, no atomics.
pub fn run_chunks<V, F>(workers: usize, n_chunks: usize, run: F) -> Vec<V>
where
    V: Send,
    F: Fn(usize) -> V + Sync,
{
    if workers <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(run).collect();
    }

    let mut slots: Vec<Option<V>> = (0..n_chunks).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, V)>();
    let n_threads = workers.min(n_chunks);

    std::thread::scope(|scope| {
        for _ in 1..n_threads {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                // A send can only fail after the receiver is gone, which
                // only happens if the scope is already unwinding.
                if tx.send((i, run(i))).is_err() {
                    break;
                }
            });
        }
        // The calling thread claims chunks too: with W workers requested,
        // W threads compute (W - 1 spawned + this one).
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            let v = run(i);
            slots[i] = Some(v);
        }
        drop(tx);
        // Spawned workers' results drain here; `recv` errors exactly when
        // every sender is dropped (worker finished or panicked).  A worker
        // panic surfaces when the scope joins, below.
        while let Ok((i, v)) = rx.recv() {
            slots[i] = Some(v);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk index was claimed and completed"))
        .collect()
}

/// Split `len` items into fixed-boundary chunks of `chunk` items (the last
/// chunk takes the remainder), returned as `(start, end)` index pairs.
///
/// Boundaries depend only on `(len, chunk)` — this is what makes chunked
/// execution reproducible: every worker count walks the same chunks.
pub fn chunk_bounds(len: usize, chunk: usize) -> Vec<(usize, usize)> {
    let chunk = chunk.max(1);
    let mut bounds = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        bounds.push((start, end));
        start = end;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_the_range_exactly_once() {
        for len in [0usize, 1, 5, 64, 100, 101] {
            for chunk in [1usize, 3, 64, 1000] {
                let bounds = chunk_bounds(len, chunk);
                let mut expect = 0;
                for &(s, e) in &bounds {
                    assert_eq!(s, expect);
                    assert!(e > s && e - s <= chunk);
                    expect = e;
                }
                assert_eq!(expect, len);
            }
        }
        assert!(chunk_bounds(0, 8).is_empty());
    }

    #[test]
    fn chunk_zero_is_clamped_to_one() {
        assert_eq!(chunk_bounds(3, 0), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn results_come_back_in_chunk_order_for_any_worker_count() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [0usize, 1, 2, 3, 8, 64] {
            let got = run_chunks(workers, 37, |i| i * i);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn the_pool_actually_uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        // Many more chunks than workers plus a short spin gives every
        // thread a chance to claim at least one chunk; the assertion is
        // only that more than one *may* appear, not a strict count —
        // on a single-CPU host the spawned workers can still lose every
        // race, so require only that the set is non-empty and results are
        // right (determinism is covered by the test above).
        let n = 64;
        let got = run_chunks(4, n, |i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            i + 1
        });
        assert_eq!(got, (1..=n).collect::<Vec<_>>());
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_chunks(4, 16, |i| {
                if i == 7 {
                    panic!("boom in chunk 7");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn serial_path_spawns_nothing_and_preserves_order() {
        let tid = std::thread::current().id();
        let got = run_chunks(1, 10, |i| (i, std::thread::current().id()));
        for (i, (j, t)) in got.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(*t, tid);
        }
    }
}
