//! Array redistribution: move a distributed array from one distribution to
//! another.
//!
//! The paper's §2.4 argues that "a variety of distribution patterns can
//! easily be tried by trivial modification of this program"; in practice a
//! program often needs to *change* the distribution of live data between
//! phases (e.g. rows for one sweep direction, columns for the other, or a
//! rebalanced custom distribution after mesh adaptation).  Redistribution is
//! just another communication schedule: processor `p` must send, for every
//! other processor `q`, the elements it owns under the old distribution that
//! `q` owns under the new one — a set with a closed form for any pair of
//! distributions, so no inspector is needed.

use distrib::{Distribution, IndexSet};

use crate::process::{tags, Process};
use crate::schedule::{CommSchedule, RangeRecord};

/// Build the redistribution schedule for the calling processor: what it
/// receives (elements it owns under `to` but not under `from`) and what it
/// sends.  Pure local computation — both distributions are known everywhere.
/// Works between any two [`Distribution`] implementations (block →
/// partitioned-irregular is the new interesting case).
pub fn redistribution_schedule<A, B>(rank: usize, from: &A, to: &B) -> CommSchedule
where
    A: Distribution + ?Sized,
    B: Distribution + ?Sized,
{
    assert_eq!(
        from.n(),
        to.n(),
        "distributions must cover the same index space"
    );
    assert_eq!(
        from.nprocs(),
        to.nprocs(),
        "redistribution across machine sizes is not supported"
    );
    let nprocs = from.nprocs();

    // in(p, q): elements owned by q under `from` and by p under `to`.
    let mine_after = to.local_set(rank);
    let mut recv_sets = vec![IndexSet::new(); nprocs];
    for (q, slot) in recv_sets.iter_mut().enumerate() {
        if q == rank {
            continue;
        }
        *slot = mine_after.intersect(&from.local_set(q));
    }
    let mut schedule = CommSchedule::from_recv_sets(rank, &recv_sets, Vec::new(), Vec::new());

    // out(p, q): elements owned by p under `from` and by q under `to`.
    let mine_before = from.local_set(rank);
    let mut send_records = Vec::new();
    for q in 0..nprocs {
        if q == rank {
            continue;
        }
        let out = mine_before.intersect(&to.local_set(q));
        for r in out.ranges() {
            send_records.push(RangeRecord {
                from_proc: rank,
                to_proc: q,
                low: r.start,
                high: r.end,
                buffer: 0,
            });
        }
    }
    schedule.set_send_records(send_records);
    schedule
}

/// Redistribute local data from distribution `from` to distribution `to`,
/// returning the new local storage (in `to`'s local index order).
///
/// Must be called collectively.  Elements whose owner does not change are
/// copied locally without communication.
pub fn redistribute<P, A, B, T>(proc: &mut P, from: &A, to: &B, local_data: &[T]) -> Vec<T>
where
    P: Process,
    A: Distribution + ?Sized,
    B: Distribution + ?Sized,
    T: Copy + Default + kali_process::Wire,
{
    redistribute_epoch(proc, from, to, local_data, 0)
}

/// Like [`redistribute`], tagging this redistribution's traffic with a
/// distinct `epoch` offset.
///
/// Programs that redistribute repeatedly (an adaptive-mesh run rebalancing
/// after every refinement) use the epoch counter so each round's messages
/// are distinguishable in traces; like the executor's sweep tags, epochs
/// wrap within the redistribution tag window ([`tags::SPAN`]) — in-order
/// pairwise delivery makes reuse a full window later unambiguous.
pub fn redistribute_epoch<P, A, B, T>(
    proc: &mut P,
    from: &A,
    to: &B,
    local_data: &[T],
    epoch: u64,
) -> Vec<T>
where
    P: Process,
    A: Distribution + ?Sized,
    B: Distribution + ?Sized,
    T: Copy + Default + kali_process::Wire,
{
    let rank = proc.rank();
    assert_eq!(
        local_data.len(),
        from.local_count(rank),
        "local data does not match the source distribution"
    );
    let schedule = redistribution_schedule(rank, from, to);
    let tag = tags::redistribute_tag(epoch % tags::SPAN);

    // Send phase.
    for (to_proc, records) in schedule.send_messages() {
        let count: usize = records.iter().map(|r| r.len()).sum();
        let mut payload = Vec::with_capacity(count);
        for record in records {
            for g in record.low..record.high {
                proc.charge_mem_refs(2);
                payload.push(local_data[from.local_index(g)]);
            }
        }
        proc.send_vec(to_proc, tag, payload);
    }

    // Local copies for elements that stay put.
    let mut new_local = vec![T::default(); to.local_count(rank)];
    for g in to.local_set(rank).intersect(&from.local_set(rank)).iter() {
        proc.charge_mem_refs(2);
        new_local[to.local_index(g)] = local_data[from.local_index(g)];
    }

    // Receive phase.
    for (from_proc, records) in schedule.recv_messages() {
        let payload: Vec<T> = proc.recv_vec(from_proc, tag);
        let expected: usize = records.iter().map(|r| r.len()).sum();
        assert_eq!(
            payload.len(),
            expected,
            "redistribution message size mismatch"
        );
        let mut cursor = 0usize;
        for record in records {
            for g in record.low..record.high {
                proc.charge_mem_refs(2);
                new_local[to.local_index(g)] = payload[cursor];
                cursor += 1;
            }
        }
    }
    new_local
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::DimDist;
    use dmsim::{CostModel, Machine};

    fn roundtrip_check(
        _n: usize,
        nprocs: usize,
        from: impl Fn(usize) -> DimDist + Sync,
        to: impl Fn(usize) -> DimDist + Sync,
    ) {
        let machine = Machine::new(nprocs, CostModel::ideal());
        let results = machine.run(|proc| {
            let from = from(proc.nprocs());
            let to = to(proc.nprocs());
            let rank = proc.rank();
            // Local data under `from`: value = global index.
            let local: Vec<u64> = from.local_set(rank).iter().map(|g| g as u64).collect();
            let new_local = redistribute(proc, &from, &to, &local);
            // Every element must now hold its own global index under `to`.
            let expected: Vec<u64> = to.local_set(rank).iter().map(|g| g as u64).collect();
            (new_local, expected)
        });
        for (rank, (got, expected)) in results.into_iter().enumerate() {
            assert_eq!(got, expected, "rank {rank}");
        }
    }

    #[test]
    fn block_to_cyclic_and_back() {
        roundtrip_check(97, 4, |p| DimDist::block(97, p), |p| DimDist::cyclic(97, p));
        roundtrip_check(97, 4, |p| DimDist::cyclic(97, p), |p| DimDist::block(97, p));
    }

    #[test]
    fn block_to_block_cyclic() {
        roundtrip_check(
            64,
            8,
            |p| DimDist::block(64, p),
            |p| DimDist::block_cyclic(64, p, 3),
        );
    }

    #[test]
    fn custom_rebalance() {
        roundtrip_check(
            50,
            5,
            |p| DimDist::block(50, p),
            |p| DimDist::custom((0..50).map(|i| (i * 3 + 1) % p).collect(), p),
        );
    }

    #[test]
    fn repeated_epoch_tagged_redistributions_round_trip() {
        // An adaptive run ping-pongs data between placements, one epoch per
        // round; epochs far beyond the tag window must wrap, not panic.
        let n = 31;
        let machine = Machine::new(4, CostModel::ideal());
        machine.run(|proc| {
            let block = DimDist::block(n, proc.nprocs());
            let cyclic = DimDist::cyclic(n, proc.nprocs());
            let rank = proc.rank();
            let mut data: Vec<u64> = block.local_set(rank).iter().map(|g| g as u64).collect();
            for round in 0..3u64 {
                let epoch = round * 2 + tags::SPAN * 5; // force wrapping
                data = redistribute_epoch(proc, &block, &cyclic, &data, epoch);
                data = redistribute_epoch(proc, &cyclic, &block, &data, epoch + 1);
            }
            let expected: Vec<u64> = block.local_set(rank).iter().map(|g| g as u64).collect();
            assert_eq!(data, expected, "rank {rank}");
        });
    }

    #[test]
    fn identical_distributions_move_nothing() {
        let machine = Machine::new(4, CostModel::ideal());
        let (_, stats) = machine.run_stats(|proc| {
            let d = DimDist::block(40, proc.nprocs());
            let local: Vec<u32> = d.local_set(proc.rank()).iter().map(|g| g as u32).collect();
            let out = redistribute(proc, &d, &d, &local);
            assert_eq!(out, local);
        });
        assert_eq!(stats.totals.msgs_sent, 0);
        assert_eq!(stats.totals.bytes_sent, 0);
    }

    #[test]
    fn schedule_volumes_balance_globally() {
        let n = 120;
        let p = 6;
        let from = DimDist::block(n, p);
        let to = DimDist::cyclic(n, p);
        let schedules: Vec<CommSchedule> = (0..p)
            .map(|r| redistribution_schedule(r, &from, &to))
            .collect();
        let recv: usize = schedules.iter().map(|s| s.recv_len).sum();
        let send: usize = schedules.iter().map(|s| s.send_len()).sum();
        assert_eq!(recv, send);
        // Every element is either kept locally or received exactly once.
        let kept: usize = (0..p)
            .map(|r| to.local_set(r).intersect(&from.local_set(r)).len())
            .sum();
        assert_eq!(kept + recv, n);
    }
}
