//! The `forall` front-end: one typed plan→execute pipeline.
//!
//! The paper's programmer writes
//!
//! ```text
//! forall i in 1..N on A[i].loc do … end;
//! ```
//!
//! (or, with multi-dimensional arrays, `forall i in 1..N, j in 1..M on
//! A[i,j].loc`) and the compiler expands it into the inspector/executor
//! structure.  [`ParallelLoop`] is that expansion as a library: it describes
//! the loop (an [`IterSpace`] plus the on-clause distribution), obtains a
//! schedule with one unified [`ParallelLoop::plan`] — the compile-time
//! analyser when the references are affine and closed forms exist, the
//! (cached) inspector otherwise — and executes sweeps with
//! [`ParallelLoop::execute`], which owns the sweep-tag and fetcher set-up.
//!
//! The pipeline is generic over the space: [`Span`] gives the 1-D loops of
//! the original `Forall` API, [`Rect`](crate::space::Rect) gives rectangular
//! 2-D/3-D spaces over [`distrib::ArrayDist`] decompositions
//! (`dist by [block, *]` and friends), linearised row-major so the whole
//! schedule machinery is shared.
//!
//! ## Out-of-bounds reference policy
//!
//! An affine reference that leaves the referenced array (`A[i+1]` at
//! `i = N-1` when the loop was not restricted to `1..N-1`) is a programming
//! error: **debug builds panic during [`ParallelLoop::plan`]**, on both the
//! compile-time and the inspector path; release builds treat the reference
//! as absent (it is never fetched).  The inspector additionally
//! debug-asserts every enumerated reference against the array bounds, so
//! data-dependent subscripts get the same treatment through
//! [`ParallelLoop::plan_indirect`].
//!
//! Fully local loops (every reference owned by the executing processor, like
//! the `old_a[i] := a[i]` copy loop in Figure 4) skip scheduling entirely via
//! [`forall_local`].

use std::sync::Arc;

use distrib::{combine_fingerprints, DimDist, Distribution};

use crate::cache::{LoopKey, ScheduleCache};
use crate::executor::{
    execute_sweep, execute_sweep_chunked, ChunkFetcher, ExecutorConfig, Fetcher,
};
use crate::inspector::{owner_computes_iters, run_inspector};
use crate::process::{tree_children, Process, Reduce, ReduceOp};
use crate::schedule::CommSchedule;
use crate::space::{IterSpace, Span};

/// A `forall … on OWNER[…].loc` loop description: a typed builder over an
/// iteration space, replacing the old `Forall` struct and its
/// `plan_affine`/`plan_indirect` free-function split.
#[derive(Debug, Clone)]
pub struct ParallelLoop<S: IterSpace> {
    /// Static identity of the loop (used as the schedule-cache key).
    pub loop_id: u64,
    /// The iteration space the loop ranges over.
    pub space: S,
    /// Distribution named in the `on` clause (owner-computes placement).
    pub on_dist: S::Dist,
}

impl<S: IterSpace> ParallelLoop<S> {
    /// Describe a loop over `space` with an owner-computes on-clause.
    pub fn over(loop_id: u64, space: S, on_dist: S::Dist) -> Self {
        ParallelLoop {
            loop_id,
            space,
            on_dist,
        }
    }

    /// The linearised iterations this processor executes, in ascending
    /// order — computed range-aware (a narrow space never enumerates the
    /// full owned set).
    pub fn exec_iters(&self, rank: usize) -> Vec<usize> {
        self.space.exec_iters(&self.on_dist, rank)
    }

    /// The schedule-cache key for this loop referencing `data_dist`-placed
    /// data: loop id, data version, and a combined fingerprint of *both*
    /// distributions the schedule depends on *and* the iteration space.
    /// Redistributing either array — or re-describing the same `loop_id`
    /// over a different range or box — changes the fingerprint, so a stale
    /// schedule is never reused (it would route the wrong elements or run
    /// the wrong iterations).
    pub fn cache_key<D: Distribution + ?Sized>(&self, data_dist: &D, data_version: u64) -> LoopKey {
        LoopKey::new(
            self.loop_id,
            data_version,
            combine_fingerprints(
                self.space.fingerprint(),
                combine_fingerprints(self.on_dist.fingerprint(), data_dist.fingerprint()),
            ),
        )
    }

    /// Obtain a communication schedule for affine references into a
    /// `data_dist`-placed array: the compile-time analysis when a closed
    /// form exists (no run-time set computation, **zero planning
    /// messages**), the cached inspector otherwise.
    ///
    /// Out-of-bounds references are rejected with a panic in debug builds —
    /// on *both* paths — and treated as absent in release builds (see the
    /// module docs).
    pub fn plan<P: Process>(
        &self,
        proc: &mut P,
        cache: &mut ScheduleCache,
        data_dist: &S::Dist,
        refs: &[S::Map],
        data_version: u64,
    ) -> Arc<CommSchedule> {
        #[cfg(debug_assertions)]
        self.assert_refs_in_bounds(proc.rank(), data_dist, refs);
        if let Some(schedule) = self
            .space
            .analyze(&self.on_dist, data_dist, refs, proc.rank())
        {
            // Closed form: no run-time set computation, no communication.
            return Arc::new(schedule);
        }
        let key = self.cache_key(data_dist, data_version);
        let space = &self.space;
        cache.get_or_build(key, || {
            // Enumerated lazily: a cache hit never materialises the exec set.
            let exec = space.exec_iters(&self.on_dist, proc.rank());
            run_inspector(proc, data_dist, &exec, |i, out| {
                for m in refs {
                    if let Some(v) = space.apply_map(m, i, data_dist) {
                        out.push(v);
                    }
                }
            })
        })
    }

    /// The debug-build half of the out-of-bounds policy: every affine
    /// reference of every executed iteration must land inside the data
    /// array, whichever planning path ends up being taken.
    #[cfg(debug_assertions)]
    fn assert_refs_in_bounds(&self, rank: usize, data_dist: &S::Dist, refs: &[S::Map]) {
        for &i in &self.exec_iters(rank) {
            for m in refs {
                assert!(
                    self.space.apply_map(m, i, data_dist).is_some(),
                    "loop {:#x}: an affine reference of iteration {i} leaves the bounds \
                     of the referenced array ({} elements); out-of-bounds references are \
                     a programming error — restrict the iteration space",
                    self.loop_id,
                    data_dist.n()
                );
            }
        }
    }

    /// Obtain a communication schedule for data-dependent references by
    /// running the inspector (once per `(loop_id, data_version,
    /// distributions)` — see [`ParallelLoop::cache_key`]).
    ///
    /// `refs_of` enumerates, for a linearised iteration, the linearised
    /// global indices of the `data_dist`-distributed array it references.
    pub fn plan_indirect<P, D, F>(
        &self,
        proc: &mut P,
        cache: &mut ScheduleCache,
        data_dist: &D,
        data_version: u64,
        refs_of: F,
    ) -> Arc<CommSchedule>
    where
        P: Process,
        D: Distribution + ?Sized,
        F: FnMut(usize, &mut Vec<usize>),
    {
        let mut refs_of = refs_of;
        let key = self.cache_key(data_dist, data_version);
        cache.get_or_build(key, || {
            // Enumerated lazily: a cache hit never materialises the exec set.
            let exec = self.exec_iters(proc.rank());
            run_inspector(proc, data_dist, &exec, &mut refs_of)
        })
    }

    /// Execute sweep number `sweep` of the loop body under a previously
    /// planned schedule: sends are posted, local iterations overlap the
    /// communication, nonlocal iterations run against the receive buffer.
    /// Sweep tags wrap within the executor's reserved tag window.
    pub fn execute<P, D, T, F>(
        &self,
        proc: &mut P,
        sweep: usize,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
    ) -> usize
    where
        P: Process,
        D: Distribution + ?Sized,
        T: Copy + kali_process::Wire,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
    {
        self.execute_config(
            proc,
            ExecutorConfig::sweep(sweep),
            schedule,
            data_dist,
            local_data,
            body,
        )
    }

    /// Execute one sweep in which the loop is also a **reduction**: the body
    /// returns one contribution per iteration and the loop's value is the
    /// global reduction of all contributions under the typed operator `R` —
    /// the paper's convergence tests and dot products as first-class loop
    /// outputs instead of an out-of-band `allreduce` hack.
    ///
    /// The combining order is fixed and backend independent (the
    /// [`ReduceOp`] determinism contract): contributions fold in ascending
    /// **iteration** order on each rank — regardless of the executor's
    /// local-then-nonlocal execution order — and the per-rank partials
    /// combine with the fixed **binomial-tree bracketing** through the
    /// generic [`Process::allreduce`] (`2(P−1)` messages).  The result is
    /// therefore bitwise identical on every rank, across dmsim and native,
    /// and against a sequential replay folding the same per-rank partial
    /// structure with `tree_combine_partials`.
    ///
    /// The collective runs *inside* the planned pipeline: its messages go
    /// through the backend like any other communication (so dmsim charges
    /// them), and the folds charge one flop per combine.
    #[allow(clippy::too_many_arguments)] // mirrors execute_config + the reduction op
    pub fn execute_reduce<P, D, T, R, F>(
        &self,
        proc: &mut P,
        config: ExecutorConfig,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        _op: Reduce<R>,
        mut body: F,
    ) -> R::Acc
    where
        P: Process,
        D: Distribution + ?Sized,
        T: Copy + kali_process::Wire,
        R: ReduceOp,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>) -> R::Input,
    {
        // Contributions arrive in executor order: the local iterations,
        // then the nonlocal ones — two ascending runs.  Merge-fold them in
        // ascending iteration order so the fold is a function of the loop
        // alone, not of the schedule's local/nonlocal split.
        let boundary = schedule.local_iters.len();
        let mut contributions: Vec<(usize, R::Input)> =
            Vec::with_capacity(boundary + schedule.nonlocal_iters.len());
        execute_sweep(proc, config, schedule, data_dist, local_data, |i, fetch| {
            let v = body(i, fetch);
            contributions.push((i, v));
        });
        fold_and_allreduce::<P, R>(proc, boundary, contributions)
    }

    /// Like [`ParallelLoop::execute`] with an explicit [`ExecutorConfig`]
    /// (the overlap ablation knob of the paper's executor shape).
    pub fn execute_config<P, D, T, F>(
        &self,
        proc: &mut P,
        config: ExecutorConfig,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
    ) -> usize
    where
        P: Process,
        D: Distribution + ?Sized,
        T: Copy + kali_process::Wire,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
    {
        execute_sweep(proc, config, schedule, data_dist, local_data, body)
    }

    /// Round the configured chunk length up to the space's preferred
    /// alignment ([`IterSpace::chunk_align`]) — whole rows for [`Rect`]
    /// spaces, a no-op elsewhere.  Alignment shapes chunk boundaries only;
    /// results are identical at every alignment.
    ///
    /// [`Rect`]: crate::space::Rect
    fn align_chunk(&self, mut config: ExecutorConfig) -> ExecutorConfig {
        let align = self.space.chunk_align().max(1);
        if align > 1 {
            config.chunk = config.effective_chunk().div_ceil(align) * align;
        }
        config
    }

    /// Execute one sweep on the **chunked intra-rank parallel executor**
    /// ([`execute_sweep_chunked`]): the body is a read-only `Fn` returning
    /// one value per iteration, writes happen on the calling thread through
    /// `sink(i, value)` in ascending iteration order per phase, and
    /// `config.workers` threads may run chunks concurrently.  Chunk lengths
    /// are aligned to the space ([`IterSpace::chunk_align`]) so `Rect`
    /// chunks cover whole rows.  Results and metered counters are identical
    /// at every `(workers, chunk)` setting.
    #[allow(clippy::too_many_arguments)] // mirrors execute + the sink
    pub fn execute_chunked<P, D, T, V, F, W>(
        &self,
        proc: &mut P,
        config: ExecutorConfig,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
        sink: W,
    ) -> usize
    where
        P: Process,
        D: Distribution + ?Sized + Sync,
        T: Copy + Sync + kali_process::Wire,
        V: Send,
        F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> V + Sync,
        W: FnMut(usize, V),
    {
        let config = self.align_chunk(config);
        execute_sweep_chunked(proc, config, schedule, data_dist, local_data, body, sink)
    }

    /// The chunked twin of [`ParallelLoop::execute_reduce`]: the body
    /// returns `(value, contribution)` per iteration; values reach `sink`
    /// on the calling thread (ascending iteration order per phase) and the
    /// contributions fold under `R` in exactly the order the scalar path
    /// folds them — ascending iteration order per rank, then ascending rank
    /// order — so the reduction's bits never depend on the worker count or
    /// chunk size.
    #[allow(clippy::too_many_arguments)] // mirrors execute_reduce + the sink
    pub fn execute_reduce_chunked<P, D, T, V, R, F, W>(
        &self,
        proc: &mut P,
        config: ExecutorConfig,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        _op: Reduce<R>,
        body: F,
        mut sink: W,
    ) -> R::Acc
    where
        P: Process,
        D: Distribution + ?Sized + Sync,
        T: Copy + Sync + kali_process::Wire,
        V: Send,
        R: ReduceOp,
        R::Input: Send,
        F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> (V, R::Input) + Sync,
        W: FnMut(usize, V),
    {
        let config = self.align_chunk(config);
        let boundary = schedule.local_iters.len();
        let mut contributions: Vec<(usize, R::Input)> =
            Vec::with_capacity(boundary + schedule.nonlocal_iters.len());
        execute_sweep_chunked(
            proc,
            config,
            schedule,
            data_dist,
            local_data,
            body,
            |i, (v, c)| {
                sink(i, v);
                contributions.push((i, c));
            },
        );
        fold_and_allreduce::<P, R>(proc, boundary, contributions)
    }
}

/// Fold per-iteration reduction contributions in the fixed deterministic
/// order and combine across ranks: contributions arrive as two ascending
/// runs (local iterations first, nonlocal after, split at `boundary`), are
/// merge-folded in ascending **iteration** order, and the per-rank partials
/// combine with the **binomial-tree bracketing** through
/// [`Process::allreduce`].  Shared by the scalar and chunked reduce paths
/// so both produce identical bits by construction.
///
/// **Bracketing contract.**  The cross-rank combine below must bracket
/// exactly like `tree_combine_partials::<R>` — `Process::allreduce`'s
/// documented behaviour — because the solvers' sequential replays
/// (`replay_reduce`) fold per-rank partials with that helper and assert
/// bitwise equality against this function's result.  Passing `R::combine`
/// through unchanged (never a rank-dependent or order-swapped closure) is
/// what keeps a future op addition from silently producing
/// backend-divergent bits; the reduction-determinism suite pins it for
/// every built-in op.
fn fold_and_allreduce<P: Process, R: ReduceOp>(
    proc: &mut P,
    boundary: usize,
    contributions: Vec<(usize, R::Input)>,
) -> R::Acc {
    proc.charge_flops(contributions.len());
    let (local, nonlocal) = contributions.split_at(boundary);
    debug_assert!(local.windows(2).all(|w| w[0].0 < w[1].0));
    debug_assert!(nonlocal.windows(2).all(|w| w[0].0 < w[1].0));
    let mut acc = R::identity();
    let (mut i, mut j) = (0usize, 0usize);
    while i < local.len() && j < nonlocal.len() {
        if local[i].0 < nonlocal[j].0 {
            acc = R::combine(acc, R::lift(local[i].1));
            i += 1;
        } else {
            acc = R::combine(acc, R::lift(nonlocal[j].1));
            j += 1;
        }
    }
    for &(_, v) in &local[i..] {
        acc = R::combine(acc, R::lift(v));
    }
    for &(_, v) in &nonlocal[j..] {
        acc = R::combine(acc, R::lift(v));
    }
    let partial = acc;
    // Each rank performs one combine per reduce-tree child it absorbs
    // (machine-wide P − 1 combines, the same work the flat fold did once).
    proc.charge_flops(tree_children(proc.nprocs(), proc.rank()));
    let total = proc.allreduce(partial, |a, b| R::combine(*a, *b));
    R::finish(total)
}

impl ParallelLoop<Span> {
    /// Describe a loop `forall i in 0..n on A[i].loc` where `A` is
    /// distributed by `on_dist` — the 1-D shorthand matching the old
    /// `Forall::over`.
    pub fn over_1d(loop_id: u64, n: usize, on_dist: DimDist) -> Self {
        ParallelLoop::over(loop_id, Span::upto(n), on_dist)
    }

    /// Restrict the iteration range (`forall i in lo..hi`).
    pub fn range(mut self, lo: usize, hi: usize) -> Self {
        self.space = Span::new(lo, hi);
        self
    }
}

/// Execute a `forall` in which every reference is local by construction —
/// the `old_a[i] := a[i]` copy loop of Figure 4.  Charges the loop-control
/// cost and hands the body each owned global index; no schedule, no
/// messages.
pub fn forall_local<P, D, F>(proc: &mut P, on_dist: &D, n: usize, mut body: F)
where
    P: Process,
    D: Distribution + ?Sized,
    F: FnMut(usize),
{
    for i in owner_computes_iters(on_dist, proc.rank(), n) {
        proc.charge_loop_iters(1);
        body(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::affine::AffineMap;
    use crate::analysis::multi::MultiAffineMap;
    use crate::space::Rect;
    use distrib::ArrayDist;
    use dmsim::{CostModel, Machine};

    #[test]
    fn allreduce_brackets_exactly_like_tree_combine_partials() {
        // The bracketing contract `fold_and_allreduce` relies on: the
        // collective's cross-rank combine is `tree_combine_partials`, bit
        // for bit, at power-of-two and ragged rank counts.
        use crate::process::{tree_combine_partials, Sum};
        for nprocs in [2usize, 3, 4, 7, 8] {
            let partials: Vec<f64> = (0..nprocs).map(|r| 0.1 * (r as f64 + 1.0)).collect();
            let expected = tree_combine_partials::<Sum<f64>>(partials.clone());
            let machine = Machine::new(nprocs, CostModel::ideal());
            let results = machine.run(|proc| {
                let mine = partials[proc.rank()];
                proc.allreduce(mine, |a, b| a + b)
            });
            for (rank, got) in results.iter().enumerate() {
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "P={nprocs} rank {rank}: collective bracketing diverged from the replay"
                );
            }
        }
    }

    #[test]
    fn forall_local_visits_exactly_the_owned_indices() {
        let machine = Machine::new(4, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::cyclic(22, proc.nprocs());
            let mut visited = Vec::new();
            forall_local(proc, &dist, 22, |i| visited.push(i));
            visited
        });
        let mut all: Vec<usize> = results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..22).collect::<Vec<_>>());
    }

    #[test]
    fn plan_uses_compile_time_path_without_messages() {
        let machine = Machine::new(4, CostModel::ideal());
        let (_, stats) = machine.run_stats(|proc| {
            let dist = DimDist::block(64, proc.nprocs());
            let loop_ = ParallelLoop::over_1d(1, 63, dist.clone());
            let mut cache = ScheduleCache::new();
            let schedule = loop_.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
            assert_eq!(
                cache.misses(),
                0,
                "compile-time analysis must bypass the cache"
            );
            schedule.recv_len
        });
        // Compile-time planning alone must not send a single message.
        assert_eq!(stats.totals.msgs_sent, 0);
    }

    #[test]
    fn plan_falls_back_to_inspector_for_strided_refs() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let data = DimDist::block(64, proc.nprocs());
            let loop_ = ParallelLoop::over_1d(9, 32, dist);
            let mut cache = ScheduleCache::new();
            let s1 = loop_.plan(proc, &mut cache, &data, &[AffineMap::new(2, 0)], 0);
            assert_eq!(cache.misses(), 1, "inspector must have been consulted");
            let s2 = loop_.plan(proc, &mut cache, &data, &[AffineMap::new(2, 0)], 0);
            assert_eq!(cache.hits(), 1, "second plan must hit the cache");
            assert_eq!(s1.signature(), s2.signature());
        });
    }

    #[test]
    fn redistributing_the_data_invalidates_cached_schedules() {
        // The stale-schedule bug: same loop id, same data version, but the
        // referenced array has moved to a new distribution.  The fingerprint
        // in the cache key must force re-inspection.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let on = DimDist::block(32, proc.nprocs());
            let loop_ = ParallelLoop::over_1d(11, 32, on.clone());
            let mut cache = ScheduleCache::new();
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 5) % 32);
            let s1 = loop_.plan_indirect(proc, &mut cache, &on, 0, refs);
            assert_eq!(cache.misses(), 1);
            let moved = DimDist::cyclic(32, proc.nprocs());
            let s2 = loop_.plan_indirect(proc, &mut cache, &moved, 0, refs);
            assert_eq!(cache.misses(), 2, "stale schedule must not be reused");
            assert_ne!(
                s1.signature(),
                s2.signature(),
                "the schedules really do differ between placements"
            );
            // Planning again under either distribution now hits.
            loop_.plan_indirect(proc, &mut cache, &on, 0, refs);
            loop_.plan_indirect(proc, &mut cache, &moved, 0, refs);
            assert_eq!(cache.hits(), 2);
        });
    }

    #[test]
    fn reusing_a_loop_id_over_a_different_window_misses_the_cache() {
        // Regression: the cache key used to hash only (loop_id, version,
        // distribution fingerprints).  Two loops with the same id ranging
        // over different windows would share one schedule — the second
        // would execute the first window's iterations.  The space
        // fingerprint in the key forces a fresh plan.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let mut cache = ScheduleCache::new();
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 7) % 32);
            let first = ParallelLoop::over_1d(13, 32, dist.clone()).range(0, 10);
            let s1 = first.plan_indirect(proc, &mut cache, &dist, 0, refs);
            let second = ParallelLoop::over_1d(13, 32, dist.clone()).range(10, 20);
            let s2 = second.plan_indirect(proc, &mut cache, &dist, 0, refs);
            assert_eq!(
                cache.misses(),
                2,
                "different windows must not share a schedule"
            );
            assert_ne!(s1.signature(), s2.signature());
            // Same window planned again still hits.
            first.plan_indirect(proc, &mut cache, &dist, 0, refs);
            assert_eq!(cache.hits(), 1);
            // The same holds for rectangular spaces.
            let flat = distrib::FlatDist::new(ArrayDist::block_rows(8, 4, proc.nprocs()));
            let top = ParallelLoop::over(14, Rect::full(&[8, 4]).restrict(0, 0, 4), flat.clone());
            let bottom =
                ParallelLoop::over(14, Rect::full(&[8, 4]).restrict(0, 4, 8), flat.clone());
            let refs2 = |g: usize, out: &mut Vec<usize>| out.push((g * 5) % 32);
            top.plan_indirect(proc, &mut cache, &flat, 0, refs2);
            bottom.plan_indirect(proc, &mut cache, &flat, 0, refs2);
            assert_eq!(
                cache.misses(),
                4,
                "different boxes must not share a schedule"
            );
        });
    }

    #[test]
    fn version_bumps_through_plan_indirect_reclaim_stale_generations() {
        // The adaptive-mesh pattern: the adj data changes, the caller bumps
        // the data version, and the cache must not only re-inspect but also
        // reclaim the schedule of the dead generation.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let loop_ = ParallelLoop::over_1d(21, 32, dist.clone());
            let mut cache = ScheduleCache::new();
            for version in 0..4u64 {
                for _sweep in 0..3 {
                    loop_.plan_indirect(proc, &mut cache, &dist, version, |i, refs| {
                        refs.push((i + version as usize) % 32)
                    });
                }
            }
            assert_eq!(cache.misses(), 4, "one inspector run per generation");
            assert_eq!(cache.hits(), 8);
            assert_eq!(cache.len(), 1, "stale generations must be evicted");
            assert_eq!(cache.evictions(), 3);
        });
    }

    #[test]
    fn full_shift_pipeline_through_the_loop_api() {
        let n = 48;
        let machine = Machine::new(4, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            let local_a: Vec<f64> = dist
                .local_set(rank)
                .iter()
                .map(|g| (g * g) as f64)
                .collect();
            let loop_ = ParallelLoop::over_1d(2, n - 1, dist.clone());
            let mut cache = ScheduleCache::new();
            let schedule = loop_.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
            let mut out = local_a.clone();
            loop_.execute(proc, 0, &schedule, &dist, &local_a, |i, fetch| {
                out[dist.local_index(i)] = fetch.fetch(i + 1);
            });
            (rank, out)
        });
        let dist = DimDist::block(n, 4);
        for (rank, out) in results {
            for (l, v) in out.iter().enumerate() {
                let g = dist.global_index(rank, l);
                let expected = if g < n - 1 {
                    ((g + 1) * (g + 1)) as f64
                } else {
                    (g * g) as f64
                };
                assert_eq!(*v, expected, "global index {g}");
            }
        }
    }

    #[test]
    fn narrow_range_plans_only_the_window() {
        // The range-aware satellite carried into the new API: a narrow
        // window over a huge on-clause distribution must never enumerate
        // the full owned set (the old exec_iters materialised all of
        // 0..n/p and filtered afterwards — with n = 2^40 that would hang).
        let n = 1usize << 40;
        let dist = DimDist::block(n, 2);
        let loop_ = ParallelLoop::over_1d(3, n, dist.clone()).range(5, 25);
        assert_eq!(loop_.exec_iters(0), (5..25).collect::<Vec<_>>());
        assert!(loop_.exec_iters(1).is_empty());
        // The planned schedule covers exactly the window's references.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(64, proc.nprocs());
            let loop_ = ParallelLoop::over_1d(4, 64, dist.clone()).range(30, 34);
            let mut cache = ScheduleCache::new();
            let s = loop_.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
            let execs = loop_.exec_iters(proc.rank());
            assert_eq!(s.local_iters.len() + s.nonlocal_iters.len(), execs.len());
            if proc.rank() == 0 {
                // Iterations 30, 31 with ref i+1: only 31 -> 32 is nonlocal.
                assert_eq!(s.recv_len, 1);
            }
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn out_of_bounds_refs_panic_on_the_compile_time_path() {
        // forall i in 0..n referencing A[i+1]: iteration n-1 reaches A[n].
        // The old plan_affine silently dropped the reference; the unified
        // policy panics in debug builds on both planning paths.
        let dist = DimDist::block(16, 2);
        let loop_ = ParallelLoop::over_1d(5, 16, dist.clone());
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let mut cache = ScheduleCache::new();
            loop_.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
        });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn out_of_bounds_refs_panic_on_the_inspector_path() {
        // A strided map (no closed form, inspector fallback) with the same
        // out-of-bounds defect: 2*i reaches past a data array of the same
        // size.  Must panic identically to the compile-time path.
        let dist = DimDist::block(16, 2);
        let loop_ = ParallelLoop::over_1d(6, 16, dist.clone());
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let mut cache = ScheduleCache::new();
            loop_.plan(proc, &mut cache, &dist, &[AffineMap::new(2, 0)], 0);
        });
    }

    #[test]
    fn rect_loop_plans_compile_time_and_executes_a_2d_stencil() {
        // The multi-dimensional pipeline end to end: a vertical shift
        // stencil over [block, *], planned with zero messages and executed
        // with one boundary row per neighbour.
        let (r, c) = (16usize, 5usize);
        let machine = Machine::new(4, CostModel::ideal());
        let (results, stats) = machine.run_stats(|proc| {
            let flat = distrib::FlatDist::new(ArrayDist::block_rows(r, c, proc.nprocs()));
            let rank = proc.rank();
            let local_a: Vec<f64> = (0..flat.local_count(rank))
                .map(|l| flat.global_index(rank, l) as f64)
                .collect();
            let space = Rect::full(&[r, c]).restrict(0, 0, r - 1);
            let loop_ = ParallelLoop::over(7, space, flat.clone());
            let mut cache = ScheduleCache::new();
            let schedule = loop_.plan(
                proc,
                &mut cache,
                &flat,
                &[MultiAffineMap::shifts(&[1, 0])],
                0,
            );
            assert_eq!(cache.misses(), 0, "closed form must bypass the inspector");
            let planned_msgs = proc.counters().msgs_sent;
            assert_eq!(planned_msgs, 0, "planning must cost zero messages");
            let mut out = local_a.clone();
            loop_.execute(proc, 0, &schedule, &flat, &local_a, |g, fetch| {
                out[flat.local_index(g)] = fetch.fetch(g + c);
            });
            (rank, out)
        });
        // Executor traffic: 3 boundary rows of c elements.
        assert_eq!(stats.totals.bytes_sent, 3 * c as u64 * 8);
        let flat = distrib::FlatDist::new(ArrayDist::block_rows(r, c, 4));
        for (rank, out) in results {
            for (l, v) in out.iter().enumerate() {
                let g = flat.global_index(rank, l);
                let expected = if g < (r - 1) * c {
                    (g + c) as f64
                } else {
                    g as f64
                };
                assert_eq!(*v, expected, "flat index {g}");
            }
        }
    }

    #[test]
    fn rect_loop_falls_back_to_the_cached_inspector_for_indirect_refs() {
        let (r, c) = (8usize, 6usize);
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let flat = distrib::FlatDist::new(ArrayDist::block_rows(r, c, proc.nprocs()));
            let loop_ = ParallelLoop::over(8, Rect::full(&[r, c]), flat.clone());
            let mut cache = ScheduleCache::new();
            // A data-dependent permutation gather: no closed form.
            let refs = |g: usize, out: &mut Vec<usize>| out.push((g * 13 + 5) % (r * c));
            loop_.plan_indirect(proc, &mut cache, &flat, 0, refs);
            assert_eq!(cache.misses(), 1, "inspector must have been consulted");
            loop_.plan_indirect(proc, &mut cache, &flat, 0, refs);
            assert_eq!(cache.hits(), 1, "second plan must hit the cache");
        });
    }
}
