//! High-level `forall` helpers.
//!
//! The paper's programmer writes
//!
//! ```text
//! forall i in 1..N on A[i].loc do … end;
//! ```
//!
//! and the compiler expands it into the inspector/executor structure.  This
//! module is that expansion as a library: [`Forall`] describes the loop
//! (range + on-clause), obtains a schedule — from the compile-time analyser
//! when the references are affine, otherwise from the cached inspector —
//! and runs the executor.
//!
//! Fully local loops (every reference owned by the executing processor, like
//! the `old_a[i] := a[i]` copy loop in Figure 4) skip scheduling entirely via
//! [`forall_local`].

use std::sync::Arc;

use distrib::{combine_fingerprints, DimDist, Distribution};

use crate::analysis::{self, AffineMap, LoopSpec};
use crate::cache::{LoopKey, ScheduleCache};
use crate::executor::{execute_sweep, ExecutorConfig, Fetcher};
use crate::inspector::{owner_computes_iters, run_inspector};
use crate::process::Process;
use crate::schedule::CommSchedule;

/// A `forall i in range on OWNER[i].loc` loop description.
#[derive(Debug, Clone)]
pub struct Forall {
    /// Static identity of the loop (used as the schedule-cache key).
    pub loop_id: u64,
    /// Half-open iteration range.
    pub range: (usize, usize),
    /// Distribution named in the `on` clause (owner-computes placement).
    pub on_dist: DimDist,
}

impl Forall {
    /// Describe a loop `forall i in 0..n on A[i].loc` where `A` is
    /// distributed by `on_dist`.
    pub fn over(loop_id: u64, n: usize, on_dist: DimDist) -> Self {
        Forall {
            loop_id,
            range: (0, n),
            on_dist,
        }
    }

    /// Restrict the iteration range (`forall i in lo..hi`).
    pub fn range(mut self, lo: usize, hi: usize) -> Self {
        self.range = (lo, hi);
        self
    }

    /// The iterations this processor executes, in ascending order.
    pub fn exec_iters(&self, rank: usize) -> Vec<usize> {
        owner_computes_iters(&self.on_dist, rank, self.range.1)
            .into_iter()
            .filter(|&i| i >= self.range.0)
            .collect()
    }

    /// Obtain a communication schedule for references `DATA[g_k(i)]` with
    /// affine subscripts, using the compile-time analysis when possible and
    /// the (cached) inspector otherwise.
    pub fn plan_affine<P: Process>(
        &self,
        proc: &mut P,
        cache: &mut ScheduleCache,
        data_dist: &DimDist,
        ref_maps: &[AffineMap],
        data_version: u64,
    ) -> Arc<CommSchedule> {
        let spec = LoopSpec {
            range: self.range,
            on_dist: self.on_dist.clone(),
            on_map: AffineMap::identity(),
            data_dist: data_dist.clone(),
            ref_maps: ref_maps.to_vec(),
        };
        if let Some(schedule) = analysis::compile_time::analyze(&spec, proc.rank()) {
            // Closed form: no run-time set computation, no communication.
            return Arc::new(schedule);
        }
        let exec = self.exec_iters(proc.rank());
        let maps = ref_maps.to_vec();
        let range_hi = data_dist.n();
        let key = self.cache_key(data_dist, data_version);
        cache.get_or_build(key, || {
            run_inspector(proc, data_dist, &exec, |i, refs| {
                for g in &maps {
                    if let Some(v) = g.apply(i) {
                        if v < range_hi {
                            refs.push(v);
                        }
                    }
                }
            })
        })
    }

    /// The schedule-cache key for this loop referencing `data_dist`-placed
    /// data: loop id, data version, and the fingerprints of *both*
    /// distributions the schedule depends on.  Redistributing either array
    /// changes the fingerprint, so stale schedules are never reused (they
    /// would route elements according to the old placement).
    pub fn cache_key<D: Distribution + ?Sized>(&self, data_dist: &D, data_version: u64) -> LoopKey {
        LoopKey::new(
            self.loop_id,
            data_version,
            combine_fingerprints(self.on_dist.fingerprint(), data_dist.fingerprint()),
        )
    }

    /// Obtain a communication schedule for data-dependent references by
    /// running the inspector (once per `(loop_id, data_version)`).
    ///
    /// `refs_of` enumerates, for an iteration, the global indices of the
    /// `data_dist`-distributed array it references.
    pub fn plan_indirect<P, D, F>(
        &self,
        proc: &mut P,
        cache: &mut ScheduleCache,
        data_dist: &D,
        data_version: u64,
        refs_of: F,
    ) -> Arc<CommSchedule>
    where
        P: Process,
        D: Distribution + ?Sized,
        F: FnMut(usize, &mut Vec<usize>),
    {
        let exec = self.exec_iters(proc.rank());
        let mut refs_of = refs_of;
        let key = self.cache_key(data_dist, data_version);
        cache.get_or_build(key, || run_inspector(proc, data_dist, &exec, &mut refs_of))
    }

    /// Execute the loop body under a previously planned schedule.
    pub fn run<P, D, T, F>(
        &self,
        proc: &mut P,
        config: ExecutorConfig,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
    ) -> usize
    where
        P: Process,
        D: Distribution + ?Sized,
        T: Copy + Send + 'static,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
    {
        execute_sweep(proc, config, schedule, data_dist, local_data, body)
    }
}

/// Execute a `forall` in which every reference is local by construction —
/// the `old_a[i] := a[i]` copy loop of Figure 4.  Charges the loop-control
/// cost and hands the body each owned global index; no schedule, no
/// messages.
pub fn forall_local<P, D, F>(proc: &mut P, on_dist: &D, n: usize, mut body: F)
where
    P: Process,
    D: Distribution + ?Sized,
    F: FnMut(usize),
{
    for i in owner_computes_iters(on_dist, proc.rank(), n) {
        proc.charge_loop_iters(1);
        body(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{CostModel, Machine};

    #[test]
    fn forall_local_visits_exactly_the_owned_indices() {
        let machine = Machine::new(4, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::cyclic(22, proc.nprocs());
            let mut visited = Vec::new();
            forall_local(proc, &dist, 22, |i| visited.push(i));
            visited
        });
        let mut all: Vec<usize> = results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..22).collect::<Vec<_>>());
    }

    #[test]
    fn plan_affine_uses_compile_time_path_without_messages() {
        let machine = Machine::new(4, CostModel::ideal());
        let (_, stats) = machine.run_stats(|proc| {
            let dist = DimDist::block(64, proc.nprocs());
            let loop_ = Forall::over(1, 63, dist.clone());
            let mut cache = ScheduleCache::new();
            let schedule = loop_.plan_affine(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
            assert_eq!(
                cache.misses(),
                0,
                "compile-time analysis must bypass the cache"
            );
            schedule.recv_len
        });
        // Compile-time planning alone must not send a single message.
        assert_eq!(stats.totals.msgs_sent, 0);
    }

    #[test]
    fn plan_affine_falls_back_to_inspector_for_strided_refs() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let data = DimDist::block(64, proc.nprocs());
            let loop_ = Forall::over(9, 32, dist);
            let mut cache = ScheduleCache::new();
            let s1 = loop_.plan_affine(proc, &mut cache, &data, &[AffineMap::new(2, 0)], 0);
            assert_eq!(cache.misses(), 1, "inspector must have been consulted");
            let s2 = loop_.plan_affine(proc, &mut cache, &data, &[AffineMap::new(2, 0)], 0);
            assert_eq!(cache.hits(), 1, "second plan must hit the cache");
            assert_eq!(s1.signature(), s2.signature());
        });
    }

    #[test]
    fn redistributing_the_data_invalidates_cached_schedules() {
        // The stale-schedule bug: same loop id, same data version, but the
        // referenced array has moved to a new distribution.  The fingerprint
        // in the cache key must force re-inspection.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let on = DimDist::block(32, proc.nprocs());
            let loop_ = Forall::over(11, 32, on.clone());
            let mut cache = ScheduleCache::new();
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 5) % 32);
            let s1 = loop_.plan_indirect(proc, &mut cache, &on, 0, refs);
            assert_eq!(cache.misses(), 1);
            let moved = DimDist::cyclic(32, proc.nprocs());
            let s2 = loop_.plan_indirect(proc, &mut cache, &moved, 0, refs);
            assert_eq!(cache.misses(), 2, "stale schedule must not be reused");
            assert_ne!(
                s1.signature(),
                s2.signature(),
                "the schedules really do differ between placements"
            );
            // Planning again under either distribution now hits.
            loop_.plan_indirect(proc, &mut cache, &on, 0, refs);
            loop_.plan_indirect(proc, &mut cache, &moved, 0, refs);
            assert_eq!(cache.hits(), 2);
        });
    }

    #[test]
    fn version_bumps_through_plan_indirect_reclaim_stale_generations() {
        // The adaptive-mesh pattern: the adj data changes, the caller bumps
        // the data version, and the cache must not only re-inspect but also
        // reclaim the schedule of the dead generation.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let loop_ = Forall::over(21, 32, dist.clone());
            let mut cache = ScheduleCache::new();
            for version in 0..4u64 {
                for _sweep in 0..3 {
                    loop_.plan_indirect(proc, &mut cache, &dist, version, |i, refs| {
                        refs.push((i + version as usize) % 32)
                    });
                }
            }
            assert_eq!(cache.misses(), 4, "one inspector run per generation");
            assert_eq!(cache.hits(), 8);
            assert_eq!(cache.len(), 1, "stale generations must be evicted");
            assert_eq!(cache.evictions(), 3);
        });
    }

    #[test]
    fn full_shift_pipeline_through_forall_api() {
        let n = 48;
        let machine = Machine::new(4, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            let local_a: Vec<f64> = dist
                .local_set(rank)
                .iter()
                .map(|g| (g * g) as f64)
                .collect();
            let loop_ = Forall::over(2, n - 1, dist.clone());
            let mut cache = ScheduleCache::new();
            let schedule = loop_.plan_affine(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
            let mut out = local_a.clone();
            loop_.run(
                proc,
                ExecutorConfig::default(),
                &schedule,
                &dist,
                &local_a,
                |i, fetch| {
                    out[dist.local_index(i)] = fetch.fetch(i + 1);
                },
            );
            (rank, out)
        });
        let dist = DimDist::block(n, 4);
        for (rank, out) in results {
            for (l, v) in out.iter().enumerate() {
                let g = dist.global_index(rank, l);
                let expected = if g < n - 1 {
                    ((g + 1) * (g + 1)) as f64
                } else {
                    (g * g) as f64
                };
                assert_eq!(*v, expected, "global index {g}");
            }
        }
    }
}
