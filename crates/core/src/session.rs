//! The [`Session`]: one per-rank handle owning the execute-side runtime
//! state a Kali program needs.
//!
//! The paper's programs are sequences of `forall`s interleaved with global
//! reductions.  Before this module, every solver hand-wired the same
//! plumbing: a `ScheduleCache` built by hand, `const LOOP_ID` magic numbers,
//! a manually threaded sweep counter for executor tags, a manually threaded
//! epoch counter for redistributions, `proc.time()` bracketing around every
//! plan call, and raw `allreduce_sum_f64` calls outside the pipeline.  A
//! `Session` owns all of it:
//!
//! * the **schedule cache** — one per session, shared by every loop the
//!   session allocates (two interleaved `forall`s — red/black half-sweeps —
//!   share the cache but never a schedule, because their loop ids differ);
//! * **loop-id allocation** ([`Session::loop_1d`], [`Session::loop_over`]) —
//!   ids are handed out in program order, which is identical on every rank
//!   of an SPMD program, so the cache keys stay in lockstep;
//! * **sweep-tag allocation** — [`Session::execute`] stamps each execution
//!   with the next tag from one monotonically increasing counter (wrapping
//!   inside the executor's tag window), so interleaved loops can never
//!   confuse their in-flight messages;
//! * **data-version tracking** — [`Session::bump_data_version`] after a mesh
//!   adaptation makes every subsequent plan re-inspect exactly once;
//! * **redistribution epochs** — [`Session::redistribute`] tags each move
//!   with the next epoch and [`Session::retire_placement`] reclaims the
//!   retired placement's schedules from the cache;
//! * **metering** — inspector time (accumulated around every plan call) and
//!   reduction counts/bytes ([`Session::execute_reduce`]), snapshotted by
//!   [`Session::stats`] for the solvers' outcome structs.
//!
//! Reductions are **first-class loop outputs** here:
//! [`Session::execute_reduce`] executes a planned sweep whose body returns
//! one contribution per iteration and reduces them under a typed
//! [`ReduceOp`] — deterministically ordered, so
//! dmsim, native and a sequential replay agree bit for bit — while the
//! collective's messages are charged like any other communication.

use std::sync::Arc;

use distrib::Distribution;

use crate::cache::{CacheStats, ScheduleCache};
use crate::executor::{ChunkFetcher, ExecutorConfig, Fetcher};
use crate::forall::ParallelLoop;
use crate::process::trace::Event;
use crate::process::{tree_allreduce_sends, Process, Reduce, ReduceOp};
use crate::redistribute::redistribute_epoch;
use crate::schedule::CommSchedule;
use crate::space::{IterSpace, Span};
use crate::verify::{self, CollectiveCall, Violation};

/// Per-rank execute-side runtime state: schedule cache, loop-id / sweep-tag /
/// epoch allocation, data-version tracking and reduction metering (see the
/// module docs).
///
/// A `Session` is SPMD state: every rank constructs one at the same point of
/// the program and calls the same methods in the same order, which keeps the
/// allocated ids, tags, versions and cache key sequences identical
/// everywhere — the lockstep the collective inspector requires.
#[derive(Debug)]
pub struct Session {
    cache: ScheduleCache,
    next_loop_id: u64,
    sweep: usize,
    epoch: u64,
    data_version: u64,
    overlap: bool,
    workers: usize,
    chunk: usize,
    loops_allocated: u64,
    sweeps_executed: u64,
    redistributions: u64,
    reductions: u64,
    reduction_bytes: u64,
    inspector_time: f64,
    collective_trace: Vec<CollectiveCall>,
}

/// A snapshot of one session's meters, for outcome structs and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Schedule-cache meters (hits, misses, evictions, residency).
    pub cache: CacheStats,
    /// Loops allocated by this session.
    pub loops_allocated: u64,
    /// Sweeps executed (plain and reducing).
    pub sweeps_executed: u64,
    /// Redistributions performed.
    pub redistributions: u64,
    /// Reductions performed ([`Session::execute_reduce`] calls).
    pub reductions: u64,
    /// Payload bytes this rank sent for those reductions: the tree
    /// allreduce's per-rank share, `tree_allreduce_sends(P, rank) ·
    /// size_of::<Acc>()` per reduction (summed over ranks this is the
    /// tree's `2(P − 1)` messages).
    pub reduction_bytes: u64,
    /// Simulated seconds this rank spent planning (inspector + closed-form
    /// analysis), accumulated around every plan call.
    pub inspector_time: f64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// Read a non-negative integer knob from the environment; unset, empty or
/// unparsable values fall back to the caller's default.
fn env_knob(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Session {
    /// A session with the default schedule-cache capacity.
    pub fn new() -> Self {
        Session::with_cache_capacity(crate::cache::DEFAULT_CAPACITY)
    }

    /// A session whose schedule cache holds at most `capacity` schedules.
    ///
    /// The intra-rank worker-pool knobs initialise from the environment:
    /// `KALI_WORKERS` (threads per rank for the chunked executor, default 1)
    /// and `KALI_CHUNK` (chunk length in iterations, default 0 = auto).
    /// Neither affects results — only wall-clock speed on the native
    /// backend — which is what lets an unmodified program be driven at any
    /// worker count from the outside.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        Session {
            cache: ScheduleCache::with_capacity(capacity),
            next_loop_id: 1,
            sweep: 0,
            epoch: 0,
            data_version: 0,
            overlap: true,
            workers: env_knob("KALI_WORKERS").unwrap_or(1).max(1),
            chunk: env_knob("KALI_CHUNK").unwrap_or(0),
            loops_allocated: 0,
            sweeps_executed: 0,
            redistributions: 0,
            reductions: 0,
            reduction_bytes: 0,
            inspector_time: 0.0,
            collective_trace: Vec::new(),
        }
    }

    /// Set whether executions overlap communication with local iterations
    /// (the paper's executor shape; disabling it is the ablation knob).
    pub fn set_overlap(&mut self, overlap: bool) {
        self.overlap = overlap;
    }

    /// Builder form of [`Session::set_overlap`].
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.set_overlap(overlap);
        self
    }

    /// Set the intra-rank worker-thread count for chunked executions
    /// (clamped to at least 1).  With 1 worker no threads are spawned; any
    /// other count changes wall-clock speed only, never results — the
    /// chunked executor's determinism contract.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The intra-rank worker-thread count chunked executions will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Builder form of [`Session::set_workers`].
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// Set the chunk length (iterations per chunk) for chunked executions;
    /// `0` picks the default and spaces may round it up to their preferred
    /// alignment (whole rows for `Rect`).  Never affects results.
    pub fn set_chunk_size(&mut self, chunk: usize) {
        self.chunk = chunk;
    }

    /// The configured chunk length (`0` = auto).
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    // ----------------------------------------------------------------
    // Loop allocation
    // ----------------------------------------------------------------

    /// Allocate the next loop id.  Ids are handed out in program order
    /// (identical on every rank of an SPMD program) and are unique within
    /// the session — which is all the session's own cache requires.
    pub fn alloc_loop_id(&mut self) -> u64 {
        let id = self.next_loop_id;
        self.next_loop_id += 1;
        self.loops_allocated += 1;
        id
    }

    /// Describe a loop over `space` with an owner-computes on-clause,
    /// allocating its id from this session.
    pub fn loop_over<S: IterSpace>(&mut self, space: S, on_dist: S::Dist) -> ParallelLoop<S> {
        let id = self.alloc_loop_id();
        ParallelLoop::over(id, space, on_dist)
    }

    /// Describe `forall i in 0..n on A[i].loc` (the 1-D shorthand),
    /// allocating its id from this session.
    pub fn loop_1d(&mut self, n: usize, on_dist: distrib::DimDist) -> ParallelLoop<Span> {
        self.loop_over(Span::upto(n), on_dist)
    }

    // ----------------------------------------------------------------
    // Data versions
    // ----------------------------------------------------------------

    /// The current data version (the generation of the run-time data
    /// controlling subscripts — the paper's `adj` array).
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Bump the data version (after a mesh adaptation): every subsequent
    /// plan misses once, and the cache's generation self-invalidation
    /// reclaims the dead generation's schedules.  Returns the new version.
    pub fn bump_data_version(&mut self) -> u64 {
        self.data_version += 1;
        self.data_version
    }

    // ----------------------------------------------------------------
    // Planning (timed, against the session's cache and version)
    // ----------------------------------------------------------------

    /// Plan affine references through [`ParallelLoop::plan`] using the
    /// session's cache and current data version, accumulating the elapsed
    /// (simulated) time into the session's inspector meter.
    pub fn plan<P, S>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        data_dist: &S::Dist,
        refs: &[S::Map],
    ) -> Arc<CommSchedule>
    where
        P: Process,
        S: IterSpace,
    {
        let before = proc.time();
        let schedule = loop_.plan(proc, &mut self.cache, data_dist, refs, self.data_version);
        self.inspector_time += proc.time() - before;
        self.debug_verify(&schedule);
        schedule
    }

    /// Plan data-dependent references through
    /// [`ParallelLoop::plan_indirect`] using the session's cache and current
    /// data version, accumulating the elapsed time into the inspector meter.
    pub fn plan_indirect<P, S, D, F>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        data_dist: &D,
        refs_of: F,
    ) -> Arc<CommSchedule>
    where
        P: Process,
        S: IterSpace,
        D: Distribution + ?Sized,
        F: FnMut(usize, &mut Vec<usize>),
    {
        let before = proc.time();
        let schedule =
            loop_.plan_indirect(proc, &mut self.cache, data_dist, self.data_version, refs_of);
        self.inspector_time += proc.time() - before;
        self.debug_verify(&schedule);
        schedule
    }

    /// Statically verify one planned schedule's rank-local invariants
    /// (record ordering, dense non-overlapping receive layout, lookup
    /// consistency, well-formed iteration lists) — see
    /// [`verify::check_schedule`].  Cross-rank properties (duality,
    /// deadlock freedom) need every rank's plan at once; gather those and
    /// call [`verify::check_schedule_set`].
    ///
    /// Debug builds run this automatically on every [`Session::plan`] /
    /// [`Session::plan_indirect`] result, so a broken analysis aborts at
    /// plan time with a diagnostic instead of hanging in the executor.
    pub fn verify_plan(&self, schedule: &CommSchedule) -> Vec<Violation> {
        verify::check_schedule(schedule)
    }

    #[inline]
    fn debug_verify(&self, schedule: &CommSchedule) {
        if cfg!(debug_assertions) {
            let violations = self.verify_plan(schedule);
            assert!(
                violations.is_empty(),
                "plan failed static verification:\n{}",
                verify::render(&violations)
            );
        }
    }

    // ----------------------------------------------------------------
    // Execution (sweep tags allocated here)
    // ----------------------------------------------------------------

    /// The executor configuration for the next sweep: the session's
    /// monotonic sweep counter (wrapped inside the executor tag window by
    /// [`ExecutorConfig::sweep`]) plus the session's overlap setting.
    fn next_sweep_config(&mut self) -> ExecutorConfig {
        let config = ExecutorConfig::sweep(self.sweep)
            .with_overlap(self.overlap)
            .with_workers(self.workers)
            .with_chunk(self.chunk);
        self.sweep += 1;
        self.sweeps_executed += 1;
        config
    }

    /// Execute one sweep of a planned loop, stamping it with the next sweep
    /// tag.  Returns the number of iterations executed locally.
    pub fn execute<P, S, D, T, F>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
    ) -> usize
    where
        P: Process,
        S: IterSpace,
        D: Distribution + ?Sized,
        T: Copy + kali_process::Wire,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
    {
        let config = self.next_sweep_config();
        loop_.execute_config(proc, config, schedule, data_dist, local_data, body)
    }

    /// Execute one sweep whose value is a typed global reduction of the
    /// body's per-iteration contributions
    /// ([`ParallelLoop::execute_reduce`]), stamping it with the next sweep
    /// tag and metering the reduction (count and bytes) in the session.
    #[allow(clippy::too_many_arguments)] // mirrors ParallelLoop::execute_reduce
    pub fn execute_reduce<P, S, D, T, R, F>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        op: Reduce<R>,
        body: F,
    ) -> R::Acc
    where
        P: Process,
        S: IterSpace,
        D: Distribution + ?Sized,
        T: Copy + kali_process::Wire,
        R: ReduceOp,
        F: FnMut(usize, &mut Fetcher<'_, T, P, D>) -> R::Input,
    {
        let config = self.next_sweep_config();
        let value = loop_.execute_reduce(proc, config, schedule, data_dist, local_data, op, body);
        self.meter_reduction::<P, R>(proc);
        value
    }

    /// Execute one sweep on the chunked intra-rank parallel executor
    /// ([`ParallelLoop::execute_chunked`]), stamping it with the next sweep
    /// tag and threading the session's worker/chunk knobs through.  The
    /// body is a read-only `Fn`; writes go through `sink` on the calling
    /// thread in ascending iteration order per phase.
    #[allow(clippy::too_many_arguments)] // mirrors execute + the sink
    pub fn execute_chunked<P, S, D, T, V, F, W>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        body: F,
        sink: W,
    ) -> usize
    where
        P: Process,
        S: IterSpace,
        D: Distribution + ?Sized + Sync,
        T: Copy + Sync + kali_process::Wire,
        V: Send,
        F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> V + Sync,
        W: FnMut(usize, V),
    {
        let config = self.next_sweep_config();
        loop_.execute_chunked(proc, config, schedule, data_dist, local_data, body, sink)
    }

    /// Execute one reducing sweep on the chunked executor
    /// ([`ParallelLoop::execute_reduce_chunked`]), stamping it with the
    /// next sweep tag and metering the reduction like
    /// [`Session::execute_reduce`].  Bitwise identical to the scalar path
    /// at every worker count and chunk size.
    #[allow(clippy::too_many_arguments)] // mirrors execute_reduce + the sink
    pub fn execute_reduce_chunked<P, S, D, T, V, R, F, W>(
        &mut self,
        proc: &mut P,
        loop_: &ParallelLoop<S>,
        schedule: &CommSchedule,
        data_dist: &D,
        local_data: &[T],
        op: Reduce<R>,
        body: F,
        sink: W,
    ) -> R::Acc
    where
        P: Process,
        S: IterSpace,
        D: Distribution + ?Sized + Sync,
        T: Copy + Sync + kali_process::Wire,
        V: Send,
        R: ReduceOp,
        R::Input: Send,
        F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> (V, R::Input) + Sync,
        W: FnMut(usize, V),
    {
        let config = self.next_sweep_config();
        let value = loop_.execute_reduce_chunked(
            proc, config, schedule, data_dist, local_data, op, body, sink,
        );
        self.meter_reduction::<P, R>(proc);
        value
    }

    /// Count one typed reduction: meters (count, bytes) plus one
    /// [`CollectiveCall`] appended to the collective trace the SPMD
    /// conformance check compares across ranks.
    fn meter_reduction<P: Process, R: ReduceOp>(&mut self, proc: &P) {
        self.reductions += 1;
        self.reduction_bytes += tree_allreduce_sends(proc.nprocs(), proc.rank()) as u64
            * std::mem::size_of::<R::Acc>() as u64;
        self.collective_trace.push(CollectiveCall {
            op: R::name(),
            acc_bytes: std::mem::size_of::<R::Acc>(),
        });
    }

    // ----------------------------------------------------------------
    // Redistribution (epochs allocated here)
    // ----------------------------------------------------------------

    /// Move a live array between distributions, tagging the traffic with
    /// the session's next redistribution epoch.
    pub fn redistribute<P, A, B, T>(
        &mut self,
        proc: &mut P,
        from: &A,
        to: &B,
        local_data: &[T],
    ) -> Vec<T>
    where
        P: Process,
        A: Distribution + ?Sized,
        B: Distribution + ?Sized,
        T: Copy + Default + kali_process::Wire,
    {
        let epoch = self.epoch;
        self.epoch += 1;
        self.redistributions += 1;
        redistribute_epoch(proc, from, to, local_data, epoch)
    }

    /// Reclaim every cached schedule `loop_` built under `retired` — the
    /// companion of a rebalancing [`Session::redistribute`]: once the data
    /// has moved, schedules describing the old placement are dead weight.
    /// Returns the number of entries reclaimed.
    pub fn retire_placement<S, D>(&mut self, loop_: &ParallelLoop<S>, retired: &D) -> usize
    where
        S: IterSpace,
        D: Distribution + ?Sized,
    {
        // The combined fingerprint in the cache key is version independent,
        // so probing with version 0 names every generation built under the
        // retired placement.
        let fingerprint = loop_.cache_key(retired, 0).dist_fingerprint;
        self.cache.invalidate_fingerprint(fingerprint)
    }

    // ----------------------------------------------------------------
    // Introspection
    // ----------------------------------------------------------------

    /// Direct access to the schedule cache (escape hatch for tests and
    /// tooling; programs normally go through the planning methods).
    pub fn cache(&mut self) -> &mut ScheduleCache {
        &mut self.cache
    }

    /// Simulated seconds this rank has spent planning so far.
    pub fn inspector_time(&self) -> f64 {
        self.inspector_time
    }

    /// Every collective this session has issued, in program order — the
    /// per-rank trace [`verify::check_collective_sequence`] compares across
    /// ranks to prove the SPMD contract (no code branches on the rank id
    /// around a collective).
    pub fn collective_trace(&self) -> &[CollectiveCall] {
        &self.collective_trace
    }

    /// Opt into event-trace recording on the backend: every subsequent
    /// send, receive, collective entry and chunk claim of this rank is
    /// recorded (a cheap per-event append) until [`Session::take_trace`].
    /// Backends without a recorder (the trait's default hooks) make this a
    /// no-op and return an empty trace.
    pub fn start_trace<P: Process>(&self, proc: &mut P) {
        proc.trace_start();
    }

    /// Stop recording and take this rank's recorded events.  Gather every
    /// rank's trace and feed the set to
    /// [`mc::check_trace`](crate::mc::check_trace) for happens-before
    /// analysis.
    pub fn take_trace<P: Process>(&self, proc: &mut P) -> Vec<Event> {
        proc.trace_take()
    }

    /// Snapshot every session meter.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            cache: self.cache.stats(),
            loops_allocated: self.loops_allocated,
            sweeps_executed: self.sweeps_executed,
            redistributions: self.redistributions,
            reductions: self.reductions,
            reduction_bytes: self.reduction_bytes,
            inspector_time: self.inspector_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::affine::AffineMap;
    use crate::process::Sum;
    use distrib::DimDist;
    use dmsim::{CostModel, Machine};

    #[test]
    fn sessions_allocate_distinct_loop_ids_and_share_one_cache() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(32, proc.nprocs());
            let mut session = Session::new();
            let a = session.loop_1d(32, dist.clone());
            let b = session.loop_1d(32, dist.clone());
            assert_ne!(a.loop_id, b.loop_id, "ids must be distinct");
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 5) % 32);
            session.plan_indirect(proc, &a, &dist, refs);
            session.plan_indirect(proc, &b, &dist, refs);
            let stats = session.stats();
            assert_eq!(stats.cache.misses, 2, "one inspector run per loop");
            assert_eq!(stats.loops_allocated, 2);
            // Replanning either loop hits the shared cache.
            session.plan_indirect(proc, &a, &dist, refs);
            session.plan_indirect(proc, &b, &dist, refs);
            assert_eq!(session.stats().cache.hits, 2);
        });
    }

    #[test]
    fn version_bumps_force_reinspection_through_the_session() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(24, proc.nprocs());
            let mut session = Session::new();
            let loop_ = session.loop_1d(24, dist.clone());
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 7) % 24);
            session.plan_indirect(proc, &loop_, &dist, refs);
            session.plan_indirect(proc, &loop_, &dist, refs);
            assert_eq!(session.stats().cache.misses, 1);
            assert_eq!(session.bump_data_version(), 1);
            session.plan_indirect(proc, &loop_, &dist, refs);
            let stats = session.stats();
            assert_eq!(stats.cache.misses, 2, "new version must re-inspect");
            assert_eq!(
                stats.cache.evictions, 1,
                "the dead generation must be reclaimed"
            );
        });
    }

    #[test]
    fn execute_allocates_monotonic_sweep_tags() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let n = 16;
            let dist = DimDist::block(n, proc.nprocs());
            let mut session = Session::new();
            let loop_ = session.loop_1d(n - 1, dist.clone());
            let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::shift(1)]);
            let local: Vec<f64> = dist
                .local_set(proc.rank())
                .iter()
                .map(|g| g as f64)
                .collect();
            let mut out = local.clone();
            for _ in 0..3 {
                session.execute(proc, &loop_, &schedule, &dist, &local, |i, fetch| {
                    out[dist.local_index(i)] = fetch.fetch(i + 1);
                });
            }
            assert_eq!(session.stats().sweeps_executed, 3);
        });
    }

    #[test]
    fn execute_reduce_meters_the_reduction() {
        let machine = Machine::new(4, CostModel::ideal());
        let results = machine.run(|proc| {
            let n = 20;
            let dist = DimDist::block(n, proc.nprocs());
            let mut session = Session::new();
            let loop_ = session.loop_1d(n, dist.clone());
            let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::identity()]);
            let local: Vec<f64> = dist
                .local_set(proc.rank())
                .iter()
                .map(|g| g as f64)
                .collect();
            let total = session.execute_reduce(
                proc,
                &loop_,
                &schedule,
                &dist,
                &local,
                Reduce::<Sum<f64>>::new(),
                |i, fetch| fetch.fetch(i),
            );
            (total, session.stats())
        });
        let expected: f64 = (0..20).map(|i| i as f64).sum();
        for (rank, (total, stats)) in results.iter().enumerate() {
            assert_eq!(*total, expected);
            assert_eq!(stats.reductions, 1);
            assert_eq!(
                stats.reduction_bytes,
                tree_allreduce_sends(4, rank) as u64 * 8,
                "tree sends * size_of::<f64>()"
            );
            assert_eq!(stats.sweeps_executed, 1);
        }
        // Machine-wide, the tree's 2(P-1) messages of 8 bytes.
        let machine_bytes: u64 = results.iter().map(|(_, s)| s.reduction_bytes).sum();
        assert_eq!(machine_bytes, 2 * 3 * 8);
        // Bitwise identical across ranks.
        for w in results.windows(2) {
            assert_eq!(w[0].0.to_bits(), w[1].0.to_bits());
        }
    }

    #[test]
    fn redistribute_allocates_epochs_and_retire_reclaims_schedules() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let n = 24;
            let block = DimDist::block(n, proc.nprocs());
            let cyclic = DimDist::cyclic(n, proc.nprocs());
            let mut session = Session::new();
            let loop_ = session.loop_1d(n, block.clone());
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 5) % 24);
            session.plan_indirect(proc, &loop_, &block, refs);
            assert_eq!(session.stats().cache.resident_entries, 1);

            let data: Vec<u64> = block
                .local_set(proc.rank())
                .iter()
                .map(|g| g as u64)
                .collect();
            let moved = session.redistribute(proc, &block, &cyclic, &data);
            let expected: Vec<u64> = cyclic
                .local_set(proc.rank())
                .iter()
                .map(|g| g as u64)
                .collect();
            assert_eq!(moved, expected);
            assert_eq!(session.stats().redistributions, 1);

            // Retiring the old placement reclaims its schedule.
            assert_eq!(session.retire_placement(&loop_, &block), 1);
            assert_eq!(session.stats().cache.resident_entries, 0);
            assert_eq!(session.stats().cache.evictions, 1);
        });
    }

    #[test]
    fn worker_and_chunk_knobs_default_sane_and_are_settable() {
        // Note: this does not set the KALI_WORKERS env var (process-global
        // state would race other tests); the env path is covered by the CI
        // job running the equivalence suite under KALI_WORKERS=4.
        let mut s = Session::new();
        assert!(s.workers() >= 1);
        s.set_workers(0);
        assert_eq!(s.workers(), 1, "worker count clamps to at least 1");
        let s = Session::new().with_workers(6);
        assert_eq!(s.workers(), 6);
        let mut s = Session::new();
        assert_eq!(s.chunk_size(), 0);
        s.set_chunk_size(512);
        assert_eq!(s.chunk_size(), 512);
    }

    #[test]
    fn chunked_session_execution_matches_scalar_bitwise() {
        let run = |workers: usize, chunk: usize, chunked: bool| {
            let machine = Machine::new(2, CostModel::ncube7());
            machine.run_stats(|proc| {
                let n = 33;
                let dist = DimDist::block(n, proc.nprocs());
                let mut session = Session::new();
                session.set_workers(workers);
                session.set_chunk_size(chunk);
                let loop_ = session.loop_1d(n - 1, dist.clone());
                let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::shift(1)]);
                let local: Vec<f64> = dist
                    .local_set(proc.rank())
                    .iter()
                    .map(|g| 0.1 * (g as f64 + 1.0))
                    .collect();
                let mut out = local.clone();
                let norm = if chunked {
                    session.execute_reduce_chunked(
                        proc,
                        &loop_,
                        &schedule,
                        &dist,
                        &local,
                        Reduce::<Sum<f64>>::new(),
                        |i, fetch| {
                            let v = fetch.fetch(i + 1);
                            (v, v * v)
                        },
                        |i, v| out[dist.local_index(i)] = v,
                    )
                } else {
                    session.execute_reduce(
                        proc,
                        &loop_,
                        &schedule,
                        &dist,
                        &local,
                        Reduce::<Sum<f64>>::new(),
                        |i, fetch| {
                            let v = fetch.fetch(i + 1);
                            out[dist.local_index(i)] = v;
                            v * v
                        },
                    )
                };
                (out, norm, session.stats())
            })
        };
        let (scalar, scalar_stats) = run(1, 0, false);
        for workers in [1usize, 3] {
            for chunk in [0usize, 1, 5] {
                let (chunked, stats) = run(workers, chunk, true);
                for (a, b) in scalar.iter().zip(&chunked) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "reduction bits diverged");
                    assert_eq!(a.2, b.2, "session meters diverged");
                }
                // queue_peak is a scheduling observation, not a metered
                // cost; it is the one counter outside this contract.
                let strip = |mut c: crate::process::Counters| {
                    c.queue_peak = 0;
                    c
                };
                assert_eq!(
                    strip(stats.totals),
                    strip(scalar_stats.totals),
                    "machine counters diverged"
                );
            }
        }
    }

    #[test]
    fn planned_schedules_verify_clean_and_collectives_are_traced() {
        let machine = Machine::new(3, CostModel::ideal());
        let traces = machine.run(|proc| {
            let n = 24;
            let dist = DimDist::block(n, proc.nprocs());
            let mut session = Session::new();
            let loop_ = session.loop_1d(n, dist.clone());
            let refs = |i: usize, out: &mut Vec<usize>| out.push((i * 5) % 24);
            let schedule = session.plan_indirect(proc, &loop_, &dist, refs);
            // The plan passes rank-local static verification...
            assert_eq!(session.verify_plan(&schedule), vec![]);
            // ...and a hand-corrupted copy does not.
            let mut broken = (*schedule).clone();
            if let Some(r) = broken.recv_records.first_mut() {
                r.buffer += 1;
                assert!(!session.verify_plan(&broken).is_empty());
            }
            let local: Vec<f64> = dist
                .local_set(proc.rank())
                .iter()
                .map(|g| g as f64)
                .collect();
            for _ in 0..2 {
                session.execute_reduce(
                    proc,
                    &loop_,
                    &schedule,
                    &dist,
                    &local,
                    Reduce::<Sum<f64>>::new(),
                    |i, fetch| fetch.fetch((i * 5) % 24),
                );
            }
            session.collective_trace().to_vec()
        });
        // Each rank issued the same two collectives in the same order: the
        // SPMD conformance check accepts the traces.
        assert_eq!(crate::verify::check_collective_sequence(&traces), vec![]);
        for trace in &traces {
            assert_eq!(trace.len(), 2);
            assert_eq!(trace[0].op, "sum-f64");
            assert_eq!(trace[0].acc_bytes, 8);
        }
    }

    #[test]
    fn traced_chunked_execution_records_claims_and_passes_mc() {
        use crate::process::trace::EventKind;
        let machine = Machine::new(2, CostModel::ideal());
        let traces = machine.run(|proc| {
            let n = 24;
            let dist = DimDist::block(n, proc.nprocs());
            let mut session = Session::new().with_workers(2);
            session.set_chunk_size(3);
            let loop_ = session.loop_1d(n - 1, dist.clone());
            let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::shift(1)]);
            let local: Vec<f64> = dist
                .local_set(proc.rank())
                .iter()
                .map(|g| g as f64)
                .collect();
            let mut out = local.clone();
            session.start_trace(proc);
            session.execute_chunked(
                proc,
                &loop_,
                &schedule,
                &dist,
                &local,
                |i, fetch| fetch.fetch(i + 1),
                |i, v| out[dist.local_index(i)] = v,
            );
            let trace = session.take_trace(proc);
            // Recording has stopped: later traffic is not recorded.
            session.execute(proc, &loop_, &schedule, &dist, &local, |i, fetch| {
                out[dist.local_index(i)] = fetch.fetch(i + 1);
            });
            trace
        });
        // Every rank recorded its chunk claims; the boundary message shows
        // up as a send on one rank and a receive on the other; and the
        // trace set is causally consistent and race-free.
        for t in &traces {
            assert!(
                t.iter()
                    .any(|e| matches!(e.kind, EventKind::ChunkClaim { .. })),
                "chunk claims must be recorded"
            );
        }
        let all: Vec<&EventKind> = traces.iter().flatten().map(|e| &e.kind).collect();
        assert!(all.iter().any(|k| matches!(k, EventKind::Send { .. })));
        assert!(all.iter().any(|k| matches!(k, EventKind::Recv { .. })));
        assert_eq!(crate::mc::check_trace(&traces), vec![]);
    }

    #[test]
    fn overlap_knob_threads_through_to_the_executor() {
        // Results are independent of overlap; this just exercises the knob.
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let n = 16;
            let dist = DimDist::block(n, proc.nprocs());
            let mut session = Session::new().overlap(false);
            let loop_ = session.loop_1d(n - 1, dist.clone());
            let schedule = session.plan(proc, &loop_, &dist, &[AffineMap::shift(1)]);
            let local: Vec<f64> = dist
                .local_set(proc.rank())
                .iter()
                .map(|g| (g * 3) as f64)
                .collect();
            let mut out = local.clone();
            session.execute(proc, &loop_, &schedule, &dist, &local, |i, fetch| {
                out[dist.local_index(i)] = fetch.fetch(i + 1);
            });
            session.set_overlap(true);
        });
    }
}
