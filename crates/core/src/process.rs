//! The machine-backend abstraction the runtime is written against.
//!
//! Every runtime component of this crate (inspector, executor, `forall`,
//! redistribution, distributed arrays) is generic over [`Process`]: an SPMD
//! process handle providing ranks, typed point-to-point messages matched on
//! `(source, tag)`, the collective shapes of §3.3 (barrier, personalised
//! all-to-all, allgather, sum-allreduce), and optional cost-charging hooks.
//!
//! Two backends implement the trait:
//!
//! * **`dmsim::Proc`** — the deterministic machine simulator.  Its cost
//!   hooks advance a logical clock priced by the NCUBE/7 / iPSC/2 cost
//!   models, reproducing the paper's measurements; its all-to-all is the
//!   paper's crystal router.
//! * **`kali_native::NativeProc`** — real OS threads and channels, for
//!   wall-clock execution.  Cost hooks stay at their no-op defaults.
//!
//! The trait (and the [`tags`] module partitioning the tag space between
//! the runtime components) lives in the dependency-free `kali-process`
//! crate so backends can implement it without pulling in the analysis
//! layer; this module re-exports it as the crate's official path.

pub use kali_process::{
    combine_partials, tags, trace, tree_allreduce_messages, tree_allreduce_sends, tree_children,
    tree_combine_partials, tree_merge_order, Counters, Event, EventKind, Max, Min, Norm2, Process,
    Reduce, ReduceOp, Sum, Tag, TraceRecorder,
};
