//! Communication analysis (paper §3).
//!
//! The paper gives one framework with two instantiations:
//!
//! * **Compile-time analysis** (§3.2, and reference \[3\]) — when the
//!   subscript functions and distributions admit closed forms, the sets
//!   `exec(p)`, `ref(p)`, `in(p,q)` and `out(p,q)` can be computed
//!   symbolically and no run-time set computation is needed at all.
//!   [`compile_time::analyze`] does this for affine subscripts
//!   `g(i) = ±i + c` under any of the supported distributions.
//! * **Run-time analysis** (§3.3) — when the subscripts involve run-time
//!   data (`old_a[adj[i, j]]`), the sets are computed by the *inspector*
//!   (see [`crate::inspector`]) the first time the loop runs and cached for
//!   later executions.
//!
//! Both paths produce the same [`crate::schedule::CommSchedule`] type, and a
//! property test in the integration suite checks that they agree whenever
//! the compile-time path applies.

//!
//! The compile-time path exists at three shapes: [`compile_time`] for 1-D
//! ranges, [`stripe`] for strided 1-D congruence classes (red–black
//! colourings), and [`multi`] for rectangular N-D iteration spaces over
//! `dist by [block, *]`-style decompositions, where every set factorises
//! into per-dimension interval sets.

pub mod affine;
pub mod compile_time;
pub mod multi;
pub mod stripe;

pub use affine::AffineMap;
pub use compile_time::{analyze, LoopSpec};
pub use multi::{analyze_multi, MultiAffineMap};
pub use stripe::{analyze_stripe, StripeSpec};
