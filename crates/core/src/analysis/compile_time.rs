//! Compile-time (closed-form) communication analysis (paper §3.2).
//!
//! When the `forall`'s on-clause and every array reference are affine in the
//! loop index, the sets of §3.1 can be computed symbolically, per processor,
//! with no communication and no per-element work:
//!
//! ```text
//! exec(p)  = f⁻¹(local_on(p)) ∩ Index_set
//! ref(p)   = ∩_k g_k⁻¹(local_data(p))
//! in(p,q)  = ∪_k g_k(exec(p)) ∩ local_data(q)
//! out(p,q) = ∪_k g_k(exec(q)) ∩ local_data(p)
//! ```
//!
//! This module evaluates those formulas with the interval algebra of
//! [`distrib::IndexSet`].  It succeeds whenever every reference map has
//! `|a| = 1` (identity and shifts — the cases the paper's own compile-time
//! analysis \[3\] targets); otherwise it returns `None` and the caller falls
//! back to the run-time inspector, exactly as the paper's compiler does.

use distrib::{DimDist, IndexSet};

use crate::analysis::affine::AffineMap;
use crate::schedule::{CommSchedule, RangeRecord};

/// A fully described affine `forall` loop, the unit of analysis.
///
/// Represents `forall i in range on ON[f(i)].loc do … DATA[g_k(i)] … end`
/// where `ON` is distributed by `on_dist` and `DATA` by `data_dist` (the two
/// are often the same array, as in Figure 1).
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Half-open iteration range of the `forall`.
    pub range: (usize, usize),
    /// Distribution of the array named in the `on` clause.
    pub on_dist: DimDist,
    /// Subscript of the `on` clause (`f`).
    pub on_map: AffineMap,
    /// Distribution of the referenced data array.
    pub data_dist: DimDist,
    /// Subscripts of the data references (`g_k`).
    pub ref_maps: Vec<AffineMap>,
}

impl LoopSpec {
    /// The common special case `forall i in 0..n on A[i].loc` referencing
    /// `A[g_k(i)]` for a single array `A`.
    pub fn on_owner(n: usize, dist: DimDist, ref_maps: Vec<AffineMap>) -> Self {
        LoopSpec {
            range: (0, n),
            on_dist: dist.clone(),
            on_map: AffineMap::identity(),
            data_dist: dist,
            ref_maps,
        }
    }

    /// The paper's set `exec(p)`: iterations executed on processor `p`.
    pub fn exec_set(&self, rank: usize) -> IndexSet {
        let bound = self.range.1;
        let local_on = self.on_dist.local_set(rank);
        let pre = self.on_map.preimage(&local_on, bound);
        pre.intersect(&IndexSet::from_range(self.range.0, self.range.1))
    }

    /// The paper's set `ref(p)` for reference `k`: iterations whose `k`-th
    /// reference is local to `p`.
    pub fn ref_set(&self, rank: usize, k: usize) -> IndexSet {
        let bound = self.range.1;
        let local_data = self.data_dist.local_set(rank);
        self.ref_maps[k].preimage(&local_data, bound)
    }
}

/// Attempt the compile-time analysis for processor `rank`.
///
/// Returns `None` when a closed form is not available (a reference map with
/// `|a| ≠ 1`); the caller then uses the run-time inspector.  On success the
/// returned [`CommSchedule`] is complete — including the send records, which
/// every processor can compute locally because the formulas are symmetric —
/// so *no* inspector communication is needed, the defining advantage of the
/// compile-time path.
pub fn analyze(spec: &LoopSpec, rank: usize) -> Option<CommSchedule> {
    if !spec.ref_maps.iter().all(AffineMap::is_unit_stride) {
        return None;
    }
    let nprocs = spec.on_dist.nprocs();
    if spec.data_dist.nprocs() != nprocs {
        return None;
    }
    let data_n = spec.data_dist.n();

    let exec_p = spec.exec_set(rank);
    let local_data_p = spec.data_dist.local_set(rank);

    // Iterations with at least one nonlocal reference: exec(p) ∩
    // ∪_k g_k⁻¹(Arr − local_data(p)).  References falling outside the array
    // bounds are treated as absent (the inspector behaves the same way).
    let nonowned = IndexSet::from_range(0, data_n).difference(&local_data_p);
    let mut nonlocal_set = IndexSet::new();
    for g in &spec.ref_maps {
        nonlocal_set = nonlocal_set.union(&g.preimage(&nonowned, spec.range.1));
    }
    let nonlocal_set = exec_p.intersect(&nonlocal_set);
    let all_local = exec_p.difference(&nonlocal_set);
    let local_iters: Vec<usize> = all_local.iter().collect();
    let nonlocal_iters: Vec<usize> = nonlocal_set.iter().collect();

    // Elements referenced by p: ∪_k g_k(exec(p)).
    let mut referenced = IndexSet::new();
    for g in &spec.ref_maps {
        referenced = referenced.union(&g.image(&exec_p, data_n));
    }

    // in(p,q) = referenced ∩ local_data(q), for q ≠ p.
    let mut recv_sets = vec![IndexSet::new(); nprocs];
    for (q, slot) in recv_sets.iter_mut().enumerate() {
        if q == rank {
            continue;
        }
        *slot = referenced.intersect(&spec.data_dist.local_set(q));
    }
    let mut schedule = CommSchedule::from_recv_sets(rank, &recv_sets, local_iters, nonlocal_iters);

    // out(p,q) = (∪_k g_k(exec(q))) ∩ local_data(p) = in(q,p): computable
    // locally because exec(q) has a closed form too.
    let mut send_records = Vec::new();
    for q in 0..nprocs {
        if q == rank {
            continue;
        }
        let exec_q = spec.exec_set(q);
        let mut referenced_q = IndexSet::new();
        for g in &spec.ref_maps {
            referenced_q = referenced_q.union(&g.image(&exec_q, data_n));
        }
        let out_pq = referenced_q.intersect(&local_data_p);
        for r in out_pq.ranges() {
            send_records.push(RangeRecord {
                from_proc: rank,
                to_proc: q,
                low: r.start,
                high: r.end,
                buffer: 0, // buffer offsets are a receiver-side notion
            });
        }
    }
    schedule.set_send_records(send_records);
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1 of the paper: `forall i in 1..N-1 on A[i].loc do A[i] := A[i+1]`,
    /// with A block-distributed.  In 0-based terms: range `0..n-1`,
    /// reference `A[i+1]`.
    fn figure1_spec(n: usize, p: usize) -> LoopSpec {
        LoopSpec {
            range: (0, n - 1),
            on_dist: DimDist::block(n, p),
            on_map: AffineMap::identity(),
            data_dist: DimDist::block(n, p),
            ref_maps: vec![AffineMap::shift(1)],
        }
    }

    #[test]
    fn figure1_block_shift_needs_one_element_from_the_right_neighbour() {
        let n = 100;
        let p = 4;
        for rank in 0..p {
            let s = analyze(&figure1_spec(n, p), rank).expect("affine loop must analyse");
            let sig = s.signature();
            if rank < p - 1 {
                // Receive exactly the first element of the right neighbour's block.
                assert_eq!(sig.recv_by_proc.len(), 1, "rank {rank}");
                let (q, ranges) = &sig.recv_by_proc[0];
                assert_eq!(*q, rank + 1);
                assert_eq!(ranges.len(), 1);
                assert_eq!(ranges[0].len(), 1);
                assert_eq!(ranges[0].start, (rank + 1) * 25);
            } else {
                assert!(
                    sig.recv_by_proc.is_empty(),
                    "last processor receives nothing"
                );
            }
            if rank > 0 {
                assert_eq!(sig.send_by_proc.len(), 1);
                assert_eq!(sig.send_by_proc[0].0, rank - 1);
            } else {
                assert!(sig.send_by_proc.is_empty());
            }
        }
    }

    #[test]
    fn exec_sets_partition_the_iteration_range() {
        let spec = figure1_spec(103, 4); // ragged blocks
        let mut seen = vec![false; 102];
        for rank in 0..4 {
            for i in spec.exec_set(rank).iter() {
                assert!(!seen[i], "iteration {i} executed twice");
                seen[i] = true;
            }
        }
        assert!(
            seen.into_iter().all(|s| s),
            "an iteration was never executed"
        );
    }

    #[test]
    fn local_plus_nonlocal_equals_exec() {
        for p in [2, 3, 5, 8] {
            let spec = figure1_spec(64, p);
            for rank in 0..p {
                let s = analyze(&spec, rank).unwrap();
                let exec: Vec<usize> = spec.exec_set(rank).iter().collect();
                let mut both = s.local_iters.clone();
                both.extend(&s.nonlocal_iters);
                both.sort_unstable();
                assert_eq!(both, exec, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn cyclic_shift_communicates_every_iteration() {
        // Under a cyclic distribution, A[i+1] is never local to the owner of
        // A[i] (for P > 1), so every iteration is nonlocal — the reason the
        // paper lets the programmer choose distributions.
        let n = 40;
        let p = 4;
        let spec = LoopSpec {
            range: (0, n - 1),
            on_dist: DimDist::cyclic(n, p),
            on_map: AffineMap::identity(),
            data_dist: DimDist::cyclic(n, p),
            ref_maps: vec![AffineMap::shift(1)],
        };
        for rank in 0..p {
            let s = analyze(&spec, rank).unwrap();
            assert!(s.local_iters.is_empty(), "rank {rank}");
            assert_eq!(s.nonlocal_iters.len(), spec.exec_set(rank).len());
        }
    }

    #[test]
    fn send_and_recv_volumes_match_globally() {
        // Σ_p send_len(p) must equal Σ_p recv_len(p), and in(p,q) must equal
        // out(q,p) range for range.
        let spec = LoopSpec {
            range: (0, 200),
            on_dist: DimDist::block(200, 8),
            on_map: AffineMap::identity(),
            data_dist: DimDist::block(200, 8),
            ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
        };
        let schedules: Vec<CommSchedule> = (0..8).map(|r| analyze(&spec, r).unwrap()).collect();
        let total_recv: usize = schedules.iter().map(|s| s.recv_len).sum();
        let total_send: usize = schedules.iter().map(|s| s.send_len()).sum();
        assert_eq!(total_recv, total_send);
        for p in 0..8 {
            for q in 0..8 {
                if p == q {
                    continue;
                }
                let in_pq: Vec<_> = schedules[p]
                    .recv_records
                    .iter()
                    .filter(|r| r.from_proc == q)
                    .map(|r| (r.low, r.high))
                    .collect();
                let out_qp: Vec<_> = schedules[q]
                    .send_records
                    .iter()
                    .filter(|r| r.to_proc == p)
                    .map(|r| (r.low, r.high))
                    .collect();
                assert_eq!(in_pq, out_qp, "in({p},{q}) != out({q},{p})");
            }
        }
    }

    #[test]
    fn non_unit_stride_falls_back_to_runtime() {
        let spec = LoopSpec {
            range: (0, 50),
            on_dist: DimDist::block(50, 2),
            on_map: AffineMap::identity(),
            data_dist: DimDist::block(100, 2),
            ref_maps: vec![AffineMap::new(2, 0)],
        };
        assert!(analyze(&spec, 0).is_none());
    }

    #[test]
    fn block_cyclic_and_custom_distributions_are_supported() {
        let owners: Vec<usize> = (0..60).map(|i| (i / 7) % 3).collect();
        for dist in [DimDist::block_cyclic(60, 3, 5), DimDist::custom(owners, 3)] {
            let spec = LoopSpec {
                range: (0, 59),
                on_dist: dist.clone(),
                on_map: AffineMap::identity(),
                data_dist: dist,
                ref_maps: vec![AffineMap::shift(1)],
            };
            for rank in 0..3 {
                let s = analyze(&spec, rank).expect("unit-stride loops always analyse");
                // Every nonlocal iteration's reference is covered by the recv set.
                let recv = s.recv_index_set();
                for &i in &s.nonlocal_iters {
                    let g = i + 1;
                    assert!(
                        recv.contains(g) || spec.data_dist.is_local(rank, g),
                        "iteration {i} references {g} which is neither local nor received"
                    );
                }
            }
        }
    }
}
