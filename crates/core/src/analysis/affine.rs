//! Affine subscript maps `g(i) = a·i + b`.
//!
//! The paper's loop model (Figure 2) is `forall i … on A[f(i)].loc` with
//! references `A[g_k(i)]`.  The compile-time analysis only needs to invert
//! and image these maps over index ranges; with `|a| = 1` (the shifts and
//! identities that dominate real stencil codes) both directions map
//! contiguous ranges to contiguous ranges, which keeps every derived set a
//! union of a few ranges.

use distrib::{IndexRange, IndexSet};

/// An affine map over loop indices: `g(i) = a·i + b` with integer `a`, `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineMap {
    /// Multiplier.
    pub a: i64,
    /// Offset.
    pub b: i64,
}

impl AffineMap {
    /// The identity map `g(i) = i`.
    pub fn identity() -> Self {
        AffineMap { a: 1, b: 0 }
    }

    /// A shift `g(i) = i + c` (the `A[i+1]` of Figure 1 is `shift(1)`).
    pub fn shift(c: i64) -> Self {
        AffineMap { a: 1, b: c }
    }

    /// A general affine map `g(i) = a·i + b`.
    pub fn new(a: i64, b: i64) -> Self {
        assert!(
            a != 0,
            "a degenerate subscript (a = 0) references a single element"
        );
        AffineMap { a, b }
    }

    /// Apply the map; returns `None` when the result is negative (outside
    /// the array).
    pub fn apply(&self, i: usize) -> Option<usize> {
        let v = self.a.checked_mul(i as i64)?.checked_add(self.b)?;
        usize::try_from(v).ok()
    }

    /// Apply the map, panicking when the result is out of range — used where
    /// the caller has already intersected with the valid range.
    pub fn apply_unchecked(&self, i: usize) -> usize {
        self.apply(i)
            .unwrap_or_else(|| panic!("affine map {self:?} applied to {i} leaves the index space"))
    }

    /// True when the map is invertible over contiguous ranges (|a| = 1),
    /// the condition for the closed-form compile-time analysis.
    pub fn is_unit_stride(&self) -> bool {
        self.a == 1 || self.a == -1
    }

    /// Image of a contiguous range under a unit-stride map (a contiguous
    /// range again).  `bound` clips the result to `[0, bound)`.
    pub fn image_range(&self, r: IndexRange, bound: usize) -> IndexRange {
        assert!(self.is_unit_stride(), "image_range requires |a| = 1");
        if r.is_empty() {
            return IndexRange::new(0, 0);
        }
        let (lo, hi) = if self.a == 1 {
            (self.b + r.start as i64, self.b + (r.end as i64 - 1))
        } else {
            (self.b - (r.end as i64 - 1), self.b - r.start as i64)
        };
        clip(lo, hi, bound)
    }

    /// Image of an index set under a unit-stride map.
    pub fn image(&self, s: &IndexSet, bound: usize) -> IndexSet {
        IndexSet::from_ranges(s.ranges().iter().map(|&r| self.image_range(r, bound)))
    }

    /// Preimage of a contiguous range: the loop indices `i` with
    /// `g(i) ∈ [r.start, r.end)`, clipped to `[0, bound)`.  Works for any
    /// non-zero `a` because the preimage of an interval under an affine map
    /// is always an interval of integers.
    pub fn preimage_range(&self, r: IndexRange, bound: usize) -> IndexRange {
        if r.is_empty() {
            return IndexRange::new(0, 0);
        }
        let lo_t = r.start as i64;
        let hi_t = r.end as i64 - 1; // inclusive target bound
        let (lo, hi) = if self.a > 0 {
            (
                div_ceil_i64(lo_t - self.b, self.a),
                div_floor_i64(hi_t - self.b, self.a),
            )
        } else {
            (
                div_ceil_i64(hi_t - self.b, self.a),
                div_floor_i64(lo_t - self.b, self.a),
            )
        };
        clip(lo, hi, bound)
    }

    /// Preimage of an index set, clipped to `[0, bound)`.
    pub fn preimage(&self, s: &IndexSet, bound: usize) -> IndexSet {
        IndexSet::from_ranges(s.ranges().iter().map(|&r| self.preimage_range(r, bound)))
    }
}

fn clip(lo: i64, hi: i64, bound: usize) -> IndexRange {
    // [lo, hi] inclusive in i64 space -> clipped half-open usize range.
    let lo = lo.max(0);
    let hi = hi.min(bound as i64 - 1);
    if lo > hi {
        IndexRange::new(0, 0)
    } else {
        IndexRange::new(lo as usize, hi as usize + 1)
    }
}

fn div_floor_i64(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil_i64(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_shift() {
        let g = AffineMap::shift(1);
        assert_eq!(g.apply(4), Some(5));
        let g = AffineMap::shift(-2);
        assert_eq!(g.apply(1), None);
        assert_eq!(g.apply(2), Some(0));
        let g = AffineMap::new(2, 1);
        assert_eq!(g.apply(3), Some(7));
        assert!(!g.is_unit_stride());
        assert!(AffineMap::identity().is_unit_stride());
    }

    #[test]
    fn image_of_range_under_shift() {
        let g = AffineMap::shift(3);
        let r = g.image_range(IndexRange::new(2, 5), 100);
        assert_eq!(r, IndexRange::new(5, 8));
        // Clipped at the top.
        let r = g.image_range(IndexRange::new(96, 99), 100);
        assert_eq!(r, IndexRange::new(99, 100));
        // Negative results clipped at zero.
        let g = AffineMap::shift(-4);
        let r = g.image_range(IndexRange::new(0, 3), 100);
        assert!(r.is_empty());
    }

    #[test]
    fn image_of_reversal() {
        // g(i) = 9 - i over i in [0, 4) -> {6, 7, 8, 9}.
        let g = AffineMap::new(-1, 9);
        let r = g.image_range(IndexRange::new(0, 4), 100);
        assert_eq!(r, IndexRange::new(6, 10));
    }

    #[test]
    fn preimage_inverts_image_for_unit_stride() {
        let bound = 200usize;
        for b in [-3i64, 0, 5] {
            for a in [1i64, -1] {
                let g = AffineMap::new(a, if a == -1 { 150 + b } else { b });
                let s = IndexSet::from_ranges([IndexRange::new(10, 40), IndexRange::new(90, 95)]);
                let img = g.image(&s, bound);
                let back = g.preimage(&img, bound);
                // Every index that survived clipping maps into img and is in back.
                for i in s.iter() {
                    if let Some(gi) = g.apply(i) {
                        if gi < bound {
                            assert!(img.contains(gi));
                            assert!(back.contains(i), "a={a} b={b} i={i}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn preimage_of_strided_map() {
        // g(i) = 3i + 1; which i map into [4, 11)? i = 1 (4), 2 (7), 3 (10).
        let g = AffineMap::new(3, 1);
        let r = g.preimage_range(IndexRange::new(4, 11), 100);
        assert_eq!(r, IndexRange::new(1, 4));
        // Negative multiplier: g(i) = -2i + 10; targets [0, 5) -> i in {3, 4, 5}.
        let g = AffineMap::new(-2, 10);
        let r = g.preimage_range(IndexRange::new(0, 5), 100);
        assert_eq!(r, IndexRange::new(3, 6));
    }

    #[test]
    fn div_helpers_match_euclidean_expectations() {
        assert_eq!(div_floor_i64(7, 2), 3);
        assert_eq!(div_floor_i64(-7, 2), -4);
        assert_eq!(div_ceil_i64(7, 2), 4);
        assert_eq!(div_ceil_i64(-7, 2), -3);
        assert_eq!(div_floor_i64(6, 3), 2);
        assert_eq!(div_ceil_i64(6, 3), 2);
        assert_eq!(div_floor_i64(7, -2), -4);
        assert_eq!(div_ceil_i64(7, -2), -3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_multiplier_rejected() {
        AffineMap::new(0, 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn preimage_is_exactly_the_set_of_indices_mapping_in(
                a in prop_oneof![Just(-3i64), Just(-1), Just(1), Just(2), Just(5)],
                b in -50i64..50,
                start in 0usize..80,
                len in 0usize..40,
                bound in 1usize..120,
            ) {
                let g = AffineMap::new(a, b);
                let target = IndexRange::new(start, start + len);
                let pre = g.preimage_range(target, bound);
                for i in 0..bound {
                    let maps_in = g.apply(i).is_some_and(|v| target.contains(v));
                    prop_assert_eq!(pre.contains(i), maps_in, "i = {}", i);
                }
            }

            #[test]
            fn image_contains_exactly_the_mapped_indices(
                shift in -60i64..60,
                neg in proptest::bool::ANY,
                start in 0usize..80,
                len in 0usize..40,
                bound in 1usize..150,
            ) {
                let g = if neg { AffineMap::new(-1, shift.abs() + 100) } else { AffineMap::shift(shift) };
                let src = IndexRange::new(start, start + len);
                let img = g.image_range(src, bound);
                let mut expected: Vec<usize> = (src.start..src.end)
                    .filter_map(|i| g.apply(i))
                    .filter(|&v| v < bound)
                    .collect();
                expected.sort_unstable();
                let got: Vec<usize> = (img.start..img.end).collect();
                prop_assert_eq!(got, expected);
            }
        }
    }
}
