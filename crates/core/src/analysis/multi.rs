//! Multi-dimensional compile-time analysis: closed-form schedules for
//! rectangular iteration spaces over `dist by [block, *]`-style
//! decompositions.
//!
//! The paper's analysis (§3.1–3.2) is phrased for one loop index, but every
//! set in it factorises over array dimensions when
//!
//! * the iteration space is a rectangular box,
//! * each reference subscript is **separable** — dimension `d` of the
//!   reference depends only on iteration index `d` (`B[i-1, j]`,
//!   `B[i, j+1]`, the stencils that dominate real codes), with `|a| = 1`
//!   per dimension, and
//! * ownership factorises over dimensions, which [`distrib::ArrayDist`]
//!   guarantees by construction (each distributed dimension maps through its
//!   own [`distrib::DimDist`] onto its own processor-grid axis).
//!
//! Under those conditions `exec(p)`, `ref(p)`, `in(p,q)` and `out(p,q)` are
//! Cartesian products of per-dimension interval sets, evaluated here with
//! the same interval algebra as the 1-D analysis and flattened row-major
//! (via [`distrib::product_flat`]) into the ordinary [`CommSchedule`] the
//! executor consumes.  No communication and no per-element work is needed —
//! the defining property of the compile-time path.  When a condition fails
//! ([`MultiAffineMap::is_unit_stride`] is false, or subscripts are data
//! dependent) the caller falls back to the run-time inspector over the
//! flattened space, exactly as in the 1-D case.

use distrib::{product_flat, Distribution, FlatDist, IndexSet};

use crate::analysis::affine::AffineMap;
use crate::schedule::{CommSchedule, RangeRecord};

/// A separable affine subscript over a multi-index:
/// `g(i_0, …, i_{d-1}) = (a_0·i_0 + b_0, …, a_{d-1}·i_{d-1} + b_{d-1})`.
///
/// The N-D generalisation of [`AffineMap`]; `B[i, j+1]` is
/// `MultiAffineMap::shifts(&[0, 1])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiAffineMap {
    dims: Vec<AffineMap>,
}

impl MultiAffineMap {
    /// Build a map from per-dimension affine components.
    pub fn new(dims: Vec<AffineMap>) -> Self {
        assert!(!dims.is_empty(), "a subscript needs at least one dimension");
        MultiAffineMap { dims }
    }

    /// The identity subscript over `ndims` dimensions (`B[i, j]`).
    pub fn identity(ndims: usize) -> Self {
        MultiAffineMap::new(vec![AffineMap::identity(); ndims])
    }

    /// A per-dimension shift (`B[i + c_0, j + c_1]`); the 2-D five-point
    /// stencil is `shifts(&[-1, 0])`, `shifts(&[1, 0])`, `shifts(&[0, -1])`,
    /// `shifts(&[0, 1])`.
    pub fn shifts(offsets: &[i64]) -> Self {
        MultiAffineMap::new(offsets.iter().map(|&c| AffineMap::shift(c)).collect())
    }

    /// The per-dimension components.
    pub fn dims(&self) -> &[AffineMap] {
        &self.dims
    }

    /// Number of dimensions the map subscripts.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// True when every per-dimension component has `|a| = 1` — the condition
    /// for the closed-form analysis, as in the 1-D case.
    pub fn is_unit_stride(&self) -> bool {
        self.dims.iter().all(AffineMap::is_unit_stride)
    }

    /// Apply the map to a multi-index; `None` when any component leaves
    /// `[0, bounds[d])`.
    pub fn apply(&self, idx: &[usize], bounds: &[usize]) -> Option<Vec<usize>> {
        assert_eq!(idx.len(), self.dims.len(), "index arity mismatch");
        self.dims
            .iter()
            .zip(idx.iter().zip(bounds))
            .map(|(g, (&i, &b))| g.apply(i).filter(|&v| v < b))
            .collect()
    }
}

/// Attempt the closed-form analysis of a rectangular `forall` for `rank`.
///
/// * `ranges` — the per-dimension half-open iteration box, within the
///   on-array's shape.
/// * `on` / `data` — flattened decompositions of the on-clause array and the
///   referenced array (often the same).  The on-clause subscript is the
///   identity, as in all of the paper's programs.
/// * `ref_maps` — the separable affine reference subscripts.
///
/// Returns `None` when a closed form is unavailable (a non-unit-stride
/// component, mismatched dimensionality, or mismatched machine sizes); the
/// caller then falls back to the inspector over the flattened space.  On
/// success the schedule is complete, send records included — computable
/// locally because the formulas are symmetric — so planning costs **zero
/// messages**.
///
/// References leaving the data array's bounds are treated as absent, exactly
/// like the 1-D [`analyze`](crate::analysis::compile_time::analyze); the
/// user-facing planner ([`ParallelLoop::plan`](crate::ParallelLoop::plan))
/// rejects them in debug builds before ever reaching this code.
pub fn analyze_multi(
    ranges: &[(usize, usize)],
    on: &FlatDist,
    data: &FlatDist,
    ref_maps: &[MultiAffineMap],
    rank: usize,
) -> Option<CommSchedule> {
    let nd = ranges.len();
    let shape = on.shape();
    let dshape = data.shape();
    assert_eq!(nd, shape.len(), "iteration box arity mismatch");
    if dshape.len() != nd || ref_maps.iter().any(|g| g.ndims() != nd) {
        return None;
    }
    if !ref_maps.iter().all(MultiAffineMap::is_unit_stride) {
        return None;
    }
    let nprocs = on.nprocs();
    if data.nprocs() != nprocs {
        return None;
    }
    for (d, &(lo, hi)) in ranges.iter().enumerate() {
        assert!(
            hi <= shape[d] && lo <= hi,
            "iteration box [{lo}, {hi}) leaves dimension {d} of extent {}",
            shape[d]
        );
    }

    let range_sets: Vec<IndexSet> = ranges
        .iter()
        .map(|&(lo, hi)| IndexSet::from_range(lo, hi))
        .collect();
    // exec(r), one interval set per dimension: owned ∩ box, per dimension.
    let exec_dims = |r: usize| -> Vec<IndexSet> {
        (0..nd)
            .map(|d| on.array().owned_along(d, r).intersect(&range_sets[d]))
            .collect()
    };
    // Per-dimension image of an exec box under one reference map, clipped to
    // the data array (out-of-bounds references are absent).
    let image_dims = |ed: &[IndexSet], g: &MultiAffineMap| -> Vec<IndexSet> {
        (0..nd)
            .map(|d| g.dims()[d].image(&ed[d], dshape[d]))
            .collect()
    };

    let ed_p = exec_dims(rank);
    let exec_flat = product_flat(&ed_p, shape);

    // Split exec into local and nonlocal iterations.  A reference is absent
    // when *any* component leaves the data array (the whole multi-index is
    // out of bounds, exactly as the inspector's `apply_map` treats it), and
    // nonlocal when every component exists but at least one lands on a
    // non-owned index.  Per reference map, with per-dimension sets
    // `E_d` (component exists) and `L_d ⊆ E_d` (component owned here), the
    // nonlocal iterations are `Π E_d ∖ Π L_d`.
    let mut local_flat = exec_flat.clone();
    for g in ref_maps {
        let mut exists_dims = Vec::with_capacity(nd);
        let mut local_dims = Vec::with_capacity(nd);
        for d in 0..nd {
            let owned = data.array().owned_along(d, rank);
            let in_bounds = IndexSet::from_range(0, dshape[d]);
            exists_dims.push(ed_p[d].intersect(&g.dims()[d].preimage(&in_bounds, shape[d])));
            local_dims.push(ed_p[d].intersect(&g.dims()[d].preimage(&owned, shape[d])));
        }
        let nonlocal_g =
            product_flat(&exists_dims, shape).difference(&product_flat(&local_dims, shape));
        local_flat = local_flat.difference(&nonlocal_g);
    }
    let local_iters: Vec<usize> = local_flat.iter().collect();
    let nonlocal_iters: Vec<usize> = exec_flat.difference(&local_flat).iter().collect();

    // in(p,q): per dimension, image of exec(p) ∩ owned_data(q); the flat set
    // is the product, unioned over reference maps.
    let mut recv_sets = vec![IndexSet::new(); nprocs];
    for (q, slot) in recv_sets.iter_mut().enumerate() {
        if q == rank {
            continue;
        }
        let mut s = IndexSet::new();
        for g in ref_maps {
            let per_dim: Vec<IndexSet> = image_dims(&ed_p, g)
                .iter()
                .enumerate()
                .map(|(d, img)| img.intersect(&data.array().owned_along(d, q)))
                .collect();
            s = s.union(&product_flat(&per_dim, dshape));
        }
        *slot = s;
    }
    let mut schedule = CommSchedule::from_recv_sets(rank, &recv_sets, local_iters, nonlocal_iters);

    // out(p,q) = in(q,p): computable locally because exec(q) has a closed
    // form on every rank.
    let mut send_records = Vec::new();
    for q in 0..nprocs {
        if q == rank {
            continue;
        }
        let ed_q = exec_dims(q);
        let mut out = IndexSet::new();
        for g in ref_maps {
            let per_dim: Vec<IndexSet> = image_dims(&ed_q, g)
                .iter()
                .enumerate()
                .map(|(d, img)| img.intersect(&data.array().owned_along(d, rank)))
                .collect();
            out = out.union(&product_flat(&per_dim, dshape));
        }
        for r in out.ranges() {
            if !r.is_empty() {
                send_records.push(RangeRecord {
                    from_proc: rank,
                    to_proc: q,
                    low: r.start,
                    high: r.end,
                    buffer: 0, // buffer offsets are a receiver-side notion
                });
            }
        }
    }
    schedule.set_send_records(send_records);
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::{ArrayDist, DimAssign, DimDist, Distribution, ProcGrid};

    fn block_rows(r: usize, c: usize, p: usize) -> FlatDist {
        FlatDist::new(ArrayDist::block_rows(r, c, p))
    }

    fn block_cols(r: usize, c: usize, p: usize) -> FlatDist {
        FlatDist::new(ArrayDist::block_cols(r, c, p))
    }

    /// The interior box `(1..r-1) × (0..c)` — the vertical-stencil space.
    fn interior_rows(r: usize, c: usize) -> Vec<(usize, usize)> {
        vec![(1, r - 1), (0, c)]
    }

    #[test]
    fn vertical_shift_under_block_rows_receives_boundary_rows() {
        // forall (i,j) in 1..r-1 × 0..c on A[i,j].loc referencing A[i±1, j]
        // under [block, *]: each rank needs the last row of the previous
        // block and the first row of the next — whole rows, contiguous in
        // the flat layout.
        let (r, c, p) = (16, 6, 4);
        let d = block_rows(r, c, p);
        let maps = [
            MultiAffineMap::shifts(&[-1, 0]),
            MultiAffineMap::shifts(&[1, 0]),
        ];
        for rank in 0..p {
            let s = analyze_multi(&interior_rows(r, c), &d, &d, &maps, rank)
                .expect("separable unit-stride stencils must analyse");
            let sig = s.signature();
            let mut expected_partners = Vec::new();
            if rank > 0 {
                expected_partners.push(rank - 1);
            }
            if rank < p - 1 {
                expected_partners.push(rank + 1);
            }
            let partners: Vec<usize> = sig.recv_by_proc.iter().map(|(q, _)| *q).collect();
            assert_eq!(partners, expected_partners, "rank {rank}");
            // One whole row (c elements) from each neighbour.
            for (q, ranges) in &sig.recv_by_proc {
                assert_eq!(ranges.len(), 1, "rank {rank} from {q}");
                assert_eq!(ranges[0].len(), c, "a whole boundary row");
            }
            // Send side mirrors the receive side.
            let send_partners: Vec<usize> = sig.send_by_proc.iter().map(|(q, _)| *q).collect();
            assert_eq!(send_partners, expected_partners, "rank {rank} sends");
        }
    }

    #[test]
    fn horizontal_shift_under_block_rows_is_fully_local() {
        // A j-direction stencil never leaves the rank's rows under
        // [block, *]: empty schedule, every iteration local.
        let (r, c, p) = (12, 8, 4);
        let d = block_rows(r, c, p);
        let maps = [
            MultiAffineMap::shifts(&[0, -1]),
            MultiAffineMap::identity(2),
            MultiAffineMap::shifts(&[0, 1]),
        ];
        let space = vec![(0, r), (1, c - 1)];
        for rank in 0..p {
            let s = analyze_multi(&space, &d, &d, &maps, rank).unwrap();
            assert_eq!(s.recv_len, 0, "rank {rank}");
            assert!(s.send_records.is_empty());
            assert!(s.nonlocal_iters.is_empty());
            assert_eq!(
                s.local_iters.len(),
                d.array().local_shape(rank)[0] * (c - 2)
            );
        }
    }

    #[test]
    fn horizontal_shift_under_block_cols_receives_boundary_columns() {
        // The transposed placement: [*, block] makes the j-stencil nonlocal
        // (one column per neighbour, strided in the flat layout).
        let (r, c, p) = (6, 16, 4);
        let d = block_cols(r, c, p);
        let maps = [
            MultiAffineMap::shifts(&[0, -1]),
            MultiAffineMap::shifts(&[0, 1]),
        ];
        let space = vec![(0, r), (1, c - 1)];
        for rank in 0..p {
            let s = analyze_multi(&space, &d, &d, &maps, rank).unwrap();
            let expected = usize::from(rank > 0) + usize::from(rank < p - 1);
            assert_eq!(s.recv_partner_count(), expected, "rank {rank}");
            // One element per row per neighbour: r elements, r ranges.
            assert_eq!(s.recv_len, expected * r);
            assert_eq!(s.range_count(), expected * r);
        }
    }

    #[test]
    fn matches_the_inspector_on_random_separable_stencils() {
        use crate::inspector::{owner_computes_iters, run_inspector};
        use dmsim::{CostModel, Machine};

        let (r, c, p) = (10, 9, 4);
        let shifts: [[i64; 2]; 4] = [[-1, 0], [1, 1], [0, -1], [1, -1]];
        for dist in [
            block_rows(r, c, p),
            block_cols(r, c, p),
            FlatDist::new(ArrayDist::new(
                ProcGrid::new_2d(2, 2),
                vec![
                    DimAssign::Distributed(DimDist::block(r, 2)),
                    DimAssign::Distributed(DimDist::cyclic(c, 2)),
                ],
            )),
        ] {
            let maps: Vec<MultiAffineMap> =
                shifts.iter().map(|s| MultiAffineMap::shifts(s)).collect();
            let space = vec![(1, r - 1), (1, c - 1)];
            let machine = Machine::new(p, CostModel::ideal());
            let dist_c = dist.clone();
            let maps_c = maps.clone();
            let inspector_sigs = machine.run(move |proc| {
                let exec: Vec<usize> = owner_computes_iters(&dist_c, proc.rank(), r * c)
                    .into_iter()
                    .filter(|&g| {
                        let idx = dist_c.unflatten(g);
                        (1..r - 1).contains(&idx[0]) && (1..c - 1).contains(&idx[1])
                    })
                    .collect();
                let dist_in = dist_c.clone();
                let maps_in = maps_c.clone();
                run_inspector(proc, &dist_c, &exec, move |g, refs| {
                    let idx = dist_in.unflatten(g);
                    for m in &maps_in {
                        if let Some(v) = m.apply(&idx, dist_in.shape()) {
                            refs.push(dist_in.flatten(&v));
                        }
                    }
                })
                .signature()
            });
            for (rank, insp) in inspector_sigs.iter().enumerate() {
                let ct = analyze_multi(&space, &dist, &dist, &maps, rank)
                    .expect("unit-stride separable maps must analyse")
                    .signature();
                assert_eq!(&ct, insp, "rank {rank} ({:?})", dist.array().shape());
            }
        }
    }

    #[test]
    fn partially_out_of_bounds_references_are_absent_not_nonlocal() {
        // Regression: with a diagonal shift over the *full* box, an
        // iteration whose reference is out of bounds in one dimension but
        // lands on a non-owned index in the other must be classified LOCAL
        // (the whole reference is absent, as the inspector treats it), not
        // nonlocal.  The per-dimension split used to drop such iterations
        // from the local product independently per dimension.
        use crate::inspector::{owner_computes_iters, run_inspector};
        use dmsim::{CostModel, Machine};

        let (r, c, p) = (4usize, 4usize, 4usize);
        let dist = FlatDist::new(ArrayDist::new(
            ProcGrid::new_2d(2, 2),
            vec![
                DimAssign::Distributed(DimDist::block(r, 2)),
                DimAssign::Distributed(DimDist::block(c, 2)),
            ],
        ));
        let maps = vec![MultiAffineMap::shifts(&[1, 1])];
        let space = vec![(0, r), (0, c)];

        let machine = Machine::new(p, CostModel::ideal());
        let dist_c = dist.clone();
        let inspector_sigs = machine.run(move |proc| {
            let exec = owner_computes_iters(&dist_c, proc.rank(), r * c);
            let dist_in = dist_c.clone();
            run_inspector(proc, &dist_c, &exec, move |g, refs| {
                let idx = dist_in.unflatten(g);
                // Release-mode absent semantics: any OOB component drops
                // the whole reference.
                if let Some(v) = MultiAffineMap::shifts(&[1, 1]).apply(&idx, dist_in.shape()) {
                    refs.push(dist_in.flatten(&v));
                }
            })
            .signature()
        });
        for (rank, insp) in inspector_sigs.iter().enumerate() {
            let ct = analyze_multi(&space, &dist, &dist, &maps, rank)
                .unwrap()
                .signature();
            assert_eq!(&ct, insp, "rank {rank}");
        }
        // The specific misclassified case: the rank owning rows {2,3} x
        // cols {0,1} executes iteration (3,1) whose reference (4,2) is
        // absent — it must be a local iteration.
        let rank = 2; // grid coords (1, 0)
        let s = analyze_multi(&space, &dist, &dist, &maps, rank).unwrap();
        let flat_31 = 3 * c + 1;
        assert!(s.local_iters.contains(&flat_31), "(3,1) must be local");
        assert!(!s.nonlocal_iters.contains(&flat_31));
    }

    #[test]
    fn local_plus_nonlocal_equals_exec() {
        let (r, c, p) = (9, 7, 3);
        let d = block_rows(r, c, p);
        let maps = [
            MultiAffineMap::shifts(&[1, 0]),
            MultiAffineMap::shifts(&[-1, 1]),
        ];
        for rank in 0..p {
            let s = analyze_multi(&interior_rows(r, c), &d, &d, &maps, rank).unwrap();
            let mut both = s.local_iters.clone();
            both.extend(&s.nonlocal_iters);
            both.sort_unstable();
            let exec: Vec<usize> = d
                .local_set(rank)
                .iter()
                .filter(|&g| {
                    let idx = d.unflatten(g);
                    (1..r - 1).contains(&idx[0])
                })
                .collect();
            assert_eq!(both, exec, "rank {rank}");
        }
    }

    #[test]
    fn cross_distribution_reference_is_supported() {
        // on [block, *] but referencing a [*, block] array: the identity
        // reference is almost everywhere nonlocal — the communication the
        // phase-change redistribution avoids.
        let (r, c, p) = (8, 8, 4);
        let on = block_rows(r, c, p);
        let data = block_cols(r, c, p);
        let maps = [MultiAffineMap::identity(2)];
        let mut total_recv = 0usize;
        for rank in 0..p {
            let s = analyze_multi(&[(0, r), (0, c)], &on, &data, &maps, rank).unwrap();
            total_recv += s.recv_len;
        }
        // Each rank owns r/p rows but needs all of them in every foreign
        // column block: (p-1)/p of its r/p × c references are nonlocal.
        assert_eq!(total_recv, r * c * (p - 1) / p);
    }

    #[test]
    fn non_unit_stride_and_arity_mismatch_fall_back() {
        let d = block_rows(8, 4, 2);
        let strided = MultiAffineMap::new(vec![AffineMap::new(2, 0), AffineMap::identity()]);
        assert!(analyze_multi(&[(0, 8), (0, 4)], &d, &d, &[strided], 0).is_none());
        let wrong_arity = MultiAffineMap::identity(3);
        assert!(analyze_multi(&[(0, 8), (0, 4)], &d, &d, &[wrong_arity], 0).is_none());
        let one_d = FlatDist::new(ArrayDist::block_1d(16, 2));
        assert!(analyze_multi(
            &[(0, 8), (0, 4)],
            &d,
            &one_d,
            &[MultiAffineMap::identity(2)],
            0
        )
        .is_none());
    }

    #[test]
    fn three_dimensional_spaces_analyse() {
        // A 3-D box over [block, *, *] with a k-direction shift: fully
        // local; with an i-direction shift: plane-sized halos.
        let (ni, nj, nk, p) = (8, 3, 4, 2);
        let a = FlatDist::new(ArrayDist::new(
            ProcGrid::new_1d(p),
            vec![
                DimAssign::Distributed(DimDist::block(ni, p)),
                DimAssign::Star(nj),
                DimAssign::Star(nk),
            ],
        ));
        let space = vec![(1, ni - 1), (0, nj), (0, nk)];
        let local = analyze_multi(&space, &a, &a, &[MultiAffineMap::shifts(&[0, 0, 1])], 0);
        assert_eq!(local.unwrap().recv_len, 0);
        let halo = analyze_multi(&space, &a, &a, &[MultiAffineMap::shifts(&[1, 0, 0])], 0).unwrap();
        assert_eq!(halo.recv_len, nj * nk, "one full plane from the neighbour");
    }
}
