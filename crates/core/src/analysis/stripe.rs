//! Closed-form communication analysis for *strided* (stripe) loops.
//!
//! A coloured sweep — the red or black half of a red–black Gauss–Seidel
//! relaxation — iterates one congruence class `{ i ≡ lo (mod step) }` of
//! the index range.  Its `exec(p)` set is not a union of a few contiguous
//! ranges, so the contiguous-interval algebra of
//! [`compile_time`](crate::analysis::compile_time) does not apply and the
//! planner historically fell back to the run-time inspector: one full
//! inspector exchange per colour before the schedule cache warmed up.
//!
//! That fallback was never *necessary*.  The §3.2 formulas
//!
//! ```text
//! exec(p)  = local_on(p) ∩ [lo, hi) ∩ { i ≡ lo (mod step) }
//! in(p,q)  = (∪_k g_k(exec(p))) ∩ local_data(q)
//! out(p,q) = (∪_k g_k(exec(q))) ∩ local_data(p)
//! ```
//!
//! stay evaluable with [`distrib::IndexSet`] arithmetic once the congruence
//! class is materialised as an explicit interval set (one singleton range
//! per member for `step > 1`).  The set operations are linear in the range
//! counts — the same order as the work the inspector does locally — but
//! **zero messages** are exchanged: every processor computes its receive
//! *and* send records from the distributions alone, by symmetry, just as in
//! the contiguous closed form.  For unit-stride stencil subscripts
//! (`|a| = 1`, the identity and shifts that dominate relaxation codes) the
//! result is bit-for-bit the schedule the inspector would have produced.
//!
//! [`analyze_stripe`] returns `None` exactly when the contiguous analyser
//! would: a reference map with `|a| ≠ 1`, or mismatched processor counts —
//! and the caller then uses the inspector, as before.

use distrib::{DimDist, IndexSet};

use crate::analysis::affine::AffineMap;
use crate::schedule::{CommSchedule, RangeRecord};

/// A fully described strided `forall` loop, the stripe analyser's unit of
/// analysis: `forall i in lo..hi by step on ON[i].loc do … DATA[g_k(i)] …`.
///
/// The on-clause subscript is the identity (owner-computes over the
/// stripe), matching [`Stripe`](crate::Stripe) spaces; `step = 1`
/// degenerates to the contiguous [`LoopSpec`](crate::analysis::LoopSpec)
/// with an identity on-map.
#[derive(Debug, Clone)]
pub struct StripeSpec {
    /// First iteration (also the phase of the congruence class).
    pub lo: usize,
    /// One past the last candidate iteration.
    pub hi: usize,
    /// Stride between consecutive iterations.
    pub step: usize,
    /// Distribution of the array named in the `on` clause.
    pub on_dist: DimDist,
    /// Distribution of the referenced data array.
    pub data_dist: DimDist,
    /// Subscripts of the data references (`g_k`).
    pub ref_maps: Vec<AffineMap>,
}

impl StripeSpec {
    /// The congruence class `{ lo, lo + step, … } ∩ [lo, hi)` as an explicit
    /// interval set (a single dense range when `step = 1`).
    pub fn class_set(&self) -> IndexSet {
        if self.step == 1 {
            IndexSet::from_range(self.lo, self.hi)
        } else {
            IndexSet::from_indices((self.lo..self.hi).step_by(self.step))
        }
    }

    /// The paper's `exec(p)` restricted to the stripe: owned indices within
    /// the congruence class.
    pub fn exec_set(&self, rank: usize) -> IndexSet {
        self.on_dist
            .local_set(rank)
            .intersect(&self.class_set())
            .intersect(&IndexSet::from_range(self.lo, self.hi))
    }
}

/// Attempt the closed-form analysis of a stripe loop for processor `rank`.
///
/// Returns `None` when no closed form is available (a reference map with
/// `|a| ≠ 1`, or the two distributions disagree on the processor count);
/// the caller then falls back to the run-time inspector.  On success the
/// returned [`CommSchedule`] is complete — receive *and* send records —
/// with **no communication**, and is identical (same signature) to what the
/// inspector computes for the same stripe.
pub fn analyze_stripe(spec: &StripeSpec, rank: usize) -> Option<CommSchedule> {
    if !spec.ref_maps.iter().all(AffineMap::is_unit_stride) {
        return None;
    }
    let nprocs = spec.on_dist.nprocs();
    if spec.data_dist.nprocs() != nprocs {
        return None;
    }
    let data_n = spec.data_dist.n();

    let exec_p = spec.exec_set(rank);
    let local_data_p = spec.data_dist.local_set(rank);

    // Iterations with at least one nonlocal reference: exec(p) ∩
    // ∪_k g_k⁻¹(Arr − local_data(p)).  References falling outside the array
    // bounds are treated as absent (the inspector behaves the same way).
    let nonowned = IndexSet::from_range(0, data_n).difference(&local_data_p);
    let mut nonlocal_set = IndexSet::new();
    for g in &spec.ref_maps {
        nonlocal_set = nonlocal_set.union(&g.preimage(&nonowned, spec.hi));
    }
    let nonlocal_set = exec_p.intersect(&nonlocal_set);
    let all_local = exec_p.difference(&nonlocal_set);
    let local_iters: Vec<usize> = all_local.iter().collect();
    let nonlocal_iters: Vec<usize> = nonlocal_set.iter().collect();

    // Elements referenced by p: ∪_k g_k(exec(p)), clipped to the array.
    let referenced = referenced_set(spec, &exec_p, data_n);

    // in(p,q) = referenced ∩ local_data(q), for q ≠ p.
    let mut recv_sets = vec![IndexSet::new(); nprocs];
    for (q, slot) in recv_sets.iter_mut().enumerate() {
        if q == rank {
            continue;
        }
        *slot = referenced.intersect(&spec.data_dist.local_set(q));
    }
    let mut schedule = CommSchedule::from_recv_sets(rank, &recv_sets, local_iters, nonlocal_iters);

    // out(p,q) = (∪_k g_k(exec(q))) ∩ local_data(p) = in(q,p): computable
    // locally because exec(q) has a closed form on every processor.
    let mut send_records = Vec::new();
    for q in 0..nprocs {
        if q == rank {
            continue;
        }
        let referenced_q = referenced_set(spec, &spec.exec_set(q), data_n);
        let out_pq = referenced_q.intersect(&local_data_p);
        for r in out_pq.ranges() {
            send_records.push(RangeRecord {
                from_proc: rank,
                to_proc: q,
                low: r.start,
                high: r.end,
                buffer: 0, // buffer offsets are a receiver-side notion
            });
        }
    }
    schedule.set_send_records(send_records);
    Some(schedule)
}

/// `∪_k g_k(exec)`, clipped to `[0, data_n)`.
fn referenced_set(spec: &StripeSpec, exec: &IndexSet, data_n: usize) -> IndexSet {
    let mut referenced = IndexSet::new();
    for g in &spec.ref_maps {
        referenced = referenced.union(&g.image(exec, data_n));
    }
    referenced
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The red half of a 1-D red–black sweep: stride-2 stripe with the
    /// three-point stencil `A[i-1], A[i+1]`.
    fn redblack_spec(lo: usize, dist: DimDist) -> StripeSpec {
        StripeSpec {
            lo,
            hi: dist.n(),
            step: 2,
            on_dist: dist.clone(),
            data_dist: dist,
            ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
        }
    }

    #[test]
    fn exec_sets_partition_the_stripe() {
        for dist in [
            DimDist::block(41, 4),
            DimDist::cyclic(41, 4),
            DimDist::block_cyclic(41, 4, 3),
        ] {
            for lo in [0usize, 1] {
                let spec = redblack_spec(lo, dist.clone());
                let mut seen = [false; 41];
                for rank in 0..4 {
                    for i in spec.exec_set(rank).iter() {
                        assert!(!seen[i], "iteration {i} executed twice");
                        assert_eq!((i - lo) % 2, 0, "iteration {i} outside the class");
                        seen[i] = true;
                    }
                }
                for (i, s) in seen.iter().enumerate() {
                    assert_eq!(*s, i >= lo && (i - lo).is_multiple_of(2), "index {i}");
                }
            }
        }
    }

    #[test]
    fn block_red_sweep_needs_one_boundary_element_per_neighbour() {
        // Blocks of even length 10: each block's red (even) points reference
        // one element across the *left* boundary only (the first red point's
        // `i-1`), and its black (odd) points one across the *right* boundary
        // only (the last black point's `i+1`).
        let dist = DimDist::block(40, 4);
        for rank in 0..4 {
            let red = analyze_stripe(&redblack_spec(0, dist.clone()), rank).unwrap();
            let sig = red.signature();
            if rank > 0 {
                assert_eq!(sig.recv_by_proc.len(), 1, "rank {rank} red");
                let (q, ranges) = &sig.recv_by_proc[0];
                assert_eq!(*q, rank - 1);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, 1, "one halo element from the left block");
                assert_eq!(ranges[0].start, rank * 10 - 1);
            } else {
                assert!(sig.recv_by_proc.is_empty(), "rank 0 red needs no halo");
            }

            let black = analyze_stripe(&redblack_spec(1, dist.clone()), rank).unwrap();
            let sig = black.signature();
            if rank < 3 {
                assert_eq!(sig.recv_by_proc.len(), 1, "rank {rank} black");
                let (q, ranges) = &sig.recv_by_proc[0];
                assert_eq!(*q, rank + 1);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, 1, "one halo element from the right block");
                assert_eq!(ranges[0].start, (rank + 1) * 10);
            } else {
                assert!(sig.recv_by_proc.is_empty(), "last rank black needs no halo");
            }
        }
    }

    #[test]
    fn local_plus_nonlocal_equals_exec() {
        for p in [2usize, 3, 5, 8] {
            for dist in [DimDist::block(64, p), DimDist::block_cyclic(64, p, 4)] {
                for lo in [0usize, 1] {
                    let spec = redblack_spec(lo, dist.clone());
                    for rank in 0..p {
                        let s = analyze_stripe(&spec, rank).unwrap();
                        let exec: Vec<usize> = spec.exec_set(rank).iter().collect();
                        let mut both = s.local_iters.clone();
                        both.extend(&s.nonlocal_iters);
                        both.sort_unstable();
                        assert_eq!(both, exec, "p={p} rank={rank} lo={lo}");
                    }
                }
            }
        }
    }

    #[test]
    fn send_and_recv_records_are_symmetric() {
        // in(p,q) must equal out(q,p) range for range — the symmetry that
        // lets every rank compute its send records without communication.
        let p = 4;
        for dist in [
            DimDist::block(37, p),
            DimDist::cyclic(37, p),
            DimDist::block_cyclic(37, p, 3),
        ] {
            let spec = redblack_spec(1, dist.clone());
            let schedules: Vec<CommSchedule> =
                (0..p).map(|r| analyze_stripe(&spec, r).unwrap()).collect();
            for a in 0..p {
                for b in 0..p {
                    if a == b {
                        continue;
                    }
                    let in_ab: Vec<_> = schedules[a]
                        .recv_records
                        .iter()
                        .filter(|r| r.from_proc == b)
                        .map(|r| (r.low, r.high))
                        .collect();
                    let out_ba: Vec<_> = schedules[b]
                        .send_records
                        .iter()
                        .filter(|r| r.to_proc == a)
                        .map(|r| (r.low, r.high))
                        .collect();
                    assert_eq!(in_ab, out_ba, "in({a},{b}) != out({b},{a})");
                }
            }
        }
    }

    #[test]
    fn non_unit_stride_subscripts_fall_back_to_runtime() {
        let spec = StripeSpec {
            lo: 0,
            hi: 50,
            step: 2,
            on_dist: DimDist::block(50, 2),
            data_dist: DimDist::block(100, 2),
            ref_maps: vec![AffineMap::new(2, 0)],
        };
        assert!(analyze_stripe(&spec, 0).is_none());
        let mismatched = StripeSpec {
            on_dist: DimDist::block(50, 2),
            data_dist: DimDist::block(50, 3),
            ref_maps: vec![AffineMap::shift(1)],
            ..spec
        };
        assert!(analyze_stripe(&mismatched, 0).is_none());
    }

    #[test]
    fn step_one_degenerates_to_the_contiguous_closed_form() {
        use crate::analysis::compile_time::{analyze, LoopSpec};
        let dist = DimDist::block(60, 3);
        let stripe = StripeSpec {
            lo: 0,
            hi: 60,
            step: 1,
            on_dist: dist.clone(),
            data_dist: dist.clone(),
            ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
        };
        let contiguous =
            LoopSpec::on_owner(60, dist, vec![AffineMap::shift(-1), AffineMap::shift(1)]);
        for rank in 0..3 {
            let a = analyze_stripe(&stripe, rank).unwrap();
            let b = analyze(&contiguous, rank).unwrap();
            assert_eq!(a.signature(), b.signature(), "rank {rank}");
        }
    }
}
