//! # kali-core — a global name space for distributed-memory machines
//!
//! This crate is the primary contribution of the reproduced paper
//! (Koelbel, Mehrotra, Van Rosendale, *Supporting Shared Data Structures on
//! Distributed Memory Architectures*, PPoPP 1990): a run-time system that
//! lets data-parallel loops be written against a **global name space** while
//! executing as SPMD message-passing code on a distributed-memory machine.
//!
//! The paper's Kali compiler translated `forall` loops into the structure
//! below; here the same structure is provided as a library API ("the output
//! of the compiler").  The whole runtime is generic over the [`process`]
//! abstraction — a [`Process`] is one SPMD process with
//! typed sends/receives and a few collectives — so the same program runs
//! unchanged on the `dmsim` machine simulator (with the paper's cost
//! accounting) or on the `kali-native` threaded backend (at wall-clock
//! speed):
//!
//! * [`array::DistArray`] — the local piece of a distributed array plus its
//!   distribution, giving owner tests and global↔local index translation.
//! * [`schedule::CommSchedule`] — the `in(p,q)` / `out(p,q)` sets of §3.1,
//!   stored exactly as the paper stores them: sorted, coalesced range
//!   records with `O(log r)` binary-search access (§3.3, Figure 5).
//! * [`analysis`] — **compile-time** communication analysis: closed-form
//!   schedules for affine subscripts (`A[i±c]`) under any distribution,
//!   requiring no run-time set computation at all (§3.2) — in one dimension
//!   ([`analysis::compile_time`]) and over rectangular N-D iteration spaces
//!   with per-dimension distributions ([`analysis::multi`]), where every
//!   set factorises into per-dimension interval sets.
//! * [`inspector`] — **run-time** analysis: the inspector loop that records
//!   nonlocal references, splits iterations into local and nonlocal lists,
//!   and converts receive lists into send lists with a crystal-router global
//!   exchange (§3.3, Figure 6).
//! * [`executor`] — the executor: send boundary data, run local iterations
//!   (overlapping communication), receive, run nonlocal iterations, with
//!   received elements found by binary search over the range records.
//! * [`cache`] — schedule caching between repeated executions of the same
//!   `forall`, the amortisation that makes the inspector affordable (§3.2).
//!   The cache is bounded (LRU) and self-invalidating: version bumps evict
//!   stale generations, redistribution reclaims retired placements by
//!   fingerprint, and residency stays capped under adaptive-mesh churn.
//! * [`forall`] — the typed front-end tying the pieces together:
//!   [`ParallelLoop`], one plan→execute→reduce pipeline generic over an
//!   iteration [`space`] ([`Span`] 1-D ranges, [`Stripe`] strided colour
//!   classes, [`Rect`] rectangular 2-D/3-D boxes over
//!   `dist by [block, *]`-style [`distrib::ArrayDist`] decompositions,
//!   linearised row-major through [`distrib::FlatDist`]).  Reductions are
//!   first-class loop outputs ([`ParallelLoop::execute_reduce`]): the body's
//!   per-iteration contributions fold under a typed
//!   [`ReduceOp`] in a fixed, backend-independent order.
//! * [`session`] — the per-rank [`Session`] owning the execute-side state
//!   every program needs: the schedule cache, loop-id / sweep-tag / epoch
//!   allocation, data-version tracking and reduction metering.
//! * [`mod@redistribute`] — an extension: move a live distributed array from one
//!   distribution to another with a closed-form schedule, supporting the
//!   paper's "just change the dist clause" workflow across program phases.
//! * [`ownermap`] — distributed owner maps for irregular distributions:
//!   translation tables that are themselves block-distributed over the
//!   machine, resolved with a collective lookup or assembled with one
//!   allgather into a [`distrib::IrregularDist`] (the run-time equivalent of
//!   the paper's compile-time `owner` functions).
//! * [`process`] — the backend contract: what the above needs from a
//!   machine.  Message tags used by the components are partitioned in
//!   [`process::tags`] so the ranges can never collide.
//! * [`verify`] — plan-time static verification: given the
//!   SPMD-deterministic per-rank plans, prove schedule duality, tag-space
//!   safety, deadlock freedom, SPMD conformance, and determinism-contract
//!   conformance *before* anything executes, reporting defects as
//!   structured [`verify::Violation`]s.
//! * [`mc`] — trace-level happens-before analysis: rebuild the causality
//!   graph of a *recorded* execution (the backends' `trace_*` hooks) and
//!   detect message races, tag reuse without epoch separation, causality
//!   cycles and chunk-sink conflicts ([`mc::check_trace`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod array;
pub mod cache;
pub mod executor;
pub mod forall;
pub mod inspector;
pub mod mc;
pub mod ownermap;
pub mod pool;
pub mod process;
pub mod redistribute;
pub mod schedule;
pub mod session;
pub mod space;
pub mod verify;

pub use analysis::affine::AffineMap;
pub use analysis::multi::MultiAffineMap;
pub use analysis::stripe::{analyze_stripe, StripeSpec};
pub use array::DistArray;
pub use cache::{CacheStats, LoopKey, ScheduleCache};
pub use executor::{
    execute_sweep, execute_sweep_chunked, ChunkCosts, ChunkFetcher, ExecutorConfig, Fetcher,
};
pub use forall::{forall_local, ParallelLoop};
pub use inspector::{owner_computes_range, run_inspector};
pub use mc::check_trace;
pub use ownermap::DistOwnerMap;
pub use process::{Max, Min, Norm2, Process, Reduce, ReduceOp, Sum};
pub use redistribute::{redistribute, redistribute_epoch, redistribution_schedule};
pub use schedule::{CommSchedule, RangeRecord};
pub use session::{Session, SessionStats};
pub use space::{IterSpace, Rect, Span, Stripe};
pub use verify::{check_plan_refs, check_schedule, check_schedule_set, CollectiveCall, Violation};
