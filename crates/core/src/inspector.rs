//! The inspector: run-time communication analysis (paper §3.3, Figure 6).
//!
//! When a subscript depends on run-time data (`old_a[adj[i, j]]`), the
//! communication sets cannot be computed symbolically.  The paper's solution
//! is to run a *modified version of the forall*, the inspector, before the
//! real loop:
//!
//! 1. every reference made by every iteration in `exec(p)` is checked for
//!    locality; nonlocal references are recorded together with their home
//!    processor,
//! 2. iterations are split into a local list (all references local) and a
//!    nonlocal list,
//! 3. the per-source receive lists are sorted and adjacent ranges combined
//!    (Figure 5's representation), and
//! 4. a crystal-router global exchange converts receive lists into send
//!    lists (`out(p,q) = in(q,p)`).
//!
//! The output is a [`CommSchedule`] which the executor uses for every
//! subsequent execution of the same `forall` (see [`crate::cache`]) — valid
//! for as long as the data feeding `refs_of` and the distributions stand
//! still.  Adaptive workloads re-run the inspector once per mesh
//! generation: the caller bumps the cache's data version when the adjacency
//! changes, and the locality loop below bounds-checks every reference in
//! debug builds to catch enumerators left pointing at a previous
//! generation's arrays.

use distrib::{Distribution, IndexSet};

use crate::process::Process;
use crate::schedule::{CommSchedule, RangeRecord};

/// Run the inspector for one `forall` on the calling processor.
///
/// * `data_dist` — distribution of the array being referenced with
///   data-dependent subscripts (the paper's `old_a`).  Any
///   [`Distribution`] implementation works — regular pattern, irregular
///   owner map, or the type-erased `DimDist` handle.
/// * `exec_iters` — the iterations this processor executes (`exec(p)`
///   intersected with the loop range), in ascending order.
/// * `refs_of` — called once per iteration; it must push the global indices
///   of every distributed-array reference the iteration makes into the
///   supplied buffer (the inspector equivalent of executing the loop body
///   "without the arithmetic").
///
/// Every processor of the machine must call this collectively — the final
/// step is a global exchange.
pub fn run_inspector<P, D, F>(
    proc: &mut P,
    data_dist: &D,
    exec_iters: &[usize],
    mut refs_of: F,
) -> CommSchedule
where
    P: Process,
    D: Distribution + ?Sized,
    F: FnMut(usize, &mut Vec<usize>),
{
    let rank = proc.rank();
    let nprocs = proc.nprocs();
    assert_eq!(
        data_dist.nprocs(),
        nprocs,
        "the data distribution must span exactly the processors of the machine"
    );

    // ---- Phase 1: locality-checking loop over every reference -------------
    let mut local_iters = Vec::new();
    let mut nonlocal_iters = Vec::new();
    let mut per_source: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    let mut refs = Vec::new();
    for &i in exec_iters {
        proc.charge_loop_iters(1);
        refs.clear();
        refs_of(i, &mut refs);
        let mut all_local = true;
        for &g in &refs {
            // Catch stale reference enumerators early: under adaptive
            // workloads the `adj` data feeding `refs_of` changes between
            // data versions, and an out-of-range index here means the caller
            // re-inspected with arrays from a different mesh generation.
            debug_assert!(
                g < data_dist.n(),
                "iteration {i} references global index {g}, outside the \
                 distributed array of {} elements (stale refs after a data \
                 version change?)",
                data_dist.n()
            );
            // "The inspector only checks whether references to distributed
            // arrays are local" — one owner computation per reference.
            proc.charge_locality_check();
            let home = data_dist.owner(g);
            if home != rank {
                all_local = false;
                per_source[home].push(g);
            }
        }
        if all_local {
            local_iters.push(i);
        } else {
            nonlocal_iters.push(i);
        }
    }

    // ---- Phase 2: sort, deduplicate and coalesce the receive lists --------
    let recv_sets: Vec<IndexSet> = per_source
        .into_iter()
        .map(|v| {
            // Charge the paper's insertion/sort cost: one record-handling
            // charge per element placed into the sorted list.
            proc.charge_record_handling(v.len());
            IndexSet::from_indices(v)
        })
        .collect();
    let mut schedule = CommSchedule::from_recv_sets(rank, &recv_sets, local_iters, nonlocal_iters);

    // ---- Phase 3: global exchange to build the send lists ------------------
    // Each receive record is routed to its home processor, where it becomes a
    // send record ("Form send_list using recv_lists from all processors
    // (requires global communication)", Figure 6).  On the simulator the
    // exchange is the paper's crystal router; other backends provide their
    // own all-to-all.
    let outgoing: Vec<(usize, RangeRecord)> = schedule
        .recv_records
        .iter()
        .map(|r| (r.from_proc, *r))
        .collect();
    let incoming = proc.exchange(outgoing);
    proc.charge_record_handling(incoming.len());
    schedule.set_send_records(incoming);
    schedule
}

/// Convenience: the iterations of `0..n` this processor executes under an
/// owner-computes on-clause (`on A[i].loc`), in ascending order.
pub fn owner_computes_iters<D: Distribution + ?Sized>(
    dist: &D,
    rank: usize,
    n: usize,
) -> Vec<usize> {
    owner_computes_range(dist, rank, 0, n)
}

/// The iterations of `lo..hi` this processor executes under an
/// owner-computes on-clause, in ascending order.
///
/// The intersection happens at the interval-set level **before** any
/// enumeration: a narrow range over a huge distribution materialises only
/// the iterations actually in the range, never the full owned set (the
/// owned set itself is a handful of coalesced ranges for every built-in
/// pattern).
pub fn owner_computes_range<D: Distribution + ?Sized>(
    dist: &D,
    rank: usize,
    lo: usize,
    hi: usize,
) -> Vec<usize> {
    dist.local_set(rank)
        .intersect(&IndexSet::from_range(lo, hi))
        .iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::DimDist;
    use dmsim::{CostModel, Machine};

    /// A tiny indirect-access workload: iteration i references data[idx[i]].
    fn run_indirect(
        nprocs: usize,
        n: usize,
        idx: Vec<usize>,
        dist: impl Fn() -> DimDist + Sync,
    ) -> Vec<CommSchedule> {
        let machine = Machine::new(nprocs, CostModel::ideal());
        machine.run(|proc| {
            let d = dist();
            let exec = owner_computes_iters(&d, proc.rank(), n);
            run_inspector(proc, &d, &exec, |i, refs| refs.push(idx[i]))
        })
    }

    #[test]
    fn purely_local_references_produce_empty_schedules() {
        let n = 32;
        let idx: Vec<usize> = (0..n).collect(); // identity: always local
        let schedules = run_indirect(4, n, idx, || DimDist::block(32, 4));
        for s in schedules {
            assert_eq!(s.recv_len, 0);
            assert!(s.send_records.is_empty());
            assert!(s.nonlocal_iters.is_empty());
            assert_eq!(s.local_iters.len(), 8);
        }
    }

    #[test]
    fn shift_pattern_matches_expected_boundaries() {
        let n = 40;
        // Iteration i references element i+1 (except the last, which is self).
        let idx: Vec<usize> = (0..n).map(|i| if i + 1 < n { i + 1 } else { i }).collect();
        let schedules = run_indirect(4, n, idx, || DimDist::block(40, 4));
        for (rank, s) in schedules.iter().enumerate() {
            if rank < 3 {
                assert_eq!(s.recv_len, 1, "rank {rank} receives one halo element");
                assert_eq!(s.recv_records[0].from_proc, rank + 1);
                assert_eq!(s.recv_records[0].low, (rank + 1) * 10);
                assert_eq!(s.nonlocal_iters, vec![rank * 10 + 9]);
            } else {
                assert_eq!(s.recv_len, 0);
            }
            if rank > 0 {
                assert_eq!(s.send_records.len(), 1);
                assert_eq!(s.send_records[0].to_proc, rank - 1);
                assert_eq!(s.send_records[0].len(), 1);
            }
        }
    }

    #[test]
    fn duplicate_references_are_coalesced_into_single_ranges() {
        let n = 24;
        // Every iteration on processor 1 references elements 0, 1 and 2 (all
        // owned by processor 0) repeatedly.
        let machine = Machine::new(2, CostModel::ideal());
        let schedules = machine.run(|proc| {
            let d = DimDist::block(n, 2);
            let exec = owner_computes_iters(&d, proc.rank(), n);
            run_inspector(proc, &d, &exec, |_i, refs| {
                refs.extend_from_slice(&[0, 1, 2, 1, 0]);
            })
        });
        let s1 = &schedules[1];
        assert_eq!(s1.recv_len, 3, "duplicates must collapse");
        assert_eq!(s1.range_count(), 1, "adjacent elements must coalesce");
        assert_eq!(s1.recv_records[0].low, 0);
        assert_eq!(s1.recv_records[0].high, 3);
        // Processor 0 references only its own elements.
        assert_eq!(schedules[0].recv_len, 0);
        assert_eq!(schedules[0].send_records.len(), 1);
        assert_eq!(schedules[0].send_records[0].high, 3);
    }

    #[test]
    fn in_and_out_sets_are_transposes_of_each_other() {
        let n = 60;
        // Pseudo-random but deterministic indirect references.
        let idx: Vec<usize> = (0..n).map(|i| (i * 17 + 5) % n).collect();
        let schedules = run_indirect(4, n, idx, || DimDist::cyclic(60, 4));
        for p in 0..4 {
            for q in 0..4 {
                if p == q {
                    continue;
                }
                let in_pq: Vec<(usize, usize)> = schedules[p]
                    .recv_records
                    .iter()
                    .filter(|r| r.from_proc == q)
                    .map(|r| (r.low, r.high))
                    .collect();
                let mut out_qp: Vec<(usize, usize)> = schedules[q]
                    .send_records
                    .iter()
                    .filter(|r| r.to_proc == p)
                    .map(|r| (r.low, r.high))
                    .collect();
                out_qp.sort_unstable();
                let mut in_sorted = in_pq.clone();
                in_sorted.sort_unstable();
                assert_eq!(in_sorted, out_qp, "in({p},{q}) vs out({q},{p})");
            }
        }
    }

    #[test]
    fn inspector_charges_one_locality_check_per_reference() {
        let n = 16;
        let machine = Machine::new(2, CostModel::ncube7());
        let idx: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
        let (_, stats) = machine.run_stats(|proc| {
            let d = DimDist::block(n, 2);
            let exec = owner_computes_iters(&d, proc.rank(), n);
            run_inspector(proc, &d, &exec, |i, refs| refs.push(idx[i]));
        });
        // 16 references in total -> at least 16 × locality_check of simulated
        // time across the two processors (plus loop and router overheads).
        let check = CostModel::ncube7().locality_check();
        let total: f64 = stats.clocks.iter().sum();
        assert!(total >= 16.0 * check);
    }

    #[test]
    fn narrow_range_does_not_enumerate_the_whole_owned_set() {
        // Regression for the old materialise-then-filter enumeration: with a
        // 2^44-element distribution, collecting the full owned set before
        // filtering would attempt a ~4-trillion-element vector.  The
        // range-aware helper must intersect at the interval level first.
        let n = 1usize << 44;
        let d = DimDist::block(n, 4);
        assert_eq!(
            owner_computes_range(&d, 0, 10, 42),
            (10..42).collect::<Vec<_>>()
        );
        // A window inside rank 2's block.
        let base = n / 2;
        assert_eq!(
            owner_computes_range(&d, 2, base + 5, base + 9),
            vec![base + 5, base + 6, base + 7, base + 8]
        );
        // A window entirely outside the rank's block is empty.
        assert!(owner_computes_range(&d, 3, 0, 1000).is_empty());
        // The unranged helper is the (0, n) special case on small inputs.
        let small = DimDist::cyclic(17, 3);
        assert_eq!(
            owner_computes_iters(&small, 1, 17),
            owner_computes_range(&small, 1, 0, 17)
        );
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn distribution_must_match_machine_size() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let d = DimDist::block(10, 4); // wrong processor count
            run_inspector(proc, &d, &[0], |_i, refs| refs.push(0));
        });
    }
}
