//! Distributed arrays: the local piece plus the global view.
//!
//! A [`DistArray`] is what one processor holds of a Kali distributed array:
//! its owned rows (in local, contiguous storage) plus the distribution, so
//! that global indices can be translated, ownership can be tested, and
//! non-owned accesses can be routed through a communication schedule.
//!
//! Arrays may have a second, non-distributed dimension (`dist by [block, *]`
//! in the paper — `adj` and `coef` in Figure 4): `row_width` is the extent
//! of that dimension, 1 for ordinary one-dimensional arrays.
//!
//! General multi-dimensional decompositions (`[*, block]`, `[block, block]`
//! over a 2-D processor grid, …) flow through the same type: wrap the
//! [`distrib::ArrayDist`] with [`DimDist::flattened`] and the `DistArray`
//! stores the row-major linearisation of the rank's local shape — exactly
//! the layout a compiler would emit — while `scatter_from`, `gather`,
//! ownership tests and index translation keep working on flat indices.

use distrib::DimDist;

use crate::process::Process;

/// The local portion of a distributed array on one processor.
#[derive(Debug, Clone)]
pub struct DistArray<T> {
    dist: DimDist,
    row_width: usize,
    rank: usize,
    local: Vec<T>,
}

impl<T: Clone + Default> DistArray<T> {
    /// Create an array filled with `T::default()`.
    pub fn new(dist: DimDist, row_width: usize, rank: usize) -> Self {
        assert!(row_width > 0, "row width must be positive");
        assert!(rank < dist.nprocs(), "rank outside the processor array");
        let rows = dist.local_count(rank);
        DistArray {
            dist,
            row_width,
            rank,
            local: vec![T::default(); rows * row_width],
        }
    }
}

impl<T: Clone> DistArray<T> {
    /// Create an array by scattering a globally replicated initial value.
    ///
    /// `global` must have `dist.n() * row_width` elements in row-major
    /// order.  Each processor keeps only its own rows.  (The paper's set-up
    /// code builds `adj`/`coef` this way; set-up is outside the timed
    /// sections.)
    pub fn scatter_from(dist: DimDist, row_width: usize, rank: usize, global: &[T]) -> Self {
        assert!(row_width > 0, "row width must be positive");
        assert_eq!(
            global.len(),
            dist.n() * row_width,
            "global initialiser has the wrong length"
        );
        let rows = dist.local_count(rank);
        let mut local = Vec::with_capacity(rows * row_width);
        for l in 0..rows {
            let g = dist.global_index(rank, l);
            local.extend_from_slice(&global[g * row_width..(g + 1) * row_width]);
        }
        DistArray {
            dist,
            row_width,
            rank,
            local,
        }
    }

    /// The distribution of the (first dimension of the) array.
    pub fn dist(&self) -> &DimDist {
        &self.dist
    }

    /// Extent of the non-distributed second dimension (1 for 1-D arrays).
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Rank of the processor owning this local piece.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of rows stored locally.
    pub fn local_rows(&self) -> usize {
        self.dist.local_count(self.rank)
    }

    /// The raw local storage (row-major, `local_rows × row_width`).
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Mutable access to the raw local storage.
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.local
    }

    /// True when this processor owns global row `i` — the `.loc` test of the
    /// paper's `on` clauses.
    pub fn owns(&self, i: usize) -> bool {
        self.dist.is_local(self.rank, i)
    }

    /// The owner of global row `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.dist.owner(i)
    }

    /// Read element `(global row, column)`; panics if the row is not owned.
    pub fn get(&self, i: usize, j: usize) -> &T {
        assert!(
            self.owns(i),
            "rank {} does not own global row {i}",
            self.rank
        );
        debug_assert!(j < self.row_width);
        &self.local[self.dist.local_index(i) * self.row_width + j]
    }

    /// Write element `(global row, column)`; panics if the row is not owned.
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        assert!(
            self.owns(i),
            "rank {} does not own global row {i}",
            self.rank
        );
        debug_assert!(j < self.row_width);
        let l = self.dist.local_index(i) * self.row_width + j;
        self.local[l] = value;
    }

    /// The owned slice of global row `i`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(
            self.owns(i),
            "rank {} does not own global row {i}",
            self.rank
        );
        let l = self.dist.local_index(i) * self.row_width;
        &self.local[l..l + self.row_width]
    }

    /// Local row slice by *local* row index.
    pub fn local_row(&self, l: usize) -> &[T] {
        &self.local[l * self.row_width..(l + 1) * self.row_width]
    }

    /// Iterate over the global row indices owned by this processor, in
    /// ascending order.
    pub fn owned_rows(&self) -> impl Iterator<Item = usize> + '_ {
        let rank = self.rank;
        let dist = self.dist.clone();
        (0..self.local_rows()).map(move |l| dist.global_index(rank, l))
    }
}

impl<T: Clone + Default + kali_process::Wire> DistArray<T> {
    /// Gather the full global array onto every processor (an allgather).
    ///
    /// Only used for verification and small demos — production code never
    /// needs the whole array in one place, which is the point of the paper.
    pub fn gather<P: Process>(&self, proc: &mut P) -> Vec<T> {
        let n = self.dist.n();
        let mut payload: Vec<(usize, T)> = Vec::with_capacity(self.local.len());
        for l in 0..self.local_rows() {
            let g = self.dist.global_index(self.rank, l);
            for j in 0..self.row_width {
                payload.push((
                    g * self.row_width + j,
                    self.local[l * self.row_width + j].clone(),
                ));
            }
        }
        let pieces = proc.allgather(payload);
        let mut out = vec![T::default(); n * self.row_width];
        for piece in pieces {
            for (flat, value) in piece {
                out[flat] = value;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{CostModel, Machine};

    #[test]
    fn scatter_keeps_only_owned_rows() {
        let global: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let dist = DimDist::block(12, 3);
        let a = DistArray::scatter_from(dist, 1, 1, &global);
        assert_eq!(a.local(), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(a.local_rows(), 4);
        assert!(a.owns(5));
        assert!(!a.owns(2));
        assert_eq!(*a.get(5, 0), 5.0);
    }

    #[test]
    fn two_dimensional_rows_stay_together() {
        // 4 rows x 3 columns, block distributed over 2 processors.
        let global: Vec<u32> = (0..12).collect();
        let a = DistArray::scatter_from(DimDist::block(4, 2), 3, 1, &global);
        assert_eq!(a.row(2), &[6, 7, 8]);
        assert_eq!(a.row(3), &[9, 10, 11]);
        assert_eq!(a.local_row(0), &[6, 7, 8]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut a: DistArray<f64> = DistArray::new(DimDist::cyclic(10, 3), 1, 2);
        // Rank 2 owns 2, 5, 8 under cyclic(10, 3).
        a.set(5, 0, 2.5);
        assert_eq!(*a.get(5, 0), 2.5);
        let owned: Vec<usize> = a.owned_rows().collect();
        assert_eq!(owned, vec![2, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "does not own")]
    fn get_unowned_row_panics() {
        let a: DistArray<f64> = DistArray::new(DimDist::block(10, 2), 1, 0);
        let _ = a.get(9, 0);
    }

    #[test]
    fn gather_reassembles_the_global_array() {
        let machine = Machine::new(4, CostModel::ideal());
        let global: Vec<u64> = (0..20).map(|x| x * 3).collect();
        let results = machine.run(|proc| {
            let a = DistArray::scatter_from(DimDist::cyclic(20, 4), 1, proc.rank(), &global);
            a.gather(proc)
        });
        for r in results {
            assert_eq!(r, global);
        }
    }

    #[test]
    fn flattened_multidim_decompositions_store_the_local_shape_row_major() {
        use distrib::ArrayDist;
        // A 4x6 field scattered under [block, *] and [*, block]: the local
        // piece is the row-major linearisation of the rank's local shape.
        let global: Vec<f64> = (0..24).map(|x| x as f64).collect();
        let rows = DimDist::flattened(ArrayDist::block_rows(4, 6, 2));
        let a = DistArray::scatter_from(rows, 1, 1, &global);
        // Rank 1 owns rows 2..4: twelve contiguous elements.
        assert_eq!(a.local(), &global[12..24]);
        assert!(a.owns(2 * 6 + 3));
        assert!(!a.owns(5));

        let cols = DimDist::flattened(ArrayDist::block_cols(4, 6, 2));
        let b = DistArray::scatter_from(cols.clone(), 1, 0, &global);
        // Rank 0 owns columns 0..3 of every row, stored as 4 rows of 3.
        let expected: Vec<f64> = (0..4)
            .flat_map(|i| (0..3).map(move |j| (i * 6 + j) as f64))
            .collect();
        assert_eq!(b.local(), &expected[..]);
        assert_eq!(b.owner(2), 0);
        assert_eq!(b.owner(3), 1);
        // gather reassembles the global row-major field on every rank.
        let machine = Machine::new(2, CostModel::ideal());
        let results = machine.run(|proc| {
            let d = DimDist::flattened(ArrayDist::block_cols(4, 6, 2));
            DistArray::scatter_from(d, 1, proc.rank(), &global).gather(proc)
        });
        for r in results {
            assert_eq!(r, global);
        }
    }

    #[test]
    fn gather_handles_row_width() {
        let machine = Machine::new(2, CostModel::ideal());
        let global: Vec<u32> = (0..24).collect();
        let results = machine.run(|proc| {
            let a = DistArray::scatter_from(DimDist::block(6, 2), 4, proc.rank(), &global);
            a.gather(proc)
        });
        for r in results {
            assert_eq!(r, global);
        }
    }
}
