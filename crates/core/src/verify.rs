//! Plan-time static verification of communication schedules and protocols.
//!
//! The paper's central claim is that communication for irregular loops can
//! be *analysed ahead of execution*.  This module takes that claim
//! seriously for the runtime itself: given the SPMD-deterministic per-rank
//! plans of a loop, it proves — without executing a single sweep — that
//!
//! 1. **Schedule duality** holds: every receive record `(src, range)` on
//!    rank `r` is mirrored by a send record `(dest = r, range)` on rank
//!    `src` with an equal element count ([`check_schedule_set`]), every
//!    receive buffer is dense and non-overlapping, and every planned
//!    nonlocal reference resolves through the schedule
//!    ([`check_plan_refs`]).
//! 2. **Tag-space safety** holds: the [`tags`] component windows are
//!    pairwise disjoint ([`check_tag_windows`], also enforced at compile
//!    time by const assertions in `kali_process::tags`), and the executor's
//!    sweep-tag wrap can never alias two in-flight sweeps
//!    ([`check_sweep_tag_wrap`]).
//! 3. **Deadlock freedom** holds: the sweep's send/recv matching — and the
//!    tree collective's rounds ([`check_collective_deadlock`]) — form an
//!    acyclically orderable bipartite dependence graph under a sequential
//!    post-sends-then-receive execution model.
//! 4. **SPMD and determinism-contract conformance** hold: the collective
//!    call sequence is rank-invariant ([`check_collective_sequence`]) and
//!    the allreduce protocol's reduction bracketing equals
//!    `tree_combine_partials`' replay order ([`check_reduce_bracketing`]),
//!    verified with the order-sensitive [`BracketHash`] operator.
//!
//! Violations come back as the structured [`Violation`] enum with precise
//! diagnostics.  The checks run in three layers: [`Session::verify_plan`]
//! (plus a debug-mode check on every plan), this module's public API for
//! tests and tools, and the `verify_all` bench driver sweeping every
//! solver/bench configuration in CI.
//!
//! [`Session::verify_plan`]: crate::session::Session::verify_plan
//! [`tags`]: crate::process::tags

use std::collections::BTreeMap;
use std::fmt;

use distrib::Distribution;

use crate::process::{tags, tree_combine_partials, tree_merge_order, ReduceOp, Tag};
use crate::schedule::{CommSchedule, RangeRecord};

/// Which record list of a [`CommSchedule`] a violation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A receive record (`in(p,q)` of the paper).
    Recv,
    /// A send record (`out(p,q)` of the paper).
    Send,
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordKind::Recv => write!(f, "recv"),
            RecordKind::Send => write!(f, "send"),
        }
    }
}

/// One collective operation as observed on one rank — the unit of the
/// rank-invariance check ([`check_collective_sequence`]).  Recorded by
/// [`Session`](crate::session::Session) for every typed reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveCall {
    /// The reduction operator's name (`ReduceOp::name`).
    pub op: &'static str,
    /// Size of the accumulator type in bytes.
    pub acc_bytes: usize,
}

impl fmt::Display for CollectiveCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}B]", self.op, self.acc_bytes)
    }
}

/// One statically detected protocol defect, with enough context to point at
/// the offending record, rank, or round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A record's own-rank field does not name the schedule's rank.
    RecordRankMismatch {
        /// Rank of the schedule holding the record.
        rank: usize,
        /// Which record list the record sits in.
        kind: RecordKind,
        /// The offending record.
        record: RangeRecord,
    },
    /// A record names its own rank as the peer (a processor never messages
    /// itself through a schedule).
    SelfMessage {
        /// Rank of the schedule holding the record.
        rank: usize,
        /// Which record list the record sits in.
        kind: RecordKind,
        /// The offending record.
        record: RangeRecord,
    },
    /// A record covers no elements (empty records shadow covering ranges in
    /// the binary search).
    EmptyRecord {
        /// Rank of the schedule holding the record.
        rank: usize,
        /// Which record list the record sits in.
        kind: RecordKind,
        /// The offending record.
        record: RangeRecord,
    },
    /// Records are not sorted by `(peer, low)` — the executor's
    /// message-grouping and the binary search both rely on that order.
    UnsortedRecords {
        /// Rank of the schedule holding the records.
        rank: usize,
        /// Which record list is out of order.
        kind: RecordKind,
        /// Index of the first record that sorts before its predecessor.
        index: usize,
    },
    /// Two receive records cover overlapping global ranges (every element
    /// has exactly one home, so received ranges must be disjoint).
    OverlappingRecvRanges {
        /// Rank of the schedule holding the records.
        rank: usize,
        /// The earlier record (by `low`).
        first: RangeRecord,
        /// The overlapping record.
        second: RangeRecord,
    },
    /// A receive record's buffer offset is not the running sum of the
    /// preceding records' lengths — the packed receive path would scatter
    /// elements to the wrong slots.
    NonDenseRecvLayout {
        /// Rank of the schedule holding the record.
        rank: usize,
        /// The offending record.
        record: RangeRecord,
        /// The offset the dense layout requires.
        expected_buffer: usize,
    },
    /// `recv_len` disagrees with the records' total length.
    RecvLenMismatch {
        /// Rank of the schedule.
        rank: usize,
        /// The `recv_len` the schedule declares.
        declared: usize,
        /// The sum of the receive records' lengths.
        actual: usize,
    },
    /// A received element does not resolve through the schedule's binary
    /// search (`find`) to its record's buffer slot — the lookup table is out
    /// of sync with the records.
    LookupMiss {
        /// Rank of the schedule.
        rank: usize,
        /// The global index that failed to resolve.
        global: usize,
    },
    /// An iteration list is not strictly ascending.
    UnsortedIterations {
        /// Rank of the schedule.
        rank: usize,
        /// Which list (`"local"` or `"nonlocal"`).
        list: &'static str,
        /// Index of the first out-of-order entry.
        index: usize,
    },
    /// An iteration appears in both the local and the nonlocal list.
    OverlappingIterationLists {
        /// Rank of the schedule.
        rank: usize,
        /// The duplicated iteration.
        iter: usize,
    },
    /// Schedule at position `index` of the set does not carry rank `index`.
    ScheduleRankMismatch {
        /// Position in the schedule set.
        index: usize,
        /// The rank the schedule claims.
        rank: usize,
    },
    /// A receive record has no matching send record on the sending rank —
    /// the receiver would block forever.
    DanglingRecv {
        /// Rank of the receiving schedule.
        rank: usize,
        /// The unmatched receive record.
        record: RangeRecord,
    },
    /// A send record has no matching receive record on the destination rank
    /// — the message would arrive unexpected.
    DanglingSend {
        /// Rank of the sending schedule.
        rank: usize,
        /// The unmatched send record.
        record: RangeRecord,
    },
    /// Matched send/recv records (same pair, same `low`) disagree on their
    /// extent, so the two sides would exchange different byte counts.
    ByteCountMismatch {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Common start of the matched records.
        low: usize,
        /// The receiver's `high`.
        recv_high: usize,
        /// The sender's `high`.
        send_high: usize,
    },
    /// A planned local iteration references an element the rank does not
    /// own (the local/nonlocal split is wrong).
    LocalIterNonlocalRef {
        /// Rank of the schedule.
        rank: usize,
        /// The iteration.
        iter: usize,
        /// The nonlocal global index it references.
        global: usize,
    },
    /// A planned nonlocal reference is neither owned nor covered by any
    /// receive record — the executor's fetch would fail.
    UnresolvableRef {
        /// Rank of the schedule.
        rank: usize,
        /// The iteration.
        iter: usize,
        /// The unresolvable global index.
        global: usize,
    },
    /// A modelled message has no matching counterpart (protocol model
    /// internal mismatch).
    UnmatchedMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// Human-readable identity of the message.
        label: String,
    },
    /// The send/recv dependence graph contains a cycle: the plan can
    /// deadlock under sequential posting.
    DeadlockCycle {
        /// The operations on the cycle (capped for readability).
        events: Vec<String>,
    },
    /// Two ranks disagree on the collective call sequence — some code
    /// branches on the rank id around a collective.
    DivergentCollectives {
        /// The diverging rank.
        rank: usize,
        /// Position in the call sequence.
        position: usize,
        /// What rank 0 called at this position (`None` = nothing).
        reference: Option<CollectiveCall>,
        /// What the diverging rank called (`None` = nothing).
        found: Option<CollectiveCall>,
    },
    /// Two tag-space component windows overlap.
    TagWindowOverlap {
        /// First window's name.
        a: &'static str,
        /// Second window's name.
        b: &'static str,
    },
    /// A derived tag escaped its component window.
    TagOutOfWindow {
        /// The escaping tag.
        tag: Tag,
        /// The window it was supposed to stay in.
        window: &'static str,
    },
    /// Two in-flight sweeps map to the same executor tag across the wrap
    /// boundary.
    SweepTagCollision {
        /// The earlier sweep number.
        sweep_a: usize,
        /// The later sweep number.
        sweep_b: usize,
        /// The shared tag.
        tag: Tag,
    },
    /// The allreduce protocol's bracketing diverged from
    /// `tree_combine_partials`' replay order.
    BracketingMismatch {
        /// Rank count the divergence occurred at.
        nprocs: usize,
        /// The diverging rank (`None`: the exposed merge order itself
        /// disagrees with the replay helper).
        rank: Option<usize>,
        /// Bracket hash of the replay order.
        expected: u64,
        /// Bracket hash the protocol produced.
        found: u64,
    },
    /// Two in-flight messages on one `(src, dst, tag)` channel with no
    /// happens-before edge between them and no collective epoch marker
    /// separating the sends on the sender: the tag was reused while its
    /// previous message could still be pending (trace-level check,
    /// [`mc::check_trace`](crate::mc::check_trace)).
    TagReuseRace {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// The reused tag.
        tag: Tag,
        /// Sender-side event sequence number of the earlier send.
        first_seq: u64,
        /// Sender-side event sequence number of the later send.
        second_seq: u64,
    },
    /// Two in-flight messages on one `(src, dst, tag)` channel whose sends
    /// are epoch-separated on the sender but whose receives are **not**
    /// separated on the receiver and carry no happens-before edge: under a
    /// non-FIFO transport the receiver could observe them out of order
    /// (trace-level check, [`mc::check_trace`](crate::mc::check_trace)).
    MessageRace {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// The contested tag.
        tag: Tag,
        /// Receiver-side event sequence number of the earlier receive.
        first_seq: u64,
        /// Receiver-side event sequence number of the later receive.
        second_seq: u64,
    },
    /// The recorded trace's causality graph (program order plus send→recv
    /// edges) contains a cycle: some receive completed before its matching
    /// send could have been posted — the trace is not a possible execution.
    RecvBeforeSend {
        /// The events on the cycle (capped for readability).
        events: Vec<String>,
    },
    /// Two chunk claims of the same sweep and executor phase on one rank
    /// cover overlapping iteration positions: the chunked executor's sink
    /// would apply two writers to one slot.
    ChunkSinkConflict {
        /// The rank whose chunk claims collide.
        rank: usize,
        /// The sweep number (executor tag offset) the claims belong to.
        sweep: u64,
        /// `(low, high)` iteration positions of the earlier claim.
        first: (usize, usize),
        /// `(low, high)` iteration positions of the overlapping claim.
        second: (usize, usize),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RecordRankMismatch { rank, kind, record } => write!(
                f,
                "rank {rank}: {kind} record {record:?} does not name this rank"
            ),
            Violation::SelfMessage { rank, kind, record } => {
                write!(f, "rank {rank}: {kind} record {record:?} messages itself")
            }
            Violation::EmptyRecord { rank, kind, record } => {
                write!(f, "rank {rank}: empty {kind} record {record:?}")
            }
            Violation::UnsortedRecords { rank, kind, index } => write!(
                f,
                "rank {rank}: {kind} record #{index} sorts before its predecessor"
            ),
            Violation::OverlappingRecvRanges {
                rank,
                first,
                second,
            } => write!(
                f,
                "rank {rank}: recv ranges [{},{}) and [{},{}) overlap",
                first.low, first.high, second.low, second.high
            ),
            Violation::NonDenseRecvLayout {
                rank,
                record,
                expected_buffer,
            } => write!(
                f,
                "rank {rank}: recv record [{},{}) sits at buffer {} but the dense \
                 layout requires {expected_buffer}",
                record.low, record.high, record.buffer
            ),
            Violation::RecvLenMismatch {
                rank,
                declared,
                actual,
            } => write!(
                f,
                "rank {rank}: recv_len declares {declared} elements but the records \
                 cover {actual}"
            ),
            Violation::LookupMiss { rank, global } => write!(
                f,
                "rank {rank}: received element {global} does not resolve through find()"
            ),
            Violation::UnsortedIterations { rank, list, index } => write!(
                f,
                "rank {rank}: {list} iteration #{index} is not strictly ascending"
            ),
            Violation::OverlappingIterationLists { rank, iter } => write!(
                f,
                "rank {rank}: iteration {iter} is both local and nonlocal"
            ),
            Violation::ScheduleRankMismatch { index, rank } => {
                write!(f, "schedule at position {index} carries rank {rank}")
            }
            Violation::DanglingRecv { rank, record } => write!(
                f,
                "rank {rank}: recv [{},{}) from rank {} has no matching send",
                record.low, record.high, record.from_proc
            ),
            Violation::DanglingSend { rank, record } => write!(
                f,
                "rank {rank}: send [{},{}) to rank {} has no matching recv",
                record.low, record.high, record.to_proc
            ),
            Violation::ByteCountMismatch {
                from,
                to,
                low,
                recv_high,
                send_high,
            } => write!(
                f,
                "pair {from}->{to}: matched records at {low} disagree on extent \
                 (recv high {recv_high}, send high {send_high})"
            ),
            Violation::LocalIterNonlocalRef { rank, iter, global } => write!(
                f,
                "rank {rank}: local iteration {iter} references nonlocal element {global}"
            ),
            Violation::UnresolvableRef { rank, iter, global } => write!(
                f,
                "rank {rank}: iteration {iter} references element {global}, which is \
                 neither owned nor scheduled for receive"
            ),
            Violation::UnmatchedMessage { from, to, label } => write!(
                f,
                "message {from}->{to} ({label}) has no matching counterpart"
            ),
            Violation::DeadlockCycle { events } => {
                write!(f, "dependence cycle: {}", events.join(" -> "))
            }
            Violation::DivergentCollectives {
                rank,
                position,
                reference,
                found,
            } => write!(
                f,
                "rank {rank} diverges from rank 0 at collective #{position}: \
                 rank 0 called {}, rank {rank} called {}",
                reference.map_or("nothing".to_string(), |c| c.to_string()),
                found.map_or("nothing".to_string(), |c| c.to_string())
            ),
            Violation::TagWindowOverlap { a, b } => {
                write!(f, "tag windows '{a}' and '{b}' overlap")
            }
            Violation::TagOutOfWindow { tag, window } => {
                write!(f, "tag {tag:#x} escaped the '{window}' window")
            }
            Violation::SweepTagCollision {
                sweep_a,
                sweep_b,
                tag,
            } => write!(
                f,
                "in-flight sweeps {sweep_a} and {sweep_b} share executor tag {tag:#x}"
            ),
            Violation::BracketingMismatch {
                nprocs,
                rank,
                expected,
                found,
            } => match rank {
                Some(r) => write!(
                    f,
                    "P={nprocs}: rank {r}'s allreduce bracket hash {found:#x} diverges \
                     from the replay order's {expected:#x}"
                ),
                None => write!(
                    f,
                    "P={nprocs}: exposed merge order hashes to {found:#x}, replay \
                     helper to {expected:#x}"
                ),
            },
            Violation::TagReuseRace {
                src,
                dst,
                tag,
                first_seq,
                second_seq,
            } => write!(
                f,
                "channel {src}->{dst} tag {tag:#x}: sends #{first_seq} and \
                 #{second_seq} race (no ordering edge, no epoch marker between them)"
            ),
            Violation::MessageRace {
                src,
                dst,
                tag,
                first_seq,
                second_seq,
            } => write!(
                f,
                "channel {src}->{dst} tag {tag:#x}: receives #{first_seq} and \
                 #{second_seq} race (sender epoch-separated, receiver not)"
            ),
            Violation::RecvBeforeSend { events } => {
                write!(f, "causality cycle: {}", events.join(" -> "))
            }
            Violation::ChunkSinkConflict {
                rank,
                sweep,
                first,
                second,
            } => write!(
                f,
                "rank {rank} sweep {sweep}: chunk claims [{},{}) and [{},{}) of the \
                 same phase overlap",
                first.0, first.1, second.0, second.1
            ),
        }
    }
}

/// Render a violation list for a panic or report message.
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  - {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

// ----------------------------------------------------------------------
// 1. Schedule duality
// ----------------------------------------------------------------------

/// Structurally verify one rank's schedule: record rank fields, sorting,
/// dense non-overlapping receive layout, lookup consistency, and
/// well-formed iteration lists.  Cross-rank properties (duality, deadlock
/// freedom) need the whole set — see [`check_schedule_set`].
pub fn check_schedule(s: &CommSchedule) -> Vec<Violation> {
    let mut out = Vec::new();
    let rank = s.rank;

    // Receive records: rank fields, order, dense buffer layout.
    let mut expected_buffer = 0usize;
    for (k, r) in s.recv_records.iter().enumerate() {
        if r.to_proc != rank {
            out.push(Violation::RecordRankMismatch {
                rank,
                kind: RecordKind::Recv,
                record: *r,
            });
        }
        if r.from_proc == rank {
            out.push(Violation::SelfMessage {
                rank,
                kind: RecordKind::Recv,
                record: *r,
            });
        }
        if r.is_empty() {
            out.push(Violation::EmptyRecord {
                rank,
                kind: RecordKind::Recv,
                record: *r,
            });
        }
        if k > 0 {
            let prev = &s.recv_records[k - 1];
            if (r.from_proc, r.low) < (prev.from_proc, prev.low) {
                out.push(Violation::UnsortedRecords {
                    rank,
                    kind: RecordKind::Recv,
                    index: k,
                });
            }
        }
        if r.buffer != expected_buffer {
            out.push(Violation::NonDenseRecvLayout {
                rank,
                record: *r,
                expected_buffer,
            });
        }
        expected_buffer += r.len();
    }
    if expected_buffer != s.recv_len {
        out.push(Violation::RecvLenMismatch {
            rank,
            declared: s.recv_len,
            actual: expected_buffer,
        });
    }

    // Received global ranges must be pairwise disjoint (every element has
    // one home).
    let mut by_low: Vec<RangeRecord> = s.recv_records.clone();
    by_low.sort_by_key(|r| (r.low, r.high));
    let mut overlapping = false;
    for w in by_low.windows(2) {
        if w[1].low < w[0].high {
            overlapping = true;
            out.push(Violation::OverlappingRecvRanges {
                rank,
                first: w[0],
                second: w[1],
            });
        }
    }

    // Lookup consistency: each record's endpoints must resolve to their
    // buffer slots (only meaningful when the ranges are disjoint).
    if !overlapping {
        for r in s.recv_records.iter().filter(|r| !r.is_empty()) {
            let lo_ok = s.find(r.low) == Some(r.buffer);
            let hi_ok = s.find(r.high - 1) == Some(r.buffer + r.len() - 1);
            if !lo_ok || !hi_ok {
                out.push(Violation::LookupMiss {
                    rank,
                    global: if lo_ok { r.high - 1 } else { r.low },
                });
            }
        }
    }

    // Send records: rank fields and `(to_proc, low)` order; ranges to the
    // *same* destination must be disjoint (they mirror that receiver's
    // disjoint receive set), while different destinations may legitimately
    // request the same element.
    for (k, r) in s.send_records.iter().enumerate() {
        if r.from_proc != rank {
            out.push(Violation::RecordRankMismatch {
                rank,
                kind: RecordKind::Send,
                record: *r,
            });
        }
        if r.to_proc == rank {
            out.push(Violation::SelfMessage {
                rank,
                kind: RecordKind::Send,
                record: *r,
            });
        }
        if r.is_empty() {
            out.push(Violation::EmptyRecord {
                rank,
                kind: RecordKind::Send,
                record: *r,
            });
        }
        if k > 0 {
            let prev = &s.send_records[k - 1];
            if (r.to_proc, r.low) < (prev.to_proc, prev.low) {
                out.push(Violation::UnsortedRecords {
                    rank,
                    kind: RecordKind::Send,
                    index: k,
                });
            }
            if r.to_proc == prev.to_proc && r.low < prev.high {
                out.push(Violation::OverlappingRecvRanges {
                    rank,
                    first: *prev,
                    second: *r,
                });
            }
        }
    }

    // Iteration lists: strictly ascending and disjoint.
    for (list, name) in [(&s.local_iters, "local"), (&s.nonlocal_iters, "nonlocal")] {
        for (k, w) in list.windows(2).enumerate() {
            if w[1] <= w[0] {
                out.push(Violation::UnsortedIterations {
                    rank,
                    list: name,
                    index: k + 1,
                });
            }
        }
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < s.local_iters.len() && j < s.nonlocal_iters.len() {
        match s.local_iters[i].cmp(&s.nonlocal_iters[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(Violation::OverlappingIterationLists {
                    rank,
                    iter: s.local_iters[i],
                });
                i += 1;
                j += 1;
            }
        }
    }

    out
}

/// Verify a whole machine's schedules at once: per-rank structure
/// ([`check_schedule`]), **schedule duality** (`out(p,q) = in(q,p)`, equal
/// extents), and **deadlock freedom** of the sweep's send/recv matching
/// under the executor's sequential post-sends-then-receive order.
///
/// `set[r]` must be rank `r`'s schedule — the SPMD-deterministic plans a
/// simulator run (or, later, a real launch) produces.
pub fn check_schedule_set(set: &[CommSchedule]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (index, s) in set.iter().enumerate() {
        if s.rank != index {
            out.push(Violation::ScheduleRankMismatch {
                index,
                rank: s.rank,
            });
        }
        out.extend(check_schedule(s));
    }

    // Duality: match records by (from, to, low).
    let mut sends: BTreeMap<(usize, usize, usize), RangeRecord> = BTreeMap::new();
    for s in set {
        for r in &s.send_records {
            sends.insert((r.from_proc, r.to_proc, r.low), *r);
        }
    }
    let mut matched = 0usize;
    for s in set {
        for r in &s.recv_records {
            match sends.get(&(r.from_proc, r.to_proc, r.low)) {
                None => out.push(Violation::DanglingRecv {
                    rank: s.rank,
                    record: *r,
                }),
                Some(send) if send.high != r.high => {
                    matched += 1;
                    out.push(Violation::ByteCountMismatch {
                        from: r.from_proc,
                        to: r.to_proc,
                        low: r.low,
                        recv_high: r.high,
                        send_high: send.high,
                    });
                }
                Some(_) => matched += 1,
            }
        }
    }
    if matched != sends.len() {
        // Some send has no receiver: find them by probing the recv side.
        let mut recvs: BTreeMap<(usize, usize, usize), RangeRecord> = BTreeMap::new();
        for s in set {
            for r in &s.recv_records {
                recvs.insert((r.from_proc, r.to_proc, r.low), *r);
            }
        }
        for (key, send) in &sends {
            if !recvs.contains_key(key) {
                out.push(Violation::DanglingSend {
                    rank: send.from_proc,
                    record: *send,
                });
            }
        }
    }

    // Deadlock freedom of the sweep: each rank posts its sends (grouped by
    // destination, ascending) and then blocks on its receives (grouped by
    // source, ascending) — the executor's order.
    let mut ops: Vec<Vec<ModelOp>> = Vec::with_capacity(set.len());
    for s in set {
        let mut rank_ops = Vec::new();
        for (to, _) in s.send_messages() {
            rank_ops.push(ModelOp {
                kind: OpKind::Send,
                peer: to,
                key: 0,
            });
        }
        for (from, _) in s.recv_messages() {
            rank_ops.push(ModelOp {
                kind: OpKind::Recv,
                peer: from,
                key: 0,
            });
        }
        rank_ops.shrink_to_fit();
        ops.push(rank_ops);
    }
    out.extend(check_deadlock_model(&ops, "sweep"));

    out
}

/// Verify that every reference the plan promises to serve is actually
/// served: local iterations reference only owned elements, and every
/// nonlocal reference is either owned or resolvable through the schedule's
/// binary search.  `refs_of` is the same enumerator the plan was built
/// with.
pub fn check_plan_refs<D, F>(schedule: &CommSchedule, dist: &D, mut refs_of: F) -> Vec<Violation>
where
    D: Distribution + ?Sized,
    F: FnMut(usize, &mut Vec<usize>),
{
    let mut out = Vec::new();
    let rank = schedule.rank;
    let mut refs = Vec::new();
    for &i in &schedule.local_iters {
        refs.clear();
        refs_of(i, &mut refs);
        for &g in &refs {
            if dist.owner(g) != rank {
                out.push(Violation::LocalIterNonlocalRef {
                    rank,
                    iter: i,
                    global: g,
                });
            }
        }
    }
    for &i in &schedule.nonlocal_iters {
        refs.clear();
        refs_of(i, &mut refs);
        for &g in &refs {
            if dist.owner(g) != rank && schedule.find(g).is_none() {
                out.push(Violation::UnresolvableRef {
                    rank,
                    iter: i,
                    global: g,
                });
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// 2. Tag-space safety
// ----------------------------------------------------------------------

/// Verify the tag-space component windows are pairwise disjoint — the
/// runtime mirror of the `const` assertions in `kali_process::tags` (which
/// already fail the *build* on overlap; this produces a reportable
/// [`Violation`] for `verify_all`).
pub fn check_tag_windows() -> Vec<Violation> {
    let windows = tags::COMPONENT_WINDOWS;
    let mut out = Vec::new();
    for (i, a) in windows.iter().enumerate() {
        for b in windows.iter().skip(i + 1) {
            if !(a.2 <= b.1 || b.2 <= a.1) {
                out.push(Violation::TagWindowOverlap { a: a.0, b: b.0 });
            }
        }
    }
    out
}

/// Model the executor's sweep-tag wrap: sweep `s` is stamped with
/// `EXECUTOR_BASE + (s mod SPAN)`, so two sweeps alias exactly when their
/// distance is a multiple of `SPAN`.  With at most `in_flight` sweeps
/// concurrently un-retired (solvers keep one, pipelined variants a handful),
/// tags can never collide as long as `in_flight <= SPAN` — verified
/// algebraically, plus an explicit enumeration of windows straddling the
/// wrap boundary, where the aliasing would first appear.
pub fn check_sweep_tag_wrap(in_flight: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let span = tags::SPAN;
    if in_flight as Tag > span {
        // More in-flight sweeps than distinct tags: sweeps s and s + SPAN
        // are both live and share a tag.
        out.push(Violation::SweepTagCollision {
            sweep_a: 0,
            sweep_b: span as usize,
            tag: crate::executor::ExecutorConfig::sweep(0).tag,
        });
        return out;
    }
    // Enumerate a window of sweeps crossing the wrap boundary and check
    // every in-flight pair stays distinct and inside the executor window.
    let probe = (in_flight as Tag).min(512);
    let start = span - probe;
    let tags_in_window: Vec<(usize, Tag)> = (0..2 * probe)
        .map(|k| {
            let sweep = (start + k) as usize;
            (sweep, crate::executor::ExecutorConfig::sweep(sweep).tag)
        })
        .collect();
    for (k, &(sweep_a, tag_a)) in tags_in_window.iter().enumerate() {
        let absolute = tags::EXECUTOR_BASE + tag_a;
        if !(tags::EXECUTOR_BASE..tags::EXECUTOR_BASE + span).contains(&absolute) {
            out.push(Violation::TagOutOfWindow {
                tag: absolute,
                window: "executor",
            });
        }
        for &(sweep_b, tag_b) in tags_in_window
            .iter()
            .skip(k + 1)
            .take(in_flight.saturating_sub(1))
        {
            if tag_a == tag_b {
                out.push(Violation::SweepTagCollision {
                    sweep_a,
                    sweep_b,
                    tag: tags::EXECUTOR_BASE + tag_a,
                });
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// 3. Deadlock freedom & SPMD conformance
// ----------------------------------------------------------------------

/// Whether a [`ModelOp`] posts a message or blocks for one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A non-blocking posted send.
    Send,
    /// A blocking receive.
    Recv,
}

/// One modelled point-to-point operation of one rank's program order.
#[derive(Debug, Clone, Copy)]
pub struct ModelOp {
    /// Send or receive.
    pub kind: OpKind,
    /// The peer rank (destination of a send, source of a receive).
    pub peer: usize,
    /// Message identity within the `(src, dst)` pair (a tag or round);
    /// same-key messages match FIFO by position.
    pub key: Tag,
}

/// Check a per-rank operation model for deadlock: sends post without
/// blocking, receives block, and an operation can only be *initiated* once
/// every earlier blocking operation of its rank has completed.  The matched
/// send→recv pairs plus those initiation edges form a bipartite dependence
/// graph; the model is deadlock-free iff it is acyclic (verified with
/// Kahn's algorithm).  `ops[r]` is rank `r`'s program order; `context`
/// labels the [`Violation::UnmatchedMessage`]s of mismatched models.
pub fn check_deadlock_model(ops: &[Vec<ModelOp>], context: &str) -> Vec<Violation> {
    let mut out = Vec::new();

    // Global node numbering.
    let mut base = Vec::with_capacity(ops.len());
    let mut total = 0usize;
    for rank_ops in ops {
        base.push(total);
        total += rank_ops.len();
    }
    let node = |rank: usize, idx: usize| base[rank] + idx;

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indegree = vec![0usize; total];
    let add_edge = |edges: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, a: usize, b: usize| {
        edges[a].push(b);
        indegree[b] += 1;
    };

    // Initiation edges: previous blocking op -> each later op.
    for (rank, rank_ops) in ops.iter().enumerate() {
        let mut last_blocking: Option<usize> = None;
        for (idx, op) in rank_ops.iter().enumerate() {
            if let Some(b) = last_blocking {
                add_edge(&mut edges, &mut indegree, node(rank, b), node(rank, idx));
            }
            if op.kind == OpKind::Recv {
                last_blocking = Some(idx);
            }
        }
    }

    // Matching edges: k-th send with key on (q -> r) enables the k-th recv
    // with the same key on (r from q).
    let mut send_queues: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
    for (rank, rank_ops) in ops.iter().enumerate() {
        for (idx, op) in rank_ops.iter().enumerate() {
            if op.kind == OpKind::Send {
                send_queues
                    .entry((rank, op.peer, op.key))
                    .or_default()
                    .push(node(rank, idx));
            }
        }
    }
    let mut consumed: BTreeMap<(usize, usize, Tag), usize> = BTreeMap::new();
    for (rank, rank_ops) in ops.iter().enumerate() {
        for (idx, op) in rank_ops.iter().enumerate() {
            if op.kind == OpKind::Recv {
                let key = (op.peer, rank, op.key);
                let pos = consumed.entry(key).or_insert(0);
                match send_queues.get(&key).and_then(|q| q.get(*pos)) {
                    Some(&send_node) => {
                        add_edge(&mut edges, &mut indegree, send_node, node(rank, idx));
                        *pos += 1;
                    }
                    None => out.push(Violation::UnmatchedMessage {
                        from: op.peer,
                        to: rank,
                        label: format!("{context} recv key {:#x} #{pos}", op.key),
                    }),
                }
            }
        }
    }
    for (key, queue) in &send_queues {
        let used = consumed.get(key).copied().unwrap_or(0);
        for _ in used..queue.len() {
            out.push(Violation::UnmatchedMessage {
                from: key.0,
                to: key.1,
                label: format!("{context} send key {:#x} (never received)", key.2),
            });
        }
    }

    // Kahn's algorithm.
    let mut queue: Vec<usize> = (0..total).filter(|&n| indegree[n] == 0).collect();
    let mut seen = 0usize;
    while let Some(n) = queue.pop() {
        seen += 1;
        for &m in &edges[n] {
            indegree[m] -= 1;
            if indegree[m] == 0 {
                queue.push(m);
            }
        }
    }
    if seen != total {
        let mut events = Vec::new();
        'outer: for (rank, rank_ops) in ops.iter().enumerate() {
            for (idx, op) in rank_ops.iter().enumerate() {
                if indegree[node(rank, idx)] > 0 {
                    let verb = match op.kind {
                        OpKind::Send => "send to",
                        OpKind::Recv => "recv from",
                    };
                    events.push(format!("rank {rank} {verb} {}", op.peer));
                    if events.len() >= 12 {
                        events.push("...".to_string());
                        break 'outer;
                    }
                }
            }
        }
        out.push(Violation::DeadlockCycle { events });
    }
    out
}

/// Model the binomial-tree allreduce's per-rank send/recv rounds (the same
/// rank-local predicates `Process::allreduce` uses, keyed by the same
/// [`tags`]) and prove the rounds deadlock-free for every rank count up to
/// `max_p`.
pub fn check_collective_deadlock(max_p: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    for p in 1..=max_p {
        out.extend(check_deadlock_model(&model_allreduce_ops(p), "allreduce"));
    }
    out
}

/// Per-rank send/recv sequence of one `Process::allreduce` at `p` ranks,
/// mirroring the implementation's rank-local predicates and tag derivation.
fn model_allreduce_ops(p: usize) -> Vec<Vec<ModelOp>> {
    let mut ops: Vec<Vec<ModelOp>> = vec![Vec::new(); p];
    for (me, rank_ops) in ops.iter_mut().enumerate() {
        // Reduce phase.
        let mut stride = 1usize;
        let mut round = 0u32;
        while stride < p {
            if me & (2 * stride - 1) == stride {
                rank_ops.push(ModelOp {
                    kind: OpKind::Send,
                    peer: me - stride,
                    key: tags::tree_reduce_tag(round),
                });
                break;
            }
            if me & (2 * stride - 1) == 0 && me + stride < p {
                rank_ops.push(ModelOp {
                    kind: OpKind::Recv,
                    peer: me + stride,
                    key: tags::tree_reduce_tag(round),
                });
            }
            stride <<= 1;
            round += 1;
        }
        // Broadcast phase.
        let lowbit = if me == 0 {
            p.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        if me != 0 {
            rank_ops.push(ModelOp {
                kind: OpKind::Recv,
                peer: me - lowbit,
                key: tags::tree_bcast_tag(lowbit.trailing_zeros()),
            });
        }
        let mut s = lowbit >> 1;
        while s >= 1 {
            if me + s < p {
                rank_ops.push(ModelOp {
                    kind: OpKind::Send,
                    peer: me + s,
                    key: tags::tree_bcast_tag(s.trailing_zeros()),
                });
            }
            s >>= 1;
        }
    }
    ops
}

/// Verify collective call sequences are rank-invariant: every rank must
/// have issued the same collectives in the same order (the SPMD contract —
/// code that branches on the rank id around an `allreduce` hangs a real
/// machine).  `traces[r]` is rank `r`'s recorded sequence
/// ([`Session::collective_trace`]).
///
/// [`Session::collective_trace`]: crate::session::Session::collective_trace
pub fn check_collective_sequence(traces: &[Vec<CollectiveCall>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(reference) = traces.first() else {
        return out;
    };
    for (rank, trace) in traces.iter().enumerate().skip(1) {
        let len = reference.len().max(trace.len());
        for position in 0..len {
            let expected = reference.get(position).copied();
            let found = trace.get(position).copied();
            if expected != found {
                out.push(Violation::DivergentCollectives {
                    rank,
                    position,
                    reference: expected,
                    found,
                });
                break; // one divergence per rank is diagnosis enough
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// 4. Determinism-contract conformance
// ----------------------------------------------------------------------

/// An order-sensitive [`ReduceOp`] whose accumulator is a Merkle-style hash
/// of the bracketing tree: `combine(a, b)` mixes its operands
/// asymmetrically, so *any* deviation in combine order, operand order, or
/// tree shape changes the final hash.  Running this op through the real
/// reduction pipeline and comparing against `tree_combine_partials`' replay
/// pins the determinism contract down exactly.
#[derive(Debug, Clone, Copy)]
pub struct BracketHash;

/// SplitMix64 finaliser: a cheap, well-distributed 64-bit mixer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The leaf hash rank `r` contributes to a bracket-hash reduction.
pub fn bracket_leaf(rank: usize) -> u64 {
    mix64(rank as u64 ^ 0x6b61_6c69_2d76_6572) // "kali-ver"
}

impl ReduceOp for BracketHash {
    type Input = u64;
    type Acc = u64;
    fn identity() -> u64 {
        0
    }
    fn lift(v: u64) -> u64 {
        v
    }
    fn combine(a: u64, b: u64) -> u64 {
        // Asymmetric on purpose: combine(a, b) != combine(b, a), and the
        // mix is non-associative, so the hash encodes the full bracketing.
        mix64(
            a.wrapping_mul(0x100000001b3)
                .wrapping_add(mix64(b ^ 0x5bd1e995)),
        )
    }
    fn name() -> &'static str {
        "bracket-hash"
    }
}

/// Simulate the allreduce protocol's message rounds at `p` ranks over
/// [`BracketHash`] leaves, returning each rank's final value — or the
/// violation describing where the protocol model lost a message.
fn simulate_allreduce_hash(p: usize) -> Result<Vec<u64>, Violation> {
    let mut acc: Vec<u64> = (0..p).map(bracket_leaf).collect();
    if p == 1 {
        return Ok(acc);
    }
    // Reduce phase, executed round by round machine-wide; `done[r]` marks a
    // rank that sent its partial up the tree and left the loop.
    let mut done = vec![false; p];
    let mut stride = 1usize;
    while stride < p {
        let mut mailbox: Vec<Option<u64>> = vec![None; p];
        for me in 0..p {
            if !done[me] && me & (2 * stride - 1) == stride {
                mailbox[me - stride] = Some(acc[me]);
                done[me] = true;
            }
        }
        for me in 0..p {
            if !done[me] && me & (2 * stride - 1) == 0 && me + stride < p {
                match mailbox[me].take() {
                    Some(other) => acc[me] = BracketHash::combine(acc[me], other),
                    None => {
                        return Err(Violation::UnmatchedMessage {
                            from: me + stride,
                            to: me,
                            label: format!("allreduce reduce round, stride {stride}"),
                        })
                    }
                }
            }
        }
        stride <<= 1;
    }
    // Broadcast phase: rank 0 holds the total; each rank receives over the
    // edge it reduced along, then forwards to its subtree.  Ascending rank
    // order is a valid schedule because every broadcast sender is smaller
    // than its receiver.
    let mut mail: BTreeMap<usize, u64> = BTreeMap::new();
    let mut finals = vec![0u64; p];
    for (me, slot) in finals.iter_mut().enumerate() {
        let lowbit = if me == 0 {
            p.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let v = if me == 0 {
            acc[0]
        } else {
            match mail.remove(&me) {
                Some(v) => v,
                None => {
                    return Err(Violation::UnmatchedMessage {
                        from: me - lowbit,
                        to: me,
                        label: "allreduce broadcast".to_string(),
                    })
                }
            }
        };
        let mut s = lowbit >> 1;
        while s >= 1 {
            if me + s < p {
                mail.insert(me + s, v);
            }
            s >>= 1;
        }
        *slot = v;
    }
    Ok(finals)
}

/// Prove determinism-contract conformance for every rank count up to
/// `max_p`: the allreduce protocol's bracketing (simulated from the
/// per-rank predicates) must equal `tree_combine_partials`' replay, and the
/// exposed [`tree_merge_order`] must describe exactly that bracketing —
/// all compared via the order-sensitive [`BracketHash`].
pub fn check_reduce_bracketing(max_p: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    for p in 1..=max_p {
        let leaves: Vec<u64> = (0..p).map(bracket_leaf).collect();
        let expected = tree_combine_partials::<BracketHash>(leaves.clone());

        // The exposed merge order must replay to the same hash.
        let mut v = leaves.clone();
        for (dst, src) in tree_merge_order(p) {
            v[dst] = BracketHash::combine(v[dst], v[src]);
        }
        if v[0] != expected {
            out.push(Violation::BracketingMismatch {
                nprocs: p,
                rank: None,
                expected,
                found: v[0],
            });
        }

        // The protocol simulation must deliver that hash to every rank.
        match simulate_allreduce_hash(p) {
            Err(v) => out.push(v),
            Ok(finals) => {
                for (rank, &found) in finals.iter().enumerate() {
                    if found != expected {
                        out.push(Violation::BracketingMismatch {
                            nprocs: p,
                            rank: Some(rank),
                            expected,
                            found,
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::{DimDist, IndexRange, IndexSet};

    /// A consistent 2-rank schedule pair: rank 0 receives [8,10) from rank
    /// 1; rank 1 receives [6,8) from rank 0.
    fn sample_pair() -> Vec<CommSchedule> {
        let mut s0 = CommSchedule::from_recv_sets(
            0,
            &[IndexSet::new(), IndexSet::from_range(8, 10)],
            vec![0, 1, 2],
            vec![6, 7],
        );
        s0.set_send_records(vec![RangeRecord {
            from_proc: 0,
            to_proc: 1,
            low: 6,
            high: 8,
            buffer: 0,
        }]);
        let mut s1 = CommSchedule::from_recv_sets(
            1,
            &[IndexSet::from_range(6, 8), IndexSet::new()],
            vec![12, 13],
            vec![8, 9],
        );
        s1.set_send_records(vec![RangeRecord {
            from_proc: 1,
            to_proc: 0,
            low: 8,
            high: 10,
            buffer: 0,
        }]);
        vec![s0, s1]
    }

    #[test]
    fn consistent_schedules_pass_every_check() {
        let set = sample_pair();
        assert_eq!(check_schedule_set(&set), vec![]);
        for s in &set {
            assert_eq!(check_schedule(s), vec![]);
        }
    }

    #[test]
    fn dangling_recv_is_reported() {
        let mut set = sample_pair();
        let extra = RangeRecord {
            from_proc: 1,
            to_proc: 0,
            low: 20,
            high: 22,
            buffer: set[0].recv_len,
        };
        set[0].recv_records.push(extra);
        set[0].recv_len += 2;
        let violations = check_schedule_set(&set);
        assert!(
            violations.iter().any(
                |v| matches!(v, Violation::DanglingRecv { rank: 0, record } if record.low == 20)
            ),
            "expected DanglingRecv, got: {violations:?}"
        );
    }

    #[test]
    fn dangling_send_is_reported() {
        let mut set = sample_pair();
        set[1].recv_records.clear();
        set[1].recv_len = 0;
        let violations = check_schedule_set(&set);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::DanglingSend { rank: 0, .. })),
            "expected DanglingSend, got: {violations:?}"
        );
    }

    #[test]
    fn byte_count_mismatch_is_reported() {
        let mut set = sample_pair();
        set[0].send_records[0].high = 9; // sender now offers [6,9), receiver expects [6,8)
        let violations = check_schedule_set(&set);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::ByteCountMismatch {
                    from: 0,
                    to: 1,
                    low: 6,
                    recv_high: 8,
                    send_high: 9
                }
            )),
            "expected ByteCountMismatch, got: {violations:?}"
        );
    }

    #[test]
    fn non_dense_layout_is_reported() {
        let mut set = sample_pair();
        set[0].recv_records[0].buffer += 3;
        let violations = check_schedule(&set[0]);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::NonDenseRecvLayout { rank: 0, .. })),
            "expected NonDenseRecvLayout, got: {violations:?}"
        );
    }

    #[test]
    fn overlapping_recv_ranges_are_reported() {
        // Two senders claiming overlapping global ranges, each dense.
        let s = CommSchedule::from_recv_sets(
            0,
            &[
                IndexSet::new(),
                IndexSet::from_range(5, 9),
                IndexSet::from_ranges([IndexRange::new(7, 11)]),
            ],
            vec![],
            vec![0],
        );
        let violations = check_schedule(&s);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::OverlappingRecvRanges { rank: 0, .. })),
            "expected OverlappingRecvRanges, got: {violations:?}"
        );
    }

    #[test]
    fn plan_refs_catch_unresolvable_and_misclassified_references() {
        let set = sample_pair();
        let dist = DimDist::block(12, 2);
        // Consistent refs pass.
        let ok = check_plan_refs(&set[0], dist.as_dyn(), |i, out| {
            if i < 6 {
                out.push(i); // local iterations touch owned elements
            } else {
                out.push(i + 2); // nonlocal iterations touch the received [8,10)
            }
        });
        assert_eq!(ok, vec![]);
        // A nonlocal ref the schedule never planned for.
        let bad = check_plan_refs(&set[0], dist.as_dyn(), |i, out| {
            if i == 7 {
                out.push(11);
            }
        });
        assert!(
            bad.iter().any(|v| matches!(
                v,
                Violation::UnresolvableRef {
                    rank: 0,
                    iter: 7,
                    global: 11
                }
            )),
            "expected UnresolvableRef, got: {bad:?}"
        );
        // A "local" iteration referencing a nonlocal element.
        let bad = check_plan_refs(&set[0], dist.as_dyn(), |i, out| {
            if i == 2 {
                out.push(9);
            }
        });
        assert!(
            bad.iter().any(|v| matches!(
                v,
                Violation::LocalIterNonlocalRef {
                    rank: 0,
                    iter: 2,
                    global: 9
                }
            )),
            "expected LocalIterNonlocalRef, got: {bad:?}"
        );
    }

    #[test]
    fn tag_windows_are_disjoint_and_sweep_wrap_is_safe() {
        assert_eq!(check_tag_windows(), vec![]);
        assert_eq!(check_sweep_tag_wrap(1), vec![]);
        assert_eq!(check_sweep_tag_wrap(64), vec![]);
        // More in-flight sweeps than the window holds must be rejected.
        let violations = check_sweep_tag_wrap(tags::SPAN as usize + 1);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::SweepTagCollision { .. })),
            "expected SweepTagCollision, got: {violations:?}"
        );
    }

    #[test]
    fn tree_collective_rounds_are_deadlock_free() {
        assert_eq!(check_collective_deadlock(33), vec![]);
    }

    #[test]
    fn deadlock_model_flags_a_recv_before_send_cycle() {
        // Two ranks that each recv before sending: the classic head-to-head
        // deadlock.
        let ops = vec![
            vec![
                ModelOp {
                    kind: OpKind::Recv,
                    peer: 1,
                    key: 0,
                },
                ModelOp {
                    kind: OpKind::Send,
                    peer: 1,
                    key: 0,
                },
            ],
            vec![
                ModelOp {
                    kind: OpKind::Recv,
                    peer: 0,
                    key: 0,
                },
                ModelOp {
                    kind: OpKind::Send,
                    peer: 0,
                    key: 0,
                },
            ],
        ];
        let violations = check_deadlock_model(&ops, "test");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::DeadlockCycle { .. })),
            "expected DeadlockCycle, got: {violations:?}"
        );
    }

    #[test]
    fn collective_sequences_must_be_rank_invariant() {
        let sum = CollectiveCall {
            op: "sum-f64",
            acc_bytes: 8,
        };
        let norm = CollectiveCall {
            op: "norm2",
            acc_bytes: 8,
        };
        assert_eq!(
            check_collective_sequence(&[vec![sum, norm], vec![sum, norm]]),
            vec![]
        );
        let violations = check_collective_sequence(&[vec![sum, norm], vec![sum, sum]]);
        assert_eq!(
            violations,
            vec![Violation::DivergentCollectives {
                rank: 1,
                position: 1,
                reference: Some(norm),
                found: Some(sum),
            }]
        );
        // Length divergence (a rank skipping a collective) is caught too.
        let violations = check_collective_sequence(&[vec![sum, norm], vec![sum]]);
        assert!(matches!(
            violations[0],
            Violation::DivergentCollectives {
                rank: 1,
                position: 1,
                found: None,
                ..
            }
        ));
    }

    #[test]
    fn reduce_bracketing_matches_the_replay_order() {
        assert_eq!(check_reduce_bracketing(64), vec![]);
    }

    #[test]
    fn bracket_hash_is_order_sensitive() {
        let (a, b, c) = (bracket_leaf(0), bracket_leaf(1), bracket_leaf(2));
        assert_ne!(BracketHash::combine(a, b), BracketHash::combine(b, a));
        assert_ne!(
            BracketHash::combine(BracketHash::combine(a, b), c),
            BracketHash::combine(a, BracketHash::combine(b, c))
        );
    }

    #[test]
    fn violations_render_readably() {
        let v = vec![
            Violation::DanglingRecv {
                rank: 3,
                record: RangeRecord {
                    from_proc: 1,
                    to_proc: 3,
                    low: 10,
                    high: 12,
                    buffer: 0,
                },
            },
            Violation::TagWindowOverlap {
                a: "executor",
                b: "halo",
            },
        ];
        let text = render(&v);
        assert!(text.contains("rank 3"));
        assert!(text.contains("no matching send"));
        assert!(text.contains("'executor'"));
    }
}
