//! The executor: carry out one execution of a `forall` under a schedule.
//!
//! Figure 3 of the paper gives the structure generated for every `forall`:
//!
//! ```text
//! -- Send messages to other processors
//! for each q with out(p,q) ≠ ∅:  send(q, out(p,q))
//! -- Do local iterations
//! for each i ∈ exec(p) ∩ ref(p): …A[g(i)]…
//! -- Receive messages from other processors
//! for each q with in(p,q) ≠ ∅:   tmp[in(p,q)] := recv(q)
//! -- Do nonlocal iterations
//! for each i ∈ exec(p) − ref(p): …tmp[g(i)]…
//! ```
//!
//! Doing the local iterations *between* the sends and the receives overlaps
//! communication with computation; the received elements live in a
//! communication buffer addressed through the binary-searchable range
//! records of the [`CommSchedule`].

use distrib::Distribution;

use crate::process::{tags, Process, Tag};
use crate::schedule::CommSchedule;

/// Knobs for the executor, mostly used by the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Overlap communication with the local iterations (the paper's code
    /// shape).  When `false`, messages are received immediately after they
    /// are sent and the local iterations run afterwards.
    pub overlap: bool,
    /// Tag offset distinguishing successive executions (sweep number).
    pub tag: Tag,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            overlap: true,
            tag: 0,
        }
    }
}

impl ExecutorConfig {
    /// Configuration for sweep number `sweep` with overlap enabled.
    ///
    /// Sweep numbers wrap within the executor's tag window
    /// ([`tags::SPAN`]): a long-running program's sweep counter must never
    /// walk the executor tags into an adjacent component's reserved range.
    /// Wrapping is safe because messages between a processor pair with the
    /// same tag are delivered in send order, so two sweeps a full window
    /// apart can never be confused.
    pub fn sweep(sweep: usize) -> Self {
        ExecutorConfig {
            overlap: true,
            tag: (sweep as Tag) % tags::SPAN,
        }
    }

    /// The same configuration with overlap switched as given (the ablation
    /// knob of the paper's executor shape).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }
}

/// Resolves global indices of the referenced array to values, charging the
/// appropriate access costs: local accesses translate the index, nonlocal
/// accesses binary-search the communication buffer (the "search overhead …
/// unique to our system", §4).
pub struct Fetcher<'a, T, P: Process, D: Distribution + ?Sized = dyn Distribution> {
    proc: &'a mut P,
    dist: &'a D,
    rank: usize,
    ranges: usize,
    local_data: &'a [T],
    recv_buf: &'a [T],
    schedule: &'a CommSchedule,
}

impl<'a, T: Copy, P: Process, D: Distribution + ?Sized> Fetcher<'a, T, P, D> {
    /// Fetch the value of global element `g` of the referenced array.
    ///
    /// Panics if `g` is neither owned nor covered by the schedule — that
    /// means the schedule was built for a different reference pattern, which
    /// is a correctness bug (the paper's system would read garbage).
    pub fn fetch(&mut self, g: usize) -> T {
        if self.dist.is_local(self.rank, g) {
            self.proc.charge_local_access();
            self.local_data[self.dist.local_index(g)]
        } else {
            // Look up first, charge after: charging before the lookup would
            // leave the cost counters (and the simulated clock) inflated by
            // an access that never happened when the schedule does not cover
            // `g` and the panic below unwinds.
            let pos = self.schedule.find(g).unwrap_or_else(|| {
                panic!(
                    "global index {g} is neither local to rank {} nor in its receive schedule",
                    self.rank
                )
            });
            self.proc.charge_nonlocal_access(self.ranges);
            self.recv_buf[pos]
        }
    }

    /// True when the element is stored locally (no communication needed).
    pub fn is_local(&self, g: usize) -> bool {
        self.dist.is_local(self.rank, g)
    }

    /// Access the underlying process handle, e.g. to charge the cost of
    /// the loop body's own arithmetic.
    pub fn proc(&mut self) -> &mut P {
        self.proc
    }
}

/// Execute one sweep of a `forall` whose nonlocal data movement is described
/// by `schedule`.
///
/// * `data_dist` / `local_data` — distribution and local storage of the
///   array referenced inside the loop body (the paper's `old_a`).
/// * `body` — the loop body; it receives the global iteration index and a
///   [`Fetcher`] for reading referenced elements.
///
/// Every processor must call this collectively.  Returns the number of
/// iterations executed locally (for reporting).
pub fn execute_sweep<P, D, T, F>(
    proc: &mut P,
    config: ExecutorConfig,
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    mut body: F,
) -> usize
where
    P: Process,
    D: Distribution + ?Sized,
    T: Copy + Send + 'static,
    F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
{
    let rank = proc.rank();
    debug_assert_eq!(
        schedule.rank, rank,
        "schedule belongs to a different processor"
    );
    let tag = tags::executor_tag(config.tag);

    // ---- Send phase --------------------------------------------------------
    for (to_proc, records) in schedule.send_messages() {
        let count: usize = records.iter().map(|r| r.len()).sum();
        let mut payload = Vec::with_capacity(count);
        for record in records {
            for g in record.low..record.high {
                // Gather: translate and read each owned element.
                proc.charge_mem_refs(2);
                payload.push(local_data[data_dist.local_index(g)]);
            }
        }
        proc.send_vec(to_proc, tag, payload);
    }

    if config.overlap {
        // Paper order: local iterations run while messages are in flight.
        run_iters(
            proc,
            &schedule.local_iters,
            schedule,
            data_dist,
            local_data,
            &[],
            &mut body,
        );
        let recv_buf = receive_all(proc, schedule, tag);
        run_iters(
            proc,
            &schedule.nonlocal_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
    } else {
        // Ablation: no overlap — wait for all data first.
        let recv_buf = receive_all(proc, schedule, tag);
        run_iters(
            proc,
            &schedule.local_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
        run_iters(
            proc,
            &schedule.nonlocal_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
    }
    schedule.local_iters.len() + schedule.nonlocal_iters.len()
}

/// Run a list of iterations of the loop body with the given receive buffer.
fn run_iters<P, D, T, F>(
    proc: &mut P,
    iters: &[usize],
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    recv_buf: &[T],
    body: &mut F,
) where
    P: Process,
    D: Distribution + ?Sized,
    T: Copy,
    F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
{
    let rank = schedule.rank;
    for &i in iters {
        proc.charge_loop_iters(1);
        let mut fetcher = Fetcher {
            proc,
            dist: data_dist,
            rank,
            ranges: schedule.range_count(),
            local_data,
            recv_buf,
            schedule,
        };
        body(i, &mut fetcher);
    }
}

/// Receive every scheduled message and scatter it into the communication
/// buffer according to the range records' buffer offsets.
fn receive_all<P, T>(proc: &mut P, schedule: &CommSchedule, tag: Tag) -> Vec<T>
where
    P: Process,
    T: Copy + Send + 'static,
{
    let mut recv_buf: Vec<Option<T>> = vec![None; schedule.recv_len];
    for (from_proc, records) in schedule.recv_messages() {
        let payload: Vec<T> = proc.recv_vec(from_proc, tag);
        let expected: usize = records.iter().map(|r| r.len()).sum();
        assert_eq!(
            payload.len(),
            expected,
            "message from {from_proc} has {} elements, schedule expects {expected}",
            payload.len()
        );
        let mut cursor = 0usize;
        for record in records {
            for k in 0..record.len() {
                proc.charge_mem_refs(2);
                recv_buf[record.buffer + k] = Some(payload[cursor]);
                cursor += 1;
            }
        }
    }
    recv_buf
        .into_iter()
        .map(|v| v.expect("receive buffer slot never filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::{owner_computes_iters, run_inspector};
    use distrib::DimDist;
    use dmsim::{CostModel, Machine};

    /// Distributed array shift (Figure 1): A[i] := A[i+1].
    fn run_shift(nprocs: usize, n: usize, overlap: bool) -> Vec<f64> {
        let machine = Machine::new(nprocs, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            // Local pieces of A, initialised to the global values i*1.0.
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
            let exec = owner_computes_iters(&dist, rank, n - 1);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
            let mut new_a = local_a.clone();
            execute_sweep(
                proc,
                ExecutorConfig { overlap, tag: 0 },
                &schedule,
                &dist,
                &local_a,
                |i, fetch| {
                    let v = fetch.fetch(i + 1);
                    new_a[dist.local_index(i)] = v;
                },
            );
            (rank, new_a)
        });
        // Reassemble the global array.
        let dist = DimDist::block(n, nprocs);
        let mut global = vec![0.0; n];
        for (rank, local) in results {
            for (l, v) in local.into_iter().enumerate() {
                global[dist.global_index(rank, l)] = v;
            }
        }
        global
    }

    #[test]
    fn shift_matches_sequential_semantics() {
        for nprocs in [1, 2, 4, 8] {
            for overlap in [true, false] {
                let n = 64;
                let got = run_shift(nprocs, n, overlap);
                let mut expected: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
                expected[n - 1] = (n - 1) as f64;
                assert_eq!(got, expected, "nprocs={nprocs} overlap={overlap}");
            }
        }
    }

    #[test]
    fn executor_sends_one_message_per_neighbour_pair() {
        let n = 64;
        let nprocs = 4;
        let machine = Machine::new(nprocs, CostModel::ideal());
        let (_, stats) = machine.run_stats(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
            let exec = owner_computes_iters(&dist, rank, n - 1);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
            execute_sweep(
                proc,
                ExecutorConfig::default(),
                &schedule,
                &dist,
                &local_a,
                |_i, fetch| {
                    let _ = fetch.fetch(_i + 1);
                },
            );
        });
        // Inspector: the crystal router sends log2(4) = 2 messages per proc
        // (4*2 = 8).  Executor: 3 boundary messages in total.
        assert_eq!(stats.totals.msgs_sent, 8 + 3);
        // Executor moves exactly 3 halo elements of 8 bytes each.
        let executor_bytes: u64 = 3 * 8;
        assert!(stats.totals.bytes_sent >= executor_bytes);
    }

    #[test]
    fn nonlocal_access_costs_more_than_local_access() {
        let n = 32;
        let run = |cost: CostModel| {
            let machine = Machine::new(2, cost);
            let (_, stats) = machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let rank = proc.rank();
                let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
                let exec = owner_computes_iters(&dist, rank, n - 1);
                let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
                execute_sweep(
                    proc,
                    ExecutorConfig::default(),
                    &schedule,
                    &dist,
                    &local_a,
                    |i, fetch| {
                        let _ = fetch.fetch(i + 1);
                    },
                );
            });
            stats.time
        };
        let ideal = run(CostModel::ideal());
        let ncube = run(CostModel::ncube7());
        assert_eq!(ideal, 0.0);
        assert!(ncube > 0.0);
    }

    /// Single-rank mock backend that meters the charge hooks, for asserting
    /// on the executor's cost accounting without a full machine.
    #[derive(Default)]
    struct MeteredSolo {
        counters: crate::process::Counters,
        nonlocal_charges: u64,
        local_charges: u64,
    }

    impl Process for MeteredSolo {
        fn rank(&self) -> usize {
            0
        }
        fn nprocs(&self) -> usize {
            2 // pretend a peer exists so upper-half indices are nonlocal
        }
        fn send<U: Send + 'static>(&mut self, _dst: usize, _tag: u64, _value: U) {
            panic!("metered solo backend has no peers");
        }
        fn send_vec<U: Send + 'static>(&mut self, _dst: usize, _tag: u64, _values: Vec<U>) {
            panic!("metered solo backend has no peers");
        }
        fn recv<U: Send + 'static>(&mut self, _src: usize, _tag: u64) -> U {
            panic!("metered solo backend has no peers");
        }
        fn barrier(&mut self) {}
        fn exchange<U: Send + 'static>(&mut self, items: Vec<(usize, U)>) -> Vec<U> {
            items.into_iter().map(|(_, v)| v).collect()
        }
        fn allgather<U: Clone + Send + 'static>(&mut self, items: Vec<U>) -> Vec<Vec<U>> {
            vec![items]
        }
        fn allreduce_sum_f64(&mut self, value: f64) -> f64 {
            value
        }
        fn charge_local_access(&mut self) {
            self.local_charges += 1;
        }
        fn charge_nonlocal_access(&mut self, _ranges: usize) {
            self.nonlocal_charges += 1;
            self.counters.nonlocal_refs += 1;
        }
        fn counters(&self) -> crate::process::Counters {
            self.counters
        }
    }

    #[test]
    fn schedule_mismatch_panic_leaves_cost_counters_untouched() {
        // Regression: `Fetcher::fetch` used to charge the nonlocal access
        // *before* checking the schedule covered the index, so the panic
        // path left the counters (and on dmsim the simulated clock)
        // inflated by an access that never happened.
        let dist = DimDist::block(8, 2);
        let empty = CommSchedule::from_recv_sets(0, &[], vec![], vec![]);
        let local_data = [0.0f64; 4];
        let mut proc = MeteredSolo::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut fetcher = Fetcher {
                proc: &mut proc,
                dist: &dist,
                rank: 0,
                ranges: empty.range_count(),
                local_data: &local_data,
                recv_buf: &[],
                schedule: &empty,
            };
            // Global index 6 is owned by the (absent) rank 1 and not in the
            // schedule: the lookup fails and fetch panics.
            fetcher.fetch(6)
        }));
        assert!(result.is_err(), "unscheduled fetch must panic");
        assert_eq!(
            proc.nonlocal_charges, 0,
            "no nonlocal access may be charged on the panic path"
        );
        assert_eq!(proc.counters(), crate::process::Counters::default());
        // Sanity: the same fetcher charges exactly once on a successful path.
        let mut fetcher = Fetcher {
            proc: &mut proc,
            dist: &dist,
            rank: 0,
            ranges: empty.range_count(),
            local_data: &local_data,
            recv_buf: &[],
            schedule: &empty,
        };
        assert_eq!(fetcher.fetch(2), 0.0);
        assert_eq!(proc.local_charges, 1);
        assert_eq!(proc.nonlocal_charges, 0);
    }

    #[test]
    fn sweep_tags_wrap_within_the_executor_window() {
        // Regression: `sweep as Tag` unchecked would let a long run's sweep
        // counter walk the executor tags into the adjacent reserved range
        // (and trip `executor_tag`'s debug assertion).
        let span = tags::SPAN as usize;
        assert_eq!(ExecutorConfig::sweep(0).tag, 0);
        assert_eq!(ExecutorConfig::sweep(span - 1).tag, tags::SPAN - 1);
        assert_eq!(ExecutorConfig::sweep(span).tag, 0, "boundary must wrap");
        assert_eq!(ExecutorConfig::sweep(span + 5).tag, 5);
        // The wrapped tag is always valid input for executor_tag.
        for sweep in [0, span - 1, span, 3 * span + 17] {
            let t = tags::executor_tag(ExecutorConfig::sweep(sweep).tag);
            assert!((tags::EXECUTOR_BASE..tags::EXECUTOR_BASE + tags::SPAN).contains(&t));
        }
        // Overlap builder keeps the tag.
        let c = ExecutorConfig::sweep(7).with_overlap(false);
        assert!(!c.overlap);
        assert_eq!(c.tag, 7);
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn fetching_unscheduled_element_panics() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(8, 2);
            let rank = proc.rank();
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|_| 0.0).collect();
            // Schedule built for the identity pattern (no communication)…
            let exec = owner_computes_iters(&dist, rank, 8);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i));
            // …but the body reaches across the boundary.
            execute_sweep(
                proc,
                ExecutorConfig::default(),
                &schedule,
                &dist,
                &local_a,
                |i, fetch| {
                    let _ = fetch.fetch((i + 4) % 8);
                },
            );
        });
    }
}
