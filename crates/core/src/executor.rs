//! The executor: carry out one execution of a `forall` under a schedule.
//!
//! Figure 3 of the paper gives the structure generated for every `forall`:
//!
//! ```text
//! -- Send messages to other processors
//! for each q with out(p,q) ≠ ∅:  send(q, out(p,q))
//! -- Do local iterations
//! for each i ∈ exec(p) ∩ ref(p): …A[g(i)]…
//! -- Receive messages from other processors
//! for each q with in(p,q) ≠ ∅:   tmp[in(p,q)] := recv(q)
//! -- Do nonlocal iterations
//! for each i ∈ exec(p) − ref(p): …tmp[g(i)]…
//! ```
//!
//! Doing the local iterations *between* the sends and the receives overlaps
//! communication with computation; the received elements live in a
//! communication buffer addressed through the binary-searchable range
//! records of the [`CommSchedule`].

use distrib::Distribution;

use crate::process::trace::EventKind;
use crate::process::{tags, Process, Tag};
use crate::schedule::CommSchedule;

/// Default chunk length (in iterations) for the chunked executor when no
/// explicit chunk size is configured.  Large enough that per-chunk overhead
/// (one result `Vec`, one cost flush) is negligible, small enough that a
/// worker pool load-balances across chunks.
pub const DEFAULT_CHUNK: usize = 2048;

/// Knobs for the executor, mostly used by the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Overlap communication with the local iterations (the paper's code
    /// shape).  When `false`, messages are received immediately after they
    /// are sent and the local iterations run afterwards.
    pub overlap: bool,
    /// Tag offset distinguishing successive executions (sweep number).
    pub tag: Tag,
    /// Intra-rank worker threads for the chunked executor
    /// ([`execute_sweep_chunked`]).  `1` (the default) runs every chunk
    /// inline on the calling thread — no threads are spawned and behaviour
    /// is identical to the scalar path.  Results never depend on this knob.
    pub workers: usize,
    /// Chunk length for the chunked executor, in iterations; `0` (the
    /// default) picks [`DEFAULT_CHUNK`].  Results never depend on this knob
    /// either — only the granularity of work distribution does.
    pub chunk: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            overlap: true,
            tag: 0,
            workers: 1,
            chunk: 0,
        }
    }
}

impl ExecutorConfig {
    /// Configuration for sweep number `sweep` with overlap enabled.
    ///
    /// Sweep numbers wrap within the executor's tag window
    /// ([`tags::SPAN`]): a long-running program's sweep counter must never
    /// walk the executor tags into an adjacent component's reserved range.
    /// Wrapping is safe because messages between a processor pair with the
    /// same tag are delivered in send order, so two sweeps a full window
    /// apart can never be confused.
    pub fn sweep(sweep: usize) -> Self {
        ExecutorConfig {
            tag: (sweep as Tag) % tags::SPAN,
            ..ExecutorConfig::default()
        }
    }

    /// The same configuration with overlap switched as given (the ablation
    /// knob of the paper's executor shape).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// The same configuration with the given intra-rank worker count
    /// (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The same configuration with the given chunk length (`0` = default).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// The chunk length this configuration resolves to.
    pub fn effective_chunk(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            DEFAULT_CHUNK
        }
    }
}

/// Resolves global indices of the referenced array to values, charging the
/// appropriate access costs: local accesses translate the index, nonlocal
/// accesses binary-search the communication buffer (the "search overhead …
/// unique to our system", §4).
pub struct Fetcher<'a, T, P: Process, D: Distribution + ?Sized = dyn Distribution> {
    proc: &'a mut P,
    dist: &'a D,
    rank: usize,
    ranges: usize,
    local_data: &'a [T],
    recv_buf: &'a [T],
    schedule: &'a CommSchedule,
}

impl<'a, T: Copy, P: Process, D: Distribution + ?Sized> Fetcher<'a, T, P, D> {
    /// Fetch the value of global element `g` of the referenced array.
    ///
    /// Panics if `g` is neither owned nor covered by the schedule — that
    /// means the schedule was built for a different reference pattern, which
    /// is a correctness bug (the paper's system would read garbage).
    pub fn fetch(&mut self, g: usize) -> T {
        if self.dist.is_local(self.rank, g) {
            self.proc.charge_local_access();
            self.local_data[self.dist.local_index(g)]
        } else {
            // Look up first, charge after: charging before the lookup would
            // leave the cost counters (and the simulated clock) inflated by
            // an access that never happened when the schedule does not cover
            // `g` and the panic below unwinds.
            let pos = self.schedule.find(g).unwrap_or_else(|| {
                panic!(
                    "global index {g} is neither local to rank {} nor in its receive schedule",
                    self.rank
                )
            });
            self.proc.charge_nonlocal_access(self.ranges);
            self.recv_buf[pos]
        }
    }

    /// True when the element is stored locally (no communication needed).
    pub fn is_local(&self, g: usize) -> bool {
        self.dist.is_local(self.rank, g)
    }

    /// Access the underlying process handle, e.g. to charge the cost of
    /// the loop body's own arithmetic.
    pub fn proc(&mut self) -> &mut P {
        self.proc
    }
}

/// Execute one sweep of a `forall` whose nonlocal data movement is described
/// by `schedule`.
///
/// * `data_dist` / `local_data` — distribution and local storage of the
///   array referenced inside the loop body (the paper's `old_a`).
/// * `body` — the loop body; it receives the global iteration index and a
///   [`Fetcher`] for reading referenced elements.
///
/// Every processor must call this collectively.  Returns the number of
/// iterations executed locally (for reporting).
pub fn execute_sweep<P, D, T, F>(
    proc: &mut P,
    config: ExecutorConfig,
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    mut body: F,
) -> usize
where
    P: Process,
    D: Distribution + ?Sized,
    T: Copy + kali_process::Wire,
    F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
{
    let rank = proc.rank();
    debug_assert_eq!(
        schedule.rank, rank,
        "schedule belongs to a different processor"
    );
    let tag = tags::executor_tag(config.tag);
    send_phase(proc, schedule, data_dist, local_data, tag);

    if config.overlap {
        // Paper order: local iterations run while messages are in flight.
        run_iters(
            proc,
            &schedule.local_iters,
            schedule,
            data_dist,
            local_data,
            &[],
            &mut body,
        );
        let recv_buf = receive_all(proc, schedule, tag);
        run_iters(
            proc,
            &schedule.nonlocal_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
    } else {
        // Ablation: no overlap — wait for all data first.
        let recv_buf = receive_all(proc, schedule, tag);
        run_iters(
            proc,
            &schedule.local_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
        run_iters(
            proc,
            &schedule.nonlocal_iters,
            schedule,
            data_dist,
            local_data,
            &recv_buf,
            &mut body,
        );
    }
    schedule.local_iters.len() + schedule.nonlocal_iters.len()
}

/// Run a list of iterations of the loop body with the given receive buffer.
fn run_iters<P, D, T, F>(
    proc: &mut P,
    iters: &[usize],
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    recv_buf: &[T],
    body: &mut F,
) where
    P: Process,
    D: Distribution + ?Sized,
    T: Copy,
    F: FnMut(usize, &mut Fetcher<'_, T, P, D>),
{
    let rank = schedule.rank;
    for &i in iters {
        proc.charge_loop_iters(1);
        let mut fetcher = Fetcher {
            proc,
            dist: data_dist,
            rank,
            ranges: schedule.range_count(),
            local_data,
            recv_buf,
            schedule,
        };
        body(i, &mut fetcher);
    }
}

/// Gather and send every scheduled outgoing message: one packed contiguous
/// buffer per destination, drawn from the backend's buffer pool
/// ([`Process::acquire_send_buffer`]) so a steady-state sweep allocates
/// nothing on pooling backends.
fn send_phase<P, D, T>(
    proc: &mut P,
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    tag: Tag,
) where
    P: Process,
    D: Distribution + ?Sized,
    T: Copy + kali_process::Wire,
{
    for (to_proc, records) in schedule.send_messages() {
        let count: usize = records.iter().map(|r| r.len()).sum();
        let mut payload = proc.acquire_send_buffer::<T>(count);
        for record in records {
            // Gather: translate and read each owned element (2 memory
            // references apiece, charged in bulk per record).
            proc.charge_mem_refs(2 * record.len());
            for g in record.low..record.high {
                payload.push(local_data[data_dist.local_index(g)]);
            }
        }
        proc.send_packed(to_proc, tag, payload);
    }
}

/// Receive every scheduled message directly into one contiguous
/// communication buffer.
///
/// [`CommSchedule::from_recv_sets`] assigns buffer offsets densely in
/// exactly the order [`CommSchedule::recv_messages`] iterates (ascending
/// sender, ascending `low`), so appending each incoming message lands every
/// element at its record's offset — no per-element scatter, no `Option`
/// intermediary, one allocation per sweep.  A debug-only check verifies the
/// dense-layout contract record by record.
fn receive_all<P, T>(proc: &mut P, schedule: &CommSchedule, tag: Tag) -> Vec<T>
where
    P: Process,
    T: Copy + kali_process::Wire,
{
    debug_assert!(
        schedule.recv_layout_is_dense(),
        "packed receive requires the dense buffer layout from_recv_sets assigns"
    );
    let mut recv_buf: Vec<T> = Vec::with_capacity(schedule.recv_len);
    for (from_proc, records) in schedule.recv_messages() {
        let expected: usize = records.iter().map(|r| r.len()).sum();
        debug_assert_eq!(
            records.first().map(|r| r.buffer),
            Some(recv_buf.len()),
            "message from {from_proc} does not start at the buffer cursor"
        );
        let got = proc.recv_packed_append(from_proc, tag, &mut recv_buf);
        assert_eq!(
            got, expected,
            "message from {from_proc} has {got} elements, schedule expects {expected}"
        );
        // Unpack cost: one translate + one store per element, as before.
        proc.charge_mem_refs(2 * expected);
    }
    debug_assert_eq!(
        recv_buf.len(),
        schedule.recv_len,
        "receive buffer not completely filled"
    );
    recv_buf
}

// ----------------------------------------------------------------------
// Chunked intra-rank parallel execution
// ----------------------------------------------------------------------

/// Cost counters accumulated by one chunk of iterations, merged into the
/// process deterministically after the chunk completes.
///
/// The chunked executor runs loop bodies off the rank's own thread, where no
/// `&mut P` exists; bodies charge into this plain struct instead, and the
/// executor flushes every chunk's counters **in ascending chunk order** at
/// the phase boundary.  The bulk charge hooks repeat the singular ones, so
/// a metering backend's clock sees the same additions as the scalar path —
/// only their grouping changes, never the totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkCosts {
    /// Loop iterations of control overhead.
    pub loop_iters: usize,
    /// Local memory references.
    pub mem_refs: usize,
    /// Floating-point operations.
    pub flops: usize,
    /// Procedure calls.
    pub calls: usize,
    /// Local distributed-array accesses.
    pub local_accesses: usize,
    /// Nonlocal accesses resolved by binary search.
    pub nonlocal_accesses: usize,
}

impl ChunkCosts {
    /// Charge this chunk's accumulated costs to the process.  `ranges` is
    /// the schedule's record count (the `r` of the binary-search cost).
    fn flush_into<P: Process>(&self, proc: &mut P, ranges: usize) {
        proc.charge_loop_iters(self.loop_iters);
        proc.charge_mem_refs(self.mem_refs);
        proc.charge_flops(self.flops);
        proc.charge_calls(self.calls);
        proc.charge_local_accesses(self.local_accesses);
        proc.charge_nonlocal_accesses(ranges, self.nonlocal_accesses);
    }
}

/// The chunked twin of [`Fetcher`]: resolves global indices to values for a
/// loop body running inside a chunk, **without** a process handle.
///
/// Access costs (and any body arithmetic charged through the `charge_*`
/// methods) accumulate in a per-chunk [`ChunkCosts`] that the executor
/// merges deterministically afterwards, so the same body produces the same
/// accounting at any worker count.
pub struct ChunkFetcher<'a, T, D: Distribution + ?Sized = dyn Distribution> {
    dist: &'a D,
    rank: usize,
    local_data: &'a [T],
    recv_buf: &'a [T],
    schedule: &'a CommSchedule,
    /// Chunk-local schedule window: the `(low, high, buffer)` receive
    /// record hit by the most recent nonlocal reference.  Stencil chunks
    /// touch long runs of consecutive ghost elements, so the common case
    /// resolves inside this window with two compares and an add; the
    /// schedule's `O(log r)` binary search runs only when a reference
    /// leaves the window.  Starts empty (`high == 0` matches nothing) and
    /// never escapes the chunk, so results and cost accounting are
    /// identical at every `(workers, chunk)` setting.
    window: (usize, usize, usize),
    costs: ChunkCosts,
}

impl<'a, T: Copy, D: Distribution + ?Sized> ChunkFetcher<'a, T, D> {
    /// Fetch the value of global element `g` of the referenced array.
    ///
    /// Panics if `g` is neither owned nor covered by the schedule, exactly
    /// like [`Fetcher::fetch`]; the panic propagates to the calling rank
    /// when the worker scope joins, and the chunk's costs are discarded
    /// unflushed (nothing is charged for work that never completed).
    pub fn fetch(&mut self, g: usize) -> T {
        if self.dist.is_local(self.rank, g) {
            self.costs.local_accesses += 1;
            self.local_data[self.dist.local_index(g)]
        } else {
            let (low, high, buffer) = self.window;
            let pos = if g >= low && g < high {
                buffer + (g - low)
            } else {
                let record = self.schedule.find_record(g).unwrap_or_else(|| {
                    panic!(
                        "global index {g} is neither local to rank {} nor in its receive schedule",
                        self.rank
                    )
                });
                self.window = record;
                record.2 + (g - record.0)
            };
            self.costs.nonlocal_accesses += 1;
            self.recv_buf[pos]
        }
    }

    /// True when the element is stored locally (no communication needed).
    pub fn is_local(&self, g: usize) -> bool {
        self.dist.is_local(self.rank, g)
    }

    /// Charge `n` floating-point operations to this chunk.
    pub fn charge_flops(&mut self, n: usize) {
        self.costs.flops += n;
    }

    /// Charge `n` local memory references to this chunk.
    pub fn charge_mem_refs(&mut self, n: usize) {
        self.costs.mem_refs += n;
    }

    /// Charge `n` loop iterations of control overhead to this chunk.
    pub fn charge_loop_iters(&mut self, n: usize) {
        self.costs.loop_iters += n;
    }

    /// Charge `n` procedure calls to this chunk.
    pub fn charge_calls(&mut self, n: usize) {
        self.costs.calls += n;
    }
}

/// Run one phase's iteration list in fixed-boundary chunks on the worker
/// pool, returning each chunk's body values and accumulated costs in
/// ascending chunk order.
#[allow(clippy::too_many_arguments)]
fn run_chunked_phase<D, T, V, F>(
    iters: &[usize],
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    recv_buf: &[T],
    workers: usize,
    chunk: usize,
    body: &F,
) -> Vec<(Vec<V>, ChunkCosts)>
where
    D: Distribution + ?Sized + Sync,
    T: Copy + Sync,
    V: Send,
    F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> V + Sync,
{
    let bounds = crate::pool::chunk_bounds(iters.len(), chunk);
    crate::pool::run_chunks(workers, bounds.len(), |ci| {
        let (start, end) = bounds[ci];
        let mut fetcher = ChunkFetcher {
            dist: data_dist,
            rank: schedule.rank,
            local_data,
            recv_buf,
            schedule,
            window: (0, 0, 0),
            costs: ChunkCosts::default(),
        };
        let mut values = Vec::with_capacity(end - start);
        for &i in &iters[start..end] {
            fetcher.costs.loop_iters += 1;
            values.push(body(i, &mut fetcher));
        }
        (values, fetcher.costs)
    })
}

/// Merge one phase's chunk results back on the rank's thread: flush each
/// chunk's costs, then hand each `(iteration, value)` pair to `sink`, both
/// in ascending chunk (and therefore ascending iteration) order.
fn apply_chunk_results<P, V, W>(
    proc: &mut P,
    ranges: usize,
    iters: &[usize],
    results: Vec<(Vec<V>, ChunkCosts)>,
    sink: &mut W,
) where
    P: Process,
    W: FnMut(usize, V),
{
    let mut cursor = 0usize;
    for (values, costs) in results {
        costs.flush_into(proc, ranges);
        for value in values {
            sink(iters[cursor], value);
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, iters.len(), "every iteration produced a value");
}

/// Execute one sweep of a `forall` with the **chunked intra-rank parallel
/// executor**.
///
/// The communication structure is identical to [`execute_sweep`] (send,
/// local iterations, receive, nonlocal iterations — Figure 3 of the paper);
/// the difference is how an iteration list runs: it is split into
/// deterministic fixed-boundary chunks ([`ExecutorConfig::chunk`]) executed
/// on up to [`ExecutorConfig::workers`] threads via
/// [`crate::pool::run_chunks`].
///
/// Determinism contract:
///
/// * `body` is a **read-only view** of the sweep: `Fn` (not `FnMut`),
///   fetching through a [`ChunkFetcher`]; it returns one value per
///   iteration instead of writing in place.
/// * All writes happen on the calling thread through `sink(i, value)`,
///   invoked in ascending iteration order within each phase.
/// * Per-chunk cost counters merge in ascending chunk order, so metered
///   totals match the scalar path at every `(workers, chunk)` setting.
///
/// Consequently results and counters are a function of the schedule and the
/// body alone — never of the worker count or chunk size.
///
/// Returns the number of iterations executed locally.
pub fn execute_sweep_chunked<P, D, T, V, F, W>(
    proc: &mut P,
    config: ExecutorConfig,
    schedule: &CommSchedule,
    data_dist: &D,
    local_data: &[T],
    body: F,
    mut sink: W,
) -> usize
where
    P: Process,
    D: Distribution + ?Sized + Sync,
    T: Copy + Sync + kali_process::Wire,
    V: Send,
    F: Fn(usize, &mut ChunkFetcher<'_, T, D>) -> V + Sync,
    W: FnMut(usize, V),
{
    let rank = proc.rank();
    debug_assert_eq!(
        schedule.rank, rank,
        "schedule belongs to a different processor"
    );
    let tag = tags::executor_tag(config.tag);
    let workers = config.workers.max(1);
    let chunk = config.effective_chunk();
    let ranges = schedule.range_count();
    send_phase(proc, schedule, data_dist, local_data, tag);

    let run_phase = |proc: &mut P, phase: usize, iters: &[usize], recv_buf: &[T], sink: &mut W| {
        if proc.trace_active() {
            // One claim per chunk, recorded on the rank's thread before the
            // pool runs: the trace analyzer proves the claims of a phase
            // cover disjoint iteration positions (the sink's exclusivity).
            for (start, end) in crate::pool::chunk_bounds(iters.len(), chunk) {
                proc.trace_emit(EventKind::ChunkClaim {
                    sweep: config.tag,
                    phase,
                    low: start,
                    high: end,
                });
            }
        }
        let results = run_chunked_phase(
            iters, schedule, data_dist, local_data, recv_buf, workers, chunk, &body,
        );
        apply_chunk_results(proc, ranges, iters, results, sink);
    };

    if config.overlap {
        // Paper order: local iterations run while messages are in flight.
        run_phase(proc, 0, &schedule.local_iters, &[], &mut sink);
        let recv_buf = receive_all(proc, schedule, tag);
        run_phase(proc, 1, &schedule.nonlocal_iters, &recv_buf, &mut sink);
    } else {
        let recv_buf = receive_all(proc, schedule, tag);
        run_phase(proc, 0, &schedule.local_iters, &recv_buf, &mut sink);
        run_phase(proc, 1, &schedule.nonlocal_iters, &recv_buf, &mut sink);
    }
    schedule.local_iters.len() + schedule.nonlocal_iters.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::{owner_computes_iters, run_inspector};
    use distrib::DimDist;
    use dmsim::{CostModel, Machine};

    /// Strip the pending-queue high-water mark before comparing counter
    /// totals: queue occupancy is a thread-scheduling observation, not a
    /// metered cost, so it sits outside the knob-independence contract.
    fn masked(c: crate::process::Counters) -> crate::process::Counters {
        crate::process::Counters { queue_peak: 0, ..c }
    }

    /// Distributed array shift (Figure 1): A[i] := A[i+1].
    fn run_shift(nprocs: usize, n: usize, overlap: bool) -> Vec<f64> {
        let machine = Machine::new(nprocs, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            // Local pieces of A, initialised to the global values i*1.0.
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
            let exec = owner_computes_iters(&dist, rank, n - 1);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
            let mut new_a = local_a.clone();
            execute_sweep(
                proc,
                ExecutorConfig::default().with_overlap(overlap),
                &schedule,
                &dist,
                &local_a,
                |i, fetch| {
                    let v = fetch.fetch(i + 1);
                    new_a[dist.local_index(i)] = v;
                },
            );
            (rank, new_a)
        });
        // Reassemble the global array.
        let dist = DimDist::block(n, nprocs);
        let mut global = vec![0.0; n];
        for (rank, local) in results {
            for (l, v) in local.into_iter().enumerate() {
                global[dist.global_index(rank, l)] = v;
            }
        }
        global
    }

    #[test]
    fn shift_matches_sequential_semantics() {
        for nprocs in [1, 2, 4, 8] {
            for overlap in [true, false] {
                let n = 64;
                let got = run_shift(nprocs, n, overlap);
                let mut expected: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
                expected[n - 1] = (n - 1) as f64;
                assert_eq!(got, expected, "nprocs={nprocs} overlap={overlap}");
            }
        }
    }

    #[test]
    fn executor_sends_one_message_per_neighbour_pair() {
        let n = 64;
        let nprocs = 4;
        let machine = Machine::new(nprocs, CostModel::ideal());
        let (_, stats) = machine.run_stats(|proc| {
            let dist = DimDist::block(n, proc.nprocs());
            let rank = proc.rank();
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
            let exec = owner_computes_iters(&dist, rank, n - 1);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
            execute_sweep(
                proc,
                ExecutorConfig::default(),
                &schedule,
                &dist,
                &local_a,
                |_i, fetch| {
                    let _ = fetch.fetch(_i + 1);
                },
            );
        });
        // Inspector: the crystal router sends log2(4) = 2 messages per proc
        // (4*2 = 8).  Executor: 3 boundary messages in total.
        assert_eq!(stats.totals.msgs_sent, 8 + 3);
        // Executor moves exactly 3 halo elements of 8 bytes each.
        let executor_bytes: u64 = 3 * 8;
        assert!(stats.totals.bytes_sent >= executor_bytes);
    }

    #[test]
    fn nonlocal_access_costs_more_than_local_access() {
        let n = 32;
        let run = |cost: CostModel| {
            let machine = Machine::new(2, cost);
            let (_, stats) = machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let rank = proc.rank();
                let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
                let exec = owner_computes_iters(&dist, rank, n - 1);
                let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
                execute_sweep(
                    proc,
                    ExecutorConfig::default(),
                    &schedule,
                    &dist,
                    &local_a,
                    |i, fetch| {
                        let _ = fetch.fetch(i + 1);
                    },
                );
            });
            stats.time
        };
        let ideal = run(CostModel::ideal());
        let ncube = run(CostModel::ncube7());
        assert_eq!(ideal, 0.0);
        assert!(ncube > 0.0);
    }

    /// Single-rank mock backend that meters the charge hooks, for asserting
    /// on the executor's cost accounting without a full machine.
    #[derive(Default)]
    struct MeteredSolo {
        counters: crate::process::Counters,
        nonlocal_charges: u64,
        local_charges: u64,
    }

    impl Process for MeteredSolo {
        fn rank(&self) -> usize {
            0
        }
        fn nprocs(&self) -> usize {
            2 // pretend a peer exists so upper-half indices are nonlocal
        }
        fn send<U: kali_process::Wire>(&mut self, _dst: usize, _tag: u64, _value: U) {
            panic!("metered solo backend has no peers");
        }
        fn send_vec<U: kali_process::Wire>(&mut self, _dst: usize, _tag: u64, _values: Vec<U>) {
            panic!("metered solo backend has no peers");
        }
        fn recv<U: kali_process::Wire>(&mut self, _src: usize, _tag: u64) -> U {
            panic!("metered solo backend has no peers");
        }
        fn barrier(&mut self) {}
        fn exchange<U: kali_process::Wire>(&mut self, items: Vec<(usize, U)>) -> Vec<U> {
            items.into_iter().map(|(_, v)| v).collect()
        }
        fn allgather<U: Clone + kali_process::Wire>(&mut self, items: Vec<U>) -> Vec<Vec<U>> {
            vec![items]
        }
        fn charge_local_access(&mut self) {
            self.local_charges += 1;
        }
        fn charge_nonlocal_access(&mut self, _ranges: usize) {
            self.nonlocal_charges += 1;
            self.counters.nonlocal_refs += 1;
        }
        fn counters(&self) -> crate::process::Counters {
            self.counters
        }
    }

    #[test]
    fn schedule_mismatch_panic_leaves_cost_counters_untouched() {
        // Regression: `Fetcher::fetch` used to charge the nonlocal access
        // *before* checking the schedule covered the index, so the panic
        // path left the counters (and on dmsim the simulated clock)
        // inflated by an access that never happened.
        let dist = DimDist::block(8, 2);
        let empty = CommSchedule::from_recv_sets(0, &[], vec![], vec![]);
        let local_data = [0.0f64; 4];
        let mut proc = MeteredSolo::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut fetcher = Fetcher {
                proc: &mut proc,
                dist: &dist,
                rank: 0,
                ranges: empty.range_count(),
                local_data: &local_data,
                recv_buf: &[],
                schedule: &empty,
            };
            // Global index 6 is owned by the (absent) rank 1 and not in the
            // schedule: the lookup fails and fetch panics.
            fetcher.fetch(6)
        }));
        assert!(result.is_err(), "unscheduled fetch must panic");
        assert_eq!(
            proc.nonlocal_charges, 0,
            "no nonlocal access may be charged on the panic path"
        );
        assert_eq!(proc.counters(), crate::process::Counters::default());
        // Sanity: the same fetcher charges exactly once on a successful path.
        let mut fetcher = Fetcher {
            proc: &mut proc,
            dist: &dist,
            rank: 0,
            ranges: empty.range_count(),
            local_data: &local_data,
            recv_buf: &[],
            schedule: &empty,
        };
        assert_eq!(fetcher.fetch(2), 0.0);
        assert_eq!(proc.local_charges, 1);
        assert_eq!(proc.nonlocal_charges, 0);
    }

    #[test]
    fn chunk_fetcher_window_agrees_with_the_schedule_search() {
        // The chunk-local window is a pure cache: hits, misses, window
        // switches and re-entries must all return exactly what a fresh
        // `CommSchedule::find` returns, and every nonlocal fetch must be
        // counted regardless of which path resolved it.
        use distrib::IndexSet;
        let dist = DimDist::block(8, 2); // rank 0 owns 0..4; 4..8 nonlocal
        let recv_sets = vec![IndexSet::new(), IndexSet::from_range(4, 8)];
        let schedule = CommSchedule::from_recv_sets(0, &recv_sets, vec![], vec![]);
        let local_data = [0.5f64, 1.5, 2.5, 3.5];
        let recv_buf = [40.0f64, 50.0, 60.0, 70.0];
        let mut fetcher = ChunkFetcher {
            dist: &dist,
            rank: 0,
            local_data: &local_data,
            recv_buf: &recv_buf,
            schedule: &schedule,
            window: (0, 0, 0),
            costs: ChunkCosts::default(),
        };
        // Interleave local hits, the first nonlocal miss (seeds the
        // window), in-window runs, and repeats after leaving the window.
        let pattern = [4usize, 5, 6, 1, 7, 4, 0, 6];
        let mut nonlocal = 0;
        for &g in &pattern {
            let expected = match schedule.find(g) {
                Some(pos) => {
                    nonlocal += 1;
                    recv_buf[pos]
                }
                None => local_data[dist.local_index(g)],
            };
            assert_eq!(fetcher.fetch(g).to_bits(), expected.to_bits());
        }
        assert_eq!(fetcher.costs.nonlocal_accesses, nonlocal);
        assert_eq!(fetcher.costs.local_accesses, pattern.len() - nonlocal);
        // The window now covers the receive range; an out-of-schedule
        // index still panics instead of resolving through stale state.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fetcher.fetch(9)));
        assert!(result.is_err(), "index 9 is outside the schedule");
    }

    #[test]
    fn sweep_tags_wrap_within_the_executor_window() {
        // Regression: `sweep as Tag` unchecked would let a long run's sweep
        // counter walk the executor tags into the adjacent reserved range
        // (and trip `executor_tag`'s debug assertion).
        let span = tags::SPAN as usize;
        assert_eq!(ExecutorConfig::sweep(0).tag, 0);
        assert_eq!(ExecutorConfig::sweep(span - 1).tag, tags::SPAN - 1);
        assert_eq!(ExecutorConfig::sweep(span).tag, 0, "boundary must wrap");
        assert_eq!(ExecutorConfig::sweep(span + 5).tag, 5);
        // The wrapped tag is always valid input for executor_tag.
        for sweep in [0, span - 1, span, 3 * span + 17] {
            let t = tags::executor_tag(ExecutorConfig::sweep(sweep).tag);
            assert!((tags::EXECUTOR_BASE..tags::EXECUTOR_BASE + tags::SPAN).contains(&t));
        }
        // Overlap builder keeps the tag.
        let c = ExecutorConfig::sweep(7).with_overlap(false);
        assert!(!c.overlap);
        assert_eq!(c.tag, 7);
    }

    /// The shift of Figure 1 on the chunked executor: any worker count and
    /// chunk size must reproduce the scalar path bit for bit, including the
    /// metered counters.
    #[test]
    fn chunked_shift_matches_scalar_at_any_workers_and_chunk() {
        let n = 64;
        let nprocs = 4;
        let run = |workers: usize, chunk: usize, chunked: bool| {
            let machine = Machine::new(nprocs, CostModel::ncube7());
            machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let rank = proc.rank();
                let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
                let exec = owner_computes_iters(&dist, rank, n - 1);
                let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
                let mut new_a = local_a.clone();
                if chunked {
                    execute_sweep_chunked(
                        proc,
                        ExecutorConfig::default()
                            .with_workers(workers)
                            .with_chunk(chunk),
                        &schedule,
                        &dist,
                        &local_a,
                        |i, fetch| fetch.fetch(i + 1),
                        |i, v| new_a[dist.local_index(i)] = v,
                    );
                } else {
                    execute_sweep(
                        proc,
                        ExecutorConfig::default(),
                        &schedule,
                        &dist,
                        &local_a,
                        |i, fetch| {
                            let v = fetch.fetch(i + 1);
                            new_a[dist.local_index(i)] = v;
                        },
                    );
                }
                new_a
            })
        };
        let (scalar_vals, scalar_stats) = run(1, 0, false);
        for workers in [1usize, 2, 4] {
            for chunk in [0usize, 1, 3, 7, 1024] {
                let (vals, stats) = run(workers, chunk, true);
                assert_eq!(vals, scalar_vals, "workers={workers} chunk={chunk}");
                assert_eq!(
                    masked(stats.totals),
                    masked(scalar_stats.totals),
                    "counters diverged at workers={workers} chunk={chunk}"
                );
            }
        }
    }

    /// Body charges through the `ChunkFetcher` merge into the process in
    /// chunk order, matching an equivalent scalar body charging directly.
    #[test]
    fn chunk_costs_merge_to_the_scalar_totals() {
        let n = 40;
        let run = |chunked: bool| {
            let machine = Machine::new(2, CostModel::ncube7());
            let (_, stats) = machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let rank = proc.rank();
                let local_a: Vec<f64> = dist.local_set(rank).iter().map(|g| g as f64).collect();
                let exec = owner_computes_iters(&dist, rank, n - 1);
                let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i + 1));
                if chunked {
                    execute_sweep_chunked(
                        proc,
                        ExecutorConfig::default().with_workers(3).with_chunk(4),
                        &schedule,
                        &dist,
                        &local_a,
                        |i, fetch| {
                            fetch.charge_flops(2);
                            fetch.charge_mem_refs(3);
                            fetch.charge_calls(1);
                            fetch.fetch(i + 1)
                        },
                        |_i, _v: f64| {},
                    );
                } else {
                    execute_sweep(
                        proc,
                        ExecutorConfig::default(),
                        &schedule,
                        &dist,
                        &local_a,
                        |i, fetch| {
                            fetch.proc().charge_flops(2);
                            fetch.proc().charge_mem_refs(3);
                            fetch.proc().charge_calls(1);
                            let _ = fetch.fetch(i + 1);
                        },
                    );
                }
            });
            masked(stats.totals)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn chunked_fetch_of_unscheduled_element_panics() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(8, 2);
            let rank = proc.rank();
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|_| 0.0).collect();
            let exec = owner_computes_iters(&dist, rank, 8);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i));
            execute_sweep_chunked(
                proc,
                ExecutorConfig::default().with_workers(2).with_chunk(2),
                &schedule,
                &dist,
                &local_a,
                |i, fetch| fetch.fetch((i + 4) % 8),
                |_i, _v: f64| {},
            );
        });
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn fetching_unscheduled_element_panics() {
        let machine = Machine::new(2, CostModel::ideal());
        machine.run(|proc| {
            let dist = DimDist::block(8, 2);
            let rank = proc.rank();
            let local_a: Vec<f64> = dist.local_set(rank).iter().map(|_| 0.0).collect();
            // Schedule built for the identity pattern (no communication)…
            let exec = owner_computes_iters(&dist, rank, 8);
            let schedule = run_inspector(proc, &dist, &exec, |i, refs| refs.push(i));
            // …but the body reaches across the boundary.
            execute_sweep(
                proc,
                ExecutorConfig::default(),
                &schedule,
                &dist,
                &local_a,
                |i, fetch| {
                    let _ = fetch.fetch((i + 4) % 8);
                },
            );
        });
    }
}
