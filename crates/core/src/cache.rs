//! Schedule caching (paper §3.2).
//!
//! "Our run-time analysis takes advantage of this by computing the `exec(p)`
//! and `ref(p)` sets only the first time they are needed and saving them for
//! later loop executions.  This amortizes the cost of the run-time analysis
//! over many repetitions of the forall."
//!
//! A [`ScheduleCache`] is a per-processor map from a [`LoopKey`] to the
//! schedule built by the inspector (or the compile-time analyser).  The key
//! has three parts:
//!
//! * the *loop id* — static identity of the `forall` in the program text;
//! * the *data version* — the paper's observation that the schedule stays
//!   valid only while the data controlling the subscripts (the `adj` array)
//!   is unchanged; bumping the version forces re-inspection;
//! * the *distribution fingerprint* — the identity of the distributions the
//!   schedule was built under.  A schedule is a function of the placement:
//!   after redistributing an array (or swapping the on-clause distribution)
//!   the cached `in`/`out` sets describe the *old* placement, so reusing
//!   them would silently move the wrong elements.  Keying on the
//!   fingerprint makes redistribution invalidate stale schedules without
//!   any explicit bookkeeping by the program.

use std::collections::HashMap;
use std::sync::Arc;

use crate::schedule::CommSchedule;

/// Key identifying one `forall`'s communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopKey {
    /// Static identity of the loop (one per `forall` in the program text).
    pub loop_id: u64,
    /// Version of the run-time data controlling the subscripts.
    pub data_version: u64,
    /// Fingerprint of the distributions the schedule depends on (see
    /// [`distrib::Distribution::fingerprint`]).
    pub dist_fingerprint: u64,
}

impl LoopKey {
    /// Assemble a key from its parts.
    pub fn new(loop_id: u64, data_version: u64, dist_fingerprint: u64) -> Self {
        LoopKey {
            loop_id,
            data_version,
            dist_fingerprint,
        }
    }
}

/// A per-processor cache of communication schedules.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: HashMap<LoopKey, Arc<CommSchedule>>,
    hits: u64,
    misses: u64,
}

impl ScheduleCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the schedule for `key`, building it with `build` on the first
    /// request ("the conditional is only executed once and the results
    /// saved for future executions of the forall").
    ///
    /// The builder typically runs the inspector, which is a *collective*
    /// operation — all processors must therefore miss or hit together, which
    /// they do because they execute the same program on the same versions
    /// and distributions.
    pub fn get_or_build<F>(&mut self, key: LoopKey, build: F) -> Arc<CommSchedule>
    where
        F: FnOnce() -> CommSchedule,
    {
        if let Some(found) = self.map.get(&key) {
            self.hits += 1;
            return Arc::clone(found);
        }
        self.misses += 1;
        let schedule = Arc::new(build());
        self.map.insert(key, Arc::clone(&schedule));
        schedule
    }

    /// Forget every schedule derived from older versions of the given loop
    /// (e.g. after the mesh is adapted).
    pub fn invalidate_loop(&mut self, loop_id: u64) {
        self.map.retain(|k, _| k.loop_id != loop_id);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no schedule is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (inspector executions) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_schedule(rank: usize) -> CommSchedule {
        CommSchedule::from_recv_sets(rank, &[], vec![], vec![])
    }

    #[test]
    fn builds_once_and_reuses() {
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for _sweep in 0..100 {
            let s = cache.get_or_build(LoopKey::new(1, 0, 7), || {
                builds += 1;
                dummy_schedule(3)
            });
            assert_eq!(s.rank, 3);
        }
        assert_eq!(builds, 1, "inspector must run exactly once for 100 sweeps");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 99);
    }

    #[test]
    fn different_loops_and_versions_are_distinct() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 7), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 7), || dummy_schedule(1));
        cache.get_or_build(LoopKey::new(1, 1, 7), || dummy_schedule(2));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        // Same keys hit.
        cache.get_or_build(LoopKey::new(2, 0, 7), || unreachable!("must hit the cache"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn version_bump_forces_reinspection() {
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for version in 0..5u64 {
            for _sweep in 0..10 {
                cache.get_or_build(LoopKey::new(7, version, 7), || {
                    builds += 1;
                    dummy_schedule(0)
                });
            }
        }
        assert_eq!(builds, 5, "one inspector run per adj-array version");
    }

    #[test]
    fn changing_the_distribution_forces_reinspection() {
        // The bug this key field fixes: redistributing an array changes the
        // placement but not the loop id or data version; the cached schedule
        // would silently describe the old placement.
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for fingerprint in [10u64, 20, 10, 20] {
            cache.get_or_build(LoopKey::new(1, 0, fingerprint), || {
                builds += 1;
                dummy_schedule(0)
            });
        }
        assert_eq!(builds, 2, "one build per distinct distribution");
        assert_eq!(cache.hits(), 2, "revisiting a distribution hits its entry");
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 7), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 7), || dummy_schedule(0));
        cache.invalidate_loop(1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
