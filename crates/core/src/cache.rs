//! Schedule caching (paper §3.2).
//!
//! "Our run-time analysis takes advantage of this by computing the `exec(p)`
//! and `ref(p)` sets only the first time they are needed and saving them for
//! later loop executions.  This amortizes the cost of the run-time analysis
//! over many repetitions of the forall."
//!
//! A [`ScheduleCache`] is a per-processor map from a [`LoopKey`] to the
//! schedule built by the inspector (or the compile-time analyser).  The key
//! has three parts:
//!
//! * the *loop id* — static identity of the `forall` in the program text;
//! * the *data version* — the paper's observation that the schedule stays
//!   valid only while the data controlling the subscripts (the `adj` array)
//!   is unchanged; bumping the version forces re-inspection;
//! * the *distribution fingerprint* — the identity of the distributions the
//!   schedule was built under.  A schedule is a function of the placement:
//!   after redistributing an array (or swapping the on-clause distribution)
//!   the cached `in`/`out` sets describe the *old* placement, so reusing
//!   them would silently move the wrong elements.  Keying on the
//!   fingerprint makes redistribution invalidate stale schedules without
//!   any explicit bookkeeping by the program.
//!
//! ## Bounded residency and self-invalidation
//!
//! Under adaptive workloads the key space is open-ended: every mesh
//! adaptation mints a new `data_version`, every rebalancing redistribution a
//! new `dist_fingerprint`.  An unbounded map would retain one dead schedule
//! per (version, fingerprint) ever seen.  The cache therefore
//!
//! * holds at most [`ScheduleCache::capacity`] entries, evicting the least
//!   recently used schedule when a build would exceed the bound;
//! * **self-invalidates generations**: inserting a schedule for
//!   `(loop, version v)` evicts every entry of the same loop with a version
//!   `< v` — data versions are monotone, so those can never be requested
//!   again;
//! * exposes explicit reclamation ([`ScheduleCache::invalidate_loop`],
//!   [`ScheduleCache::invalidate_fingerprint`]) for the cases the cache
//!   cannot infer, e.g. a redistribution that permanently retires a
//!   placement;
//! * meters itself: hits, misses, evictions, resident bytes
//!   ([`CommSchedule::approx_bytes`]) and peak resident entries, surfaced
//!   through the solvers' `CommReport`.
//!
//! Eviction decisions depend only on the *sequence of keys* requested —
//! never on per-rank schedule contents — so SPMD ranks, which execute the
//! same program on the same versions and distributions, still hit and miss
//! in lockstep (the inspector is collective; a desynchronised miss would
//! deadlock).

use std::collections::HashMap;
use std::sync::Arc;

use crate::schedule::CommSchedule;

/// Key identifying one `forall`'s communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopKey {
    /// Static identity of the loop (one per `forall` in the program text).
    pub loop_id: u64,
    /// Version of the run-time data controlling the subscripts.
    pub data_version: u64,
    /// Fingerprint of everything else the schedule is a function of: the
    /// distributions it was built under (see
    /// [`distrib::Distribution::fingerprint`]) and, when the key is built by
    /// `ParallelLoop::cache_key`, the iteration space's own fingerprint —
    /// re-describing a loop id over a different window must never reuse the
    /// old window's schedule.
    pub dist_fingerprint: u64,
}

impl LoopKey {
    /// Assemble a key from its parts.
    pub fn new(loop_id: u64, data_version: u64, dist_fingerprint: u64) -> Self {
        LoopKey {
            loop_id,
            data_version,
            dist_fingerprint,
        }
    }
}

/// Default residency bound: generous for static programs (a handful of
/// `forall`s × a few placements), tight enough that adaptive runs minting
/// unbounded key streams stay bounded.
pub const DEFAULT_CAPACITY: usize = 64;

#[derive(Debug)]
struct Entry {
    schedule: Arc<CommSchedule>,
    /// Logical timestamp of the last hit or the insertion (LRU recency).
    last_use: u64,
    bytes: usize,
}

/// A per-processor cache of communication schedules with a bounded LRU
/// residency and generation self-invalidation (see the module docs).
#[derive(Debug)]
pub struct ScheduleCache {
    map: HashMap<LoopKey, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: usize,
    peak_resident: usize,
}

impl Default for ScheduleCache {
    fn default() -> Self {
        ScheduleCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ScheduleCache {
    /// Create an empty cache with the default residency bound
    /// ([`DEFAULT_CAPACITY`] entries).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty cache holding at most `capacity` schedules (at least
    /// one — a cache that cannot hold the schedule it just built would
    /// defeat the paper's amortisation argument entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        ScheduleCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            resident_bytes: 0,
            peak_resident: 0,
        }
    }

    /// Fetch the schedule for `key`, building it with `build` on the first
    /// request ("the conditional is only executed once and the results
    /// saved for future executions of the forall").
    ///
    /// The builder typically runs the inspector, which is a *collective*
    /// operation — all processors must therefore miss or hit together.
    /// They do, because they execute the same program on the same versions
    /// and distributions **and** because every eviction decision here is a
    /// function of the key sequence alone (capacity, LRU order, generation
    /// eviction), never of rank-local schedule contents.
    ///
    /// On a miss, entries of the same loop with an older `data_version` are
    /// evicted (versions are monotone — stale generations are dead weight),
    /// and if the bound is still exceeded the least recently used entry
    /// goes.
    pub fn get_or_build<F>(&mut self, key: LoopKey, build: F) -> Arc<CommSchedule>
    where
        F: FnOnce() -> CommSchedule,
    {
        self.clock += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_use = self.clock;
            self.hits += 1;
            return Arc::clone(&entry.schedule);
        }
        self.misses += 1;

        // Generation self-invalidation: older data versions of this loop can
        // never be requested again (versions only move forward).
        self.evict_where(|k| k.loop_id == key.loop_id && k.data_version < key.data_version);

        let schedule = Arc::new(build());
        let bytes = schedule.approx_bytes();
        self.map.insert(
            key,
            Entry {
                schedule: Arc::clone(&schedule),
                last_use: self.clock,
                bytes,
            },
        );
        self.resident_bytes += bytes;

        // Residency bound: evict least-recently-used until within capacity.
        // The fresh entry holds the strictly greatest timestamp (the clock
        // ticks once per call), so it is never the minimum while any older
        // entry remains — and `len > capacity >= 1` guarantees one does.
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("cache over capacity cannot be empty");
            self.remove_entry(&victim);
        }
        self.peak_resident = self.peak_resident.max(self.map.len());
        schedule
    }

    fn remove_entry(&mut self, key: &LoopKey) {
        if let Some(e) = self.map.remove(key) {
            self.resident_bytes -= e.bytes;
            self.evictions += 1;
        }
    }

    fn evict_where<F: Fn(&LoopKey) -> bool>(&mut self, stale: F) -> usize {
        let victims: Vec<LoopKey> = self.map.keys().filter(|k| stale(k)).copied().collect();
        for v in &victims {
            self.remove_entry(v);
        }
        victims.len()
    }

    /// Forget every schedule of the given loop (e.g. when the loop itself is
    /// retired).  Returns the number of entries reclaimed; their memory is
    /// released immediately (modulo outstanding `Arc` clones held by
    /// executing sweeps).
    pub fn invalidate_loop(&mut self, loop_id: u64) -> usize {
        self.evict_where(|k| k.loop_id == loop_id)
    }

    /// Forget every schedule built under the given (combined) distribution
    /// fingerprint — the reclamation hook for redistribution: once an array
    /// has moved, schedules describing the old placement are dead weight
    /// unless the program redistributes back.  Returns the number of entries
    /// reclaimed.
    pub fn invalidate_fingerprint(&mut self, dist_fingerprint: u64) -> usize {
        self.evict_where(|k| k.dist_fingerprint == dist_fingerprint)
    }

    /// Drop everything (counts as evictions).
    pub fn clear(&mut self) {
        self.evict_where(|_| true);
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no schedule is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The residency bound (maximum number of cached schedules).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (inspector executions) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries evicted so far (capacity pressure, generation
    /// self-invalidation, and explicit `invalidate_*` calls).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes held by the resident schedules
    /// ([`CommSchedule::approx_bytes`] summed over entries).  A gauge for
    /// reporting only — eviction never consults it (schedule sizes differ
    /// between ranks; decisions based on them would break SPMD lockstep).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Highest number of simultaneously resident schedules seen so far.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// One snapshot of every gauge and counter — what the solvers copy into
    /// their outcome structs (via `Session::stats`) instead of reading six
    /// getters by hand.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_entries: self.map.len(),
            resident_bytes: self.resident_bytes,
            peak_resident: self.peak_resident,
        }
    }
}

/// A point-in-time snapshot of a [`ScheduleCache`]'s meters (see
/// [`ScheduleCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses (inspector executions) so far.
    pub misses: u64,
    /// Entries evicted so far.
    pub evictions: u64,
    /// Schedules currently resident.
    pub resident_entries: usize,
    /// Approximate bytes held by the resident schedules.
    pub resident_bytes: usize,
    /// Highest number of simultaneously resident schedules seen.
    pub peak_resident: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_schedule(rank: usize) -> CommSchedule {
        CommSchedule::from_recv_sets(rank, &[], vec![], vec![])
    }

    #[test]
    fn builds_once_and_reuses() {
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for _sweep in 0..100 {
            let s = cache.get_or_build(LoopKey::new(1, 0, 7), || {
                builds += 1;
                dummy_schedule(3)
            });
            assert_eq!(s.rank, 3);
        }
        assert_eq!(builds, 1, "inspector must run exactly once for 100 sweeps");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 99);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn distinct_loops_and_fingerprints_coexist() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 7), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 7), || dummy_schedule(1));
        cache.get_or_build(LoopKey::new(1, 0, 9), || dummy_schedule(2));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        // Same keys hit.
        cache.get_or_build(LoopKey::new(2, 0, 7), || unreachable!("must hit the cache"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn version_bump_forces_reinspection_and_reclaims_the_stale_generation() {
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for version in 0..5u64 {
            for _sweep in 0..10 {
                cache.get_or_build(LoopKey::new(7, version, 7), || {
                    builds += 1;
                    dummy_schedule(0)
                });
            }
        }
        assert_eq!(builds, 5, "one inspector run per adj-array version");
        // Self-invalidation: each new generation evicts the previous one.
        assert_eq!(cache.len(), 1, "only the newest generation stays resident");
        assert_eq!(cache.evictions(), 4);
    }

    #[test]
    fn generation_eviction_is_per_loop() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 7), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 7), || dummy_schedule(0));
        // Bumping loop 1's version must not touch loop 2's entry.
        cache.get_or_build(LoopKey::new(1, 1, 7), || dummy_schedule(0));
        assert_eq!(cache.len(), 2);
        cache.get_or_build(LoopKey::new(2, 0, 7), || {
            unreachable!("loop 2 must survive")
        });
    }

    #[test]
    fn changing_the_distribution_forces_reinspection() {
        // The bug this key field fixes: redistributing an array changes the
        // placement but not the loop id or data version; the cached schedule
        // would silently describe the old placement.  Same-version entries
        // for different fingerprints coexist (redistributing back must hit).
        let mut cache = ScheduleCache::new();
        let mut builds = 0;
        for fingerprint in [10u64, 20, 10, 20] {
            cache.get_or_build(LoopKey::new(1, 0, fingerprint), || {
                builds += 1;
                dummy_schedule(0)
            });
        }
        assert_eq!(builds, 2, "one build per distinct distribution");
        assert_eq!(cache.hits(), 2, "revisiting a distribution hits its entry");
    }

    #[test]
    fn capacity_bounds_residency_under_an_open_ended_key_stream() {
        // The acceptance criterion: generate > 4x the bound in distinct keys
        // (distinct fingerprints, so generation eviction cannot help) and the
        // resident set must never exceed the configured capacity.
        let bound = 8usize;
        let distinct = 4 * bound + 7;
        let mut cache = ScheduleCache::with_capacity(bound);
        for fp in 0..distinct as u64 {
            cache.get_or_build(LoopKey::new(1, 0, fp), || dummy_schedule(0));
            assert!(
                cache.len() <= bound,
                "resident {} exceeds bound {bound}",
                cache.len()
            );
        }
        assert_eq!(cache.peak_resident(), bound);
        assert_eq!(cache.misses(), distinct as u64);
        assert_eq!(cache.evictions(), (distinct - bound) as u64);
        // Resident bytes track the survivors only.
        let expected: usize = bound * dummy_schedule(0).approx_bytes();
        assert_eq!(cache.resident_bytes(), expected);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = ScheduleCache::with_capacity(2);
        cache.get_or_build(LoopKey::new(1, 0, 1), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(1, 0, 2), || dummy_schedule(0));
        // Touch fingerprint 1 so fingerprint 2 becomes the LRU victim.
        cache.get_or_build(LoopKey::new(1, 0, 1), || unreachable!("must hit"));
        cache.get_or_build(LoopKey::new(1, 0, 3), || dummy_schedule(0));
        assert_eq!(cache.len(), 2);
        cache.get_or_build(LoopKey::new(1, 0, 1), || unreachable!("1 was recent"));
        let mut rebuilt = false;
        cache.get_or_build(LoopKey::new(1, 0, 2), || {
            rebuilt = true;
            dummy_schedule(0)
        });
        assert!(rebuilt, "fingerprint 2 must have been the LRU victim");
    }

    #[test]
    fn capacity_one_keeps_the_freshest_schedule() {
        let mut cache = ScheduleCache::with_capacity(1);
        for fp in 0..5u64 {
            cache.get_or_build(LoopKey::new(1, 0, fp), || dummy_schedule(0));
            assert_eq!(cache.len(), 1);
        }
        // The newest entry is resident, not the oldest.
        cache.get_or_build(LoopKey::new(1, 0, 4), || unreachable!("must hit"));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn invalidate_fingerprint_reclaims_exactly_the_stale_placement() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 10), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 10), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(1, 0, 20), || dummy_schedule(0));
        let bytes_before = cache.resident_bytes();
        assert_eq!(cache.invalidate_fingerprint(10), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() < bytes_before);
        assert_eq!(cache.evictions(), 2);
        // The surviving placement still hits.
        cache.get_or_build(LoopKey::new(1, 0, 20), || unreachable!("must hit"));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = ScheduleCache::new();
        cache.get_or_build(LoopKey::new(1, 0, 7), || dummy_schedule(0));
        cache.get_or_build(LoopKey::new(2, 0, 7), || dummy_schedule(0));
        assert_eq!(cache.invalidate_loop(1), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.evictions(), 2);
    }
}
