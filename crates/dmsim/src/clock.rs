//! Logical clocks and phase timers.
//!
//! Each virtual processor advances a logical clock measured in simulated
//! seconds.  The clock is the quantity reported in every table of the paper;
//! phase timers split it into the named phases the paper reports separately
//! (inspector time, executor time, total time).

use std::collections::BTreeMap;

/// A named break-down of simulated time into phases.
///
/// `PhaseTimer` accumulates *clock deltas*: a phase is entered with the
/// current clock value and left with a later clock value, and the difference
/// is added to that phase's bucket.  Because buckets are keyed by name in a
/// `BTreeMap`, reports are deterministic.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    phases: BTreeMap<String, f64>,
    open: Option<(String, f64)>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a phase at the given clock value.
    ///
    /// Panics if another phase is still open — phases never nest in the
    /// paper's instrumentation and nesting would double-count time.
    pub fn start(&mut self, name: &str, clock: f64) {
        assert!(
            self.open.is_none(),
            "phase '{}' started while '{}' is still open",
            name,
            self.open.as_ref().map(|(n, _)| n.as_str()).unwrap_or("?")
        );
        self.open = Some((name.to_string(), clock));
    }

    /// End the currently open phase at the given clock value and accumulate
    /// the elapsed simulated time into its bucket.
    pub fn stop(&mut self, clock: f64) {
        let (name, start) = self
            .open
            .take()
            .expect("PhaseTimer::stop called with no open phase");
        assert!(
            clock >= start,
            "clock went backwards in phase '{name}': {start} -> {clock}"
        );
        *self.phases.entry(name).or_insert(0.0) += clock - start;
    }

    /// Add an externally measured amount of time to a phase.
    pub fn add(&mut self, name: &str, seconds: f64) {
        *self.phases.entry(name.to_string()).or_insert(0.0) += seconds;
    }

    /// Accumulated time of a phase (0.0 if the phase never ran).
    pub fn get(&self, name: &str) -> f64 {
        self.phases.get(name).copied().unwrap_or(0.0)
    }

    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// Iterate over `(phase name, seconds)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merge another timer into this one by taking, for every phase, the
    /// element-wise **maximum**.  This is how per-processor timers are
    /// reduced into the machine-wide numbers the paper reports (the slowest
    /// processor determines the wall clock).
    pub fn merge_max(&mut self, other: &PhaseTimer) {
        for (name, &v) in &other.phases {
            let slot = self.phases.entry(name.clone()).or_insert(0.0);
            if v > *slot {
                *slot = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_deltas() {
        let mut t = PhaseTimer::new();
        t.start("executor", 1.0);
        t.stop(3.5);
        t.start("executor", 10.0);
        t.stop(11.0);
        t.start("inspector", 11.0);
        t.stop(11.25);
        assert!((t.get("executor") - 3.5).abs() < 1e-12);
        assert!((t.get("inspector") - 0.25).abs() < 1e-12);
        assert!((t.total() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn missing_phase_reads_zero() {
        let t = PhaseTimer::new();
        assert_eq!(t.get("nope"), 0.0);
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_phases_panic() {
        let mut t = PhaseTimer::new();
        t.start("a", 0.0);
        t.start("b", 1.0);
    }

    #[test]
    #[should_panic(expected = "no open phase")]
    fn stop_without_start_panics() {
        let mut t = PhaseTimer::new();
        t.stop(1.0);
    }

    #[test]
    fn merge_max_takes_slowest_processor() {
        let mut a = PhaseTimer::new();
        a.add("executor", 10.0);
        a.add("inspector", 1.0);
        let mut b = PhaseTimer::new();
        b.add("executor", 8.0);
        b.add("inspector", 2.0);
        b.add("extra", 0.5);
        a.merge_max(&b);
        assert_eq!(a.get("executor"), 10.0);
        assert_eq!(a.get("inspector"), 2.0);
        assert_eq!(a.get("extra"), 0.5);
    }

    #[test]
    fn iter_is_sorted_by_name() {
        let mut t = PhaseTimer::new();
        t.add("z", 1.0);
        t.add("a", 2.0);
        t.add("m", 3.0);
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
