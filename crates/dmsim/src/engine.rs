//! The SPMD execution engine.
//!
//! A [`Machine`] runs an SPMD program — one closure instance per virtual
//! processor, each on its own OS thread — and gives every instance a
//! [`Proc`] handle for message passing and cost accounting.
//!
//! ## Timing model
//!
//! Every [`Proc`] owns a logical clock in simulated seconds.
//!
//! * Computation charges (`charge_flops`, `charge_mem_refs`, …) advance the
//!   local clock by amounts taken from the [`CostModel`].
//! * `send` charges the sender's send overhead and stamps the message with
//!   an *arrival time* of `sender clock + latency + bytes·β + hops·hop`.
//! * `recv` sets the receiver's clock to `max(local clock, arrival)` plus the
//!   receive overhead.
//!
//! Because clocks only ever move forward and merging is a `max`, the final
//! clocks are a deterministic function of the program and the cost model —
//! they do not depend on the host's thread scheduling.

use crossbeam::channel::{unbounded, Receiver, Sender};
use kali_process::trace::{EventKind, TraceRecorder};

use crate::cost::CostModel;
use crate::message::{Envelope, Tag};
use crate::stats::{Counters, RunStats};
use crate::topology::Topology;

/// How a processor picks among *matching* buffered messages when a receive
/// could legally complete with more than one of them.
///
/// Only wildcard receives (`recv_any`) ever have a real choice: a receive
/// from a specific source always takes that source's oldest matching
/// message, so per-`(src, tag)` delivery stays FIFO — the invariant the
/// `Process` contract promises and the trace analyzer relies on — under
/// *every* policy.  The non-FIFO policies perturb exactly the freedom a
/// real transport has (which source's message shows up first), which is
/// what the delivery-order model checker sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Arrival order (the default, and the legacy code path).
    Fifo,
    /// Adversarial: prefer the most recently buffered candidate source.
    Lifo,
    /// Seeded pseudo-random choice among candidate sources; the same seed
    /// reproduces the same delivery order.
    Shuffle(u64),
    /// Bounded systematic enumeration: rotate the candidate choice by a
    /// fixed offset, so sweeping `Systematic(0..k)` visits `k` distinct
    /// schedule-respecting delivery orders.
    Systematic(u64),
}

/// A virtual distributed-memory machine: `nprocs` processors connected by a
/// [`Topology`] and timed by a [`CostModel`].
#[derive(Debug, Clone)]
pub struct Machine {
    nprocs: usize,
    topology: Topology,
    cost: CostModel,
    delivery: DeliveryPolicy,
}

impl Machine {
    /// A machine with `nprocs` processors on the smallest enclosing
    /// hypercube (the paper's machines are hypercubes).
    pub fn new(nprocs: usize, cost: CostModel) -> Self {
        assert!(nprocs > 0, "a machine needs at least one processor");
        Machine {
            nprocs,
            topology: Topology::hypercube_for(nprocs),
            cost,
            delivery: DeliveryPolicy::Fifo,
        }
    }

    /// A machine with an explicit topology.  `nprocs` may be smaller than
    /// the number of slots the topology provides.
    pub fn with_topology(nprocs: usize, topology: Topology, cost: CostModel) -> Self {
        assert!(nprocs > 0, "a machine needs at least one processor");
        assert!(
            nprocs <= topology.nodes(),
            "topology provides {} slots but {} processors requested",
            topology.nodes(),
            nprocs
        );
        Machine {
            nprocs,
            topology,
            cost,
            delivery: DeliveryPolicy::Fifo,
        }
    }

    /// The same machine with a different wildcard-receive delivery policy
    /// (builder style; [`Machine::new`] defaults to FIFO).
    pub fn with_delivery(mut self, delivery: DeliveryPolicy) -> Self {
        self.delivery = delivery;
        self
    }

    /// The wildcard-receive delivery policy in effect.
    pub fn delivery(&self) -> DeliveryPolicy {
        self.delivery
    }

    /// Number of virtual processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The machine cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Run an SPMD program: `f` is executed once per processor, in parallel,
    /// and the per-processor return values are collected in rank order.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        self.run_stats(f).0
    }

    /// Like [`Machine::run`] but also returns machine-wide [`RunStats`]
    /// (final clocks, per-processor counters).
    pub fn run_stats<R, F>(&self, f: F) -> (Vec<R>, RunStats)
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        let p = self.nprocs;
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Envelope>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let mut slots: Vec<Option<(R, f64, Counters)>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.iter_mut().enumerate() {
                let rx = rx.take().expect("receiver taken twice");
                let mut senders = senders.clone();
                // Self-sends bypass the channel (they go to the pending
                // buffer), so replace this rank's own sender with a
                // disconnected one — otherwise a blocked receiver would
                // hold its own channel open and the "all peers hung up"
                // fail-fast path could never trigger.
                senders[rank] = unbounded().0;
                let topology = self.topology.clone();
                let cost = self.cost.clone();
                let delivery = self.delivery;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut proc = Proc {
                        rank,
                        nprocs: p,
                        topology,
                        cost,
                        delivery,
                        senders,
                        receiver: rx,
                        pending: Vec::new(),
                        send_seqs: vec![0; p],
                        wildcard_recvs: 0,
                        clock: 0.0,
                        counters: Counters::default(),
                        coll_seq: 0,
                        recorder: TraceRecorder::default(),
                    };
                    let result = f(&mut proc);
                    (rank, result, proc.clock, proc.counters)
                }));
            }
            // Release the parent's sender clones so a receiver blocked on
            // a message that never comes sees a disconnect once its peers
            // exit, instead of hanging the join forever.
            drop(senders);
            for h in handles {
                let (rank, result, clock, counters) = h.join().expect("SPMD worker panicked");
                slots[rank] = Some((result, clock, counters));
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut clocks = Vec::with_capacity(p);
        let mut counters = Vec::with_capacity(p);
        for slot in slots {
            let (r, c, k) = slot.expect("missing worker result");
            results.push(r);
            clocks.push(c);
            counters.push(k);
        }
        let stats = RunStats::from_parts(clocks, counters);
        (results, stats)
    }
}

/// Per-processor handle passed to the SPMD program.
///
/// A `Proc` is the local view of the machine: it knows its own rank, can
/// exchange messages with any other rank, and carries the logical clock and
/// operation counters for its processor.
pub struct Proc {
    rank: usize,
    nprocs: usize,
    topology: Topology,
    cost: CostModel,
    delivery: DeliveryPolicy,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    pending: Vec<Envelope>,
    /// Next per-destination send sequence number (stamped on envelopes).
    send_seqs: Vec<u64>,
    /// Wildcard receives completed so far — the decision counter the
    /// non-FIFO delivery policies key their choices on.
    wildcard_recvs: u64,
    clock: f64,
    counters: Counters,
    /// Monotonic counter used to derive unique tags for collective
    /// operations (all processors call collectives in the same order in an
    /// SPMD program, so the counters stay in lock step).
    coll_seq: u64,
    /// Opt-in execution-trace recorder (driven through the `Process` trace
    /// hooks in `process_impl`).
    pub(crate) recorder: TraceRecorder,
}

impl Proc {
    /// This processor's rank, in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors taking part in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The machine's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current logical clock in simulated seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Operation counters accumulated so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    // ----------------------------------------------------------------
    // Cost charging
    // ----------------------------------------------------------------

    /// Charge `n` floating-point operations.
    pub fn charge_flops(&mut self, n: usize) {
        self.counters.flops += n as u64;
        self.clock += self.cost.flop * n as f64;
    }

    /// Charge `n` local memory references.
    pub fn charge_mem_refs(&mut self, n: usize) {
        self.counters.mem_refs += n as u64;
        self.clock += self.cost.mem_ref * n as f64;
    }

    /// Charge `n` loop iterations of control overhead.
    pub fn charge_loop_iters(&mut self, n: usize) {
        self.counters.loop_iters += n as u64;
        self.clock += self.cost.loop_iter * n as f64;
    }

    /// Charge `n` procedure calls.
    pub fn charge_calls(&mut self, n: usize) {
        self.counters.calls += n as u64;
        self.clock += self.cost.call * n as f64;
    }

    /// Charge an arbitrary amount of simulated time (e.g. a pre-computed
    /// composite cost such as [`CostModel::locality_check`]).
    pub fn charge_seconds(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot charge negative time");
        self.clock += seconds;
    }

    /// Charge one nonlocal distributed-array access resolved by binary
    /// search over `ranges` range records, and count it in the run
    /// statistics (the `nonlocal_refs` column of the locality tables).
    pub fn charge_nonlocal_access(&mut self, ranges: usize) {
        self.counters.nonlocal_refs += 1;
        self.clock += self.cost.nonlocal_access(ranges);
    }

    // ----------------------------------------------------------------
    // Point-to-point messaging
    // ----------------------------------------------------------------

    /// Send a single `Copy` value to `dst` with the given tag.
    pub fn send<T: Copy + Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        self.send_bytes(dst, tag, std::mem::size_of::<T>(), value);
    }

    /// Send an owned vector; the simulated wire size is
    /// `len · size_of::<T>()`.
    pub fn send_vec<T: Send + 'static>(&mut self, dst: usize, tag: Tag, value: Vec<T>) {
        let bytes = value.len() * std::mem::size_of::<T>();
        self.send_bytes(dst, tag, bytes, value);
    }

    /// Send an arbitrary payload with an explicitly specified simulated
    /// wire size in bytes.
    pub fn send_bytes<T: Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: usize, value: T) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        // Sender-side CPU overhead.
        self.clock += self.cost.send_overhead;
        self.counters.msgs_sent += 1;
        self.counters.bytes_sent += bytes as u64;
        let hops = self.topology.hops(self.rank, dst);
        let arrival = if dst == self.rank {
            self.clock
        } else {
            self.clock + self.cost.transfer_time(bytes, hops)
        };
        let seq = self.send_seqs[dst];
        self.send_seqs[dst] += 1;
        let env = Envelope {
            src: self.rank,
            dst,
            tag,
            bytes,
            arrival,
            seq,
            payload: Box::new(value),
        };
        self.recorder
            .record(self.rank, EventKind::Send { dst, tag });
        if dst == self.rank {
            self.buffer_pending(env);
        } else {
            self.senders[dst]
                .send(env)
                .expect("destination processor hung up");
        }
    }

    /// Receive a message with the given tag from a specific source.
    ///
    /// Returns `(src, value)`.  Blocks until a matching message arrives.
    pub fn recv_from<T: 'static>(&mut self, src: usize, tag: Tag) -> (usize, T) {
        self.recv_match(Some(src), tag)
    }

    /// Receive a message with the given tag from any source.
    pub fn recv_any<T: 'static>(&mut self, tag: Tag) -> (usize, T) {
        self.recv_match(None, tag)
    }

    fn recv_match<T: 'static>(&mut self, src: Option<usize>, tag: Tag) -> (usize, T) {
        if self.delivery != DeliveryPolicy::Fifo && src.is_none() {
            return self.recv_match_perturbed(tag);
        }
        // First look in the pending buffer for an already-delivered match.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|e| e.tag == tag && src.is_none_or(|s| e.src == s))
        {
            // Plain remove, not swap_remove: the pending buffer must keep
            // same-(src, tag) messages in arrival order so delivery stays
            // FIFO per (source, tag), as the Process contract promises.
            let env = self.pending.remove(pos);
            return self.complete_recv(src.is_none(), env);
        }
        // Otherwise block on the incoming channel, buffering non-matching
        // messages for later receives.
        loop {
            let env = self
                .receiver
                .recv()
                .expect("all peer processors hung up while waiting for a message");
            if env.tag == tag && src.is_none_or(|s| env.src == s) {
                return self.complete_recv(src.is_none(), env);
            }
            self.buffer_pending(env);
        }
    }

    /// Wildcard receive under a non-FIFO [`DeliveryPolicy`]: drain whatever
    /// already sits in the channel into the pending buffer, then let the
    /// policy pick among the candidate *sources* (each source's candidate is
    /// its oldest matching message, so per-channel FIFO is preserved by
    /// construction).  Blocks for one more envelope and retries whenever no
    /// candidate exists yet.
    fn recv_match_perturbed<T: 'static>(&mut self, tag: Tag) -> (usize, T) {
        loop {
            while let Ok(env) = self.receiver.try_recv() {
                self.buffer_pending(env);
            }
            // One candidate per distinct source: the first matching pending
            // entry in arrival order (== send order per channel).
            let mut candidates: Vec<(usize, usize)> = Vec::new(); // (pos, src)
            for (pos, e) in self.pending.iter().enumerate() {
                if e.tag == tag && !candidates.iter().any(|&(_, s)| s == e.src) {
                    candidates.push((pos, e.src));
                }
            }
            if !candidates.is_empty() {
                let k = self.wildcard_recvs;
                let choice = match self.delivery {
                    DeliveryPolicy::Fifo => 0,
                    DeliveryPolicy::Lifo => candidates.len() - 1,
                    DeliveryPolicy::Shuffle(seed) => {
                        let score = |src: usize| {
                            mix64(seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ src as u64)
                        };
                        candidates
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, &(_, s))| score(s))
                            .map(|(i, _)| i)
                            .expect("candidates checked non-empty")
                    }
                    DeliveryPolicy::Systematic(rot) => {
                        ((rot + k) % candidates.len() as u64) as usize
                    }
                };
                let env = self.pending.remove(candidates[choice].0);
                return self.complete_recv(true, env);
            }
            let env = self
                .receiver
                .recv()
                .expect("all peer processors hung up while waiting for a message");
            self.buffer_pending(env);
        }
    }

    /// Park an envelope in the pending buffer (arrival order preserved) and
    /// keep the queue-depth high-water mark.
    fn buffer_pending(&mut self, env: Envelope) {
        self.pending.push(env);
        self.counters.queue_peak = self.counters.queue_peak.max(self.pending.len() as u64);
    }

    /// Reserve a fresh tag for one collective operation.
    ///
    /// Collective tags live in the upper half of the tag space (see
    /// [`kali_process::tags`]) so they can never collide with user,
    /// executor or redistribution tags.
    pub(crate) fn next_collective_tag(&mut self) -> Tag {
        let tag = kali_process::tags::collective_tag(self.coll_seq);
        self.coll_seq += 1;
        tag
    }

    fn complete_recv<T: 'static>(&mut self, wildcard: bool, env: Envelope) -> (usize, T) {
        if env.arrival > self.clock {
            self.clock = env.arrival;
        }
        self.clock += self.cost.recv_overhead;
        self.counters.msgs_recv += 1;
        self.counters.bytes_recv += env.bytes as u64;
        if wildcard {
            self.wildcard_recvs += 1;
        }
        let src = env.src;
        self.recorder
            .record(self.rank, EventKind::Recv { src, tag: env.tag });
        (src, env.into_payload())
    }
}

/// SplitMix64 finaliser, used to score candidate sources under
/// [`DeliveryPolicy::Shuffle`].
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_proc_runs() {
        let m = Machine::new(1, CostModel::ideal());
        let r = m.run(|p| p.rank() * 10 + p.nprocs());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn ring_shift_delivers_values_in_rank_order() {
        let m = Machine::new(8, CostModel::ideal());
        let r = m.run(|p| {
            let right = (p.rank() + 1) % p.nprocs();
            let left = (p.rank() + p.nprocs() - 1) % p.nprocs();
            p.send(right, 1, p.rank() as u64);
            let (_src, v): (usize, u64) = p.recv_from(left, 1);
            v
        });
        assert_eq!(r, vec![7, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn self_send_is_allowed() {
        let m = Machine::new(2, CostModel::ideal());
        let r = m.run(|p| {
            p.send(p.rank(), 9, 123u32);
            let (src, v): (usize, u32) = p.recv_from(p.rank(), 9);
            assert_eq!(src, p.rank());
            v
        });
        assert_eq!(r, vec![123, 123]);
    }

    #[test]
    fn tags_demultiplex_messages() {
        let m = Machine::new(2, CostModel::ideal());
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.send(1, 10, 100u64);
                p.send(1, 20, 200u64);
                0
            } else {
                // Receive out of order: tag 20 first even though it was sent second.
                let (_, b): (usize, u64) = p.recv_from(0, 20);
                let (_, a): (usize, u64) = p.recv_from(0, 10);
                (b - a) as i64 as usize
            }
        });
        assert_eq!(r[1], 100);
    }

    #[test]
    fn buffered_same_tag_messages_stay_fifo() {
        // Three same-(src, tag) messages parked in the pending buffer by an
        // out-of-order receive must still be delivered in send order.
        let m = Machine::new(2, CostModel::ideal());
        let r = m.run(|p| {
            if p.rank() == 0 {
                for v in [1u64, 2, 3] {
                    p.send(1, 5, v);
                }
                p.send(1, 6, 99u64);
                Vec::new()
            } else {
                let _: (usize, u64) = p.recv_from(0, 6); // buffers the tag-5 messages
                (0..3).map(|_| p.recv_from::<u64>(0, 5).1).collect()
            }
        });
        assert_eq!(r[1], vec![1, 2, 3], "same-(src, tag) delivery must be FIFO");
    }

    #[test]
    fn perturbed_policies_preserve_per_channel_fifo_and_lose_nothing() {
        for policy in [
            DeliveryPolicy::Lifo,
            DeliveryPolicy::Shuffle(42),
            DeliveryPolicy::Shuffle(7),
            DeliveryPolicy::Systematic(1),
            DeliveryPolicy::Systematic(2),
        ] {
            let m = Machine::new(4, CostModel::ideal()).with_delivery(policy);
            let r = m.run(|p| {
                if p.rank() == 0 {
                    let n = (p.nprocs() - 1) * 3;
                    (0..n).map(|_| p.recv_any::<u64>(5)).collect::<Vec<_>>()
                } else {
                    for k in 0..3u64 {
                        p.send(0, 5, p.rank() as u64 * 10 + k);
                    }
                    Vec::new()
                }
            });
            // Per-source delivery must stay FIFO under every policy; the
            // cross-source interleaving is the policy's to choose.
            let got = &r[0];
            assert_eq!(got.len(), 9, "{policy:?}");
            for src in 1..4usize {
                let seq: Vec<u64> = got
                    .iter()
                    .filter(|(s, _)| *s == src)
                    .map(|(_, v)| *v)
                    .collect();
                let expect: Vec<u64> = (0..3).map(|k| src as u64 * 10 + k).collect();
                assert_eq!(seq, expect, "{policy:?}: src {src} not FIFO");
            }
        }
    }

    #[test]
    fn queue_peak_records_pending_high_water() {
        let m = Machine::new(2, CostModel::ideal());
        let (_, stats) = m.run_stats(|p| {
            if p.rank() == 0 {
                for v in [1u64, 2, 3] {
                    p.send(1, 5, v);
                }
                p.send(1, 6, 99u64);
            } else {
                // The tag-6 receive parks all three tag-5 messages.
                let _: (usize, u64) = p.recv_from(0, 6);
                for _ in 0..3 {
                    let _: (usize, u64) = p.recv_from(0, 5);
                }
            }
        });
        assert_eq!(stats.totals.queue_peak, 3);
    }

    #[test]
    fn clocks_reflect_message_latency() {
        let cost = CostModel {
            name: "test",
            msg_latency: 1.0,
            byte: 0.0,
            ..CostModel::ideal()
        };
        let m = Machine::new(2, cost);
        let (_, stats) = m.run_stats(|p| {
            if p.rank() == 0 {
                p.send(1, 0, 1u8);
            } else {
                let _: (usize, u8) = p.recv_from(0, 0);
            }
        });
        // Receiver's clock must include the 1-second latency.
        assert!(stats.clocks[1] >= 1.0);
        assert!(stats.clocks[0] < 1.0);
        assert_eq!(stats.totals.msgs_sent, 1);
        assert_eq!(stats.totals.msgs_recv, 1);
    }

    #[test]
    fn clocks_are_deterministic_across_runs() {
        let cost = CostModel::ncube7();
        let m = Machine::new(8, cost);
        let run = || {
            let (_, stats) = m.run_stats(|p| {
                // Every processor sends its clock-advancing workload and a
                // message to every other processor.
                p.charge_flops(100 * (p.rank() + 1));
                for dst in 0..p.nprocs() {
                    if dst != p.rank() {
                        p.send(dst, 5, p.rank() as u64);
                    }
                }
                for _ in 0..p.nprocs() - 1 {
                    let _: (usize, u64) = p.recv_any(5);
                }
            });
            stats.clocks
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical clocks must not depend on host scheduling");
    }

    #[test]
    fn charges_accumulate_counters_and_time() {
        let m = Machine::new(1, CostModel::ncube7());
        let (_, stats) = m.run_stats(|p| {
            p.charge_flops(10);
            p.charge_mem_refs(20);
            p.charge_loop_iters(5);
            p.charge_calls(2);
        });
        let c = CostModel::ncube7();
        let expected = 10.0 * c.flop + 20.0 * c.mem_ref + 5.0 * c.loop_iter + 2.0 * c.call;
        assert!((stats.time - expected).abs() < 1e-12);
        assert_eq!(stats.totals.flops, 10);
        assert_eq!(stats.totals.mem_refs, 20);
        assert_eq!(stats.totals.loop_iters, 5);
        assert_eq!(stats.totals.calls, 2);
    }

    #[test]
    fn send_vec_charges_payload_bytes() {
        let m = Machine::new(2, CostModel::ideal());
        let (_, stats) = m.run_stats(|p| {
            if p.rank() == 0 {
                p.send_vec(1, 3, vec![0.0f64; 100]);
            } else {
                let (_, v): (usize, Vec<f64>) = p.recv_from(0, 3);
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(stats.totals.bytes_sent, 800);
        assert_eq!(stats.totals.bytes_recv, 800);
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn mismatched_receive_fails_fast_when_peers_exit() {
        // Rank 1 waits for a message rank 0 never sends; once rank 0 exits
        // the channel disconnects and the recv fails instead of hanging.
        let m = Machine::new(2, CostModel::ideal());
        m.run(|p| {
            if p.rank() == 1 {
                let _: (usize, u64) = p.recv_from(0, 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "SPMD worker panicked")]
    fn send_out_of_range_panics() {
        let m = Machine::new(2, CostModel::ideal());
        m.run(|p| {
            if p.rank() == 0 {
                p.send(5, 0, 1u8);
            }
        });
    }

    #[test]
    fn with_topology_checks_capacity() {
        let m = Machine::with_topology(3, Topology::Hypercube { dim: 2 }, CostModel::ideal());
        assert_eq!(m.nprocs(), 3);
        assert_eq!(m.topology().nodes(), 4);
    }
}
