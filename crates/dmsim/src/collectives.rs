//! Collective operations built on top of point-to-point messaging.
//!
//! The paper's run-time system needs three collective patterns:
//!
//! * **barrier / reduction** — for convergence tests across sweeps,
//! * **all-to-all personalised exchange** — the inspector must turn its
//!   receive lists (`in(p,q)`) into send lists (`out(p,q) = in(q,p)`), which
//!   the paper does with "a variant of Fox's Crystal router" so that no
//!   processor becomes a bottleneck (§3.3),
//! * **broadcast / allgather** — used when replicated data must be set up.
//!
//! All collectives are SPMD: every processor must call the same collective
//! in the same order.  Each invocation reserves a fresh tag so consecutive
//! collectives can never interfere.

use crate::engine::Proc;

/// Synchronise all processors (dissemination barrier).
///
/// After the call, every processor's clock is at least as large as the time
/// at which the last processor entered the barrier (plus messaging costs).
pub fn barrier(proc: &mut Proc) {
    let tag = proc.next_collective_tag();
    let n = proc.nprocs();
    if n == 1 {
        return;
    }
    let me = proc.rank();
    let mut k = 1usize;
    while k < n {
        let to = (me + k) % n;
        let from = (me + n - k) % n;
        proc.send(to, tag + ((k as u64) << 32), 0u8);
        let _: (usize, u8) = proc.recv_from(from, tag + ((k as u64) << 32));
        k <<= 1;
    }
}

/// All-reduce an arbitrary value with a user-supplied combining function.
///
/// Uses recursive doubling on a hypercube when the processor count is a
/// power of two (the paper's machines), and a gather-to-root + broadcast
/// fallback otherwise.  The combine function must be associative and
/// commutative for the result to be well defined.
pub fn allreduce<T, F>(proc: &mut Proc, value: T, bytes: usize, combine: F) -> T
where
    T: Clone + Send + 'static,
    F: Fn(&T, &T) -> T,
{
    let tag = proc.next_collective_tag();
    let n = proc.nprocs();
    if n == 1 {
        return value;
    }
    let me = proc.rank();
    let mut acc = value;
    if n.is_power_of_two() {
        let dim = n.trailing_zeros();
        for d in 0..dim {
            let partner = me ^ (1usize << d);
            proc.send_bytes(partner, tag + d as u64, bytes, acc.clone());
            let (_, other): (usize, T) = proc.recv_from(partner, tag + d as u64);
            // Combine in a fixed (rank-independent) order so floating-point
            // results are identical on both partners.
            acc = if me < partner {
                combine(&acc, &other)
            } else {
                combine(&other, &acc)
            };
            proc.charge_flops(1);
        }
        acc
    } else {
        // Gather to rank 0, reduce there in rank order, then broadcast.
        if me == 0 {
            let mut partials: Vec<Option<T>> = vec![None; n];
            partials[0] = Some(acc);
            for _ in 1..n {
                let (src, v): (usize, T) = proc.recv_any(tag);
                partials[src] = Some(v);
            }
            let mut acc = partials[0].take().unwrap();
            for p in partials.into_iter().skip(1) {
                acc = combine(&acc, &p.expect("missing partial"));
                proc.charge_flops(1);
            }
            for dst in 1..n {
                proc.send_bytes(dst, tag + 1, bytes, acc.clone());
            }
            acc
        } else {
            proc.send_bytes(0, tag, bytes, acc.clone());
            let (_, v): (usize, T) = proc.recv_from(0, tag + 1);
            acc = v;
            acc
        }
    }
}

/// All-reduce of an `f64` sum.
pub fn allreduce_sum_f64(proc: &mut Proc, value: f64) -> f64 {
    allreduce(proc, value, 8, |a, b| a + b)
}

/// All-reduce of an `f64` maximum.
pub fn allreduce_max_f64(proc: &mut Proc, value: f64) -> f64 {
    allreduce(proc, value, 8, |a, b| a.max(*b))
}

/// All-reduce of a `u64` sum.
pub fn allreduce_sum_u64(proc: &mut Proc, value: u64) -> u64 {
    allreduce(proc, value, 8, |a, b| a + b)
}

/// Logical AND across processors (used for convergence tests).
pub fn allreduce_and(proc: &mut Proc, value: bool) -> bool {
    allreduce(proc, u8::from(value), 1, |a, b| a & b) != 0
}

/// Gather one value from every processor onto every processor.
///
/// The result vector is indexed by rank.
pub fn allgather<T>(proc: &mut Proc, value: T, bytes: usize) -> Vec<T>
where
    T: Clone + Send + 'static,
{
    let tag = proc.next_collective_tag();
    let n = proc.nprocs();
    let me = proc.rank();
    let mut out: Vec<Option<T>> = vec![None; n];
    out[me] = Some(value.clone());
    for dst in 0..n {
        if dst != me {
            proc.send_bytes(dst, tag, bytes, value.clone());
        }
    }
    for _ in 0..n - 1 {
        let (src, v): (usize, T) = proc.recv_any(tag);
        out[src] = Some(v);
    }
    out.into_iter().map(|v| v.expect("missing rank")).collect()
}

/// Broadcast a value from `root` to every processor (binomial tree).
pub fn broadcast<T>(proc: &mut Proc, root: usize, value: Option<T>, bytes: usize) -> T
where
    T: Clone + Send + 'static,
{
    let tag = proc.next_collective_tag();
    let n = proc.nprocs();
    let me = proc.rank();
    // Work in a coordinate system where the root is rank 0.
    let rel = (me + n - root) % n;
    let mut current: Option<T> = if rel == 0 {
        Some(value.expect("broadcast root must supply a value"))
    } else {
        None
    };
    // Binomial tree: in round k, ranks < 2^k that hold the value send it to
    // rank + 2^k (if within range).
    let mut k = 1usize;
    // First, non-root ranks wait to receive.
    if rel != 0 {
        let (_, v): (usize, T) = proc.recv_any(tag);
        current = Some(v);
    }
    // Determine the round in which `rel` receives: position of highest set bit.
    // After receiving, it forwards in all later rounds.
    let start_round = if rel == 0 {
        1usize
    } else {
        // highest power of two <= rel, doubled
        let h = usize::BITS - 1 - rel.leading_zeros();
        1usize << (h + 1)
    };
    k = k.max(start_round);
    let val = current.clone().expect("value must be present by now");
    let mut stride = k;
    while stride < n.next_power_of_two() {
        let dst_rel = rel + stride;
        if rel < stride && dst_rel < n {
            let dst = (dst_rel + root) % n;
            proc.send_bytes(dst, tag, bytes, val.clone());
        }
        stride <<= 1;
    }
    current.expect("broadcast failed to deliver a value")
}

/// One routed item in an all-to-all personalised exchange: `(destination
/// rank, payload)`.
pub type Routed<T> = (usize, T);

/// Fox's crystal router: all-to-all personalised exchange by hypercube
/// dimension exchange.
///
/// Every processor contributes a list of `(destination, item)` pairs and
/// receives the items destined for it.  At stage `d` each processor
/// exchanges, with the partner across hypercube dimension `d`, exactly the
/// items whose destination differs from its own rank in bit `d`.  Each item
/// therefore travels at most `log2(P)` hops and no processor ever holds more
/// than its share of the traffic — the property the paper relies on to avoid
/// bottlenecks.
///
/// In addition to the per-message transfer costs, each stage charges the
/// machine's `router_stage` software overhead (the calibrated cost of the
/// global concatenation step; see [`CostModel`](crate::CostModel)).
///
/// Falls back to [`direct_exchange`] when the processor count is not a power
/// of two.
pub fn crystal_router<T>(proc: &mut Proc, items: Vec<Routed<T>>) -> Vec<T>
where
    T: Send + 'static,
{
    let n = proc.nprocs();
    if !n.is_power_of_two() || n == 1 {
        return direct_exchange(proc, items);
    }
    let tag = proc.next_collective_tag();
    let me = proc.rank();
    let dim = n.trailing_zeros();
    let item_bytes = std::mem::size_of::<Routed<T>>();
    let mut current = items;
    for d in 0..dim {
        let bit = 1usize << d;
        let partner = me ^ bit;
        let (forward, keep): (Vec<Routed<T>>, Vec<Routed<T>>) = current
            .into_iter()
            .partition(|(dst, _)| (dst & bit) != (me & bit));
        // Per-stage software overhead of the global concatenation.
        proc.charge_seconds(proc.cost().router_stage);
        // Handling cost proportional to the records touched this stage.
        let handled = forward.len();
        proc.charge_seconds(proc.cost().record_handling() * handled as f64);
        proc.send_bytes(partner, tag + d as u64, forward.len() * item_bytes, forward);
        let (_, incoming): (usize, Vec<Routed<T>>) = proc.recv_from(partner, tag + d as u64);
        current = keep;
        current.extend(incoming);
    }
    debug_assert!(current.iter().all(|(dst, _)| *dst == me));
    current.into_iter().map(|(_, item)| item).collect()
}

/// Naive all-to-all personalised exchange: every processor sends one message
/// (possibly empty) directly to every other processor.
///
/// This is the baseline the crystal router is compared against in the
/// ablation benchmarks; it is also the fallback for non-power-of-two
/// processor counts.
pub fn direct_exchange<T>(proc: &mut Proc, items: Vec<Routed<T>>) -> Vec<T>
where
    T: Send + 'static,
{
    let tag = proc.next_collective_tag();
    let n = proc.nprocs();
    let me = proc.rank();
    let item_bytes = std::mem::size_of::<T>();
    // Bucket items by destination.
    let mut buckets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (dst, item) in items {
        assert!(dst < n, "routed item addressed to rank {dst} of {n}");
        buckets[dst].push(item);
    }
    let mut mine = std::mem::take(&mut buckets[me]);
    for (dst, bucket) in buckets.into_iter().enumerate() {
        if dst == me {
            continue;
        }
        proc.charge_seconds(proc.cost().record_handling() * bucket.len() as f64);
        proc.send_bytes(dst, tag, bucket.len() * item_bytes, bucket);
    }
    for _ in 0..n - 1 {
        let (_, incoming): (usize, Vec<T>) = proc.recv_any(tag);
        mine.extend(incoming);
    }
    mine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Machine};

    #[test]
    fn barrier_completes_on_various_sizes() {
        for n in [1, 2, 3, 4, 7, 8] {
            let m = Machine::new(n, CostModel::ideal());
            let r = m.run(|p| {
                barrier(p);
                barrier(p);
                p.rank()
            });
            assert_eq!(r.len(), n);
        }
    }

    #[test]
    fn allreduce_sum_matches_sequential_sum() {
        for n in [1, 2, 4, 5, 8, 16] {
            let m = Machine::new(n, CostModel::ideal());
            let r = m.run(|p| allreduce_sum_f64(p, (p.rank() + 1) as f64));
            let expected = (n * (n + 1) / 2) as f64;
            for v in r {
                assert!((v - expected).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn allreduce_max_and_and() {
        let m = Machine::new(8, CostModel::ideal());
        let r = m.run(|p| allreduce_max_f64(p, p.rank() as f64));
        assert!(r.iter().all(|&v| v == 7.0));
        let r = m.run(|p| allreduce_and(p, p.rank() != 3));
        assert!(r.iter().all(|&v| !v));
        let r = m.run(|p| allreduce_and(p, true));
        assert!(r.iter().all(|&v| v));
    }

    #[test]
    fn allreduce_results_identical_on_all_ranks() {
        let m = Machine::new(16, CostModel::ncube7());
        let r = m.run(|p| allreduce_sum_f64(p, 0.1 * (p.rank() as f64 + 1.0)));
        for w in r.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits(), "bitwise identical sums");
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        for n in [1, 3, 4, 8] {
            let m = Machine::new(n, CostModel::ideal());
            let r = m.run(|p| allgather(p, p.rank() as u64 * 10, 8));
            let expected: Vec<u64> = (0..n as u64).map(|r| r * 10).collect();
            for v in r {
                assert_eq!(v, expected);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for n in [1, 2, 4, 5, 8] {
            for root in 0..n {
                let m = Machine::new(n, CostModel::ideal());
                let r = m.run(|p| {
                    let value = if p.rank() == root {
                        Some(42u64 + root as u64)
                    } else {
                        None
                    };
                    broadcast(p, root, value, 8)
                });
                assert!(
                    r.iter().all(|&v| v == 42 + root as u64),
                    "n={n} root={root}"
                );
            }
        }
    }

    #[test]
    fn crystal_router_delivers_all_items_to_their_destinations() {
        for n in [2usize, 4, 8, 16] {
            let m = Machine::new(n, CostModel::ideal());
            let r = m.run(|p| {
                // Every processor sends (me, dst) to every dst including itself.
                let items: Vec<Routed<(usize, usize)>> =
                    (0..p.nprocs()).map(|dst| (dst, (p.rank(), dst))).collect();
                let mut got = crystal_router(p, items);
                got.sort_unstable();
                got
            });
            for (rank, got) in r.into_iter().enumerate() {
                let expected: Vec<(usize, usize)> = (0..n).map(|src| (src, rank)).collect();
                assert_eq!(got, expected, "n={n} rank={rank}");
            }
        }
    }

    #[test]
    fn direct_exchange_matches_crystal_router_contents() {
        let n = 8;
        let m = Machine::new(n, CostModel::ideal());
        let build = |p: &Proc| -> Vec<Routed<u64>> {
            (0..p.nprocs())
                .filter(|&d| d != p.rank())
                .map(|d| (d, (p.rank() * 100 + d) as u64))
                .collect()
        };
        let via_router = m.run(|p| {
            let mut v = crystal_router(p, build(p));
            v.sort_unstable();
            v
        });
        let via_direct = m.run(|p| {
            let mut v = direct_exchange(p, build(p));
            v.sort_unstable();
            v
        });
        assert_eq!(via_router, via_direct);
    }

    #[test]
    fn crystal_router_handles_empty_and_uneven_loads() {
        let m = Machine::new(8, CostModel::ideal());
        let r = m.run(|p| {
            // Only rank 0 sends anything, and everything goes to rank 7.
            let items: Vec<Routed<u32>> = if p.rank() == 0 {
                (0..100).map(|i| (7usize, i)).collect()
            } else {
                Vec::new()
            };
            crystal_router(p, items).len()
        });
        assert_eq!(r[7], 100);
        assert!(r[..7].iter().all(|&len| len == 0));
    }

    #[test]
    fn crystal_router_charges_router_stage_per_dimension() {
        let mut cost = CostModel::ideal();
        cost.router_stage = 1.0;
        let m = Machine::new(8, cost);
        let (_, stats) = m.run_stats(|p| {
            let _ = crystal_router::<u8>(p, Vec::new());
        });
        // 8 processors -> 3 dimensions -> 3 seconds of stage overhead.
        assert!((stats.time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn non_power_of_two_falls_back_to_direct_exchange() {
        let m = Machine::new(6, CostModel::ideal());
        let r = m.run(|p| {
            let items: Vec<Routed<usize>> = (0..p.nprocs()).map(|d| (d, p.rank())).collect();
            let mut got = crystal_router(p, items);
            got.sort_unstable();
            got
        });
        for got in r {
            assert_eq!(got, (0..6).collect::<Vec<_>>());
        }
    }
}
