//! [`Process`] implementation for the simulator's [`Proc`].
//!
//! This is what lets the backend-independent Kali runtime (`kali-core`,
//! `solvers`) run on the simulator: point-to-point messages map onto the
//! engine's timed sends/receives, collectives onto the [`collectives`]
//! module (the inspector's all-to-all becomes the paper's crystal router),
//! and each cost hook charges the corresponding composite price from the
//! machine's [`CostModel`](crate::CostModel) — so the paper-table accounting
//! is exactly what it was when the runtime called the simulator directly.
//!
//! Reductions (`allreduce`, `allreduce_sum_f64`) deliberately stay at the
//! trait's provided binomial-tree implementation: it runs on the timed
//! `send`/`recv` mapped here, so every tree message is charged through the
//! cost model like any other point-to-point traffic, and the bracketing
//! (hence the bits) is identical to the native backend's and the
//! sequential replay's.

use kali_process::trace::{Event, EventKind};
use kali_process::{Counters, Process, Tag};

use crate::collectives;
use crate::engine::Proc;

impl Process for Proc {
    fn rank(&self) -> usize {
        Proc::rank(self)
    }

    fn nprocs(&self) -> usize {
        Proc::nprocs(self)
    }

    fn send<T: Send + 'static>(&mut self, dst: usize, tag: Tag, value: T) {
        self.send_bytes(dst, tag, std::mem::size_of::<T>(), value);
    }

    fn send_vec<T: Send + 'static>(&mut self, dst: usize, tag: Tag, values: Vec<T>) {
        Proc::send_vec(self, dst, tag, values);
    }

    fn recv<T: Send + 'static>(&mut self, src: usize, tag: Tag) -> T {
        let (_, value) = self.recv_from::<T>(src, tag);
        value
    }

    fn barrier(&mut self) {
        self.trace_emit(EventKind::Collective { op: "barrier" });
        collectives::barrier(self);
    }

    fn exchange<T: Send + 'static>(&mut self, items: Vec<(usize, T)>) -> Vec<T> {
        self.trace_emit(EventKind::Collective { op: "exchange" });
        collectives::crystal_router(self, items)
    }

    fn allgather<T: Clone + Send + 'static>(&mut self, items: Vec<T>) -> Vec<Vec<T>> {
        self.trace_emit(EventKind::Collective { op: "allgather" });
        let bytes = items.len() * std::mem::size_of::<T>();
        collectives::allgather(self, items, bytes)
    }

    fn charge_flops(&mut self, n: usize) {
        Proc::charge_flops(self, n);
    }

    fn charge_mem_refs(&mut self, n: usize) {
        Proc::charge_mem_refs(self, n);
    }

    fn charge_loop_iters(&mut self, n: usize) {
        Proc::charge_loop_iters(self, n);
    }

    fn charge_calls(&mut self, n: usize) {
        Proc::charge_calls(self, n);
    }

    fn charge_local_access(&mut self) {
        let cost = self.cost().local_access();
        self.charge_seconds(cost);
    }

    fn charge_nonlocal_access(&mut self, ranges: usize) {
        Proc::charge_nonlocal_access(self, ranges);
    }

    fn charge_locality_check(&mut self) {
        let cost = self.cost().locality_check();
        self.charge_seconds(cost);
    }

    fn charge_record_handling(&mut self, n: usize) {
        let cost = self.cost().record_handling() * n as f64;
        self.charge_seconds(cost);
    }

    fn time(&self) -> f64 {
        self.clock()
    }

    fn counters(&self) -> Counters {
        Proc::counters(self)
    }

    fn trace_start(&mut self) {
        self.recorder.start();
    }

    fn trace_take(&mut self) -> Vec<Event> {
        self.recorder.take()
    }

    fn trace_active(&self) -> bool {
        self.recorder.is_active()
    }

    fn trace_emit(&mut self, kind: EventKind) {
        let rank = Proc::rank(self);
        self.recorder.record(rank, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, Machine};

    /// Exercise the trait surface through a generic function, the way the
    /// runtime layer uses it.
    fn ring_shift<P: Process>(p: &mut P) -> u64 {
        let right = (p.rank() + 1) % p.nprocs();
        let left = (p.rank() + p.nprocs() - 1) % p.nprocs();
        p.send(right, 7, p.rank() as u64);
        let v: u64 = p.recv(left, 7);
        p.barrier();
        v
    }

    #[test]
    fn generic_ring_shift_runs_on_the_simulator() {
        let m = Machine::new(4, CostModel::ideal());
        let r = m.run(ring_shift);
        assert_eq!(r, vec![3, 0, 1, 2]);
    }

    #[test]
    fn trait_collectives_match_direct_collectives() {
        let m = Machine::new(8, CostModel::ideal());
        let sums = m.run(|proc| {
            let via_trait = Process::allreduce_sum_f64(proc, proc.rank() as f64);
            let gathered = Process::allgather(proc, vec![proc.rank() as u64]);
            let exchanged = Process::exchange(
                proc,
                (0..proc.nprocs())
                    .map(|d| (d, proc.rank() as u64))
                    .collect(),
            );
            (via_trait, gathered, exchanged)
        });
        for (rank, (sum, gathered, mut exchanged)) in sums.into_iter().enumerate() {
            assert_eq!(sum, 28.0, "rank {rank}");
            assert_eq!(
                gathered,
                (0..8u64).map(|r| vec![r]).collect::<Vec<_>>(),
                "rank {rank}"
            );
            exchanged.sort_unstable();
            assert_eq!(exchanged, (0..8u64).collect::<Vec<_>>(), "rank {rank}");
        }
    }

    #[test]
    fn cost_hooks_advance_the_simulated_clock() {
        let m = Machine::new(1, CostModel::ncube7());
        let (_, stats) = m.run_stats(|proc| {
            Process::charge_locality_check(proc);
            Process::charge_local_access(proc);
            Process::charge_nonlocal_access(proc, 16);
            Process::charge_record_handling(proc, 3);
        });
        let c = CostModel::ncube7();
        let expected = c.locality_check()
            + c.local_access()
            + c.nonlocal_access(16)
            + 3.0 * c.record_handling();
        assert!((stats.time - expected).abs() < 1e-12);
    }

    #[test]
    fn trait_time_and_counters_mirror_the_engine() {
        let m = Machine::new(1, CostModel::ncube7());
        m.run(|proc| {
            Process::charge_flops(proc, 10);
            assert_eq!(Process::time(proc), proc.clock());
            assert_eq!(Process::counters(proc).flops, 10);
        });
    }
}
