//! # dmsim — a distributed-memory machine simulator
//!
//! This crate provides the *machine substrate* for the Kali reproduction
//! (Koelbel, Mehrotra, Van Rosendale, PPoPP 1990).  The paper ran on two
//! hypercube multicomputers — the NCUBE/7 and the Intel iPSC/2 — which no
//! longer exist.  `dmsim` replaces them with a deterministic simulation:
//!
//! * **SPMD execution.**  A [`Machine`] runs one OS thread per *virtual
//!   processor*.  Each virtual processor owns a [`Proc`] handle through which
//!   it can [`send`](Proc::send), [`recv`](Proc::recv), and participate in
//!   collective operations (barriers, reductions, and the crystal-router
//!   all-to-all used by the paper's inspector).
//! * **Logical clocks.**  Every processor carries a logical clock measured in
//!   *simulated seconds*.  Computation advances the clock through the
//!   [`CostModel`] (per-flop, per-memory-reference, per-loop-iteration and
//!   per-procedure-call charges); messages advance it through the usual
//!   `latency + bytes × per-byte` model plus per-hop routing charges on the
//!   chosen [`Topology`].  Receive operations merge the sender's timestamp,
//!   so the final clocks are a deterministic function of the program and the
//!   cost model, independent of host scheduling.
//! * **Machine presets.**  [`CostModel::ncube7`] and [`CostModel::ipsc2`]
//!   are calibrated so the experiments in the paper land in the same range
//!   and — more importantly — have the same *shape* (scaling curves,
//!   overhead ratios, crossover points).  [`CostModel::ideal`] charges no
//!   communication costs and is useful in tests.
//!
//! The crate is deliberately independent of the Kali analysis layer: it
//! only knows about processors, messages and time.  Everything specific to
//! global name spaces, distributions and inspector/executor analysis lives
//! in the `distrib` and `kali-core` crates.  The one contract shared with
//! that layer is the backend-neutral [`Process`]
//! trait (from `kali-process`), which [`Proc`] implements so the runtime
//! can run SPMD programs on this simulator or on the native threaded
//! backend interchangeably — with the cost accounting preserved here.
//!
//! ## Example
//!
//! ```
//! use dmsim::{Machine, CostModel};
//!
//! // Four virtual processors on an ideal machine: a ring shift.
//! let machine = Machine::new(4, CostModel::ideal());
//! let results = machine.run(|proc| {
//!     let right = (proc.rank() + 1) % proc.nprocs();
//!     let left = (proc.rank() + proc.nprocs() - 1) % proc.nprocs();
//!     proc.send(right, 7, proc.rank() as u64);
//!     let (_, v): (usize, u64) = proc.recv_from(left, 7);
//!     v
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod collectives;
pub mod cost;
pub mod engine;
pub mod message;
mod process_impl;
pub mod stats;
pub mod topology;

pub use clock::PhaseTimer;
pub use cost::CostModel;
pub use engine::{DeliveryPolicy, Machine, Proc};
pub use message::{payload_bytes, Envelope, Tag};
pub use stats::{Counters, RunStats};
pub use topology::Topology;

/// The backend contract [`Proc`] implements (re-exported from
/// `kali-process` for convenience).
pub use kali_process::Process;

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::clock::PhaseTimer;
    pub use crate::collectives;
    pub use crate::cost::CostModel;
    pub use crate::engine::{DeliveryPolicy, Machine, Proc};
    pub use crate::stats::{Counters, RunStats};
    pub use crate::topology::Topology;
}
