//! Interconnect topologies.
//!
//! The paper's machines are binary hypercubes (NCUBE/7 up to 128 nodes,
//! iPSC/2 up to 32 nodes in the experiments).  The simulator also offers a
//! 2-D mesh and a fully-connected network, mostly for tests and for checking
//! that the analysis layer does not silently depend on hypercube structure.

/// Interconnection network shape.
///
/// The topology determines the hop count used for the per-hop component of
/// message cost and the structure of the hypercube collectives (dimension
/// exchange, crystal router).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Binary hypercube of the given dimension (2^dim nodes).
    Hypercube { dim: u32 },
    /// 2-D mesh with the given number of rows and columns, X-Y routed.
    Mesh2D { rows: usize, cols: usize },
    /// Fully connected crossbar (every pair is one hop apart).
    FullyConnected { nodes: usize },
}

impl Topology {
    /// A hypercube just large enough to hold `nodes` processors.
    ///
    /// If `nodes` is a power of two the cube is exact; otherwise the smallest
    /// enclosing cube is used (extra node slots are simply never scheduled).
    pub fn hypercube_for(nodes: usize) -> Self {
        assert!(nodes > 0, "topology must contain at least one node");
        let dim = (nodes as f64).log2().ceil() as u32;
        Topology::Hypercube { dim }
    }

    /// Number of processor slots provided by the topology.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Mesh2D { rows, cols } => rows * cols,
            Topology::FullyConnected { nodes } => nodes,
        }
    }

    /// Hypercube dimension, i.e. `ceil(log2(nodes))`.
    ///
    /// This is the quantity the paper calls "the dimension of the hypercube";
    /// the inspector's global concatenation phase is proportional to it.
    pub fn dimension(&self) -> u32 {
        match *self {
            Topology::Hypercube { dim } => dim,
            _ => {
                let n = self.nodes();
                if n <= 1 {
                    0
                } else {
                    (n as f64).log2().ceil() as u32
                }
            }
        }
    }

    /// Number of network hops between two nodes.
    ///
    /// * Hypercube: Hamming distance of the node ids.
    /// * Mesh: Manhattan distance under X-Y routing.
    /// * Fully connected: 1 for distinct nodes.
    ///
    /// A node is zero hops from itself in every topology.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Hypercube { .. } => (a ^ b).count_ones() as usize,
            Topology::Mesh2D { rows: _, cols } => {
                let (ar, ac) = (a / cols, a % cols);
                let (br, bc) = (b / cols, b % cols);
                ar.abs_diff(br) + ac.abs_diff(bc)
            }
            Topology::FullyConnected { .. } => 1,
        }
    }

    /// Direct neighbors of a node.
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        match *self {
            Topology::Hypercube { dim } => (0..dim).map(|d| node ^ (1usize << d)).collect(),
            Topology::Mesh2D { rows, cols } => {
                let (r, c) = (node / cols, node % cols);
                let mut out = Vec::with_capacity(4);
                if r > 0 {
                    out.push((r - 1) * cols + c);
                }
                if r + 1 < rows {
                    out.push((r + 1) * cols + c);
                }
                if c > 0 {
                    out.push(r * cols + c - 1);
                }
                if c + 1 < cols {
                    out.push(r * cols + c + 1);
                }
                out
            }
            Topology::FullyConnected { nodes } => (0..nodes).filter(|&n| n != node).collect(),
        }
    }

    /// True if the node id is a valid slot in this topology.
    pub fn contains(&self, node: usize) -> bool {
        node < self.nodes()
    }

    /// The binary-reflected Gray code of `i`.
    ///
    /// Gray codes embed rings and meshes into hypercubes so that logically
    /// adjacent processors are physically adjacent; the paper's block
    /// distributions benefit from exactly this embedding.
    pub fn gray_code(i: usize) -> usize {
        i ^ (i >> 1)
    }

    /// Inverse of [`Topology::gray_code`].
    pub fn gray_decode(mut g: usize) -> usize {
        let mut i = g;
        while g > 0 {
            g >>= 1;
            i ^= g;
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_node_count() {
        assert_eq!(Topology::Hypercube { dim: 0 }.nodes(), 1);
        assert_eq!(Topology::Hypercube { dim: 3 }.nodes(), 8);
        assert_eq!(Topology::Hypercube { dim: 7 }.nodes(), 128);
    }

    #[test]
    fn hypercube_for_rounds_up() {
        assert_eq!(Topology::hypercube_for(1).nodes(), 1);
        assert_eq!(Topology::hypercube_for(2).nodes(), 2);
        assert_eq!(Topology::hypercube_for(5).nodes(), 8);
        assert_eq!(Topology::hypercube_for(128).nodes(), 128);
    }

    #[test]
    fn hypercube_hops_is_hamming_distance() {
        let t = Topology::Hypercube { dim: 4 };
        assert_eq!(t.hops(0b0000, 0b0000), 0);
        assert_eq!(t.hops(0b0000, 0b1111), 4);
        assert_eq!(t.hops(0b1010, 0b1001), 2);
    }

    #[test]
    fn hypercube_neighbors_differ_in_one_bit() {
        let t = Topology::Hypercube { dim: 3 };
        let n = t.neighbors(0b101);
        assert_eq!(n.len(), 3);
        for x in n {
            assert_eq!(t.hops(0b101, x), 1);
        }
    }

    #[test]
    fn mesh_hops_is_manhattan() {
        let t = Topology::Mesh2D { rows: 4, cols: 4 };
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(5, 6), 1);
        assert_eq!(t.hops(5, 5), 0);
    }

    #[test]
    fn mesh_neighbors_are_adjacent() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        let corner = t.neighbors(0);
        assert_eq!(corner.len(), 2);
        let center = t.neighbors(4);
        assert_eq!(center.len(), 4);
        for n in center {
            assert_eq!(t.hops(4, n), 1);
        }
    }

    #[test]
    fn fully_connected_is_one_hop() {
        let t = Topology::FullyConnected { nodes: 5 };
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(t.hops(a, b), usize::from(a != b));
            }
        }
    }

    #[test]
    fn gray_code_roundtrip_and_adjacency() {
        for i in 0..256usize {
            assert_eq!(Topology::gray_decode(Topology::gray_code(i)), i);
        }
        // Consecutive Gray codes differ in exactly one bit.
        for i in 0..255usize {
            let a = Topology::gray_code(i);
            let b = Topology::gray_code(i + 1);
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn dimension_matches_log2() {
        assert_eq!(Topology::Hypercube { dim: 5 }.dimension(), 5);
        assert_eq!(Topology::FullyConnected { nodes: 9 }.dimension(), 4);
        assert_eq!(Topology::Mesh2D { rows: 2, cols: 2 }.dimension(), 2);
        assert_eq!(Topology::FullyConnected { nodes: 1 }.dimension(), 0);
    }
}
