//! Message envelopes exchanged between virtual processors.
//!
//! Payloads are type-erased (`Box<dyn Any + Send>`) so that a program can
//! exchange arbitrary `Send + 'static` values — range-record lists, slices of
//! floats, scalars — without the engine having to know about them.  The
//! *simulated* size of a message is tracked separately from its in-memory
//! representation so the cost model can charge realistic byte counts.

use std::any::Any;

/// Message tag, used to match sends with receives (like MPI tags).
pub type Tag = u64;

/// A message in flight between two virtual processors.
#[derive(Debug)]
pub struct Envelope {
    /// Rank of the sending processor.
    pub src: usize,
    /// Rank of the destination processor.
    pub dst: usize,
    /// User-chosen tag; receives match on `(src, tag)`.
    pub tag: Tag,
    /// Simulated payload size in bytes (used by the cost model).
    pub bytes: usize,
    /// Simulated time at which the message is fully available at `dst`.
    pub arrival: f64,
    /// Per-`(src, dst)` send sequence number (0, 1, 2, … in send order).
    /// Lets the engine's perturbed delivery policies and the trace analyzer
    /// reason about send order without trusting buffer positions.
    pub seq: u64,
    /// The actual data.
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// Attempt to downcast the payload to `T`, consuming the envelope.
    ///
    /// Panics with a descriptive message on a type mismatch: a mismatch is a
    /// programming error in the SPMD program (the equivalent of an MPI type
    /// error) and never recoverable.
    pub fn into_payload<T: 'static>(self) -> T {
        *self.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "message payload type mismatch: src={} dst={} tag={} expected {}",
                self.src,
                self.dst,
                self.tag,
                std::any::type_name::<T>()
            )
        })
    }
}

/// Simulated wire size, in bytes, of a slice of `T`.
///
/// This is the number the cost model charges for; it deliberately ignores
/// any headers or padding of the host representation.
pub fn payload_bytes<T>(len: usize) -> usize {
    len * std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let env = Envelope {
            src: 1,
            dst: 2,
            tag: 7,
            bytes: 24,
            arrival: 0.5,
            seq: 0,
            payload: Box::new(vec![1.0f64, 2.0, 3.0]),
        };
        let v: Vec<f64> = env.into_payload();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn downcast_wrong_type_panics() {
        let env = Envelope {
            src: 0,
            dst: 1,
            tag: 0,
            bytes: 8,
            arrival: 0.0,
            seq: 0,
            payload: Box::new(42u64),
        };
        let _: Vec<f64> = env.into_payload();
    }

    #[test]
    fn payload_bytes_counts_element_size() {
        assert_eq!(payload_bytes::<f64>(10), 80);
        assert_eq!(payload_bytes::<u8>(10), 10);
        assert_eq!(payload_bytes::<(u32, u32)>(4), 32);
    }
}
