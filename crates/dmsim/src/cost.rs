//! Machine cost models.
//!
//! The paper reports absolute wall-clock times on an NCUBE/7 and an Intel
//! iPSC/2.  We reproduce those experiments on a simulator, so the numbers we
//! report are *simulated seconds* produced by a per-machine cost model.  The
//! presets below are calibrated so that
//!
//! * the per-node-update compute cost matches the order of magnitude implied
//!   by the paper's 2-processor rows (≈ 300 µs/node on the NCUBE/7,
//!   ≈ 75 µs/node on the iPSC/2 for the 5-point Jacobi kernel),
//! * the iPSC/2 has markedly cheaper small messages and procedure calls than
//!   the NCUBE/7 — the property the paper uses to explain why inspector
//!   overhead is almost invisible on the iPSC, and
//! * the inspector's global-concatenation phase costs an amount proportional
//!   to the hypercube dimension, with a much larger per-dimension constant on
//!   the NCUBE/7 (`router_stage` below), reproducing the U-shaped inspector
//!   time curve of Figure 7.
//!
//! All times are in seconds.

/// Per-operation costs of a simulated machine, in seconds.
///
/// The model has two halves:
///
/// * **Computation** — `flop`, `mem_ref`, `loop_iter`, `call`.  Library code
///   charges these explicitly through [`Proc`](crate::Proc) helpers
///   (`charge_flops`, `charge_mem_refs`, …).
/// * **Communication** — `msg_latency`, `byte`, `hop`, `send_overhead`,
///   `recv_overhead`, plus `router_stage`, the per-hypercube-dimension
///   software overhead of the crystal-router global concatenation used by the
///   inspector (see §3.3 and §4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Human-readable machine name (used in reports).
    pub name: &'static str,
    /// One floating-point operation.
    pub flop: f64,
    /// One local memory reference (load or store through an index).
    pub mem_ref: f64,
    /// Per-iteration loop control overhead.
    pub loop_iter: f64,
    /// One procedure call (the paper blames slow NCUBE calls for the
    /// run-time system's search overhead).
    pub call: f64,
    /// Fixed software + network start-up cost per message.
    pub msg_latency: f64,
    /// Transfer cost per byte.
    pub byte: f64,
    /// Additional cost per network hop beyond the first.
    pub hop: f64,
    /// CPU time consumed on the sender to issue a send.
    pub send_overhead: f64,
    /// CPU time consumed on the receiver to complete a receive.
    pub recv_overhead: f64,
    /// Per-stage (per hypercube dimension) software cost of the global
    /// concatenation / crystal-router exchange used by the inspector.
    pub router_stage: f64,
}

impl CostModel {
    /// NCUBE/7 hypercube (up to 128 nodes in the paper's experiments).
    ///
    /// Slow scalar nodes, expensive procedure calls, expensive small
    /// messages and a very expensive global-combine stage.
    pub fn ncube7() -> Self {
        CostModel {
            name: "NCUBE/7",
            flop: 7.0e-6,
            mem_ref: 5.0e-6,
            loop_iter: 1.4e-5,
            call: 2.4e-5,
            msg_latency: 4.0e-4,
            byte: 2.6e-6,
            hop: 1.0e-5,
            send_overhead: 2.5e-3,
            recv_overhead: 2.5e-3,
            router_stage: 0.19,
        }
    }

    /// Intel iPSC/2 hypercube (up to 32 nodes in the paper's experiments).
    ///
    /// Roughly 4× faster scalar nodes than the NCUBE/7, an order of magnitude
    /// cheaper procedure calls, and much cheaper small messages.
    pub fn ipsc2() -> Self {
        CostModel {
            name: "iPSC/2",
            flop: 2.8e-6,
            mem_ref: 1.3e-6,
            loop_iter: 2.8e-6,
            call: 2.5e-6,
            msg_latency: 3.0e-4,
            byte: 3.6e-7,
            hop: 5.0e-6,
            send_overhead: 2.0e-4,
            recv_overhead: 2.0e-4,
            router_stage: 3.0e-3,
        }
    }

    /// An idealised machine: computation is free and communication is free.
    ///
    /// Useful for functional tests where only message *contents* matter.
    pub fn ideal() -> Self {
        CostModel {
            name: "ideal",
            flop: 0.0,
            mem_ref: 0.0,
            loop_iter: 0.0,
            call: 0.0,
            msg_latency: 0.0,
            byte: 0.0,
            hop: 0.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            router_stage: 0.0,
        }
    }

    /// A generic "modern cluster"-flavoured model: fast compute, relatively
    /// expensive latency.  Used by some extension benchmarks; not part of the
    /// paper's evaluation.
    pub fn cluster() -> Self {
        CostModel {
            name: "cluster",
            flop: 1.0e-9,
            mem_ref: 2.0e-9,
            loop_iter: 1.0e-9,
            call: 5.0e-9,
            msg_latency: 2.0e-6,
            byte: 1.0e-10,
            hop: 1.0e-7,
            send_overhead: 5.0e-7,
            recv_overhead: 5.0e-7,
            router_stage: 1.0e-5,
        }
    }

    /// Transfer time of a message of `bytes` bytes over `hops` hops,
    /// excluding sender/receiver CPU overheads.
    pub fn transfer_time(&self, bytes: usize, hops: usize) -> f64 {
        self.msg_latency + self.byte * bytes as f64 + self.hop * hops.saturating_sub(1) as f64
    }

    /// Cost of the inspector's per-reference locality check: one procedure
    /// call, one loop iteration of control, three memory references (the
    /// indirection array, the owner table/bounds, the list append) and one
    /// arithmetic op.
    pub fn locality_check(&self) -> f64 {
        self.call + self.loop_iter + 3.0 * self.mem_ref + self.flop
    }

    /// Cost of accessing one element of a distributed array from inside an
    /// executor loop body when the element is local: global→local index
    /// translation plus the load itself.
    pub fn local_access(&self) -> f64 {
        self.flop + 2.0 * self.mem_ref
    }

    /// Cost of accessing one *nonlocal* element from the receive buffer: a
    /// procedure call plus `log2(ranges)` binary-search steps, each a compare
    /// and a memory reference, plus the final load.
    pub fn nonlocal_access(&self, ranges: usize) -> f64 {
        let steps = (ranges.max(1) as f64).log2().ceil().max(1.0);
        self.call + steps * (self.flop + self.mem_ref) + self.mem_ref
    }

    /// CPU cost charged per record handled while building / merging the
    /// inspector's range lists.
    pub fn record_handling(&self) -> f64 {
        self.call + 2.0 * self.mem_ref
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ordering() {
        let n = CostModel::ncube7();
        let i = CostModel::ipsc2();
        // iPSC/2 is faster in every dimension the paper calls out.
        assert!(i.flop < n.flop);
        assert!(i.call < n.call);
        assert!(i.msg_latency < n.msg_latency);
        assert!(i.byte < n.byte);
        assert!(i.router_stage < n.router_stage);
    }

    #[test]
    fn ideal_machine_is_free() {
        let c = CostModel::ideal();
        assert_eq!(c.transfer_time(1 << 20, 7), 0.0);
        assert_eq!(c.locality_check(), 0.0);
        assert_eq!(c.nonlocal_access(1024), 0.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes_and_hops() {
        let c = CostModel::ncube7();
        let t1 = c.transfer_time(100, 1);
        let t2 = c.transfer_time(200, 1);
        let t3 = c.transfer_time(100, 3);
        assert!(t2 > t1);
        assert!(t3 > t1);
        assert!((t2 - t1 - 100.0 * c.byte).abs() < 1e-12);
        assert!((t3 - t1 - 2.0 * c.hop).abs() < 1e-12);
    }

    #[test]
    fn locality_check_magnitudes_match_calibration() {
        // These magnitudes anchor the inspector rows of Figures 7 and 8:
        // ≈ 58 µs per reference on the NCUBE/7, ≈ 10 µs on the iPSC/2.
        let n = CostModel::ncube7().locality_check();
        let i = CostModel::ipsc2().locality_check();
        assert!(n > 4.0e-5 && n < 8.0e-5, "ncube check = {n}");
        assert!(i > 5.0e-6 && i < 2.0e-5, "ipsc check = {i}");
    }

    #[test]
    fn nonlocal_access_grows_logarithmically() {
        let c = CostModel::ncube7();
        let a = c.nonlocal_access(2);
        let b = c.nonlocal_access(16);
        let d = c.nonlocal_access(256);
        assert!(b > a);
        assert!(d > b);
        // Four doublings from 16 to 256 adds four search steps.
        let step = c.flop + c.mem_ref;
        assert!((d - b - 4.0 * step).abs() < 1e-12);
    }
}
