//! Per-processor operation counters and machine-wide run statistics.
//!
//! Counters are pure bookkeeping — they do not influence the logical clock —
//! and are used by tests ("did the executor really send only one message per
//! neighbour?") and by the benchmark tables (message counts, communication
//! volume).

/// Operation counters accumulated by one virtual processor.
///
/// The struct itself lives in `kali-process` (it is part of the
/// backend-neutral [`Process`](kali_process::Process) contract); the
/// simulator re-exports it so existing `dmsim::Counters` users keep
/// working and the two types stay identical.
pub use kali_process::Counters;

/// Machine-wide statistics assembled after an SPMD run.
///
/// `time` is the maximum final clock over all processors — the quantity the
/// paper's tables call "total time".  `totals` sums the counters of every
/// processor; `per_proc` keeps the raw per-processor data for detailed
/// reporting.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Maximum final logical clock across processors (simulated seconds).
    pub time: f64,
    /// Final logical clock of each processor.
    pub clocks: Vec<f64>,
    /// Per-processor counters.
    pub per_proc: Vec<Counters>,
    /// Sum of all per-processor counters.
    pub totals: Counters,
}

impl RunStats {
    /// Build machine-wide statistics from per-processor clocks and counters.
    pub fn from_parts(clocks: Vec<f64>, per_proc: Vec<Counters>) -> Self {
        assert_eq!(clocks.len(), per_proc.len());
        let time = clocks.iter().copied().fold(0.0f64, f64::max);
        let totals = per_proc
            .iter()
            .fold(Counters::default(), |acc, c| acc.merge(c));
        RunStats {
            time,
            clocks,
            per_proc,
            totals,
        }
    }

    /// Number of processors that took part in the run.
    pub fn nprocs(&self) -> usize {
        self.clocks.len()
    }

    /// Load imbalance: max clock divided by mean clock (1.0 = perfectly
    /// balanced).  Returns 1.0 for an empty or all-zero run.
    pub fn imbalance(&self) -> f64 {
        if self.clocks.is_empty() {
            return 1.0;
        }
        let mean: f64 = self.clocks.iter().sum::<f64>() / self.clocks.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.time / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = Counters {
            msgs_sent: 1,
            msgs_recv: 2,
            bytes_sent: 3,
            bytes_recv: 4,
            flops: 5,
            mem_refs: 6,
            loop_iters: 7,
            calls: 8,
            nonlocal_refs: 9,
            queue_peak: 5,
            wire_bytes: 100,
        };
        let b = Counters {
            msgs_sent: 10,
            msgs_recv: 20,
            bytes_sent: 30,
            bytes_recv: 40,
            flops: 50,
            mem_refs: 60,
            loop_iters: 70,
            calls: 80,
            nonlocal_refs: 90,
            queue_peak: 3,
            wire_bytes: 200,
        };
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 11);
        assert_eq!(m.bytes_recv, 44);
        assert_eq!(m.calls, 88);
        assert_eq!(m.nonlocal_refs, 99);
        // queue_peak is a high-water mark, not a flow: merge takes the max.
        assert_eq!(m.queue_peak, 5);
        // wire_bytes is a flow like the modeled byte counters: merge sums.
        assert_eq!(m.wire_bytes, 300);
    }

    #[test]
    fn run_stats_takes_max_clock_and_sums_counters() {
        let stats = RunStats::from_parts(
            vec![1.0, 3.0, 2.0],
            vec![
                Counters {
                    flops: 1,
                    ..Counters::default()
                },
                Counters {
                    flops: 2,
                    ..Counters::default()
                },
                Counters {
                    flops: 3,
                    ..Counters::default()
                },
            ],
        );
        assert_eq!(stats.time, 3.0);
        assert_eq!(stats.totals.flops, 6);
        assert_eq!(stats.nprocs(), 3);
    }

    #[test]
    fn imbalance_ratio() {
        let stats = RunStats::from_parts(vec![2.0, 2.0, 2.0, 2.0], vec![Counters::default(); 4]);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
        let stats = RunStats::from_parts(vec![1.0, 3.0], vec![Counters::default(); 2]);
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
        let empty = RunStats::from_parts(vec![], vec![]);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = RunStats::from_parts(vec![1.0], vec![]);
    }
}
