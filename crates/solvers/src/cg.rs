//! Conjugate gradient over an [`AdjacencyMesh`] — the solver that stresses
//! **per-iteration collective cost**: every iteration interleaves three
//! `forall`s with *two* global dot-product reductions, all through one
//! [`Session`].
//!
//! The operator is the shifted graph Laplacian of the mesh with unit edge
//! weights, `A = L + I`:
//!
//! ```text
//! (A x)[i] = (1 + deg(i)) · x[i] − Σ_j x[adj[i, j]]
//! ```
//!
//! which is symmetric positive definite for any symmetric adjacency — the
//! mesh builders all produce symmetric meshes — so CG converges on every
//! mesh and every placement.  Per iteration:
//!
//! 1. **mat-vec + dot** — `q := A·p` is the inspector-planned indirect
//!    `forall` (the `adj` subscripts are data dependent, exactly like
//!    Jacobi's), and the same sweep *is* the reduction producing
//!    `⟨p, q⟩`: the body returns `p[i]·q[i]` and
//!    [`Session::execute_reduce`] combines the contributions under
//!    [`Sum<f64>`](kali_core::Sum) in the fixed deterministic order.
//! 2. **update + dot** — `x += α·p`, `r −= α·q`, fused with the reduction
//!    producing the new residual norm `⟨r, r⟩` (the identity-subscript loop
//!    plans through the closed form: zero planning messages).
//! 3. **direction** — `p := r + β·p`, a plain local sweep.
//!
//! The residual history — one `⟨r, r⟩` per iteration — is **bitwise
//! identical** across dmsim, native and the sequential replay
//! ([`cg_sequential`]), because every reduction folds in ascending iteration
//! order per rank and ascending rank order across ranks (the
//! [`ReduceOp`](kali_core::ReduceOp) determinism contract).
//!
//! **CG under churn** reuses the adaptive machinery: with
//! [`CgConfig::adapt_every`] set, the mesh is deterministically perturbed
//! every *k* iterations ([`meshes::adapt_step`]), the session's data version
//! bumps, and the mat-vec schedule re-inspects exactly once per generation
//! while the identity-planned loops stay closed-form.  (The perturbed run is
//! a runtime stress test, not a convergent solve: the operator changes under
//! the iteration.)

use distrib::DimDist;
use kali_core::process::{Counters, Process};
use kali_core::{AffineMap, Reduce, Session, SessionStats, Sum};
use meshes::{adapt_step, AdaptConfig, AdjacencyMesh};

use crate::adaptive::scatter_mesh;
use crate::reduce_replay::replay_sum;

/// Parameters of a CG run.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Maximum number of CG iterations.
    pub iters: usize,
    /// Perturb the mesh before every iteration that is a positive multiple
    /// of this interval (`None` = static mesh, the convergent setting).
    pub adapt_every: Option<usize>,
    /// Parameters of the deterministic mesh perturbation.
    pub adapt: AdaptConfig,
    /// Overlap communication with local iterations in the mat-vec sweep.
    pub overlap: bool,
    /// Residency bound of the session's schedule cache.
    pub cache_capacity: usize,
    /// Intra-rank worker threads for the chunked executor (`None` keeps the
    /// session default, which honours `KALI_WORKERS`).  The residual
    /// history is bitwise identical at every worker count.
    pub workers: Option<usize>,
    /// Chunk size for the chunked executor (`None` keeps the session
    /// default, which honours `KALI_CHUNK`).
    pub chunk: Option<usize>,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            iters: 50,
            adapt_every: None,
            adapt: AdaptConfig::default(),
            overlap: true,
            cache_capacity: kali_core::cache::DEFAULT_CAPACITY,
            workers: None,
            chunk: None,
        }
    }
}

impl CgConfig {
    /// A configuration with the given iteration count and defaults
    /// otherwise.
    pub fn with_iters(iters: usize) -> Self {
        CgConfig {
            iters,
            ..CgConfig::default()
        }
    }

    /// True when the mesh is perturbed immediately before iteration `iter`.
    fn adapts_before(&self, iter: usize) -> bool {
        matches!(self.adapt_every, Some(k) if k > 0 && iter > 0 && iter.is_multiple_of(k))
    }
}

/// Per-processor result of a CG run.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// Final values of the locally owned entries of the solution `x`.
    pub local_x: Vec<f64>,
    /// `⟨r, r⟩` after every performed iteration, preceded by the initial
    /// `⟨b, b⟩` — identical on every rank and every backend, bit for bit.
    pub residual_history: Vec<f64>,
    /// Iterations actually performed (early exit on an exactly zero
    /// residual or curvature).
    pub iterations: usize,
    /// Number of mesh perturbations performed (CG under churn).
    pub adaptations: u64,
    /// Simulated seconds this rank spent planning (from the session).
    pub inspector_time: f64,
    /// Total simulated seconds of the timed region on this rank.
    pub total_time: f64,
    /// Operation counters accumulated during the timed region.
    pub counters: Counters,
    /// Session meters: cache lifecycle plus reduction count/bytes.
    pub stats: SessionStats,
    /// Elements this rank receives per mat-vec sweep.
    pub recv_elements: usize,
    /// Range records in this rank's mat-vec receive schedule.
    pub schedule_ranges: usize,
}

/// Solve `(L + I) x = b` by conjugate gradients, collectively.  `b` is the
/// globally replicated right-hand side; the returned `local_x` holds this
/// rank's entries under `dist`.
pub fn cg_solve<P: Process>(
    proc: &mut P,
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    b: &[f64],
    config: &CgConfig,
) -> CgOutcome {
    let rank = proc.rank();
    let n = mesh.len();
    assert_eq!(dist.n(), n, "distribution must cover every mesh node");
    assert_eq!(b.len(), n, "right-hand side must cover every mesh node");

    let mut mesh = mesh.clone();
    let mut session = Session::with_cache_capacity(config.cache_capacity).overlap(config.overlap);
    if let Some(w) = config.workers {
        session.set_workers(w);
    }
    if let Some(c) = config.chunk {
        session.set_chunk_size(c);
    }
    // The three foralls of one CG iteration, ids allocated in program order.
    let matvec = session.loop_1d(n, dist.clone());
    let update = session.loop_1d(n, dist.clone());
    let direction = session.loop_1d(n, dist.clone());

    // ---- Set-up (untimed): scatter the operator and the vectors ----------
    let (mut count, mut adj, _coef, mut width) = scatter_mesh(&mesh, dist, rank);
    let local_rows = dist.local_count(rank);
    let mut x = vec![0.0f64; local_rows];
    let mut r: Vec<f64> = (0..local_rows)
        .map(|l| b[dist.global_index(rank, l)])
        .collect();
    let mut p = r.clone();
    let mut q = vec![0.0f64; local_rows];
    // Write-side buffers for the chunked executor: its body sees a
    // read-only view, so sweeps that update a vector they also read write
    // the new values here and swap afterwards.  `x_new + swap` is bitwise
    // identical to `x += …` — same operands, same operation.
    let mut x_next = vec![0.0f64; local_rows];
    let mut r_next = vec![0.0f64; local_rows];
    let mut p_next = vec![0.0f64; local_rows];

    let start_clock = proc.time();
    let counters_start = proc.counters();

    // Identity-subscript loops plan through the closed form (zero planning
    // messages); their schedules never depend on the adjacency, so they are
    // planned once.
    let update_schedule = session.plan(proc, &update, dist, &[AffineMap::identity()]);
    let direction_schedule = session.plan(proc, &direction, dist, &[AffineMap::identity()]);

    // rho = ⟨r, r⟩, as a pure reduction sweep over the update loop.
    let mut rho = {
        let r_ref = &r;
        session.execute_reduce_chunked(
            proc,
            &update,
            &update_schedule,
            dist,
            &r,
            Reduce::<Sum<f64>>::new(),
            |i, fetch| {
                fetch.charge_flops(1);
                let v = r_ref[dist.local_index(i)];
                ((), v * v)
            },
            |_, ()| {},
        )
    };
    let mut residual_history = vec![rho];

    let mut recv_elements = 0usize;
    let mut schedule_ranges = 0usize;
    let mut adaptations = 0u64;
    let mut iterations = 0usize;

    for iter in 0..config.iters {
        // -- CG under churn: perturb the operator, bump the data version --
        if config.adapts_before(iter) {
            mesh = adapt_step(&mesh, &config.adapt, adaptations);
            adaptations += 1;
            session.bump_data_version();
            (count, adj, _, width) = scatter_mesh(&mesh, dist, rank);
        }

        // -- q := A p, fused with pq = ⟨p, q⟩ -----------------------------
        let matvec_schedule = session.plan_indirect(proc, &matvec, dist, |i, refs| {
            let l = dist.local_index(i);
            for j in 0..count[l] as usize {
                refs.push(adj[l * width + j] as usize);
            }
        });
        recv_elements = matvec_schedule.recv_len;
        schedule_ranges = matvec_schedule.range_count();
        let pq = {
            let p_ref = &p;
            let count_ref = &count;
            let adj_ref = &adj;
            let q_mut = &mut q;
            session.execute_reduce_chunked(
                proc,
                &matvec,
                &matvec_schedule,
                dist,
                &p,
                Reduce::<Sum<f64>>::new(),
                |i, fetch| {
                    let l = dist.local_index(i);
                    fetch.charge_mem_refs(2); // count[i], p[i]
                    let deg = count_ref[l] as usize;
                    fetch.charge_flops(2);
                    let mut acc = (1.0 + deg as f64) * p_ref[l];
                    for j in 0..deg {
                        fetch.charge_loop_iters(1);
                        fetch.charge_mem_refs(1); // adj[i,j]
                        let nb = adj_ref[l * width + j] as usize;
                        let v = fetch.fetch(nb);
                        fetch.charge_flops(1);
                        acc -= v;
                    }
                    fetch.charge_mem_refs(1); // q[i] := acc
                    fetch.charge_flops(1);
                    (acc, p_ref[l] * acc)
                },
                |i, acc| {
                    q_mut[dist.local_index(i)] = acc;
                },
            )
        };
        if pq == 0.0 {
            break; // exact solution (or zero direction); identical everywhere
        }
        let alpha = rho / pq;

        // -- x += α p, r −= α q, fused with rho_new = ⟨r, r⟩ ---------------
        let rho_new = {
            let p_ref = &p;
            let q_ref = &q;
            let x_ref = &x;
            let r_ref = &r;
            let x_sink = &mut x_next;
            let r_sink = &mut r_next;
            session.execute_reduce_chunked(
                proc,
                &update,
                &update_schedule,
                dist,
                &p,
                Reduce::<Sum<f64>>::new(),
                |i, fetch| {
                    let l = dist.local_index(i);
                    fetch.charge_mem_refs(4);
                    fetch.charge_flops(5);
                    let xn = x_ref[l] + alpha * p_ref[l];
                    let rn = r_ref[l] - alpha * q_ref[l];
                    ((xn, rn), rn * rn)
                },
                |i, (xn, rn)| {
                    let l = dist.local_index(i);
                    x_sink[l] = xn;
                    r_sink[l] = rn;
                },
            )
        };
        std::mem::swap(&mut x, &mut x_next);
        std::mem::swap(&mut r, &mut r_next);
        residual_history.push(rho_new);
        iterations = iter + 1;
        let beta = rho_new / rho;
        rho = rho_new;

        // -- p := r + β p --------------------------------------------------
        {
            let r_ref = &r;
            let p_ref = &p;
            let p_sink = &mut p_next;
            session.execute_chunked(
                proc,
                &direction,
                &direction_schedule,
                dist,
                &r,
                |i, fetch| {
                    let l = dist.local_index(i);
                    fetch.charge_mem_refs(3);
                    fetch.charge_flops(2);
                    r_ref[l] + beta * p_ref[l]
                },
                |i, v| {
                    p_sink[dist.local_index(i)] = v;
                },
            );
        }
        std::mem::swap(&mut p, &mut p_next);

        if rho == 0.0 {
            break; // converged exactly; rho identical everywhere
        }
    }

    let total_time = proc.time() - start_clock;
    let counters = proc.counters().since(&counters_start);

    CgOutcome {
        local_x: x,
        residual_history,
        iterations,
        adaptations,
        inspector_time: session.inspector_time(),
        total_time,
        counters,
        stats: session.stats(),
        recv_elements,
        schedule_ranges,
    }
}

/// Sequential replay of the same CG run: identical adaptation schedule,
/// identical per-element arithmetic, and identical reduction structure (per-
/// rank partials over `dist`'s owned sets in ascending order, combined in
/// rank order) — so the distributed residual history matches this one bit
/// for bit on every backend.  Returns `(x, residual_history)`.
pub fn cg_sequential(
    mesh: &AdjacencyMesh,
    b: &[f64],
    config: &CgConfig,
    dist: &DimDist,
) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.len();
    assert_eq!(b.len(), n);
    let mut mesh = mesh.clone();
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0f64; n];

    let mut rho = replay_sum(dist, |i| r[i] * r[i]);
    let mut history = vec![rho];
    let mut adaptations = 0u64;

    for iter in 0..config.iters {
        if config.adapts_before(iter) {
            mesh = adapt_step(&mesh, &config.adapt, adaptations);
            adaptations += 1;
        }
        for i in 0..n {
            let deg = mesh.degree(i);
            let mut acc = (1.0 + deg as f64) * p[i];
            for j in 0..deg {
                acc -= p[mesh.neighbors(i)[j] as usize];
            }
            q[i] = acc;
        }
        let pq = replay_sum(dist, |i| p[i] * q[i]);
        if pq == 0.0 {
            break;
        }
        let alpha = rho / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = replay_sum(dist, |i| r[i] * r[i]);
        history.push(rho_new);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        if rho == 0.0 {
            break;
        }
    }
    (x, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::partitioned_dist;
    use dmsim::{CostModel, Machine};
    use meshes::{RegularGrid, UnstructuredMeshBuilder};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 17) % 13) as f64 * 0.25 - 1.0)
            .collect()
    }

    fn gather(dist: &DimDist, outcomes: &[CgOutcome]) -> Vec<f64> {
        crate::adaptive::gather_global(
            dist,
            &outcomes
                .iter()
                .map(|o| o.local_x.clone())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn cg_converges_on_the_grid_mesh_under_block_placement() {
        let mesh = RegularGrid::square(12).five_point_mesh();
        let b = rhs(mesh.len());
        let config = CgConfig::with_iters(60);
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        let history = &outcomes[0].residual_history;
        let first = history[0];
        let last = *history.last().unwrap();
        assert!(
            last < first * 1e-12,
            "CG must drive the residual down: {first} -> {last}"
        );
        // The solution really solves (L + I) x = b.
        let dist = DimDist::block(mesh.len(), 4);
        let x = gather(&dist, &outcomes);
        for i in 0..mesh.len() {
            let deg = mesh.degree(i);
            let mut ax = (1.0 + deg as f64) * x[i];
            for j in 0..deg {
                ax -= x[mesh.neighbors(i)[j] as usize];
            }
            assert!(
                (ax - b[i]).abs() < 1e-6,
                "residual at node {i}: {ax} vs {}",
                b[i]
            );
        }
    }

    #[test]
    fn residual_history_matches_the_sequential_replay_bitwise() {
        let mesh = UnstructuredMeshBuilder::new(10, 10)
            .seed(7)
            .scramble_numbering(true)
            .build();
        let b = rhs(mesh.len());
        let config = CgConfig::with_iters(25);
        let nprocs = 4;
        let machine = Machine::new(nprocs, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        let dist = DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs);
        let (seq_x, seq_history) = cg_sequential(&mesh, &b, &config, &dist);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for o in &outcomes {
            assert_eq!(
                bits(&o.residual_history),
                bits(&seq_history),
                "distributed residual history must replay bitwise"
            );
        }
        assert_eq!(bits(&gather(&dist, &outcomes)), bits(&seq_x));
    }

    #[test]
    fn two_reductions_per_iteration_and_one_inspector_run() {
        let mesh = UnstructuredMeshBuilder::new(8, 8).seed(3).build();
        let b = rhs(mesh.len());
        let config = CgConfig::with_iters(10);
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(o.iterations, 10);
            // 1 initial ⟨b,b⟩ + 2 per iteration, all through the session.
            assert_eq!(o.stats.reductions, 1 + 2 * 10);
            let sends = kali_core::process::tree_allreduce_sends(4, rank) as u64;
            assert_eq!(
                o.stats.reduction_bytes,
                (1 + 2 * 10) * sends * 8,
                "tree sends * 8 bytes per reduction"
            );
            // The mat-vec plans once; the identity loops never miss.
            assert_eq!(o.stats.cache.misses, 1);
            assert_eq!(o.stats.cache.hits, 9);
            assert_eq!(o.stats.loops_allocated, 3);
        }
    }

    #[test]
    fn cg_under_churn_reinspects_once_per_generation_and_replays_bitwise() {
        let mesh = UnstructuredMeshBuilder::new(8, 8)
            .seed(11)
            .scramble_numbering(true)
            .build();
        let b = rhs(mesh.len());
        let config = CgConfig {
            iters: 12,
            adapt_every: Some(4), // perturb before iterations 4 and 8
            ..CgConfig::default()
        };
        let nprocs = 4;
        let machine = Machine::new(nprocs, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            cg_solve(proc, &mesh, &dist, &b, &config)
        });
        let dist = DimDist::block(mesh.len(), nprocs);
        let (_, seq_history) = cg_sequential(&mesh, &b, &config, &dist);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for o in &outcomes {
            assert_eq!(o.adaptations, 2);
            // One mat-vec inspection per mesh generation, none elsewhere.
            assert_eq!(o.stats.cache.misses, 3);
            // Generation self-invalidation reclaims the dead schedules.
            assert_eq!(o.stats.cache.evictions, 2);
            assert_eq!(o.stats.cache.resident_entries, 1);
            assert_eq!(bits(&o.residual_history), bits(&seq_history));
        }
    }
}
