//! Result rows for the paper's tables.

/// The per-phase simulated-time breakdown of one run, as reported in the
/// paper's tables: total time, executor time, inspector time and the
/// inspector overhead ("the inspector time divided by the total time", §4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Total simulated time of the timed region (seconds).
    pub total: f64,
    /// Simulated time spent in the executor (including communication).
    pub executor: f64,
    /// Simulated time spent in the inspector (locality checks + global
    /// exchange).
    pub inspector: f64,
}

impl PhaseBreakdown {
    /// Inspector overhead as a fraction of total time (0.0 – 1.0).
    pub fn inspector_overhead(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.inspector / self.total
        }
    }
}

/// One row of a reproduction table (one machine/processor-count/mesh-size
/// configuration), in the same shape as Figures 7–10 of the paper.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Machine model name ("NCUBE/7", "iPSC/2", …).
    pub machine: String,
    /// Number of processors used.
    pub nprocs: usize,
    /// Mesh side length (the paper's meshes are `mesh_side × mesh_side`).
    pub mesh_side: usize,
    /// Number of nodes in the mesh.
    pub mesh_nodes: usize,
    /// Number of relaxation sweeps timed.
    pub sweeps: usize,
    /// Simulated-time breakdown (machine-wide: slowest processor).
    pub times: PhaseBreakdown,
    /// Speedup relative to the one-processor executor time (only filled in
    /// by the mesh-size experiments, Figures 9 and 10).
    pub speedup: Option<f64>,
    /// Total messages sent by the executor+inspector across all processors.
    pub messages: u64,
    /// Total payload bytes sent across all processors.
    pub bytes: u64,
}

impl ExperimentRow {
    /// Format the row like the paper's tables (times in seconds, overhead in
    /// percent).
    pub fn to_table_line(&self) -> String {
        let speedup = self
            .speedup
            .map(|s| format!("  {s:8.1}"))
            .unwrap_or_default();
        format!(
            "{:>10}  {:>6}  {:>9}  {:>12.2}  {:>13.2}  {:>14.2}  {:>10.1}%{}",
            self.machine,
            self.nprocs,
            format!("{0}x{0}", self.mesh_side),
            self.times.total,
            self.times.executor,
            self.times.inspector,
            self.times.inspector_overhead() * 100.0,
            speedup
        )
    }

    /// Header matching [`ExperimentRow::to_table_line`].
    pub fn table_header(with_speedup: bool) -> String {
        let mut h = format!(
            "{:>10}  {:>6}  {:>9}  {:>12}  {:>13}  {:>14}  {:>11}",
            "machine", "procs", "mesh", "total (s)", "executor (s)", "inspector (s)", "overhead"
        );
        if with_speedup {
            h.push_str("   speedup");
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction() {
        let p = PhaseBreakdown {
            total: 10.0,
            executor: 9.0,
            inspector: 1.0,
        };
        assert!((p.inspector_overhead() - 0.1).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().inspector_overhead(), 0.0);
    }

    #[test]
    fn table_line_contains_all_fields() {
        let row = ExperimentRow {
            machine: "NCUBE/7".to_string(),
            nprocs: 16,
            mesh_side: 128,
            mesh_nodes: 16384,
            sweeps: 100,
            times: PhaseBreakdown {
                total: 38.95,
                executor: 37.88,
                inspector: 1.07,
            },
            speedup: Some(37.3),
            messages: 1000,
            bytes: 100000,
        };
        let line = row.to_table_line();
        assert!(line.contains("NCUBE/7"));
        assert!(line.contains("128x128"));
        assert!(line.contains("38.95"));
        assert!(line.contains("37.3"));
        let header = ExperimentRow::table_header(true);
        assert!(header.contains("speedup"));
        assert!(ExperimentRow::table_header(false).len() < header.len());
    }
}
