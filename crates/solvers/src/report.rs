//! Result rows for the paper's tables.

/// Communication and caching statistics of one run, machine-wide.
///
/// `messages`/`bytes` come straight from the dmsim counters (all traffic:
/// inspector exchange, executor data, collectives); `nonlocal_refs` counts
/// the executor's binary-search fetches from the communication buffer — the
/// direct locality metric a placement optimises; `halo_elements` is the
/// number of distinct elements received per sweep (summed over processors);
/// the cache counters record how often the schedule cache spared an
/// inspector run.  The locality bench tables cite these numbers when
/// comparing block against partitioned placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommReport {
    /// Total messages sent across all processors.
    pub messages: u64,
    /// Total payload bytes sent across all processors.
    pub bytes: u64,
    /// Total nonlocal distributed-array references resolved through the
    /// communication buffer.
    pub nonlocal_refs: u64,
    /// Distinct elements received per sweep, summed over processors.
    pub halo_elements: usize,
    /// Schedule-cache hits, summed over processors.
    pub cache_hits: u64,
    /// Schedule-cache misses (inspector executions), summed over processors.
    pub cache_misses: u64,
    /// Schedule-cache evictions (capacity pressure + generation
    /// self-invalidation + explicit invalidation), summed over processors.
    pub cache_evictions: u64,
    /// Approximate bytes of cached schedules resident at the end of the
    /// run, summed over processors — the number the bounded cache keeps
    /// from growing with the length of an adaptive run.
    pub cache_resident_bytes: usize,
    /// Global typed reductions performed (`execute_reduce` calls), summed
    /// over processors — the per-iteration collective count a CG-style
    /// solver stresses.
    pub reductions: u64,
    /// Peak depth of any processor's pending-message buffer (messages
    /// parked waiting for a matching receive) — the maximum over
    /// processors, a high-water mark rather than a flow.  Large values mean
    /// receives lag far behind sends, the regime where delivery-order
    /// perturbations have the most room to reorder.
    pub queue_peak: u64,
    /// Payload bytes sent for those reductions, summed over processors.
    pub reduction_bytes: u64,
    /// Measured transport bytes (frame headers + encoded payloads) that
    /// actually crossed a socket, summed over processors.  Zero for the
    /// in-process backends (dmsim models costs, native moves values over
    /// channels); only the mp backend meters real wire traffic, so this
    /// column lets a table distinguish modeled from measured volume.
    pub wire_bytes: u64,
}

impl CommReport {
    /// Format the stats as one table line (no machine column).
    pub fn to_table_line(&self) -> String {
        format!(
            "{:>10}  {:>12}  {:>14}  {:>10}  {:>10}  {:>8}  {:>8}  {:>10}  {:>8}  {:>7}  {:>10}  {:>10}",
            self.messages,
            self.bytes,
            self.nonlocal_refs,
            self.halo_elements,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_resident_bytes,
            self.reductions,
            self.queue_peak,
            self.reduction_bytes,
            self.wire_bytes
        )
    }

    /// Header matching [`CommReport::to_table_line`].
    pub fn table_header() -> String {
        format!(
            "{:>10}  {:>12}  {:>14}  {:>10}  {:>10}  {:>8}  {:>8}  {:>10}  {:>8}  {:>7}  {:>10}  {:>10}",
            "messages",
            "bytes",
            "nonlocal refs",
            "halo elts",
            "cache hit",
            "miss",
            "evict",
            "res bytes",
            "reduce",
            "q peak",
            "red bytes",
            "wire bytes"
        )
    }
}

/// The per-phase simulated-time breakdown of one run, as reported in the
/// paper's tables: total time, executor time, inspector time and the
/// inspector overhead ("the inspector time divided by the total time", §4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Total simulated time of the timed region (seconds).
    pub total: f64,
    /// Simulated time spent in the executor (including communication).
    pub executor: f64,
    /// Simulated time spent in the inspector (locality checks + global
    /// exchange).
    pub inspector: f64,
}

impl PhaseBreakdown {
    /// Inspector overhead as a fraction of total time (0.0 – 1.0).
    pub fn inspector_overhead(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.inspector / self.total
        }
    }
}

/// One row of a reproduction table (one machine/processor-count/mesh-size
/// configuration), in the same shape as Figures 7–10 of the paper.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Machine model name ("NCUBE/7", "iPSC/2", …).
    pub machine: String,
    /// Number of processors used.
    pub nprocs: usize,
    /// Mesh side length (the paper's meshes are `mesh_side × mesh_side`).
    pub mesh_side: usize,
    /// Number of nodes in the mesh.
    pub mesh_nodes: usize,
    /// Number of relaxation sweeps timed.
    pub sweeps: usize,
    /// Simulated-time breakdown (machine-wide: slowest processor).
    pub times: PhaseBreakdown,
    /// Speedup relative to the one-processor executor time (only filled in
    /// by the mesh-size experiments, Figures 9 and 10).
    pub speedup: Option<f64>,
    /// Machine-wide communication, locality and schedule-cache statistics.
    pub comm: CommReport,
    /// Global squared change of the run's last convergence check, when the
    /// program performed one (identical on every rank — the value flows
    /// through the typed reduction pipeline instead of being discarded).
    pub final_change: Option<f64>,
    /// Per-phase communication breakdown, for multi-phase programs (the 2-D
    /// phase-change demo reports its vertical/horizontal sweep phases and
    /// the row↔column redistribution separately so the cost of moving the
    /// field between placements is visible next to the halo traffic it
    /// replaces).  Empty for single-phase experiments.
    pub phase_comms: Vec<(String, CommReport)>,
}

impl ExperimentRow {
    /// Format the row like the paper's tables (times in seconds, overhead in
    /// percent).
    pub fn to_table_line(&self) -> String {
        let speedup = self
            .speedup
            .map(|s| format!("  {s:8.1}"))
            .unwrap_or_default();
        format!(
            "{:>10}  {:>6}  {:>9}  {:>12.2}  {:>13.2}  {:>14.2}  {:>10.1}%{}",
            self.machine,
            self.nprocs,
            format!("{0}x{0}", self.mesh_side),
            self.times.total,
            self.times.executor,
            self.times.inspector,
            self.times.inspector_overhead() * 100.0,
            speedup
        )
    }

    /// Header matching [`ExperimentRow::to_table_line`].
    pub fn table_header(with_speedup: bool) -> String {
        let mut h = format!(
            "{:>10}  {:>6}  {:>9}  {:>12}  {:>13}  {:>14}  {:>11}",
            "machine", "procs", "mesh", "total (s)", "executor (s)", "inspector (s)", "overhead"
        );
        if with_speedup {
            h.push_str("   speedup");
        }
        h
    }

    /// Format the row's communication/locality statistics (pairs with
    /// [`ExperimentRow::comm_header`]).
    pub fn to_comm_line(&self) -> String {
        format!(
            "{:>10}  {:>6}  {}",
            self.machine,
            self.nprocs,
            self.comm.to_table_line()
        )
    }

    /// Header matching [`ExperimentRow::to_comm_line`].
    pub fn comm_header() -> String {
        format!(
            "{:>10}  {:>6}  {}",
            "machine",
            "procs",
            CommReport::table_header()
        )
    }

    /// Format the per-phase communication breakdown, one line per phase
    /// (pairs with [`ExperimentRow::phase_header`]); empty for single-phase
    /// rows.
    pub fn to_phase_lines(&self) -> Vec<String> {
        self.phase_comms
            .iter()
            .map(|(label, comm)| format!("{:>16}  {}", label, comm.to_table_line()))
            .collect()
    }

    /// Header matching [`ExperimentRow::to_phase_lines`].
    pub fn phase_header() -> String {
        format!("{:>16}  {}", "phase", CommReport::table_header())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_fraction() {
        let p = PhaseBreakdown {
            total: 10.0,
            executor: 9.0,
            inspector: 1.0,
        };
        assert!((p.inspector_overhead() - 0.1).abs() < 1e-12);
        assert_eq!(PhaseBreakdown::default().inspector_overhead(), 0.0);
    }

    #[test]
    fn table_line_contains_all_fields() {
        let row = ExperimentRow {
            machine: "NCUBE/7".to_string(),
            nprocs: 16,
            mesh_side: 128,
            mesh_nodes: 16384,
            sweeps: 100,
            times: PhaseBreakdown {
                total: 38.95,
                executor: 37.88,
                inspector: 1.07,
            },
            speedup: Some(37.3),
            comm: CommReport {
                messages: 1000,
                bytes: 100000,
                nonlocal_refs: 512,
                halo_elements: 256,
                cache_hits: 99,
                cache_misses: 1,
                cache_evictions: 0,
                cache_resident_bytes: 640,
                reductions: 0,
                queue_peak: 0,
                reduction_bytes: 0,
                wire_bytes: 0,
            },
            final_change: None,
            phase_comms: Vec::new(),
        };
        let line = row.to_table_line();
        assert!(line.contains("NCUBE/7"));
        assert!(line.contains("128x128"));
        assert!(line.contains("38.95"));
        assert!(line.contains("37.3"));
        let header = ExperimentRow::table_header(true);
        assert!(header.contains("speedup"));
        assert!(ExperimentRow::table_header(false).len() < header.len());
    }

    #[test]
    fn comm_line_cites_cache_and_locality_counters() {
        let comm = CommReport {
            messages: 42,
            bytes: 4242,
            nonlocal_refs: 77,
            halo_elements: 13,
            cache_hits: 9,
            cache_misses: 1,
            cache_evictions: 5,
            cache_resident_bytes: 888,
            reductions: 21,
            queue_peak: 6,
            reduction_bytes: 504,
            wire_bytes: 7007,
        };
        let line = comm.to_table_line();
        for needle in [
            "42", "4242", "77", "13", "9", "1", "5", "888", "21", "6", "504", "7007",
        ] {
            assert!(line.contains(needle), "{needle} missing from {line}");
        }
        assert!(CommReport::table_header().contains("nonlocal refs"));
        assert!(CommReport::table_header().contains("evict"));
        assert!(CommReport::table_header().contains("res bytes"));
        assert!(CommReport::table_header().contains("reduce"));
        assert!(CommReport::table_header().contains("q peak"));
        assert!(CommReport::table_header().contains("red bytes"));
        assert!(CommReport::table_header().contains("wire bytes"));
        let row = ExperimentRow {
            machine: "NCUBE/7".to_string(),
            nprocs: 8,
            mesh_side: 16,
            mesh_nodes: 256,
            sweeps: 10,
            times: PhaseBreakdown::default(),
            speedup: None,
            comm,
            final_change: Some(0.5),
            phase_comms: vec![("vertical".to_string(), comm)],
        };
        assert!(row.to_comm_line().contains("NCUBE/7"));
        assert!(ExperimentRow::comm_header().contains("cache hit"));
        // The per-phase breakdown renders one line per phase.
        let lines = row.to_phase_lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("vertical"));
        assert!(lines[0].contains("4242"));
        assert!(ExperimentRow::phase_header().contains("phase"));
    }
}
