//! Partitioned-mesh distributions: wiring the mesh partitioner into the
//! distribution layer.
//!
//! The paper's Figure 4 program distributes the node arrays `by [block]` —
//! fine for its row-major rectangular grids, where the "obvious" domain
//! decomposition and the block decomposition coincide (§4).  On an
//! irregularly numbered unstructured mesh they do not: block placement
//! ignores connectivity, so almost every `old_a[adj[i,j]]` reference is
//! nonlocal and the inspector builds large, fragmented schedules.  Since the
//! loop bodies are distribution independent, nothing but the `dist`
//! declaration has to change to fix this — exactly the workflow the paper
//! advertises ("a variety of distribution patterns can easily be tried by
//! trivial modification of this program", §2.4).
//!
//! [`partitioned_dist`] is that modified declaration for mesh problems: it
//! runs the deterministic BFS partitioner over the mesh connectivity, keeps
//! each rank's slice of the resulting owner map (the map itself is a
//! distributed translation table), and assembles the
//! [`IrregularDist`](distrib::IrregularDist) with the collective owner-map
//! machinery of `kali_core::ownermap`.  The Jacobi solver then accepts the
//! result like any other distribution.

use distrib::DimDist;
use kali_core::ownermap::DistOwnerMap;
use kali_core::process::Process;
use meshes::AdjacencyMesh;

/// The partitioner's owner map for `mesh` over `p` processors (a pure,
/// deterministic function of the mesh — every rank computes the same table).
pub fn partition_owner_map(mesh: &AdjacencyMesh, p: usize) -> Vec<usize> {
    meshes::greedy_partition(mesh, p)
}

/// Build the connectivity-partitioned distribution of `mesh`'s nodes over
/// the machine, collectively.
///
/// Every rank runs the (deterministic) partitioner, contributes only its
/// block slice of the owner map, and takes part in the collective assembly
/// of the translation tables; the returned distribution is identical on
/// every rank (same fingerprint), as the SPMD schedule-cache lockstep
/// requires.  Must be called by every processor of the machine.
pub fn partitioned_dist<P: Process>(proc: &mut P, mesh: &AdjacencyMesh) -> DimDist {
    let nprocs = proc.nprocs();
    let owners = partition_owner_map(mesh, nprocs);
    let slice = DistOwnerMap::from_global(proc.rank(), nprocs, &owners);
    DimDist::irregular(slice.assemble(proc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{jacobi_sequential, jacobi_sweeps, JacobiConfig};
    use dmsim::{CostModel, Machine};
    use meshes::UnstructuredMeshBuilder;

    #[test]
    fn partitioned_dist_is_identical_on_every_rank() {
        let mesh = UnstructuredMeshBuilder::new(10, 10)
            .seed(9)
            .scramble_numbering(true)
            .build();
        let machine = Machine::new(4, CostModel::ideal());
        let dists = machine.run(|proc| {
            let d = partitioned_dist(proc, &mesh);
            (d.fingerprint(), d.local_set(proc.rank()))
        });
        let fp = dists[0].0;
        assert!(dists.iter().all(|(f, _)| *f == fp));
        // The local sets partition the node space.
        let total: usize = dists.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, mesh.len());
    }

    #[test]
    fn jacobi_under_partitioned_distribution_matches_sequential() {
        let mesh = UnstructuredMeshBuilder::new(12, 12)
            .seed(21)
            .scramble_numbering(true)
            .build();
        let initial: Vec<f64> = (0..mesh.len())
            .map(|i| ((i * 7) % 11) as f64 * 0.3)
            .collect();
        let expected = jacobi_sequential(&mesh, &initial, 6);
        let machine = Machine::new(8, CostModel::ideal());
        let results = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            let out = jacobi_sweeps(proc, &mesh, &dist, &initial, &JacobiConfig::with_sweeps(6));
            (dist, out.local_a)
        });
        let mut global = vec![0.0f64; mesh.len()];
        for (rank, (dist, local)) in results.iter().enumerate() {
            for (l, v) in local.iter().enumerate() {
                global[dist.global_index(rank, l)] = *v;
            }
        }
        assert_eq!(global, expected);
    }

    #[test]
    fn partitioned_placement_beats_block_on_scrambled_meshes() {
        // The acceptance criterion of the refactor: on a scrambled mesh the
        // connectivity-partitioned distribution must produce strictly fewer
        // nonlocal references and strictly less message volume than block.
        let mesh = UnstructuredMeshBuilder::new(16, 16)
            .seed(33)
            .scramble_numbering(true)
            .build();
        let initial: Vec<f64> = (0..mesh.len()).map(|i| i as f64 * 0.01).collect();
        let config = JacobiConfig::with_sweeps(5);
        let run = |partitioned: bool| {
            let machine = Machine::new(8, CostModel::ncube7());
            let (outcomes, stats) = machine.run_stats(|proc| {
                let dist = if partitioned {
                    partitioned_dist(proc, &mesh)
                } else {
                    DimDist::block(mesh.len(), proc.nprocs())
                };
                jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
            });
            let halo: usize = outcomes.iter().map(|o| o.recv_elements).sum();
            (stats.totals.nonlocal_refs, stats.totals.bytes_sent, halo)
        };
        let (block_refs, block_bytes, block_halo) = run(false);
        let (part_refs, part_bytes, part_halo) = run(true);
        assert!(
            part_refs < block_refs,
            "nonlocal refs: partitioned {part_refs} vs block {block_refs}"
        );
        assert!(
            part_bytes < block_bytes,
            "bytes sent: partitioned {part_bytes} vs block {block_bytes}"
        );
        assert!(
            part_halo < block_halo,
            "halo elements: partitioned {part_halo} vs block {block_halo}"
        );
    }

    #[test]
    fn cache_counters_surface_in_the_outcome() {
        let mesh = UnstructuredMeshBuilder::new(8, 8).seed(2).build();
        let initial: Vec<f64> = (0..mesh.len()).map(|i| i as f64).collect();
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            jacobi_sweeps(proc, &mesh, &dist, &initial, &JacobiConfig::with_sweeps(10))
        });
        for o in outcomes {
            assert_eq!(o.cache_misses, 1, "one inspector run");
            assert_eq!(o.cache_hits, 9, "nine cached sweeps");
            assert_eq!(o.cache_evictions, 0, "static run evicts nothing");
            assert!(o.cache_resident_bytes > 0, "one schedule stays resident");
        }
    }
}
