//! The measurement driver reproducing the paper's evaluation (§4).
//!
//! Each of Figures 7–10 is a sweep over one parameter (processor count or
//! mesh size) for one machine (NCUBE/7 or iPSC/2), reporting total /
//! executor / inspector simulated time, the inspector overhead, and — for
//! the mesh-size sweeps — the speedup "relative to the executor time on one
//! processor".  [`run_jacobi_experiment`] produces one such row.
//!
//! Because the simulation is deterministic, the executor cost of every sweep
//! after the first is identical; [`ExperimentParams::extrapolate_from`] lets
//! the harness measure a few sweeps and scale to the paper's 100, which is
//! exact (and is how the very large 512²/1024² rows stay cheap to run).

use distrib::DimDist;
use dmsim::{CostModel, Machine};
use meshes::{AdjacencyMesh, RegularGrid};

use crate::jacobi::{jacobi_sweeps, JacobiConfig};
use crate::partitioned::partitioned_dist;
use crate::report::{CommReport, ExperimentRow, PhaseBreakdown};

/// How the mesh nodes are placed on the processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// `dist by [block]` on the node indices — the paper's declaration.
    #[default]
    Block,
    /// Connectivity-partitioned irregular distribution
    /// ([`partitioned_dist`]).
    Partitioned,
}

impl Placement {
    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Block => "block",
            Placement::Partitioned => "partitioned",
        }
    }
}

/// Parameters of one table row.
#[derive(Debug, Clone)]
pub struct ExperimentParams {
    /// Machine cost model (NCUBE/7, iPSC/2, ideal, …).
    pub cost: CostModel,
    /// Number of processors.
    pub nprocs: usize,
    /// Mesh side length (the mesh is `mesh_side × mesh_side`).
    pub mesh_side: usize,
    /// Number of sweeps to report (the paper uses 100).
    pub sweeps: usize,
    /// Fill in the speedup column (relative to the one-processor executor).
    pub compute_speedup: bool,
    /// If set, actually execute only this many sweeps and scale the executor
    /// time exactly (valid because the simulated per-sweep cost is constant
    /// once the schedule is cached).
    pub extrapolate_from: Option<usize>,
    /// Overlap communication with computation (the paper's executor shape).
    pub overlap: bool,
    /// Ablation: re-run the inspector on every sweep.
    pub disable_schedule_cache: bool,
    /// Check convergence with a global typed reduction every `k` sweeps
    /// (`None` — the paper's timed runs — disables the check).  The
    /// resulting value surfaces in `ExperimentRow::final_change`, and the
    /// reduction count/bytes in the row's `CommReport`.
    pub convergence_check_every: Option<usize>,
}

impl ExperimentParams {
    /// Row of the NCUBE/7 processor sweep (Figure 7) or iPSC/2 processor
    /// sweep (Figure 8): 128×128 mesh, 100 sweeps.
    pub fn paper_processor_row(cost: CostModel, nprocs: usize) -> Self {
        ExperimentParams {
            cost,
            nprocs,
            mesh_side: 128,
            sweeps: 100,
            compute_speedup: false,
            extrapolate_from: None,
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        }
    }

    /// Row of the mesh-size sweeps (Figures 9 and 10): fixed processor
    /// count, varying mesh, 100 sweeps, with speedup.
    pub fn paper_meshsize_row(cost: CostModel, nprocs: usize, mesh_side: usize) -> Self {
        ExperimentParams {
            cost,
            nprocs,
            mesh_side,
            sweeps: 100,
            compute_speedup: true,
            // Large meshes: measure 2 sweeps and scale exactly.
            extrapolate_from: if mesh_side > 256 { Some(2) } else { None },
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        }
    }
}

/// Run one experiment configuration and produce one table row.
pub fn run_jacobi_experiment(params: &ExperimentParams) -> ExperimentRow {
    let grid = RegularGrid::square(params.mesh_side);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();
    run_jacobi_experiment_on_mesh(params, &mesh, &initial)
}

/// Like [`run_jacobi_experiment`] but over an arbitrary mesh (used by the
/// unstructured-mesh examples and tests).
pub fn run_jacobi_experiment_on_mesh(
    params: &ExperimentParams,
    mesh: &AdjacencyMesh,
    initial: &[f64],
) -> ExperimentRow {
    run_jacobi_experiment_placed(params, mesh, initial, Placement::Block)
}

/// Run one configuration over `mesh` under the chosen node placement and
/// produce one table row.
///
/// The communication/cache statistics in the returned row's `comm` field
/// are the raw counters of the *measured* run — they are not scaled by the
/// extrapolation (message counts per sweep are constant once the schedule
/// is cached, so per-sweep rates can be derived exactly).
pub fn run_jacobi_experiment_placed(
    params: &ExperimentParams,
    mesh: &AdjacencyMesh,
    initial: &[f64],
    placement: Placement,
) -> ExperimentRow {
    let measured_sweeps = params
        .extrapolate_from
        .unwrap_or(params.sweeps)
        .min(params.sweeps)
        .max(1);
    let config = JacobiConfig {
        sweeps: measured_sweeps,
        overlap: params.overlap,
        convergence_check_every: params.convergence_check_every,
        disable_schedule_cache: params.disable_schedule_cache,
        ..JacobiConfig::default()
    };

    let machine = Machine::new(params.nprocs, params.cost.clone());
    let (outcomes, stats) = machine.run_stats(|proc| {
        let dist = match placement {
            Placement::Block => DimDist::block(mesh.len(), proc.nprocs()),
            Placement::Partitioned => partitioned_dist(proc, mesh),
        };
        jacobi_sweeps(proc, mesh, &dist, initial, &config)
    });

    let total_measured = outcomes.iter().map(|o| o.total_time).fold(0.0, f64::max);
    let inspector = outcomes
        .iter()
        .map(|o| o.inspector_time)
        .fold(0.0, f64::max);
    let executor_measured = total_measured - inspector;

    // Exact extrapolation: per-sweep executor cost is constant after the
    // first sweep (deterministic simulation, cached schedule).
    let scale = params.sweeps as f64 / measured_sweeps as f64;
    let executor = executor_measured * scale;
    let total = executor + inspector;

    let speedup = if params.compute_speedup {
        let seq = sequential_executor_time(&params.cost, mesh, params.sweeps);
        Some(seq / executor)
    } else {
        None
    };

    ExperimentRow {
        machine: params.cost.name.to_string(),
        nprocs: params.nprocs,
        mesh_side: params.mesh_side,
        mesh_nodes: mesh.len(),
        sweeps: params.sweeps,
        times: PhaseBreakdown {
            total,
            executor,
            inspector,
        },
        speedup,
        comm: CommReport {
            messages: stats.totals.msgs_sent,
            bytes: stats.totals.bytes_sent,
            nonlocal_refs: stats.totals.nonlocal_refs,
            halo_elements: outcomes.iter().map(|o| o.recv_elements).sum(),
            cache_hits: outcomes.iter().map(|o| o.cache_hits).sum(),
            cache_misses: outcomes.iter().map(|o| o.cache_misses).sum(),
            cache_evictions: outcomes.iter().map(|o| o.cache_evictions).sum(),
            cache_resident_bytes: outcomes.iter().map(|o| o.cache_resident_bytes).sum(),
            reductions: outcomes.iter().map(|o| o.reductions).sum(),
            queue_peak: stats.totals.queue_peak,
            reduction_bytes: outcomes.iter().map(|o| o.reduction_bytes).sum(),
            wire_bytes: stats.totals.wire_bytes,
        },
        // The convergence value describes the *measured* run; when the
        // extrapolation truncated it, the value would not correspond to the
        // row's claimed sweep count, so it is withheld.
        final_change: if measured_sweeps == params.sweeps {
            outcomes.first().and_then(|o| o.global_change)
        } else {
            None
        },
        phase_comms: Vec::new(),
    }
}

/// Simulated executor time of the same program on **one** processor — the
/// paper's speedup baseline ("the closest measurement we have to an optimal
/// sequential program, since it does not include any overhead for either the
/// inspector or for communication").
///
/// On one processor the executor performs no communication and every access
/// is local, so its simulated time has a closed form in the cost model; this
/// is verified against an actual one-processor run in the tests.
pub fn sequential_executor_time(cost: &CostModel, mesh: &AdjacencyMesh, sweeps: usize) -> f64 {
    let n = mesh.len() as f64;
    let edges = mesh.edge_count() as f64;
    let nodes_with_neighbors = (0..mesh.len()).filter(|&i| mesh.degree(i) > 0).count() as f64;

    // Copy forall: per node one loop iteration and two memory references.
    let copy = n * (cost.loop_iter + 2.0 * cost.mem_ref);
    // Relaxation forall, outer part: executor loop control, count[i] read,
    // and the final store for nodes with at least one neighbour.
    let outer = n * (cost.loop_iter + cost.mem_ref) + nodes_with_neighbors * cost.mem_ref;
    // Relaxation forall, inner part: per edge one loop iteration, adj/coef
    // reads, multiply-accumulate, and one local fetch of old_a.
    let inner =
        edges * (cost.loop_iter + 2.0 * cost.mem_ref + 2.0 * cost.flop + cost.local_access());

    sweeps as f64 * (copy + outer + inner)
}

/// Run a whole parameter sweep (one paper table) and return its rows.
pub fn run_sweep(rows: impl IntoIterator<Item = ExperimentParams>) -> Vec<ExperimentRow> {
    rows.into_iter()
        .map(|p| run_jacobi_experiment(&p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_formula_matches_actual_one_processor_run() {
        let grid = RegularGrid::square(12);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
            let params = ExperimentParams {
                cost: cost.clone(),
                nprocs: 1,
                mesh_side: 12,
                sweeps: 3,
                compute_speedup: false,
                extrapolate_from: None,
                overlap: true,
                disable_schedule_cache: false,
                convergence_check_every: None,
            };
            let row = run_jacobi_experiment_on_mesh(&params, &mesh, &initial);
            let formula = sequential_executor_time(&cost, &mesh, 3);
            let measured = row.times.executor;
            let rel = (measured - formula).abs() / formula;
            assert!(
                rel < 1e-9,
                "{}: formula {formula} vs measured {measured}",
                cost.name
            );
        }
    }

    #[test]
    fn extrapolation_matches_full_run_exactly() {
        let full = run_jacobi_experiment(&ExperimentParams {
            cost: CostModel::ncube7(),
            nprocs: 4,
            mesh_side: 16,
            sweeps: 12,
            compute_speedup: true,
            extrapolate_from: None,
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        });
        let extrapolated = run_jacobi_experiment(&ExperimentParams {
            cost: CostModel::ncube7(),
            nprocs: 4,
            mesh_side: 16,
            sweeps: 12,
            compute_speedup: true,
            extrapolate_from: Some(3),
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        });
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-30);
        assert!(rel(full.times.executor, extrapolated.times.executor) < 1e-9);
        assert!(rel(full.times.inspector, extrapolated.times.inspector) < 1e-9);
        assert!(rel(full.times.total, extrapolated.times.total) < 1e-9);
        assert!(
            rel(full.speedup.unwrap(), extrapolated.speedup.unwrap()) < 1e-9,
            "speedups must agree"
        );
    }

    #[test]
    fn more_processors_reduce_total_time() {
        let t = |nprocs| {
            run_jacobi_experiment(&ExperimentParams {
                cost: CostModel::ipsc2(),
                nprocs,
                mesh_side: 32,
                sweeps: 10,
                compute_speedup: false,
                extrapolate_from: None,
                overlap: true,
                disable_schedule_cache: false,
                convergence_check_every: None,
            })
            .times
            .total
        };
        let t2 = t(2);
        let t8 = t(8);
        assert!(t8 < t2 / 2.0, "t2 = {t2}, t8 = {t8}");
    }

    #[test]
    fn speedup_is_bounded_by_processor_count_and_positive() {
        let row = run_jacobi_experiment(&ExperimentParams {
            cost: CostModel::ipsc2(),
            nprocs: 8,
            mesh_side: 64,
            sweeps: 20,
            compute_speedup: true,
            extrapolate_from: Some(2),
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        });
        let s = row.speedup.unwrap();
        assert!(s > 1.0, "speedup {s} should exceed 1");
        assert!(s <= 8.05, "speedup {s} cannot exceed the processor count");
    }
}
