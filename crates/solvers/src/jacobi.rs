//! The paper's Figure 4 program: nearest-neighbour relaxation on a mesh in
//! adjacency-list form, written against the Kali global name space.
//!
//! ```text
//! while (not converged) do
//!   forall i in 1..n on old_a[i].loc do  old_a[i] := a[i]  end;
//!   forall i in 1..n on a[i].loc do
//!     var x : real;  x := 0.0;
//!     for j in 1..count[i] do  x := x + coef[i,j] * old_a[ adj[i,j] ];  end;
//!     if (count[i] > 0) then a[i] := x; end;
//!   end;
//! end;
//! ```
//!
//! The reference `old_a[adj[i,j]]` is data dependent, so the communication
//! schedule comes from the run-time inspector; it is computed once and
//! cached across sweeps (§3.3).  The solver accepts *any* distribution
//! through the [`DimDist`] handle — block/cyclic patterns or the
//! partitioned irregular owner maps of [`crate::partitioned`]; nothing in
//! the loop body depends on the placement, which is the paper's central
//! usability claim.  The program is generic over the
//! [`Process`] backend: on the `dmsim` simulator every per-operation cost
//! is charged to the machine's cost model so the simulated clocks reproduce
//! the paper's measurements; on the `kali-native` backend the cost hooks
//! are no-ops and the sweeps run at wall-clock speed, with bit-identical
//! array contents (the arithmetic order is backend-independent).

use distrib::DimDist;
use kali_core::process::{Counters, Process};
use kali_core::{AffineMap, Reduce, Session, Sum};
use meshes::AdjacencyMesh;

/// Parameters of a Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Number of relaxation sweeps ("we performed 100 Jacobi iterations",
    /// §4).
    pub sweeps: usize,
    /// Overlap communication with local iterations (the paper's executor
    /// shape); disabling it is an ablation.
    pub overlap: bool,
    /// Check convergence with a global residual reduction every `k` sweeps
    /// (`None` disables the check — the paper's timed runs use a fixed sweep
    /// count).
    pub convergence_check_every: Option<usize>,
    /// Re-run the inspector on every sweep instead of caching the schedule —
    /// the ablation quantifying §3.2's amortisation argument.
    pub disable_schedule_cache: bool,
    /// Intra-rank worker threads for the chunked executor (`None` keeps the
    /// session default, which honours `KALI_WORKERS`).  Results are bitwise
    /// identical at every worker count.
    pub workers: Option<usize>,
    /// Chunk size for the chunked executor (`None` keeps the session
    /// default, which honours `KALI_CHUNK`).
    pub chunk: Option<usize>,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            sweeps: 100,
            overlap: true,
            convergence_check_every: None,
            disable_schedule_cache: false,
            workers: None,
            chunk: None,
        }
    }
}

impl JacobiConfig {
    /// A configuration with the given sweep count and defaults otherwise.
    pub fn with_sweeps(sweeps: usize) -> Self {
        JacobiConfig {
            sweeps,
            ..JacobiConfig::default()
        }
    }
}

/// Per-processor result of a Jacobi run.
///
/// The time fields are **simulated seconds** on the `dmsim` backend and 0.0
/// on backends that keep no clock (the native backend).
#[derive(Debug, Clone)]
pub struct JacobiOutcome {
    /// Final values of the locally owned mesh nodes (in local-index order).
    pub local_a: Vec<f64>,
    /// Simulated seconds spent in the inspector on this processor.
    pub inspector_time: f64,
    /// Simulated seconds spent in everything else (copy loop, executor,
    /// convergence checks) on this processor.
    pub executor_time: f64,
    /// Total simulated seconds of the timed region on this processor.
    pub total_time: f64,
    /// Operation counters accumulated during the timed region.
    pub counters: Counters,
    /// Number of range records in this processor's receive schedule.
    pub schedule_ranges: usize,
    /// Number of elements this processor receives per sweep.
    pub recv_elements: usize,
    /// Number of distinct processors this processor exchanges data with.
    pub recv_partners: usize,
    /// Schedule-cache hits over the whole run (sweeps that reused a
    /// schedule instead of re-running the inspector).
    pub cache_hits: u64,
    /// Schedule-cache misses (inspector executions) over the whole run.
    pub cache_misses: u64,
    /// Schedule-cache evictions over the whole run (capacity pressure,
    /// generation self-invalidation, explicit invalidation).
    pub cache_evictions: u64,
    /// Approximate bytes of schedules resident in the cache at the end of
    /// the run.
    pub cache_resident_bytes: usize,
    /// Global squared change `Σ_i (a_i − old_a_i)²` of the **last**
    /// convergence check, identical on every rank (and bitwise identical
    /// across backends — the check goes through the typed reduction
    /// pipeline).  `None` when convergence checking is disabled.
    pub global_change: Option<f64>,
    /// Every convergence check's global squared change, in sweep order.
    pub change_history: Vec<f64>,
    /// Global reductions performed (one per convergence check).
    pub reductions: u64,
    /// Payload bytes this rank sent for those reductions.
    pub reduction_bytes: u64,
    /// Residual-style norm of the final local values (sum of squares), used
    /// by tests to compare against the sequential reference.
    pub local_norm: f64,
}

/// Run `config.sweeps` Jacobi sweeps over `mesh` with node arrays
/// distributed by `dist`, starting from the globally replicated `initial`
/// field.  Must be called collectively by every processor of the machine.
pub fn jacobi_sweeps<P: Process>(
    proc: &mut P,
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    initial: &[f64],
    config: &JacobiConfig,
) -> JacobiOutcome {
    let rank = proc.rank();
    let n = mesh.len();
    assert_eq!(dist.n(), n, "distribution must cover every mesh node");
    assert_eq!(initial.len(), n, "initial field must cover every mesh node");
    let width = mesh.max_degree();

    // ---- Set-up ("code to set up arrays 'adj' and 'coef'", untimed) -------
    // Every distributed array of Figure 4, scattered according to `dist`:
    //   a, old_a : real[n]         dist by [block]
    //   count    : integer[n]      dist by [block]
    //   adj      : integer[n, w]   dist by [block, *]
    //   coef     : real[n, w]      dist by [block, *]
    let local_rows = dist.local_count(rank);
    let mut a: Vec<f64> = (0..local_rows)
        .map(|l| initial[dist.global_index(rank, l)])
        .collect();
    let mut old_a: Vec<f64> = vec![0.0; local_rows];
    let count: Vec<u32> = (0..local_rows)
        .map(|l| mesh.degree(dist.global_index(rank, l)) as u32)
        .collect();
    let mut adj: Vec<u32> = vec![0; local_rows * width];
    let mut coef: Vec<f64> = vec![0.0; local_rows * width];
    for l in 0..local_rows {
        let g = dist.global_index(rank, l);
        let nbrs = mesh.neighbors(g);
        let cs = mesh.coefs(g);
        adj[l * width..l * width + nbrs.len()].copy_from_slice(nbrs);
        coef[l * width..l * width + cs.len()].copy_from_slice(cs);
    }

    let mut session = Session::new().overlap(config.overlap);
    if let Some(w) = config.workers {
        session.set_workers(w);
    }
    if let Some(c) = config.chunk {
        session.set_chunk_size(c);
    }
    let relaxation = session.loop_1d(n, dist.clone());
    // The convergence check of Figure 4 ("code to check convergence") is its
    // own forall over aligned arrays: identity subscripts, planned through
    // the closed form (zero planning messages), reduced through the typed
    // pipeline.
    let convergence = session.loop_1d(n, dist.clone());
    let exec_iters = relaxation.exec_iters(rank);

    let start_clock = proc.time();
    let counters_start = proc.counters();
    let mut schedule_ranges = 0usize;
    let mut recv_elements = 0usize;
    let mut recv_partners = 0usize;
    let mut change_history = Vec::new();
    let convergence_schedule = session.plan(proc, &convergence, dist, &[AffineMap::identity()]);

    for sweep in 0..config.sweeps {
        // -- copy mesh values: forall i on old_a[i].loc do old_a[i] := a[i] --
        // Purely local (a and old_a are aligned), so no schedule is needed.
        for l in 0..local_rows {
            proc.charge_loop_iters(1);
            proc.charge_mem_refs(2);
            old_a[l] = a[l];
        }

        // -- plan the relaxation forall (inspector, first sweep only) --------
        if config.disable_schedule_cache && sweep > 0 {
            session.bump_data_version();
        }
        let schedule = session.plan_indirect(proc, &relaxation, dist, |i, refs| {
            let l = dist.local_index(i);
            let deg = count[l] as usize;
            for j in 0..deg {
                refs.push(adj[l * width + j] as usize);
            }
        });
        schedule_ranges = schedule.range_count();
        recv_elements = schedule.recv_len;
        recv_partners = schedule.recv_partner_count();

        // -- perform relaxation (computational core) --------------------------
        // Chunked executor: the body computes each node's new value on a
        // worker thread against a read-only view; the sink applies the
        // writes on the calling thread in ascending iteration order.
        debug_assert_eq!(exec_iters.len(), local_rows);
        {
            let a_mut = &mut a;
            session.execute_chunked(
                proc,
                &relaxation,
                &schedule,
                dist,
                &old_a,
                |i, fetch| {
                    let l = dist.local_index(i);
                    fetch.charge_mem_refs(1); // count[i]
                    let deg = count[l] as usize;
                    let mut x = 0.0f64;
                    for j in 0..deg {
                        fetch.charge_loop_iters(1);
                        fetch.charge_mem_refs(2); // adj[i,j], coef[i,j]
                        let nb = adj[l * width + j] as usize;
                        let c = coef[l * width + j];
                        let v = fetch.fetch(nb);
                        fetch.charge_flops(2); // multiply + accumulate
                        x += c * v;
                    }
                    if deg > 0 {
                        fetch.charge_mem_refs(1); // a[i] := x
                        Some(x)
                    } else {
                        None
                    }
                },
                |i, x| {
                    if let Some(x) = x {
                        a_mut[dist.local_index(i)] = x;
                    }
                },
            );
        }

        // -- code to check convergence ----------------------------------------
        if let Some(every) = config.convergence_check_every {
            if every > 0 && (sweep + 1) % every == 0 {
                let a_ref = &a;
                let old_ref = &old_a;
                let global_change = session.execute_reduce_chunked(
                    proc,
                    &convergence,
                    &convergence_schedule,
                    dist,
                    &old_a,
                    Reduce::<Sum<f64>>::new(),
                    |i, fetch| {
                        let l = dist.local_index(i);
                        fetch.charge_mem_refs(2);
                        fetch.charge_flops(3);
                        let d = a_ref[l] - old_ref[l];
                        ((), d * d)
                    },
                    |_, ()| {},
                );
                change_history.push(global_change);
            }
        }
    }

    let total_time = proc.time() - start_clock;
    let counters = proc.counters().since(&counters_start);
    let local_norm = a.iter().map(|v| v * v).sum();
    let stats = session.stats();

    JacobiOutcome {
        local_a: a,
        inspector_time: stats.inspector_time,
        executor_time: total_time - stats.inspector_time,
        total_time,
        counters,
        schedule_ranges,
        recv_elements,
        recv_partners,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_evictions: stats.cache.evictions,
        cache_resident_bytes: stats.cache.resident_bytes,
        global_change: change_history.last().copied(),
        change_history,
        reductions: stats.reductions,
        reduction_bytes: stats.reduction_bytes,
        local_norm,
    }
}

/// Sequential reference implementation of the same relaxation, used to check
/// numerical equivalence (it performs the floating-point operations in the
/// same order as the distributed program, so results match bit for bit).
pub fn jacobi_sequential(mesh: &AdjacencyMesh, initial: &[f64], sweeps: usize) -> Vec<f64> {
    let n = mesh.len();
    assert_eq!(initial.len(), n);
    let mut a = initial.to_vec();
    let mut old_a = vec![0.0f64; n];
    for _ in 0..sweeps {
        old_a.copy_from_slice(&a);
        for i in 0..n {
            let deg = mesh.degree(i);
            let mut x = 0.0f64;
            for j in 0..deg {
                x += mesh.coefs(i)[j] * old_a[mesh.neighbors(i)[j] as usize];
            }
            if deg > 0 {
                a[i] = x;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{CostModel, Machine};
    use meshes::{RegularGrid, UnstructuredMeshBuilder};

    fn gather_solution(
        nprocs: usize,
        mesh: &AdjacencyMesh,
        initial: &[f64],
        config: &JacobiConfig,
        cost: CostModel,
    ) -> (Vec<f64>, Vec<JacobiOutcome>) {
        let machine = Machine::new(nprocs, cost);
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            jacobi_sweeps(proc, mesh, &dist, initial, config)
        });
        let dist = DimDist::block(mesh.len(), nprocs);
        let mut global = vec![0.0f64; mesh.len()];
        for (rank, outcome) in outcomes.iter().enumerate() {
            for (l, v) in outcome.local_a.iter().enumerate() {
                global[dist.global_index(rank, l)] = *v;
            }
        }
        (global, outcomes)
    }

    #[test]
    fn distributed_jacobi_matches_sequential_bitwise_on_grid() {
        let grid = RegularGrid::square(16);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let expected = jacobi_sequential(&mesh, &initial, 10);
        for nprocs in [1, 2, 4, 8] {
            let (got, _) = gather_solution(
                nprocs,
                &mesh,
                &initial,
                &JacobiConfig::with_sweeps(10),
                CostModel::ideal(),
            );
            assert_eq!(got, expected, "nprocs = {nprocs}");
        }
    }

    #[test]
    fn distributed_jacobi_matches_sequential_on_unstructured_mesh() {
        let mesh = UnstructuredMeshBuilder::new(12, 12).seed(42).build();
        let initial: Vec<f64> = (0..mesh.len()).map(|i| (i % 13) as f64 * 0.25).collect();
        let expected = jacobi_sequential(&mesh, &initial, 7);
        let (got, outcomes) = gather_solution(
            4,
            &mesh,
            &initial,
            &JacobiConfig::with_sweeps(7),
            CostModel::ideal(),
        );
        assert_eq!(got, expected);
        // The unstructured mesh must actually exercise communication.
        assert!(outcomes.iter().any(|o| o.recv_elements > 0));
    }

    #[test]
    fn scrambled_numbering_still_produces_correct_results() {
        let mesh = UnstructuredMeshBuilder::new(10, 10)
            .seed(5)
            .scramble_numbering(true)
            .build();
        let initial: Vec<f64> = (0..mesh.len()).map(|i| i as f64 * 0.01).collect();
        let expected = jacobi_sequential(&mesh, &initial, 5);
        let (got, outcomes) = gather_solution(
            8,
            &mesh,
            &initial,
            &JacobiConfig::with_sweeps(5),
            CostModel::ideal(),
        );
        assert_eq!(got, expected);
        // Scrambled numbering produces many more ranges than the tidy grid.
        let ranges: usize = outcomes.iter().map(|o| o.schedule_ranges).sum();
        assert!(
            ranges > 8,
            "expected fragmented schedules, got {ranges} ranges"
        );
    }

    #[test]
    fn inspector_runs_once_with_cache_and_every_sweep_without() {
        let grid = RegularGrid::square(12);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let run = |disable_cache: bool| {
            let machine = Machine::new(4, CostModel::ncube7());
            let outcomes = machine.run(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                let config = JacobiConfig {
                    sweeps: 10,
                    disable_schedule_cache: disable_cache,
                    ..JacobiConfig::default()
                };
                jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
            });
            outcomes
                .iter()
                .map(|o| o.inspector_time)
                .fold(0.0f64, f64::max)
        };
        let cached = run(false);
        let uncached = run(true);
        assert!(cached > 0.0);
        // Re-inspecting every sweep costs roughly 10x the once-only inspector.
        assert!(
            uncached > 5.0 * cached,
            "cached = {cached}, uncached = {uncached}"
        );
    }

    #[test]
    fn convergence_check_reduces_identically_on_all_ranks() {
        let grid = RegularGrid::square(8);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let config = JacobiConfig {
            sweeps: 6,
            convergence_check_every: Some(2),
            ..JacobiConfig::default()
        };
        let expected = jacobi_sequential(&mesh, &initial, 6);
        let (got, _) = gather_solution(4, &mesh, &initial, &config, CostModel::ideal());
        assert_eq!(got, expected);
    }

    #[test]
    fn convergence_value_is_surfaced_not_discarded() {
        // Regression: the solver used to allreduce the squared change and
        // throw the result away (`_global_change`).  It now flows through
        // the typed reduction pipeline into the outcome, identical on every
        // rank and equal — bit for bit — to the replayed reduction over the
        // sequential fields.
        let grid = RegularGrid::square(8);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let nprocs = 4;
        let config = JacobiConfig {
            sweeps: 6,
            convergence_check_every: Some(2),
            ..JacobiConfig::default()
        };
        let (_, outcomes) = gather_solution(nprocs, &mesh, &initial, &config, CostModel::ideal());
        let dist = DimDist::block(mesh.len(), nprocs);
        // Checks fire after sweeps 2, 4, 6; each compares against the
        // previous sweep's field.
        let expected: Vec<f64> = [2usize, 4, 6]
            .iter()
            .map(|&s| {
                let before = jacobi_sequential(&mesh, &initial, s - 1);
                let after = jacobi_sequential(&mesh, &initial, s);
                crate::reduce_replay::replay_sum(&dist, |i| {
                    let d = after[i] - before[i];
                    d * d
                })
            })
            .collect();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (rank, o) in outcomes.iter().enumerate() {
            assert_eq!(bits(&o.change_history), bits(&expected));
            assert_eq!(
                o.global_change.map(f64::to_bits),
                Some(expected[2].to_bits())
            );
            assert_eq!(o.reductions, 3, "one reduction per check");
            let sends = kali_core::process::tree_allreduce_sends(nprocs, rank) as u64;
            assert_eq!(o.reduction_bytes, 3 * sends * 8);
        }
        // Checks disabled: no reductions, no value.
        let quiet = JacobiConfig::with_sweeps(4);
        let (_, outcomes) = gather_solution(nprocs, &mesh, &initial, &quiet, CostModel::ideal());
        for o in &outcomes {
            assert_eq!(o.global_change, None);
            assert!(o.change_history.is_empty());
            assert_eq!(o.reductions, 0);
        }
    }

    #[test]
    fn overlap_does_not_change_results_only_timing() {
        let grid = RegularGrid::square(16);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let mut configs = Vec::new();
        for overlap in [true, false] {
            configs.push(JacobiConfig {
                sweeps: 4,
                overlap,
                ..JacobiConfig::default()
            });
        }
        let (with_overlap, _) =
            gather_solution(4, &mesh, &initial, &configs[0], CostModel::ncube7());
        let (without_overlap, _) =
            gather_solution(4, &mesh, &initial, &configs[1], CostModel::ncube7());
        assert_eq!(with_overlap, without_overlap);
    }

    #[test]
    fn executor_time_dominates_for_many_sweeps() {
        let grid = RegularGrid::square(16);
        let mesh = grid.five_point_mesh();
        let initial = grid.initial_field();
        let machine = Machine::new(4, CostModel::ncube7());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            jacobi_sweeps(proc, &mesh, &dist, &initial, &JacobiConfig::with_sweeps(50))
        });
        for o in outcomes {
            assert!(o.total_time > 0.0);
            assert!(o.executor_time > o.inspector_time);
            assert!((o.total_time - o.executor_time - o.inspector_time).abs() < 1e-9);
        }
    }
}
