//! Adaptive-mesh Jacobi: the workload that stresses the paper's
//! amortisation argument.
//!
//! §3.2 of the paper claims the inspector is affordable because its cost is
//! amortised "over many repetitions of the forall" — implicitly assuming
//! the `adj` array (and the placement) never changes.  An adaptive-mesh
//! run breaks that assumption on a schedule: every *k* sweeps the mesh is
//! refined or coarsened ([`meshes::adapt`]), which changes the reference
//! pattern of the relaxation `forall`; optionally the node placement is
//! rebalanced to the new connectivity and the live solution array is
//! redistributed.  The runtime contract under churn is:
//!
//! * every adaptation bumps the **data version**, so the schedule cache
//!   re-inspects exactly when the adjacency changed — never on any other
//!   sweep;
//! * every rebalance changes the **distribution fingerprint** and
//!   explicitly reclaims the retired placement's schedules
//!   ([`Session::retire_placement`]);
//! * cache residency stays **bounded** no matter how many (version,
//!   fingerprint) keys a long run mints — generation self-invalidation plus
//!   the LRU bound, measured by the eviction/resident-bytes counters the
//!   outcome surfaces.
//!
//! Amortisation then reappears as a function of the adaptation interval:
//! inspector cost per sweep is `O(1/k)`, falling toward the paper's
//! static-mesh figure as `k → ∞` (`table_adaptation` reproduces the curve).
//!
//! Everything here is deterministic — mesh evolution, partitioning,
//! iteration order, schedule construction — so dmsim and the native
//! backend produce bit-identical fields, and the sequential replay
//! ([`adaptive_jacobi_sequential`]) matches both exactly.

use distrib::DimDist;
use kali_core::process::{Counters, Process};
use kali_core::Session;
use meshes::{adapt_step, evolve, AdaptConfig, AdjacencyMesh};

use crate::partitioned::partitioned_dist;

/// Parameters of an adaptive-mesh Jacobi run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Total number of relaxation sweeps.
    pub sweeps: usize,
    /// Adapt the mesh before every sweep whose index is a positive multiple
    /// of this interval (`None` = static mesh, the paper's setting).
    pub adapt_every: Option<usize>,
    /// Parameters of the deterministic mesh perturbation.
    pub adapt: AdaptConfig,
    /// After each adaptation, repartition the new connectivity and
    /// redistribute the live solution array to the rebalanced placement.
    pub rebalance: bool,
    /// Overlap communication with local iterations (the paper's executor
    /// shape).
    pub overlap: bool,
    /// Residency bound of the schedule cache.
    pub cache_capacity: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            sweeps: 100,
            adapt_every: None,
            adapt: AdaptConfig::default(),
            rebalance: false,
            overlap: true,
            cache_capacity: kali_core::cache::DEFAULT_CAPACITY,
        }
    }
}

impl AdaptiveConfig {
    /// Number of adaptations a run of `self.sweeps` sweeps performs.
    pub fn adaptation_count(&self) -> u64 {
        match self.adapt_every {
            Some(k) if k > 0 && self.sweeps > 0 => ((self.sweeps - 1) / k) as u64,
            _ => 0,
        }
    }

    /// True when the mesh is adapted immediately before sweep `sweep`.
    fn adapts_before(&self, sweep: usize) -> bool {
        matches!(self.adapt_every, Some(k) if k > 0 && sweep > 0 && sweep.is_multiple_of(k))
    }
}

/// Per-processor result of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Final values of the locally owned mesh nodes under the final
    /// distribution (see [`final_placement`]).
    pub local_a: Vec<f64>,
    /// Number of mesh adaptations performed.
    pub adaptations: u64,
    /// Simulated seconds spent in the inspector on this processor.
    pub inspector_time: f64,
    /// Simulated seconds spent adapting: mesh perturbation, repartitioning
    /// and redistribution (0.0 for a static run).
    pub adapt_time: f64,
    /// Total simulated seconds of the timed region on this processor.
    pub total_time: f64,
    /// Operation counters accumulated during the timed region.
    pub counters: Counters,
    /// Schedule-cache hits over the run.
    pub cache_hits: u64,
    /// Schedule-cache misses (inspector executions) over the run.
    pub cache_misses: u64,
    /// Schedule-cache evictions over the run.
    pub cache_evictions: u64,
    /// Schedules resident in the cache at the end of the run.
    pub cache_resident_entries: usize,
    /// Highest number of simultaneously resident schedules.
    pub cache_peak_resident: usize,
    /// Approximate bytes of resident schedules at the end of the run.
    pub cache_resident_bytes: usize,
}

/// The distribution in effect after a run with `config` over `mesh`,
/// given the run's `initial` placement (a pure function — used by callers
/// to reassemble global numbering via [`gather_global`]).
///
/// The run only ever moves data inside the rebalance branch, so the
/// placement changes exactly when `rebalance` is set *and* at least one
/// adaptation fired; in every other case the initial distribution is still
/// in effect and is returned unchanged.
pub fn final_placement(
    mesh: &AdjacencyMesh,
    initial: &DimDist,
    config: &AdaptiveConfig,
) -> DimDist {
    if !config.rebalance || config.adaptation_count() == 0 {
        return initial.clone();
    }
    let nprocs = initial.nprocs();
    let final_mesh = evolve(mesh, &config.adapt, config.adaptation_count());
    DimDist::custom(meshes::greedy_partition(&final_mesh, nprocs), nprocs)
}

/// Reassemble per-rank local pieces into global numbering under `dist`
/// (rank `r`'s `locals[r][l]` lands at `dist.global_index(r, l)`), e.g. the
/// `local_a` fields of a run's outcomes under [`final_placement`].
pub fn gather_global(dist: &DimDist, locals: &[Vec<f64>]) -> Vec<f64> {
    let mut global = vec![0.0f64; dist.n()];
    for (rank, local) in locals.iter().enumerate() {
        for (l, v) in local.iter().enumerate() {
            global[dist.global_index(rank, l)] = *v;
        }
    }
    global
}

/// Run an adaptive-mesh Jacobi relaxation, collectively.
///
/// `dist` is the initial placement; `initial` is the globally replicated
/// starting field.  The mesh evolves identically on every rank (the
/// perturbation is deterministic), so version bumps — and therefore cache
/// misses, which trigger the *collective* inspector — stay in lockstep.
pub fn adaptive_jacobi_sweeps<P: Process>(
    proc: &mut P,
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    initial: &[f64],
    config: &AdaptiveConfig,
) -> AdaptiveOutcome {
    let rank = proc.rank();
    let n = mesh.len();
    assert_eq!(dist.n(), n, "distribution must cover every mesh node");
    assert_eq!(initial.len(), n, "initial field must cover every mesh node");

    let mut mesh = mesh.clone();
    let mut dist = dist.clone();
    let mut session = Session::with_cache_capacity(config.cache_capacity).overlap(config.overlap);
    // One loop id for the relaxation across every placement it migrates
    // through: a rebalance swaps the on-clause distribution in place (the
    // fingerprint in the cache key tells the placements apart).
    let mut relaxation = session.loop_1d(n, dist.clone());

    // Local pieces of the Figure 4 arrays under the current distribution.
    let mut a: Vec<f64> = dist.local_set(rank).iter().map(|g| initial[g]).collect();
    let (mut count, mut adj, mut coef, mut width) = scatter_mesh(&mesh, &dist, rank);
    let mut old_a: Vec<f64> = vec![0.0; a.len()];

    let start_clock = proc.time();
    let counters_start = proc.counters();
    let mut adapt_time = 0.0f64;
    let mut adaptations = 0u64;

    for sweep in 0..config.sweeps {
        // -- adapt the mesh (and optionally the placement) ------------------
        if config.adapts_before(sweep) {
            let before_adapt = proc.time();
            mesh = adapt_step(&mesh, &config.adapt, adaptations);
            adaptations += 1;
            session.bump_data_version();
            if config.rebalance {
                let new_dist = partitioned_dist(proc, &mesh);
                a = session.redistribute(proc, &dist, &new_dist, &a);
                // The old placement is retired: reclaim every schedule built
                // under it (any data version — the fingerprint alone marks
                // them stale).
                session.retire_placement(&relaxation, &dist);
                dist = new_dist;
                relaxation.on_dist = dist.clone();
            }
            // Re-scatter adj/coef from the adapted mesh (count/degrees may
            // have changed even without a redistribution).
            (count, adj, coef, width) = scatter_mesh(&mesh, &dist, rank);
            old_a.resize(a.len(), 0.0);
            adapt_time += proc.time() - before_adapt;
        }

        // -- copy forall: old_a[i] := a[i] (aligned, purely local) ----------
        for l in 0..a.len() {
            proc.charge_loop_iters(1);
            proc.charge_mem_refs(2);
            old_a[l] = a[l];
        }

        // -- plan the relaxation (inspector only on version/placement change)
        let schedule = {
            let dist_ref = &dist;
            let count_ref = &count;
            let adj_ref = &adj;
            session.plan_indirect(proc, &relaxation, &dist, |i, refs| {
                let l = dist_ref.local_index(i);
                let deg = count_ref[l] as usize;
                for j in 0..deg {
                    refs.push(adj_ref[l * width + j] as usize);
                }
            })
        };

        // -- perform the relaxation ----------------------------------------
        let a_mut = &mut a;
        session.execute(proc, &relaxation, &schedule, &dist, &old_a, |i, fetch| {
            let l = dist.local_index(i);
            fetch.proc().charge_mem_refs(1); // count[i]
            let deg = count[l] as usize;
            let mut x = 0.0f64;
            for j in 0..deg {
                fetch.proc().charge_loop_iters(1);
                fetch.proc().charge_mem_refs(2); // adj[i,j], coef[i,j]
                let nb = adj[l * width + j] as usize;
                let c = coef[l * width + j];
                let v = fetch.fetch(nb);
                fetch.proc().charge_flops(2);
                x += c * v;
            }
            if deg > 0 {
                fetch.proc().charge_mem_refs(1); // a[i] := x
                a_mut[l] = x;
            }
        });
    }

    let total_time = proc.time() - start_clock;
    let counters = proc.counters().since(&counters_start);
    let stats = session.stats();

    AdaptiveOutcome {
        local_a: a,
        adaptations,
        inspector_time: stats.inspector_time,
        adapt_time,
        total_time,
        counters,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        cache_evictions: stats.cache.evictions,
        cache_resident_entries: stats.cache.resident_entries,
        cache_peak_resident: stats.cache.peak_resident,
        cache_resident_bytes: stats.cache.resident_bytes,
    }
}

/// Scatter the mesh's `count`/`adj`/`coef` arrays to this rank's local rows
/// under `dist` (the untimed set-up of Figure 4, repeated after every
/// adaptation).  Shared with the other mesh solvers (CG, red–black).
pub(crate) fn scatter_mesh(
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    rank: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>, usize) {
    let width = mesh.max_degree();
    let local_rows = dist.local_count(rank);
    let mut count = Vec::with_capacity(local_rows);
    let mut adj = vec![0u32; local_rows * width];
    let mut coef = vec![0.0f64; local_rows * width];
    for l in 0..local_rows {
        let g = dist.global_index(rank, l);
        let nbrs = mesh.neighbors(g);
        let cs = mesh.coefs(g);
        count.push(nbrs.len() as u32);
        adj[l * width..l * width + nbrs.len()].copy_from_slice(nbrs);
        coef[l * width..l * width + cs.len()].copy_from_slice(cs);
    }
    (count, adj, coef, width)
}

/// Sequential replay of the same adaptive run: identical adaptation
/// schedule, identical arithmetic order — distributed results match this
/// bit for bit on every backend.
pub fn adaptive_jacobi_sequential(
    mesh: &AdjacencyMesh,
    initial: &[f64],
    config: &AdaptiveConfig,
) -> Vec<f64> {
    let n = mesh.len();
    assert_eq!(initial.len(), n);
    let mut mesh = mesh.clone();
    let mut a = initial.to_vec();
    let mut old_a = vec![0.0f64; n];
    let mut adaptations = 0u64;
    for sweep in 0..config.sweeps {
        if config.adapts_before(sweep) {
            mesh = adapt_step(&mesh, &config.adapt, adaptations);
            adaptations += 1;
        }
        old_a.copy_from_slice(&a);
        for i in 0..n {
            let deg = mesh.degree(i);
            let mut x = 0.0f64;
            for j in 0..deg {
                x += mesh.coefs(i)[j] * old_a[mesh.neighbors(i)[j] as usize];
            }
            if deg > 0 {
                a[i] = x;
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{CostModel, Machine};
    use meshes::UnstructuredMeshBuilder;

    fn test_mesh() -> AdjacencyMesh {
        UnstructuredMeshBuilder::new(10, 10)
            .seed(13)
            .scramble_numbering(true)
            .build()
    }

    fn test_initial(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 23) % 31) as f64 * 0.125).collect()
    }

    use super::gather_global as gather;

    #[test]
    fn static_run_matches_plain_jacobi() {
        let mesh = test_mesh();
        let initial = test_initial(mesh.len());
        let config = AdaptiveConfig {
            sweeps: 6,
            ..AdaptiveConfig::default()
        };
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let dist = DimDist::block(mesh.len(), 4);
        let got = gather(
            &dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        let expected = crate::jacobi::jacobi_sequential(&mesh, &initial, 6);
        assert_eq!(got, expected);
        for o in &outcomes {
            assert_eq!(o.adaptations, 0);
            assert_eq!(o.cache_misses, 1, "static mesh: one inspector run");
            assert_eq!(o.cache_hits, 5);
            assert_eq!(o.cache_evictions, 0);
        }
    }

    #[test]
    fn adaptive_run_matches_the_sequential_replay() {
        let mesh = test_mesh();
        let initial = test_initial(mesh.len());
        let config = AdaptiveConfig {
            sweeps: 12,
            adapt_every: Some(3),
            ..AdaptiveConfig::default()
        };
        let expected = adaptive_jacobi_sequential(&mesh, &initial, &config);
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let dist = DimDist::block(mesh.len(), 4);
        let got = gather(
            &dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(got, expected);
        // Sweeps 3, 6, 9 adapt: one re-inspection each plus the initial one.
        for o in &outcomes {
            assert_eq!(o.adaptations, 3);
            assert_eq!(o.cache_misses, 4);
            assert_eq!(o.cache_hits, 8);
            // Generation self-invalidation reclaims each stale version.
            assert_eq!(o.cache_evictions, 3);
            assert_eq!(o.cache_resident_entries, 1);
        }
    }

    #[test]
    fn rebalancing_run_matches_the_sequential_replay() {
        let mesh = test_mesh();
        let initial = test_initial(mesh.len());
        let config = AdaptiveConfig {
            sweeps: 10,
            adapt_every: Some(4),
            rebalance: true,
            ..AdaptiveConfig::default()
        };
        let nprocs = 4;
        let expected = adaptive_jacobi_sequential(&mesh, &initial, &config);
        let machine = Machine::new(nprocs, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let init_dist = DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs);
        let final_dist = final_placement(&mesh, &init_dist, &config);
        let got = gather(
            &final_dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        );
        assert_eq!(got, expected);
        for o in &outcomes {
            assert_eq!(o.adaptations, 2);
            assert_eq!(o.cache_misses, 3, "initial + one per adaptation");
            // Fingerprint invalidation reclaims the retired placement
            // immediately; only the live schedule stays resident.
            assert_eq!(o.cache_resident_entries, 1);
            assert_eq!(o.cache_evictions, 2);
        }
    }

    #[test]
    fn final_placement_returns_the_initial_dist_when_no_rebalance_occurred() {
        // Regression: the run only moves data inside the rebalance branch,
        // so gathering through a greedy partition after a run that never
        // rebalanced (rebalance off, or zero adaptations) would silently
        // permute the global field.
        let mesh = test_mesh();
        let block = DimDist::block(mesh.len(), 4);
        let no_rebalance = AdaptiveConfig {
            sweeps: 8,
            adapt_every: Some(2),
            ..AdaptiveConfig::default()
        };
        assert_eq!(
            final_placement(&mesh, &block, &no_rebalance).fingerprint(),
            block.fingerprint(),
            "rebalance off: placement never changes"
        );
        let zero_adaptations = AdaptiveConfig {
            sweeps: 4,
            adapt_every: Some(8),
            rebalance: true,
            ..AdaptiveConfig::default()
        };
        assert_eq!(
            final_placement(&mesh, &block, &zero_adaptations).fingerprint(),
            block.fingerprint(),
            "no adaptation fired: placement never changes"
        );
        let rebalanced = AdaptiveConfig {
            sweeps: 8,
            adapt_every: Some(2),
            rebalance: true,
            ..AdaptiveConfig::default()
        };
        assert_ne!(
            final_placement(&mesh, &block, &rebalanced).fingerprint(),
            block.fingerprint(),
            "rebalanced runs end on the partition of the final mesh"
        );
    }

    #[test]
    fn inspector_cost_per_sweep_falls_as_the_adaptation_interval_grows() {
        // The acceptance criterion of the adaptive subsystem: amortisation
        // under churn.  k = 1 re-inspects every sweep; larger intervals
        // amortise toward the static-mesh cost.
        let mesh = test_mesh();
        let initial = test_initial(mesh.len());
        let sweeps = 16usize;
        let mut per_sweep = Vec::new();
        for k in [Some(1), Some(2), Some(4), Some(8), None] {
            let config = AdaptiveConfig {
                sweeps,
                adapt_every: k,
                ..AdaptiveConfig::default()
            };
            let machine = Machine::new(4, CostModel::ncube7());
            let outcomes = machine.run(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
            });
            let inspector = outcomes
                .iter()
                .map(|o| o.inspector_time)
                .fold(0.0f64, f64::max);
            per_sweep.push(inspector / sweeps as f64);
        }
        for w in per_sweep.windows(2) {
            assert!(
                w[1] < w[0],
                "inspector cost per sweep must fall with k: {per_sweep:?}"
            );
        }
    }

    #[test]
    fn cache_residency_stays_bounded_under_unbounded_churn() {
        // Rebalance every sweep with a tiny cache: the run mints a fresh
        // (version, fingerprint) pair per sweep — far more distinct keys
        // than the bound — yet residency never exceeds the capacity.
        let mesh = test_mesh();
        let initial = test_initial(mesh.len());
        let config = AdaptiveConfig {
            sweeps: 10,
            adapt_every: Some(1),
            rebalance: true,
            cache_capacity: 2,
            ..AdaptiveConfig::default()
        };
        let machine = Machine::new(2, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            adaptive_jacobi_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        for o in &outcomes {
            assert_eq!(o.adaptations, 9);
            assert_eq!(o.cache_misses, 10, "every sweep re-inspects");
            assert!(
                o.cache_peak_resident <= 2,
                "peak residency {} exceeds the bound",
                o.cache_peak_resident
            );
            assert_eq!(o.cache_resident_entries, 1);
            assert_eq!(o.cache_evictions, 9);
        }
    }

    #[test]
    fn adaptation_count_matches_the_sweep_schedule() {
        let mk = |sweeps, adapt_every| AdaptiveConfig {
            sweeps,
            adapt_every,
            ..AdaptiveConfig::default()
        };
        assert_eq!(mk(10, None).adaptation_count(), 0);
        assert_eq!(mk(10, Some(0)).adaptation_count(), 0);
        assert_eq!(mk(10, Some(1)).adaptation_count(), 9);
        assert_eq!(mk(10, Some(4)).adaptation_count(), 2);
        assert_eq!(mk(12, Some(3)).adaptation_count(), 3);
        assert_eq!(mk(0, Some(1)).adaptation_count(), 0);
    }
}
