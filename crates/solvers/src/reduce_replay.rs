//! Sequential replay of the runtime's deterministic reductions.
//!
//! `execute_reduce` folds each rank's contributions in ascending iteration
//! order and combines the per-rank partials with the collective's fixed
//! binomial-tree bracketing (the [`ReduceOp`] determinism contract).  A
//! sequential replay that wants to match a distributed run **bit for bit**
//! must fold with the same structure — per-rank partials first, then the
//! tree bracketing via [`tree_combine_partials`]; a plain global-order sum
//! rounds differently for any nontrivial placement or rank count.  These
//! helpers replay the structure for any [`Distribution`].

use distrib::Distribution;
use kali_core::process::{tree_combine_partials, ReduceOp};

/// Replay a distributed `execute_reduce` over the full index space of
/// `dist`: per-rank partials folded over the owned sets in ascending index
/// order, combined with the collective's binomial-tree bracketing, then
/// finished.
pub fn replay_reduce<R, D, F>(dist: &D, mut contribution: F) -> R::Acc
where
    R: ReduceOp,
    D: Distribution + ?Sized,
    F: FnMut(usize) -> R::Input,
{
    replay_reduce_filtered::<R, D, _, _>(dist, |_| true, &mut contribution)
}

/// Like [`replay_reduce`], restricted to the iterations `keep` accepts —
/// the replay of a reduction over a [`Stripe`](kali_core::Stripe)-spaced
/// loop (a red or black half-sweep).
pub fn replay_reduce_filtered<R, D, K, F>(dist: &D, mut keep: K, mut contribution: F) -> R::Acc
where
    R: ReduceOp,
    D: Distribution + ?Sized,
    K: FnMut(usize) -> bool,
    F: FnMut(usize) -> R::Input,
{
    let partials: Vec<R::Acc> = (0..dist.nprocs())
        .map(|rank| {
            R::fold(
                dist.local_set(rank)
                    .iter()
                    .filter(|&i| keep(i))
                    .map(&mut contribution),
            )
        })
        .collect();
    R::finish(tree_combine_partials::<R>(partials))
}

/// [`replay_reduce`] specialised to the ubiquitous `f64` sum.
pub fn replay_sum<D, F>(dist: &D, contribution: F) -> f64
where
    D: Distribution + ?Sized,
    F: FnMut(usize) -> f64,
{
    replay_reduce::<kali_core::Sum<f64>, D, F>(dist, contribution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distrib::DimDist;
    use kali_core::{Norm2, Sum};

    #[test]
    fn block_replay_is_the_tree_bracketing_of_the_per_rank_partials() {
        // Block owned sets are contiguous and ascending with rank, so the
        // per-rank partials are plain range sums (including the per-rank
        // identity starts, which add exactly 0.0 to nonnegative partials);
        // across ranks they combine with the collective's tree bracketing.
        let dist = DimDist::block(64, 4);
        let v: Vec<f64> = (0..64).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        let replayed = replay_sum(&dist, |i| v[i]);
        let partials: Vec<f64> = (0..4)
            .map(|r| v[r * 16..(r + 1) * 16].iter().fold(0.0, |a, x| a + x))
            .collect();
        let manual = (partials[0] + partials[1]) + (partials[2] + partials[3]);
        assert_eq!(replayed.to_bits(), manual.to_bits());
    }

    #[test]
    fn cyclic_replay_differs_from_the_global_order_sum() {
        // The point of replaying the partial structure: under a cyclic
        // placement the fold order differs from global order, and with
        // rounding-sensitive values so does the result.
        let dist = DimDist::cyclic(24, 4);
        let v: Vec<f64> = (0..24).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        let replayed = replay_sum(&dist, |i| v[i]);
        let global: f64 = v.iter().sum();
        assert_ne!(
            replayed.to_bits(),
            global.to_bits(),
            "cyclic partial structure must be visible in the rounding"
        );
    }

    #[test]
    fn filtered_replay_folds_only_the_kept_iterations() {
        let dist = DimDist::block(20, 2);
        let evens =
            replay_reduce_filtered::<Sum<f64>, _, _, _>(&dist, |i| i % 2 == 0, |i| i as f64);
        assert_eq!(evens, (0..20).filter(|i| i % 2 == 0).sum::<usize>() as f64);
    }

    #[test]
    fn norm2_replay_finishes_with_the_square_root() {
        let dist = DimDist::block(2, 1);
        let v = [3.0f64, 4.0];
        let norm = replay_reduce::<Norm2, _, _>(&dist, |i| v[i]);
        assert_eq!(norm, 5.0);
    }
}
