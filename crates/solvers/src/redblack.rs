//! Red–black Gauss–Seidel relaxation: **two interleaved `forall`s sharing
//! one schedule cache** — the program shape the [`Session`] API exists for.
//!
//! The nodes are coloured by index parity (red = even, black = odd) and each
//! sweep runs two half-sweeps:
//!
//! 1. the **red** `forall` updates every red node from a snapshot of the
//!    field taken at the start of the half-sweep,
//! 2. the **black** `forall` does the same — and therefore sees the red
//!    values just written.
//!
//! Each half-sweep is a damped relaxation
//! `a[i] := ½·a[i] + ½·Σ_j coef[i,j]·a[adj[i,j]]` (the self-weight makes the
//! iteration aperiodic, so it converges on any connected mesh).  On a mesh
//! whose parity classes are independent sets this is exactly classical
//! red–black Gauss–Seidel; on general adjacency the same-colour references
//! read the snapshot, which keeps the semantics deterministic and
//! placement independent.
//!
//! The two half-sweeps are [`Stripe`]-spaced loops with **distinct loop
//! ids**: each gets its own inspector run and its own cached schedule, but
//! both live in the one session cache (two misses total, hits forever
//! after).  Convergence is watched through the reduction pipeline: every
//! [`RedBlackConfig::check_every`] sweeps, both half-sweeps run as
//! [`Session::execute_reduce`] producing the squared change of the sweep,
//! and the resulting history is bitwise identical across dmsim, native and
//! the sequential replay ([`redblack_sequential`]).

use std::sync::Arc;

use distrib::DimDist;
use kali_core::process::{Counters, Process};
use kali_core::{
    analyze_stripe, AffineMap, Reduce, Session, SessionStats, Stripe, StripeSpec, Sum,
};
use meshes::AdjacencyMesh;

use crate::adaptive::scatter_mesh;
use crate::reduce_replay::replay_reduce_filtered;

/// Parameters of a red–black run.
#[derive(Debug, Clone, Copy)]
pub struct RedBlackConfig {
    /// Number of full sweeps (each = one red + one black half-sweep).
    pub sweeps: usize,
    /// Measure the squared change of the sweep (through the reduction
    /// pipeline) every `k` sweeps; `None` disables the measurement.
    pub check_every: Option<usize>,
    /// Overlap communication with local iterations.
    pub overlap: bool,
    /// Intra-rank worker threads for the chunked executor (`None` keeps the
    /// session default, which honours `KALI_WORKERS`).  The field and
    /// change history are bitwise identical at every worker count.
    pub workers: Option<usize>,
    /// Chunk size for the chunked executor (`None` keeps the session
    /// default, which honours `KALI_CHUNK`).
    pub chunk: Option<usize>,
}

impl Default for RedBlackConfig {
    fn default() -> Self {
        RedBlackConfig {
            sweeps: 50,
            check_every: Some(1),
            overlap: true,
            workers: None,
            chunk: None,
        }
    }
}

impl RedBlackConfig {
    /// A configuration with the given sweep count and defaults otherwise.
    pub fn with_sweeps(sweeps: usize) -> Self {
        RedBlackConfig {
            sweeps,
            ..RedBlackConfig::default()
        }
    }

    /// True when sweep `sweep` measures its change norm.
    fn checks(&self, sweep: usize) -> bool {
        matches!(self.check_every, Some(k) if k > 0 && (sweep + 1).is_multiple_of(k))
    }
}

/// Per-processor result of a red–black run.
#[derive(Debug, Clone)]
pub struct RedBlackOutcome {
    /// Final values of the locally owned mesh nodes (in local-index order).
    pub local_a: Vec<f64>,
    /// Squared change `Σ_i (a_i' − a_i)²` of every checked sweep (red +
    /// black halves), bitwise identical on every rank and backend.
    pub change_history: Vec<f64>,
    /// Simulated seconds this rank spent planning (from the session).
    pub inspector_time: f64,
    /// Total simulated seconds of the timed region on this rank.
    pub total_time: f64,
    /// Operation counters accumulated during the timed region.
    pub counters: Counters,
    /// Session meters: cache lifecycle plus reduction count/bytes.
    pub stats: SessionStats,
    /// Elements this rank receives per red half-sweep.
    pub red_recv_elements: usize,
    /// Elements this rank receives per black half-sweep.
    pub black_recv_elements: usize,
}

/// The damped half-sweep update at node value `own` with neighbour sum
/// `acc`: `½·own + ½·acc` (one shared definition keeps the distributed body
/// and the sequential replay in exact arithmetic agreement).
#[inline]
fn damped(own: f64, acc: f64) -> f64 {
    0.5 * own + 0.5 * acc
}

/// True when `mesh` is the 1-D chain: `neighbors(i) = {i−1, i+1} ∩ [0, n)`
/// for every node — the adjacency of a three-point stencil stored as
/// run-time data.
fn is_chain_mesh(mesh: &AdjacencyMesh) -> bool {
    let n = mesh.len();
    (0..n).all(|i| {
        let mut expect: Vec<u32> = Vec::with_capacity(2);
        if i > 0 {
            expect.push((i - 1) as u32);
        }
        if i + 1 < n {
            expect.push((i + 1) as u32);
        }
        let mut got: Vec<u32> = mesh.neighbors(i).to_vec();
        got.sort_unstable();
        got == expect
    })
}

/// Run `config.sweeps` red–black sweeps over `mesh`, collectively.
pub fn redblack_sweeps<P: Process>(
    proc: &mut P,
    mesh: &AdjacencyMesh,
    dist: &DimDist,
    initial: &[f64],
    config: &RedBlackConfig,
) -> RedBlackOutcome {
    let rank = proc.rank();
    let n = mesh.len();
    assert_eq!(dist.n(), n, "distribution must cover every mesh node");
    assert_eq!(initial.len(), n, "initial field must cover every mesh node");

    let mut session = Session::new().overlap(config.overlap);
    if let Some(w) = config.workers {
        session.set_workers(w);
    }
    if let Some(c) = config.chunk {
        session.set_chunk_size(c);
    }
    // Two interleaved foralls, distinct ids, one shared cache.
    let red = session.loop_over(Stripe::new(0, n, 2), dist.clone());
    let black = session.loop_over(Stripe::new(1, n, 2), dist.clone());

    let (count, adj, coef, width) = scatter_mesh(mesh, dist, rank);
    let local_rows = dist.local_count(rank);
    let mut a: Vec<f64> = (0..local_rows)
        .map(|l| initial[dist.global_index(rank, l)])
        .collect();
    let mut old_a = vec![0.0f64; local_rows];

    let start_clock = proc.time();
    let counters_start = proc.counters();

    // Each colour's references are exactly its own nodes' adjacency, so the
    // two schedules are disjoint halves of the Jacobi schedule.
    //
    // Chain meshes — `neighbors(i) = {i−1, i+1} ∩ [0, n)` — are the 1-D
    // three-point stencil stored as run-time data: each colour's references
    // are the affine shifts `i∓1` over its stripe (boundary references
    // clip), so the schedule has a closed form ([`analyze_stripe`]) and
    // planning exchanges **zero messages** and never runs the inspector.
    // Any other adjacency falls back to the cached inspector, as before.
    let (red_schedule, black_schedule) = if is_chain_mesh(mesh) {
        let stripe_schedule = |lo: usize| {
            let spec = StripeSpec {
                lo,
                hi: n,
                step: 2,
                on_dist: dist.clone(),
                data_dist: dist.clone(),
                ref_maps: vec![AffineMap::shift(-1), AffineMap::shift(1)],
            };
            Arc::new(
                analyze_stripe(&spec, rank)
                    .expect("unit-stride stripe stencils always have a closed form"),
            )
        };
        (stripe_schedule(0), stripe_schedule(1))
    } else {
        let refs_of = |i: usize, refs: &mut Vec<usize>| {
            let l = dist.local_index(i);
            for j in 0..count[l] as usize {
                refs.push(adj[l * width + j] as usize);
            }
        };
        (
            session.plan_indirect(proc, &red, dist, refs_of),
            session.plan_indirect(proc, &black, dist, refs_of),
        )
    };
    let red_recv_elements = red_schedule.recv_len;
    let black_recv_elements = black_schedule.recv_len;

    let mut change_history = Vec::new();

    for sweep in 0..config.sweeps {
        let check = config.checks(sweep);
        let mut sweep_change = 0.0f64;
        for (loop_, schedule) in [(&red, &red_schedule), (&black, &black_schedule)] {
            // Snapshot for this half-sweep: same-colour references read it,
            // cross-colour references see the other half's fresh values.
            for l in 0..local_rows {
                proc.charge_loop_iters(1);
                proc.charge_mem_refs(2);
                old_a[l] = a[l];
            }
            let old_ref = &old_a;
            let count_ref = &count;
            let adj_ref = &adj;
            let coef_ref = &coef;
            let body_value =
                |l: usize, fetch: &mut kali_core::ChunkFetcher<'_, f64, DimDist>| -> f64 {
                    fetch.charge_mem_refs(2); // count[i], a[i]
                    let deg = count_ref[l] as usize;
                    let mut acc = 0.0f64;
                    for j in 0..deg {
                        fetch.charge_loop_iters(1);
                        fetch.charge_mem_refs(2); // adj[i,j], coef[i,j]
                        let nb = adj_ref[l * width + j] as usize;
                        let c = coef_ref[l * width + j];
                        let v = fetch.fetch(nb);
                        fetch.charge_flops(2);
                        acc += c * v;
                    }
                    fetch.charge_flops(2);
                    if deg > 0 {
                        damped(old_ref[l], acc)
                    } else {
                        old_ref[l]
                    }
                };
            if check {
                let a_mut = &mut a;
                let half_change = session.execute_reduce_chunked(
                    proc,
                    loop_,
                    schedule,
                    dist,
                    &old_a,
                    Reduce::<Sum<f64>>::new(),
                    |i, fetch| {
                        let l = dist.local_index(i);
                        let new = body_value(l, fetch);
                        fetch.charge_flops(3);
                        let d = new - old_ref[l];
                        (new, d * d)
                    },
                    |i, new| {
                        a_mut[dist.local_index(i)] = new;
                    },
                );
                proc.charge_flops(1);
                sweep_change += half_change;
            } else {
                let a_mut = &mut a;
                session.execute_chunked(
                    proc,
                    loop_,
                    schedule,
                    dist,
                    &old_a,
                    |i, fetch| body_value(dist.local_index(i), fetch),
                    |i, new| {
                        a_mut[dist.local_index(i)] = new;
                    },
                );
            }
        }
        if check {
            change_history.push(sweep_change);
        }
    }

    let total_time = proc.time() - start_clock;
    let counters = proc.counters().since(&counters_start);

    RedBlackOutcome {
        local_a: a,
        change_history,
        inspector_time: session.inspector_time(),
        total_time,
        counters,
        stats: session.stats(),
        red_recv_elements,
        black_recv_elements,
    }
}

/// Sequential replay of the same red–black run: identical half-sweep
/// snapshots, identical arithmetic, identical reduction structure — the
/// distributed field and change history match this bit for bit on every
/// backend.  Returns `(field, change_history)`.
pub fn redblack_sequential(
    mesh: &AdjacencyMesh,
    initial: &[f64],
    config: &RedBlackConfig,
    dist: &DimDist,
) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.len();
    assert_eq!(initial.len(), n);
    let mut a = initial.to_vec();
    let mut old_a = vec![0.0f64; n];
    let mut history = Vec::new();

    for sweep in 0..config.sweeps {
        let check = config.checks(sweep);
        let mut sweep_change = 0.0f64;
        for colour in 0..2usize {
            old_a.copy_from_slice(&a);
            for i in (colour..n).step_by(2) {
                let deg = mesh.degree(i);
                let mut acc = 0.0f64;
                for j in 0..deg {
                    acc += mesh.coefs(i)[j] * old_a[mesh.neighbors(i)[j] as usize];
                }
                a[i] = if deg > 0 {
                    damped(old_a[i], acc)
                } else {
                    old_a[i]
                };
            }
            if check {
                let half = replay_reduce_filtered::<Sum<f64>, _, _, _>(
                    dist,
                    |i| i % 2 == colour,
                    |i| {
                        let d = a[i] - old_a[i];
                        d * d
                    },
                );
                sweep_change += half;
            }
        }
        if check {
            history.push(sweep_change);
        }
    }
    (a, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::partitioned_dist;
    use dmsim::{CostModel, Machine};
    use meshes::{RegularGrid, UnstructuredMeshBuilder};

    fn field(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 29) % 23) as f64 * 0.125).collect()
    }

    fn gather(dist: &DimDist, outcomes: &[RedBlackOutcome]) -> Vec<f64> {
        crate::adaptive::gather_global(
            dist,
            &outcomes
                .iter()
                .map(|o| o.local_a.clone())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn two_loop_ids_share_one_cache_and_inspect_once_each() {
        let mesh = UnstructuredMeshBuilder::new(8, 8).seed(5).build();
        let initial = field(mesh.len());
        let config = RedBlackConfig {
            sweeps: 8,
            check_every: None,
            ..RedBlackConfig::default()
        };
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            redblack_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        for o in &outcomes {
            assert_eq!(o.stats.loops_allocated, 2);
            assert_eq!(o.stats.cache.misses, 2, "one inspector run per colour");
            assert_eq!(
                o.stats.cache.hits, 0,
                "schedules are planned once, up front"
            );
            assert_eq!(o.stats.cache.resident_entries, 2);
            assert_eq!(o.stats.sweeps_executed, 2 * 8);
            assert_eq!(o.stats.reductions, 0);
        }
    }

    #[test]
    fn matches_the_sequential_replay_bitwise_under_partitioned_placement() {
        let mesh = UnstructuredMeshBuilder::new(10, 10)
            .seed(19)
            .scramble_numbering(true)
            .build();
        let initial = field(mesh.len());
        let config = RedBlackConfig {
            sweeps: 12,
            check_every: Some(3),
            ..RedBlackConfig::default()
        };
        let nprocs = 4;
        let machine = Machine::new(nprocs, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = partitioned_dist(proc, &mesh);
            redblack_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let dist = DimDist::custom(meshes::greedy_partition(&mesh, nprocs), nprocs);
        let (seq_a, seq_history) = redblack_sequential(&mesh, &initial, &config, &dist);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for o in &outcomes {
            assert_eq!(bits(&o.change_history), bits(&seq_history));
            assert_eq!(o.stats.reductions, 2 * 4, "two per checked sweep");
        }
        assert_eq!(bits(&gather(&dist, &outcomes)), bits(&seq_a));
    }

    #[test]
    fn change_norm_falls_monotonically_on_a_connected_mesh() {
        let mesh = RegularGrid::square(10).five_point_mesh();
        let initial = field(mesh.len());
        let config = RedBlackConfig {
            sweeps: 40,
            check_every: Some(1),
            ..RedBlackConfig::default()
        };
        let machine = Machine::new(4, CostModel::ideal());
        let outcomes = machine.run(|proc| {
            let dist = DimDist::block(mesh.len(), proc.nprocs());
            redblack_sweeps(proc, &mesh, &dist, &initial, &config)
        });
        let history = &outcomes[0].change_history;
        assert_eq!(history.len(), 40);
        assert!(
            history[39] < history[0] * 1e-3,
            "relaxation must converge: {} -> {}",
            history[0],
            history[39]
        );
        for w in history.windows(2) {
            assert!(w[1] <= w[0], "change norm must not increase: {w:?}");
        }
    }

    #[test]
    fn chain_meshes_plan_in_closed_form_with_zero_messages() {
        // A 1-D chain is the three-point stencil as run-time data: planning
        // must go through the stripe closed form — no inspector runs (cache
        // misses stay 0) and no planning traffic at all.
        let mesh = RegularGrid::new(40, 1).five_point_mesh();
        assert!(is_chain_mesh(&mesh));
        let initial = field(mesh.len());
        let config = RedBlackConfig {
            sweeps: 0, // counters then cover planning alone
            check_every: None,
            ..RedBlackConfig::default()
        };
        let nprocs = 4;
        for dist in [
            DimDist::block(mesh.len(), nprocs),
            DimDist::cyclic(mesh.len(), nprocs),
        ] {
            let machine = Machine::new(nprocs, CostModel::ncube7());
            let outcomes = machine.run(|proc| {
                let d = dist.clone();
                redblack_sweeps(proc, &mesh, &d, &initial, &config)
            });
            for (rank, o) in outcomes.iter().enumerate() {
                assert_eq!(o.stats.cache.misses, 0, "rank {rank}: no inspector runs");
                assert_eq!(o.stats.cache.resident_entries, 0);
                assert_eq!(
                    o.counters.msgs_sent, 0,
                    "rank {rank}: zero planning messages"
                );
                assert_eq!(o.counters.msgs_recv, 0);
                assert_eq!(o.inspector_time, 0.0, "closed form costs no simulated time");
            }
            // The closed form still produced real halo schedules.
            let total_recv: usize = outcomes
                .iter()
                .map(|o| o.red_recv_elements + o.black_recv_elements)
                .sum();
            assert!(
                total_recv > 0,
                "chain halos must exist across {nprocs} ranks"
            );
        }
    }

    #[test]
    fn chain_fast_path_matches_the_sequential_replay_bitwise() {
        // The closed-form schedules must drive the executor to the exact
        // same bits as the (inspector-planned) contract: field and change
        // history agree with the sequential replay on every rank.
        let mesh = RegularGrid::new(37, 1).five_point_mesh();
        assert!(is_chain_mesh(&mesh));
        let initial = field(mesh.len());
        let config = RedBlackConfig {
            sweeps: 10,
            check_every: Some(2),
            ..RedBlackConfig::default()
        };
        let nprocs = 4;
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for dist in [
            DimDist::block(mesh.len(), nprocs),
            DimDist::cyclic(mesh.len(), nprocs),
            DimDist::block_cyclic(mesh.len(), nprocs, 3),
        ] {
            let machine = Machine::new(nprocs, CostModel::ideal());
            let outcomes = machine.run(|proc| {
                let d = dist.clone();
                redblack_sweeps(proc, &mesh, &d, &initial, &config)
            });
            let (seq_a, seq_history) = redblack_sequential(&mesh, &initial, &config, &dist);
            for o in &outcomes {
                assert_eq!(bits(&o.change_history), bits(&seq_history));
                assert_eq!(o.stats.cache.misses, 0, "chain planning never inspects");
            }
            assert_eq!(bits(&gather(&dist, &outcomes)), bits(&seq_a));
        }
    }

    #[test]
    fn non_chain_meshes_still_use_the_cached_inspector() {
        // A 2-D grid is not a chain: detection must leave the indirect path
        // (and its cache behaviour) untouched.
        assert!(!is_chain_mesh(&RegularGrid::square(5).five_point_mesh()));
        assert!(!is_chain_mesh(
            &UnstructuredMeshBuilder::new(6, 6).seed(3).build()
        ));
        // A scrambled chain is not a chain either (numbering matters).
        let mesh = RegularGrid::new(12, 1).five_point_mesh();
        assert!(is_chain_mesh(&mesh));
    }

    #[test]
    fn checked_and_unchecked_runs_produce_the_same_field() {
        // The reduction is a pure output: turning it on must not change a
        // single bit of the field.
        let mesh = UnstructuredMeshBuilder::new(9, 9).seed(2).build();
        let initial = field(mesh.len());
        let run = |check_every| {
            let config = RedBlackConfig {
                sweeps: 6,
                check_every,
                ..RedBlackConfig::default()
            };
            let machine = Machine::new(4, CostModel::ideal());
            let outcomes = machine.run(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                redblack_sweeps(proc, &mesh, &dist, &initial, &config)
            });
            let dist = DimDist::block(mesh.len(), 4);
            gather(&dist, &outcomes)
        };
        let with = run(Some(1));
        let without = run(None);
        assert_eq!(
            with.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            without.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
