//! # solvers — applications written against the Kali global name space
//!
//! The paper's running example (Figure 4) is a nearest-neighbour Jacobi
//! relaxation over a mesh held in adjacency-list form.  This crate contains:
//!
//! * [`jacobi`] — that program, written against the `kali-core` API exactly
//!   as the paper's compiler would have generated it: a fully local copy
//!   `forall`, an inspector-planned relaxation `forall` with cached
//!   schedules, and per-phase simulated timing.
//! * [`experiment`] — the measurement driver that reproduces the paper's
//!   evaluation: it builds a machine (NCUBE/7 or iPSC/2 cost model), builds
//!   the mesh, runs the Kali Jacobi program SPMD, and reduces per-processor
//!   clocks into the rows of Figures 7–10 (total / executor / inspector
//!   time, inspector overhead, speedup).
//! * [`report`] — the row/report types shared by the experiment driver, the
//!   table binaries and the integration tests.
//! * [`partitioned`] — the connectivity-partitioned distribution for mesh
//!   problems: the greedy mesh partitioner's owner map, assembled
//!   collectively into a `distrib::IrregularDist` and handed to the solvers
//!   like any other distribution.
//! * [`multidim`] — the 2-D phase-change demo: alternating-direction
//!   smoothing over a `rows × cols` field that is redistributed from
//!   `[block, *]` to `[*, block]` between sweep phases (the paper's
//!   motivating row↔column redistribution scenario), with per-phase
//!   communication reports and stencil schedules planned entirely by the
//!   multi-dimensional compile-time analysis.
//! * [`adaptive`] — the adaptive-mesh variant of the Jacobi program: the
//!   mesh is refined/coarsened every *k* sweeps (deterministically), the
//!   data version bumps so the bounded schedule cache re-inspects exactly
//!   when the adjacency changed, and rebalancing runs repartition the new
//!   connectivity and redistribute the live field — the workload that
//!   stresses the paper's §3.2 amortisation claim under churn.
//! * [`cg`] — conjugate gradient on the mesh's shifted graph Laplacian:
//!   three interleaved `forall`s and two dot-product reductions per
//!   iteration, all through one `Session`, with a bit-identical sequential
//!   replay of the residual history (and a CG-under-churn mode reusing the
//!   adaptive machinery).
//! * [`redblack`] — red–black Gauss–Seidel: two stripe-spaced `forall`s
//!   with distinct loop ids sharing one session cache, change-norm
//!   reductions fused into the half-sweeps.
//! * [`reduce_replay`] — sequential replay helpers reproducing the typed
//!   reduction pipeline's deterministic fold structure for any placement.
//!
//! Every solver runs against a `kali_core::Session`: the session owns the
//! schedule cache, allocates loop ids and sweep tags, tracks data versions
//! and redistribution epochs, accumulates inspector time, and meters the
//! typed reductions (`execute_reduce`) that replace the old out-of-band
//! `allreduce_sum_f64` calls.

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod cg;
pub mod experiment;
pub mod jacobi;
pub mod multidim;
pub mod partitioned;
pub mod redblack;
pub mod reduce_replay;
pub mod report;

pub use adaptive::{
    adaptive_jacobi_sequential, adaptive_jacobi_sweeps, final_placement, gather_global,
    AdaptiveConfig, AdaptiveOutcome,
};
pub use cg::{cg_sequential, cg_solve, CgConfig, CgOutcome};
pub use experiment::{
    run_jacobi_experiment, run_jacobi_experiment_on_mesh, run_jacobi_experiment_placed,
    sequential_executor_time, ExperimentParams, Placement,
};
pub use jacobi::{jacobi_sequential, jacobi_sweeps, JacobiConfig, JacobiOutcome};
pub use multidim::{
    col_placement, gather_multidim, multidim_field, multidim_sequential, multidim_sweeps,
    phase_comm_reports, row_placement, MultiDimConfig, MultiDimOutcome, PhaseStats, PhaseStrategy,
};
pub use partitioned::{partition_owner_map, partitioned_dist};
pub use redblack::{redblack_sequential, redblack_sweeps, RedBlackConfig, RedBlackOutcome};
pub use reduce_replay::{replay_reduce, replay_reduce_filtered, replay_sum};
pub use report::{CommReport, ExperimentRow, PhaseBreakdown};
