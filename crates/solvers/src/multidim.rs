//! The 2-D phase-change demo: alternating-direction smoothing with a
//! row↔column redistribution between phases — the paper's motivating
//! scenario for letting a program *change* the `dist` clause mid-run.
//!
//! The field is a `rows × cols` array.  Each round applies
//!
//! * a **vertical** phase — sweeps of the three-point stencil
//!   `a[i,j] := ¼·old[i-1,j] + ½·old[i,j] + ¼·old[i+1,j]` over the interior
//!   rows, then
//! * a **horizontal** phase — the transposed stencil over the interior
//!   columns.
//!
//! Under `dist by [block, *]` (rows blocked, [`ArrayDist::block_rows`]) the
//! horizontal stencil is fully local but the vertical one needs one
//! boundary *row* from each neighbour every sweep.  Under
//! `dist by [*, block]` ([`ArrayDist::block_cols`]) the situation is
//! transposed.  Two strategies make the trade-off measurable:
//!
//! * [`PhaseStrategy::RowsThroughout`] — stay on `[block, *]`; the vertical
//!   phase pays halo-row traffic every sweep.  Its schedule comes from the
//!   multi-dimensional compile-time analysis: **zero planning messages,
//!   zero inspector runs** (`table_multidim` asserts this).
//! * [`PhaseStrategy::PhaseChange`] — redistribute the live field to
//!   `[*, block]` before each vertical phase and back before each
//!   horizontal phase; every stencil reference becomes local and all
//!   communication moves into the two redistributions, whose cost the
//!   per-phase [`CommReport`]s expose.
//!
//! Both strategies perform the same floating-point operations in the same
//! order, so their results — and the results on every backend — are
//! bit-identical to the sequential replay ([`multidim_sequential`]).

use distrib::{ArrayDist, Distribution, FlatDist};
use kali_core::process::{Counters, Process};
use kali_core::{MultiAffineMap, Rect, Session};

use crate::report::CommReport;

/// How the field is placed across the phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhaseStrategy {
    /// `dist by [block, *]` throughout: vertical sweeps pay row halos.
    #[default]
    RowsThroughout,
    /// Redistribute `[block, *]` ↔ `[*, block]` between phases so every
    /// stencil is fully local; communication becomes redistribution.
    PhaseChange,
}

impl PhaseStrategy {
    /// Short name for table rows.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseStrategy::RowsThroughout => "rows-throughout",
            PhaseStrategy::PhaseChange => "phase-change",
        }
    }
}

/// Parameters of a 2-D phase-change run.
#[derive(Debug, Clone, Copy)]
pub struct MultiDimConfig {
    /// Field height (dimension 0).
    pub rows: usize,
    /// Field width (dimension 1).
    pub cols: usize,
    /// Number of (vertical phase, horizontal phase) rounds.
    pub rounds: usize,
    /// Sweeps per phase.
    pub sweeps_per_phase: usize,
    /// Placement strategy across phases.
    pub strategy: PhaseStrategy,
}

impl MultiDimConfig {
    /// A configuration with the given field shape and defaults otherwise.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 2 && cols >= 2, "the stencils need interior points");
        MultiDimConfig {
            rows,
            cols,
            rounds: 2,
            sweeps_per_phase: 4,
            strategy: PhaseStrategy::default(),
        }
    }

    /// Total number of stencil sweeps the run performs.
    pub fn total_sweeps(&self) -> usize {
        self.rounds * self.sweeps_per_phase * 2
    }
}

/// Per-rank, per-phase statistics, merged across rounds by label.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label ("vertical", "horizontal", "redistribute").
    pub label: &'static str,
    /// Simulated seconds spent in the phase on this rank.
    pub time: f64,
    /// Operation counters accumulated in the phase on this rank.
    pub counters: Counters,
    /// Elements this rank receives per stencil sweep in the phase (the
    /// schedule's halo size; 0 for redistribution phases).
    pub halo_elements: usize,
}

/// Per-processor result of a 2-D phase-change run.
#[derive(Debug, Clone)]
pub struct MultiDimOutcome {
    /// Final values of the locally owned elements under the final
    /// `[block, *]` placement (both strategies end there), in local
    /// row-major order.
    pub local_a: Vec<f64>,
    /// Total simulated seconds of the run on this processor.
    pub total_time: f64,
    /// Operation counters of the whole run on this processor.
    pub counters: Counters,
    /// Schedule-cache misses — inspector executions.  Both stencils are
    /// planned by the multi-dimensional compile-time analysis, so this is
    /// 0 on every rank; `table_multidim` asserts it.
    pub cache_misses: u64,
    /// Schedule-cache hits (also 0: the closed-form path bypasses the
    /// cache entirely).
    pub cache_hits: u64,
    /// Per-phase breakdown, merged across rounds.
    pub phases: Vec<PhaseStats>,
}

/// The `[block, *]` placement both strategies start and end on.
pub fn row_placement(config: &MultiDimConfig, nprocs: usize) -> FlatDist {
    FlatDist::new(ArrayDist::block_rows(config.rows, config.cols, nprocs))
}

/// The `[*, block]` placement the phase-change strategy uses for vertical
/// sweeps.
pub fn col_placement(config: &MultiDimConfig, nprocs: usize) -> FlatDist {
    FlatDist::new(ArrayDist::block_cols(config.rows, config.cols, nprocs))
}

fn record_phase(
    phases: &mut Vec<PhaseStats>,
    label: &'static str,
    time: f64,
    counters: Counters,
    halo_elements: usize,
) {
    if let Some(p) = phases.iter_mut().find(|p| p.label == label) {
        p.time += time;
        p.counters = p.counters.merge(&counters);
        p.halo_elements = p.halo_elements.max(halo_elements);
    } else {
        phases.push(PhaseStats {
            label,
            time,
            counters,
            halo_elements,
        });
    }
}

/// Run the 2-D phase-change program, collectively.  `initial` is the
/// globally replicated `rows × cols` starting field in row-major order.
pub fn multidim_sweeps<P: Process>(
    proc: &mut P,
    config: &MultiDimConfig,
    initial: &[f64],
) -> MultiDimOutcome {
    let (r, c) = (config.rows, config.cols);
    assert_eq!(initial.len(), r * c, "initial field must cover the array");
    let rank = proc.rank();
    let nprocs = proc.nprocs();

    let rows_dist = row_placement(config, nprocs);
    let cols_dist = col_placement(config, nprocs);

    // The two stencil loops.  Vertical: interior rows, every column;
    // horizontal: every row, interior columns.  Both reference patterns are
    // separable unit-stride shifts, so planning always takes the
    // compile-time path — zero messages, zero inspector runs.
    let v_space = Rect::full(&[r, c]).restrict(0, 1, r - 1);
    let h_space = Rect::full(&[r, c]).restrict(1, 1, c - 1);
    let v_refs = [
        MultiAffineMap::shifts(&[-1, 0]),
        MultiAffineMap::identity(2),
        MultiAffineMap::shifts(&[1, 0]),
    ];
    let h_refs = [
        MultiAffineMap::shifts(&[0, -1]),
        MultiAffineMap::identity(2),
        MultiAffineMap::shifts(&[0, 1]),
    ];

    // Scatter the initial field to the starting [block, *] placement.
    let mut a: Vec<f64> = (0..rows_dist.local_count(rank))
        .map(|l| initial[rows_dist.global_index(rank, l)])
        .collect();

    let mut session = Session::new();
    let mut phases: Vec<PhaseStats> = Vec::new();
    let start_clock = proc.time();
    let counters_start = proc.counters();

    // Plan each stencil once, up front: the loops, placements and reference
    // patterns never change across rounds, so re-planning per phase would
    // only repeat the (free, but not gratis) closed-form set computation.
    let v_dist = match config.strategy {
        PhaseStrategy::RowsThroughout => &rows_dist,
        PhaseStrategy::PhaseChange => &cols_dist,
    };
    let loop_v = session.loop_over(v_space, v_dist.clone());
    let schedule_v = session.plan(proc, &loop_v, v_dist, &v_refs);
    let loop_h = session.loop_over(h_space, rows_dist.clone());
    let schedule_h = session.plan(proc, &loop_h, &rows_dist, &h_refs);

    // One stencil phase: `sweeps_per_phase` sweeps of a pre-planned stencil
    // under `dist`, double-buffered through `old_a`.
    macro_rules! stencil_phase {
        ($label:literal, $loop_:expr, $schedule:expr, $dist:expr, $stride:expr) => {{
            let phase_clock = proc.time();
            let phase_counters = proc.counters();
            let dist = $dist;
            let loop_ = &$loop_;
            let schedule = &$schedule;
            let halo = schedule.recv_len;
            let mut old_a = vec![0.0f64; a.len()];
            for _ in 0..config.sweeps_per_phase {
                // forall on old_a[i,j].loc do old_a[i,j] := a[i,j] (aligned).
                for l in 0..a.len() {
                    proc.charge_loop_iters(1);
                    proc.charge_mem_refs(2);
                    old_a[l] = a[l];
                }
                session.execute(proc, loop_, schedule, dist, &old_a, |g, fetch| {
                    let lo = fetch.fetch(g - $stride);
                    let mid = fetch.fetch(g);
                    let hi = fetch.fetch(g + $stride);
                    fetch.proc().charge_flops(5);
                    fetch.proc().charge_mem_refs(1);
                    a[dist.local_index(g)] = 0.25 * lo + 0.5 * mid + 0.25 * hi;
                });
            }
            record_phase(
                &mut phases,
                $label,
                proc.time() - phase_clock,
                proc.counters().since(&phase_counters),
                halo,
            );
        }};
    }

    // Redistribute the live field between placements; the session tags each
    // move with its next epoch.
    macro_rules! redistribute_phase {
        ($from:expr, $to:expr) => {{
            let phase_clock = proc.time();
            let phase_counters = proc.counters();
            a = session.redistribute(proc, $from, $to, &a);
            record_phase(
                &mut phases,
                "redistribute",
                proc.time() - phase_clock,
                proc.counters().since(&phase_counters),
                0,
            );
        }};
    }

    for _round in 0..config.rounds {
        match config.strategy {
            PhaseStrategy::RowsThroughout => {
                stencil_phase!("vertical", loop_v, schedule_v, &rows_dist, c);
                stencil_phase!("horizontal", loop_h, schedule_h, &rows_dist, 1);
            }
            PhaseStrategy::PhaseChange => {
                // Columns local for the vertical stencil, rows local for the
                // horizontal one: each phase runs on the placement that makes
                // it communication free.
                redistribute_phase!(&rows_dist, &cols_dist);
                stencil_phase!("vertical", loop_v, schedule_v, &cols_dist, c);
                redistribute_phase!(&cols_dist, &rows_dist);
                stencil_phase!("horizontal", loop_h, schedule_h, &rows_dist, 1);
            }
        }
    }

    let stats = session.stats();
    MultiDimOutcome {
        local_a: a,
        total_time: proc.time() - start_clock,
        counters: proc.counters().since(&counters_start),
        cache_misses: stats.cache.misses,
        cache_hits: stats.cache.hits,
        phases,
    }
}

/// Sequential replay of the same program: identical phase order, identical
/// arithmetic — the distributed results match this bit for bit on every
/// backend under either strategy (the strategy only moves data, never
/// changes an operation).
pub fn multidim_sequential(config: &MultiDimConfig, initial: &[f64]) -> Vec<f64> {
    let (r, c) = (config.rows, config.cols);
    assert_eq!(initial.len(), r * c);
    let mut a = initial.to_vec();
    let mut old = vec![0.0f64; r * c];
    for _round in 0..config.rounds {
        for _ in 0..config.sweeps_per_phase {
            old.copy_from_slice(&a);
            for i in 1..r - 1 {
                for j in 0..c {
                    let g = i * c + j;
                    a[g] = 0.25 * old[g - c] + 0.5 * old[g] + 0.25 * old[g + c];
                }
            }
        }
        for _ in 0..config.sweeps_per_phase {
            old.copy_from_slice(&a);
            for i in 0..r {
                for j in 1..c - 1 {
                    let g = i * c + j;
                    a[g] = 0.25 * old[g - 1] + 0.5 * old[g] + 0.25 * old[g + 1];
                }
            }
        }
    }
    a
}

/// A deterministic `rows × cols` starting field for demos and tests.
pub fn multidim_field(rows: usize, cols: usize) -> Vec<f64> {
    (0..rows * cols)
        .map(|g| {
            let (i, j) = (g / cols, g % cols);
            ((i * 31 + j * 17) % 23) as f64 * 0.125
        })
        .collect()
}

/// Reassemble per-rank local pieces into the global row-major field under
/// `dist`.
pub fn gather_multidim(dist: &FlatDist, locals: &[Vec<f64>]) -> Vec<f64> {
    let mut global = vec![0.0f64; dist.n()];
    for (rank, local) in locals.iter().enumerate() {
        for (l, v) in local.iter().enumerate() {
            global[dist.global_index(rank, l)] = *v;
        }
    }
    global
}

/// Machine-wide per-phase [`CommReport`]s: counters summed across ranks,
/// one report per phase label, in the order the phases first ran.
pub fn phase_comm_reports(outcomes: &[MultiDimOutcome]) -> Vec<(String, CommReport)> {
    let mut reports: Vec<(String, CommReport)> = Vec::new();
    for outcome in outcomes {
        for phase in &outcome.phases {
            let slot = match reports.iter_mut().find(|(l, _)| l == phase.label) {
                Some((_, r)) => r,
                None => {
                    reports.push((phase.label.to_string(), CommReport::default()));
                    &mut reports.last_mut().expect("just pushed").1
                }
            };
            slot.messages += phase.counters.msgs_sent;
            slot.bytes += phase.counters.bytes_sent;
            slot.nonlocal_refs += phase.counters.nonlocal_refs;
            slot.halo_elements += phase.halo_elements;
            slot.wire_bytes += phase.counters.wire_bytes;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsim::{CostModel, Machine};

    fn run_on_dmsim(
        nprocs: usize,
        config: &MultiDimConfig,
        cost: CostModel,
    ) -> (Vec<f64>, Vec<MultiDimOutcome>) {
        let initial = multidim_field(config.rows, config.cols);
        let machine = Machine::new(nprocs, cost);
        let outcomes = machine.run(|proc| multidim_sweeps(proc, config, &initial));
        let final_dist = row_placement(config, nprocs);
        let locals: Vec<Vec<f64>> = outcomes.iter().map(|o| o.local_a.clone()).collect();
        (gather_multidim(&final_dist, &locals), outcomes)
    }

    #[test]
    fn both_strategies_match_the_sequential_replay_bitwise() {
        for (rows, cols, nprocs) in [(12, 10, 4), (9, 16, 3), (8, 8, 1)] {
            let mut config = MultiDimConfig::new(rows, cols);
            config.rounds = 2;
            config.sweeps_per_phase = 3;
            let expected = multidim_sequential(&config, &multidim_field(rows, cols));
            for strategy in [PhaseStrategy::RowsThroughout, PhaseStrategy::PhaseChange] {
                config.strategy = strategy;
                let (got, _) = run_on_dmsim(nprocs, &config, CostModel::ideal());
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{rows}x{cols} on {nprocs} procs, {}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn planning_never_runs_the_inspector() {
        let mut config = MultiDimConfig::new(16, 12);
        config.strategy = PhaseStrategy::PhaseChange;
        let (_, outcomes) = run_on_dmsim(4, &config, CostModel::ideal());
        for o in &outcomes {
            assert_eq!(o.cache_misses, 0, "stencils must plan compile-time");
            assert_eq!(o.cache_hits, 0);
        }
    }

    #[test]
    fn rows_throughout_pays_row_halos_only_in_the_vertical_phase() {
        let config = MultiDimConfig::new(16, 10);
        let (_, outcomes) = run_on_dmsim(4, &config, CostModel::ncube7());
        let total_vertical_halo: usize = outcomes
            .iter()
            .flat_map(|o| &o.phases)
            .filter(|p| p.label == "vertical")
            .map(|p| p.halo_elements)
            .sum();
        // 3 interior block boundaries, one boundary row (10 elements) in
        // each direction across each: 6 rows of 10.
        assert_eq!(total_vertical_halo, 60);
        for o in &outcomes {
            let horizontal = o.phases.iter().find(|p| p.label == "horizontal").unwrap();
            assert_eq!(horizontal.halo_elements, 0, "horizontal phase is local");
            assert_eq!(horizontal.counters.msgs_sent, 0);
            assert!(o.phases.iter().all(|p| p.label != "redistribute"));
        }
    }

    #[test]
    fn phase_change_moves_all_traffic_into_the_redistributions() {
        let mut config = MultiDimConfig::new(16, 10);
        config.strategy = PhaseStrategy::PhaseChange;
        let (_, outcomes) = run_on_dmsim(4, &config, CostModel::ncube7());
        for o in &outcomes {
            for phase in &o.phases {
                if phase.label == "redistribute" {
                    continue;
                }
                assert_eq!(
                    phase.counters.msgs_sent, 0,
                    "{} phase must be communication free",
                    phase.label
                );
                assert_eq!(phase.halo_elements, 0);
            }
        }
        let redistributed: u64 = outcomes
            .iter()
            .flat_map(|o| &o.phases)
            .filter(|p| p.label == "redistribute")
            .map(|p| p.counters.msgs_sent)
            .sum();
        assert!(redistributed > 0, "the field really moves between phases");
    }

    #[test]
    fn phase_reports_aggregate_across_ranks() {
        let mut config = MultiDimConfig::new(12, 12);
        config.strategy = PhaseStrategy::PhaseChange;
        let (_, outcomes) = run_on_dmsim(3, &config, CostModel::ncube7());
        let reports = phase_comm_reports(&outcomes);
        let labels: Vec<&str> = reports.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["redistribute", "vertical", "horizontal"]);
        let redistribute = &reports[0].1;
        assert!(redistribute.messages > 0);
        assert!(redistribute.bytes > 0);
        let vertical = &reports[1].1;
        assert_eq!(vertical.messages, 0);
    }

    #[test]
    fn nonlocal_refs_are_charged_only_under_rows_throughout() {
        let rows = MultiDimConfig::new(16, 8);
        let (_, rows_out) = run_on_dmsim(4, &rows, CostModel::ncube7());
        let mut change = rows;
        change.strategy = PhaseStrategy::PhaseChange;
        let (_, change_out) = run_on_dmsim(4, &change, CostModel::ncube7());
        let nonlocal =
            |os: &[MultiDimOutcome]| -> u64 { os.iter().map(|o| o.counters.nonlocal_refs).sum() };
        assert!(
            nonlocal(&rows_out) > 0,
            "halo fetches go through the buffer"
        );
        assert_eq!(
            nonlocal(&change_out),
            0,
            "phase change keeps every reference local"
        );
    }
}
