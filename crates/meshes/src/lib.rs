//! # meshes — workload generators for the Kali reproduction
//!
//! The paper's evaluation (§4) runs a Jacobi relaxation over a mesh stored in
//! *adjacency-list form*: arrays `adj[1..n, 1..4]` and `coef[1..n, 1..4]`
//! hold, for every node, the indices of its neighbours and the corresponding
//! coefficients, with `count[1..n]` giving the number of neighbours.  The
//! authors' measurements use simple rectangular grids with the standard
//! five-point Laplacian, but the program is written for general unstructured
//! meshes (average degree ≈ 6 in 2-D), so this crate provides both:
//!
//! * [`grid::RegularGrid`] — an `nx × ny` grid with 4-neighbour (five-point
//!   stencil) connectivity, exactly the test problem of Figures 7–10;
//! * [`unstructured`] — synthetic irregular meshes with an average degree of
//!   about six and optional node renumbering, exercising the data-dependent
//!   communication patterns that force run-time (inspector) analysis;
//! * [`csr::AdjacencyMesh`] — the common adjacency + coefficient container
//!   both generators produce, in exactly the shape the paper's program uses;
//! * [`adapt`] — deterministic, seeded refine/coarsen perturbations of the
//!   connectivity (node count invariant), the adaptive-mesh workload that
//!   stresses the schedule cache's amortisation claim: every adaptation
//!   changes `adj`, forcing a data-version bump and a re-inspection.

#![forbid(unsafe_code)]

pub mod adapt;
pub mod csr;
pub mod grid;
pub mod partition;
pub mod unstructured;

pub use adapt::{adapt_step, coarsen, evolve, refine, AdaptConfig};
pub use csr::AdjacencyMesh;
pub use grid::RegularGrid;
pub use partition::{block_partition, cut_edges, greedy_partition, strip_partition_rows};
pub use unstructured::UnstructuredMeshBuilder;
