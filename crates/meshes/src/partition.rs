//! Mesh partitioners.
//!
//! The paper leaves the data distribution to the user ("the optimal static
//! domain decomposition is obvious" for the rectangular test grids, §4); the
//! Kali program in Figure 4 distributes the node arrays `by [block]`.  These
//! helpers produce the owner tables for the common decompositions so that
//! the same mesh can be run under different distributions — the whole point
//! of the paper's distribution-independent loop bodies.

use crate::csr::AdjacencyMesh;
use crate::grid::RegularGrid;

/// Block partition of `n` nodes over `p` processors (contiguous chunks of
/// `ceil(n/p)` nodes) — the owner table equivalent of `dist by [block]`.
pub fn block_partition(n: usize, p: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one processor");
    let b = n.div_ceil(p).max(1);
    (0..n).map(|i| (i / b).min(p - 1)).collect()
}

/// Strip partition of a rectangular grid: contiguous bands of whole rows.
///
/// For row-major numbering this coincides with the block partition of the
/// node indices whenever `ny` is a multiple of `p`; it is the decomposition
/// the paper calls "obvious" for its test grids.
pub fn strip_partition_rows(grid: &RegularGrid, p: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one processor");
    let rows_per = grid.ny().div_ceil(p).max(1);
    (0..grid.len())
        .map(|node| {
            let (r, _) = grid.coords(node);
            (r / rows_per).min(p - 1)
        })
        .collect()
}

/// Number of directed edges that cross between different partitions —
/// proportional to the communication volume of one relaxation sweep.
pub fn cut_edges(mesh: &AdjacencyMesh, owners: &[usize]) -> usize {
    assert_eq!(mesh.len(), owners.len());
    let mut cut = 0usize;
    for i in 0..mesh.len() {
        for &j in mesh.neighbors(i) {
            if owners[i] != owners[j as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// Maximum number of nodes assigned to any single processor (load balance).
pub fn max_load(owners: &[usize], p: usize) -> usize {
    let mut counts = vec![0usize; p];
    for &o in owners {
        counts[o] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let owners = block_partition(100, 4);
        assert_eq!(owners.len(), 100);
        assert_eq!(owners[0], 0);
        assert_eq!(owners[99], 3);
        // Non-decreasing (contiguous blocks).
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(max_load(&owners, 4), 25);
    }

    #[test]
    fn block_partition_with_more_procs_than_nodes() {
        let owners = block_partition(3, 8);
        assert_eq!(owners, vec![0, 1, 2]);
    }

    #[test]
    fn strip_partition_keeps_rows_together() {
        let g = RegularGrid::new(8, 8);
        let owners = strip_partition_rows(&g, 4);
        for (node, &owner) in owners.iter().enumerate() {
            let (r, _) = g.coords(node);
            assert_eq!(owner, r / 2);
        }
    }

    #[test]
    fn strip_and_block_agree_on_row_major_grids() {
        let g = RegularGrid::new(16, 16);
        assert_eq!(strip_partition_rows(&g, 4), block_partition(g.len(), 4));
    }

    #[test]
    fn cut_edges_counts_boundary_for_five_point_grid() {
        // 8x8 grid split into two 4-row strips: the cut is the 8-node
        // interface, counted once in each direction.
        let g = RegularGrid::new(8, 8);
        let mesh = g.five_point_mesh();
        let owners = strip_partition_rows(&g, 2);
        assert_eq!(cut_edges(&mesh, &owners), 16);
    }

    #[test]
    fn cut_edges_zero_on_single_processor() {
        let g = RegularGrid::new(6, 6);
        let mesh = g.five_point_mesh();
        let owners = block_partition(mesh.len(), 1);
        assert_eq!(cut_edges(&mesh, &owners), 0);
    }

    #[test]
    fn max_load_counts_heaviest_processor() {
        assert_eq!(max_load(&[0, 0, 1, 2, 2, 2], 3), 3);
        assert_eq!(max_load(&[], 3), 0);
    }
}
