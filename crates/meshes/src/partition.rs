//! Mesh partitioners.
//!
//! The paper leaves the data distribution to the user ("the optimal static
//! domain decomposition is obvious" for the rectangular test grids, §4); the
//! Kali program in Figure 4 distributes the node arrays `by [block]`.  These
//! helpers produce the owner tables for the common decompositions so that
//! the same mesh can be run under different distributions — the whole point
//! of the paper's distribution-independent loop bodies.
//!
//! For *irregular* meshes the block decomposition of the node indices is
//! only as good as the node numbering: a scrambled numbering makes it
//! essentially random, and every relaxation reference becomes nonlocal.
//! [`greedy_partition`] decomposes by *connectivity* instead — a
//! deterministic BFS region-growing pass in the style of the greedy graph
//! partitioners used with inspector–executor runtimes — and its owner table
//! feeds `distrib::IrregularDist` so the solvers can place nodes where their
//! neighbours are.

use crate::csr::AdjacencyMesh;
use crate::grid::RegularGrid;

/// Block partition of `n` nodes over `p` processors (contiguous chunks of
/// `ceil(n/p)` nodes) — the owner table equivalent of `dist by [block]`.
pub fn block_partition(n: usize, p: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one processor");
    let b = n.div_ceil(p).max(1);
    (0..n).map(|i| (i / b).min(p - 1)).collect()
}

/// Strip partition of a rectangular grid: contiguous bands of whole rows.
///
/// For row-major numbering this coincides with the block partition of the
/// node indices whenever `ny` is a multiple of `p`; it is the decomposition
/// the paper calls "obvious" for its test grids.
pub fn strip_partition_rows(grid: &RegularGrid, p: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one processor");
    let rows_per = grid.ny().div_ceil(p).max(1);
    (0..grid.len())
        .map(|node| {
            let (r, _) = grid.coords(node);
            (r / rows_per).min(p - 1)
        })
        .collect()
}

/// Connectivity-aware partition of a mesh into `p` balanced parts by
/// deterministic BFS region growing.
///
/// Parts are grown one after another: part `k` starts from the
/// lowest-numbered unassigned node and absorbs unassigned nodes in
/// breadth-first order until it reaches its target size (`n/p`, the first
/// `n mod p` parts getting one extra).  When a part's frontier empties
/// before the target is reached (disconnected remainder), growth restarts
/// from the next unassigned seed.  The result is an owner table: every node
/// assigned exactly once, loads balanced to within one node, and — on any
/// mesh with locality — far fewer cut edges than a block partition of a
/// scrambled numbering.
///
/// Deterministic in the mesh alone, so every SPMD rank computing it
/// redundantly obtains the same table (the property the collective
/// owner-map assembly in `kali-core::ownermap` relies on).
pub fn greedy_partition(mesh: &AdjacencyMesh, p: usize) -> Vec<usize> {
    assert!(p > 0, "need at least one processor");
    let n = mesh.len();
    let mut owners = vec![usize::MAX; n];
    let base = n / p;
    let extra = n % p;
    let mut next_seed = 0usize; // lowest-numbered unassigned node
    let mut queue = std::collections::VecDeque::new();
    for part in 0..p {
        let target = base + usize::from(part < extra);
        let mut size = 0usize;
        queue.clear();
        while size < target {
            let node = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // Frontier exhausted: restart from the next unassigned
                    // seed (also how each part begins).
                    while owners[next_seed] != usize::MAX {
                        next_seed += 1;
                    }
                    next_seed
                }
            };
            if owners[node] != usize::MAX {
                continue;
            }
            owners[node] = part;
            size += 1;
            for &nb in mesh.neighbors(node) {
                if owners[nb as usize] == usize::MAX {
                    queue.push_back(nb as usize);
                }
            }
        }
    }
    debug_assert!(owners.iter().all(|&o| o < p));
    owners
}

/// Number of directed edges that cross between different partitions —
/// proportional to the communication volume of one relaxation sweep.
pub fn cut_edges(mesh: &AdjacencyMesh, owners: &[usize]) -> usize {
    assert_eq!(mesh.len(), owners.len());
    let mut cut = 0usize;
    for i in 0..mesh.len() {
        for &j in mesh.neighbors(i) {
            if owners[i] != owners[j as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// Maximum number of nodes assigned to any single processor (load balance).
pub fn max_load(owners: &[usize], p: usize) -> usize {
    let mut counts = vec![0usize; p];
    for &o in owners {
        counts[o] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let owners = block_partition(100, 4);
        assert_eq!(owners.len(), 100);
        assert_eq!(owners[0], 0);
        assert_eq!(owners[99], 3);
        // Non-decreasing (contiguous blocks).
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(max_load(&owners, 4), 25);
    }

    #[test]
    fn block_partition_with_more_procs_than_nodes() {
        let owners = block_partition(3, 8);
        assert_eq!(owners, vec![0, 1, 2]);
    }

    #[test]
    fn strip_partition_keeps_rows_together() {
        let g = RegularGrid::new(8, 8);
        let owners = strip_partition_rows(&g, 4);
        for (node, &owner) in owners.iter().enumerate() {
            let (r, _) = g.coords(node);
            assert_eq!(owner, r / 2);
        }
    }

    #[test]
    fn strip_and_block_agree_on_row_major_grids() {
        let g = RegularGrid::new(16, 16);
        assert_eq!(strip_partition_rows(&g, 4), block_partition(g.len(), 4));
    }

    #[test]
    fn cut_edges_counts_boundary_for_five_point_grid() {
        // 8x8 grid split into two 4-row strips: the cut is the 8-node
        // interface, counted once in each direction.
        let g = RegularGrid::new(8, 8);
        let mesh = g.five_point_mesh();
        let owners = strip_partition_rows(&g, 2);
        assert_eq!(cut_edges(&mesh, &owners), 16);
    }

    #[test]
    fn cut_edges_zero_on_single_processor() {
        let g = RegularGrid::new(6, 6);
        let mesh = g.five_point_mesh();
        let owners = block_partition(mesh.len(), 1);
        assert_eq!(cut_edges(&mesh, &owners), 0);
    }

    #[test]
    fn max_load_counts_heaviest_processor() {
        assert_eq!(max_load(&[0, 0, 1, 2, 2, 2], 3), 3);
        assert_eq!(max_load(&[], 3), 0);
    }

    #[test]
    fn greedy_partition_is_balanced_and_total() {
        let mesh = crate::UnstructuredMeshBuilder::new(12, 10).seed(3).build();
        for p in [1usize, 2, 3, 5, 8] {
            let owners = greedy_partition(&mesh, p);
            assert_eq!(owners.len(), mesh.len());
            let mut counts = vec![0usize; p];
            for &o in &owners {
                counts[o] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(max - min <= 1, "p={p}: loads {counts:?} not balanced");
        }
    }

    #[test]
    fn greedy_partition_is_deterministic() {
        let mesh = crate::UnstructuredMeshBuilder::new(10, 10)
            .seed(7)
            .scramble_numbering(true)
            .build();
        assert_eq!(greedy_partition(&mesh, 6), greedy_partition(&mesh, 6));
    }

    #[test]
    fn greedy_partition_cuts_fewer_edges_than_block_on_scrambled_meshes() {
        // The locality claim behind the partitioned distribution: once the
        // numbering is scrambled, a block partition of the indices is
        // essentially random while BFS growing still follows connectivity.
        let mesh = crate::UnstructuredMeshBuilder::new(24, 24)
            .seed(11)
            .scramble_numbering(true)
            .build();
        let p = 8;
        let block_cut = cut_edges(&mesh, &block_partition(mesh.len(), p));
        let greedy_cut = cut_edges(&mesh, &greedy_partition(&mesh, p));
        assert!(
            greedy_cut * 2 < block_cut,
            "greedy cut {greedy_cut} not well below block cut {block_cut}"
        );
    }

    #[test]
    fn greedy_partition_handles_more_parts_than_nodes() {
        let g = RegularGrid::new(2, 2);
        let mesh = g.five_point_mesh();
        let owners = greedy_partition(&mesh, 7);
        assert_eq!(owners.len(), 4);
        // Four parts get one node each, the rest stay empty.
        let mut counts = [0usize; 7];
        for &o in &owners {
            counts[o] += 1;
        }
        assert_eq!(counts.iter().filter(|&&c| c == 1).count(), 4);
    }
}
