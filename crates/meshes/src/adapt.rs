//! Deterministic adaptive-mesh perturbation (refine / coarsen).
//!
//! The paper's cost argument (§3.2) rests on amortising the inspector "over
//! many repetitions of the forall" — which is trivially perfect when the
//! mesh never changes.  Real unstructured-mesh codes *adapt*: they refine
//! where the solution is rough and coarsen where it is smooth, changing the
//! `adj` array and therefore invalidating every cached communication
//! schedule.  This module provides the workload side of that story: seeded,
//! fully deterministic connectivity perturbations that every SPMD rank can
//! compute redundantly (the same property `greedy_partition` relies on), so
//! the solvers can bump their data version in lockstep and let the schedule
//! cache re-inspect exactly when the adjacency changed.
//!
//! The node count is invariant — adaptation changes *connectivity*, not the
//! index space — so existing distributions remain valid (though possibly
//! unbalanced, which is what rebalancing redistributions are for):
//!
//! * [`refine`] adds edges: a batch of new links between randomly chosen
//!   node pairs, modelling element subdivision raising local connectivity;
//! * [`coarsen`] removes edges whose endpoints keep a configured minimum
//!   degree, modelling element merging;
//! * [`adapt_step`] alternates the two, so a long run's edge count drifts
//!   up and down instead of growing monotonically.
//!
//! Coefficients are regenerated as `1/degree` per incident edge after every
//! perturbation — the Jacobi-averaging convention of
//! [`crate::UnstructuredMeshBuilder`] — so relaxation over an adapted mesh
//! keeps the per-node coefficient sum at one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::AdjacencyMesh;

/// Parameters of the adaptation process.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Seed of the (per-step) RNG; the perturbation is a pure function of
    /// `(mesh, config, step)`.
    pub seed: u64,
    /// Fraction of the node count used as the batch size of each step
    /// (edges added by a refinement, removal attempts by a coarsening).
    pub edge_fraction: f64,
    /// Degree floor respected by coarsening: an edge is only removed when
    /// both endpoints stay at or above this degree.
    pub min_degree: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            seed: 0xADA9_7190,
            edge_fraction: 0.05,
            min_degree: 3,
        }
    }
}

impl AdaptConfig {
    /// Batch size for a mesh of `n` nodes (at least one).
    fn batch(&self, n: usize) -> usize {
        (((n as f64) * self.edge_fraction).round() as usize).max(1)
    }

    fn rng(&self, step: u64) -> StdRng {
        // Decorrelate steps: the multiplier is an arbitrary odd 64-bit
        // constant (splitmix-style), so neighbouring steps share no seed
        // structure.
        StdRng::seed_from_u64(self.seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
}

fn neighbor_lists(mesh: &AdjacencyMesh) -> Vec<Vec<usize>> {
    (0..mesh.len())
        .map(|i| mesh.neighbors(i).iter().map(|&nb| nb as usize).collect())
        .collect()
}

fn rebuild(neighbors: &[Vec<usize>]) -> AdjacencyMesh {
    let coefs: Vec<Vec<f64>> = neighbors
        .iter()
        .map(|nbrs| {
            let d = nbrs.len().max(1) as f64;
            vec![1.0 / d; nbrs.len()]
        })
        .collect();
    AdjacencyMesh::from_lists(neighbors, &coefs)
}

/// Refinement step `step`: add a deterministic batch of symmetric edges.
///
/// Node count and numbering are unchanged; only `adj`/`coef` move — the
/// exact situation in which a cached communication schedule silently
/// describes the wrong reference pattern unless the data version is bumped.
pub fn refine(mesh: &AdjacencyMesh, config: &AdaptConfig, step: u64) -> AdjacencyMesh {
    let n = mesh.len();
    if n < 2 {
        return mesh.clone();
    }
    let mut rng = config.rng(step);
    let mut neighbors = neighbor_lists(mesh);
    for _ in 0..config.batch(n) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !neighbors[a].contains(&b) {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
    }
    rebuild(&neighbors)
}

/// Coarsening step `step`: attempt a deterministic batch of edge removals,
/// each honoured only when both endpoints keep `config.min_degree`
/// neighbours.
pub fn coarsen(mesh: &AdjacencyMesh, config: &AdaptConfig, step: u64) -> AdjacencyMesh {
    let n = mesh.len();
    if n < 2 {
        return mesh.clone();
    }
    let mut rng = config.rng(step);
    let mut neighbors = neighbor_lists(mesh);
    for _ in 0..config.batch(n) {
        let a = rng.gen_range(0..n);
        if neighbors[a].len() <= config.min_degree {
            continue;
        }
        let pick = rng.gen_range(0..neighbors[a].len());
        let b = neighbors[a][pick];
        if neighbors[b].len() <= config.min_degree {
            continue;
        }
        neighbors[a].swap_remove(pick);
        let back = neighbors[b]
            .iter()
            .position(|&x| x == a)
            .expect("mesh must be symmetric");
        neighbors[b].swap_remove(back);
    }
    rebuild(&neighbors)
}

/// One adaptation step: refinements and coarsenings alternate (`step` 0, 2,
/// 4 … refine; 1, 3, 5 … coarsen), so the edge count breathes instead of
/// growing without bound over a long adaptive run.
pub fn adapt_step(mesh: &AdjacencyMesh, config: &AdaptConfig, step: u64) -> AdjacencyMesh {
    if step.is_multiple_of(2) {
        refine(mesh, config, step)
    } else {
        coarsen(mesh, config, step)
    }
}

/// The mesh after `steps` adaptation steps — the deterministic "history
/// replay" used by sequential references and by post-run reassembly.
pub fn evolve(mesh: &AdjacencyMesh, config: &AdaptConfig, steps: u64) -> AdjacencyMesh {
    let mut m = mesh.clone();
    for step in 0..steps {
        m = adapt_step(&m, config, step);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnstructuredMeshBuilder;

    fn base() -> AdjacencyMesh {
        UnstructuredMeshBuilder::new(12, 12).seed(5).build()
    }

    #[test]
    fn adaptation_is_deterministic_in_mesh_config_and_step() {
        let m = base();
        let cfg = AdaptConfig::default();
        assert_eq!(refine(&m, &cfg, 3), refine(&m, &cfg, 3));
        assert_eq!(coarsen(&m, &cfg, 4), coarsen(&m, &cfg, 4));
        assert_ne!(
            refine(&m, &cfg, 0),
            refine(&m, &cfg, 2),
            "different steps must perturb differently"
        );
        let other = AdaptConfig {
            seed: 99,
            ..AdaptConfig::default()
        };
        assert_ne!(refine(&m, &cfg, 0), refine(&m, &other, 0));
    }

    #[test]
    fn refine_adds_edges_and_preserves_symmetry_and_node_count() {
        let m = base();
        let r = refine(&m, &AdaptConfig::default(), 0);
        assert_eq!(r.len(), m.len());
        assert!(r.edge_count() > m.edge_count());
        assert!(r.is_symmetric());
    }

    #[test]
    fn coarsen_removes_edges_but_respects_the_degree_floor() {
        let cfg = AdaptConfig {
            edge_fraction: 0.5,
            ..AdaptConfig::default()
        };
        let m = refine(&base(), &cfg, 0);
        let c = coarsen(&m, &cfg, 1);
        assert_eq!(c.len(), m.len());
        assert!(c.edge_count() < m.edge_count());
        assert!(c.is_symmetric());
        for i in 0..c.len() {
            assert!(
                c.degree(i) >= cfg.min_degree.min(m.degree(i)),
                "node {i}: degree {} fell below the floor",
                c.degree(i)
            );
        }
    }

    #[test]
    fn coefficients_stay_normalised_after_adaptation() {
        let mut m = base();
        let cfg = AdaptConfig::default();
        for step in 0..4 {
            m = adapt_step(&m, &cfg, step);
            for i in 0..m.len() {
                let s: f64 = m.coefs(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "step {step}, node {i}: sum {s}");
            }
        }
    }

    #[test]
    fn evolve_replays_the_step_sequence() {
        let m = base();
        let cfg = AdaptConfig::default();
        let mut manual = m.clone();
        for step in 0..5 {
            manual = adapt_step(&manual, &cfg, step);
        }
        assert_eq!(evolve(&m, &cfg, 5), manual);
        assert_eq!(evolve(&m, &cfg, 0), m);
    }

    #[test]
    fn alternating_steps_keep_the_edge_count_bounded() {
        let mut m = base();
        let cfg = AdaptConfig::default();
        let initial_edges = m.edge_count();
        for step in 0..20 {
            m = adapt_step(&m, &cfg, step);
        }
        // Refine and coarsen batches are the same size, so drift stays well
        // under the cumulative number of added edges.
        let drift = m.edge_count().abs_diff(initial_edges);
        let batch = ((m.len() as f64) * cfg.edge_fraction).round() as usize;
        assert!(
            drift < 10 * 2 * batch,
            "edge count drifted by {drift} over 20 alternating steps"
        );
        assert!(m.is_symmetric());
    }

    #[test]
    fn tiny_meshes_are_left_alone() {
        let solo = AdjacencyMesh::from_lists(&[vec![]], &[vec![]]);
        let cfg = AdaptConfig::default();
        assert_eq!(refine(&solo, &cfg, 0), solo);
        assert_eq!(coarsen(&solo, &cfg, 0), solo);
    }
}
