//! Synthetic unstructured meshes.
//!
//! "Since our primary interest is unstructured grids, our program allows
//! general `adj` and `coef` arrays. … The only significant difference is
//! that the node connectivity is higher for unstructured grids; nodes in a
//! two dimensional unstructured grid have six neighbors, on average" (§4).
//!
//! The paper's authors did not publish their meshes, so we generate
//! synthetic ones with the properties the paper relies on:
//!
//! * symmetric adjacency with an average degree close to six,
//! * data-dependent connectivity (the `adj` array is only known at run time,
//!   so the compiler *must* fall back to the inspector), and
//! * optionally scrambled node numbering, which breaks the contiguity of the
//!   nonlocal ranges and stresses the inspector's range coalescing.
//!
//! The generator starts from a rectangular grid (guaranteeing connectivity)
//! and adds one diagonal per grid cell plus a configurable fraction of
//! random "long" edges, which lifts the average degree from ~4 to ~6.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::csr::AdjacencyMesh;
use crate::grid::RegularGrid;

/// Builder for synthetic unstructured meshes.
#[derive(Debug, Clone)]
pub struct UnstructuredMeshBuilder {
    nx: usize,
    ny: usize,
    seed: u64,
    long_edge_fraction: f64,
    scramble_numbering: bool,
}

impl UnstructuredMeshBuilder {
    /// Start from an `nx × ny` point cloud (the mesh will have `nx · ny`
    /// nodes).
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(
            nx >= 2 && ny >= 2,
            "unstructured mesh needs at least 2x2 points"
        );
        UnstructuredMeshBuilder {
            nx,
            ny,
            seed: 0x5EED_1990,
            long_edge_fraction: 0.02,
            scramble_numbering: false,
        }
    }

    /// Use a specific RNG seed (the default is fixed, so meshes are
    /// reproducible across runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fraction of nodes that get one extra random long-range edge
    /// (default 2%).  Long edges create scattered nonlocal references.
    pub fn long_edge_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.long_edge_fraction = f;
        self
    }

    /// Randomly renumber the nodes, destroying the locality of the natural
    /// ordering (default off).
    pub fn scramble_numbering(mut self, yes: bool) -> Self {
        self.scramble_numbering = yes;
        self
    }

    /// Generate the mesh.
    pub fn build(&self) -> AdjacencyMesh {
        let grid = RegularGrid::new(self.nx, self.ny);
        let n = grid.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut neighbors: Vec<Vec<usize>> = (0..n).map(|i| grid.neighbors(i)).collect();

        // One diagonal per cell: connect (r, c) to (r+1, c+1) or (r+1, c-1),
        // chosen pseudo-randomly, as a triangulation would.
        for r in 0..self.ny - 1 {
            for c in 0..self.nx - 1 {
                let (a, b) = if rng.gen_bool(0.5) {
                    (grid.node(r, c), grid.node(r + 1, c + 1))
                } else {
                    (grid.node(r, c + 1), grid.node(r + 1, c))
                };
                add_edge(&mut neighbors, a, b);
            }
        }

        // A sprinkling of long-range edges.
        let extra = ((n as f64) * self.long_edge_fraction).round() as usize;
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                add_edge(&mut neighbors, a, b);
            }
        }

        // Jacobi-style coefficients: 1/degree per incident edge.
        let coefs: Vec<Vec<f64>> = neighbors
            .iter()
            .map(|nbrs| {
                let d = nbrs.len().max(1) as f64;
                vec![1.0 / d; nbrs.len()]
            })
            .collect();
        let mesh = AdjacencyMesh::from_lists(&neighbors, &coefs);

        if self.scramble_numbering {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            mesh.renumber(&perm)
        } else {
            mesh
        }
    }
}

fn add_edge(neighbors: &mut [Vec<usize>], a: usize, b: usize) {
    if !neighbors[a].contains(&b) {
        neighbors[a].push(b);
        neighbors[b].push(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_symmetric_and_connected_degreewise() {
        let m = UnstructuredMeshBuilder::new(16, 16).build();
        assert_eq!(m.len(), 256);
        assert!(m.is_symmetric());
        // Every node keeps its grid neighbours, so no node is isolated.
        for i in 0..m.len() {
            assert!(m.degree(i) >= 2);
        }
    }

    #[test]
    fn average_degree_is_about_six() {
        let m = UnstructuredMeshBuilder::new(32, 32).build();
        let avg = m.average_degree();
        assert!(avg > 5.0 && avg < 7.0, "average degree {avg} not ~6");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = UnstructuredMeshBuilder::new(12, 9).seed(7).build();
        let b = UnstructuredMeshBuilder::new(12, 9).seed(7).build();
        assert_eq!(a, b);
        let c = UnstructuredMeshBuilder::new(12, 9).seed(8).build();
        assert_ne!(a, c);
    }

    #[test]
    fn scrambled_numbering_preserves_structure() {
        let plain = UnstructuredMeshBuilder::new(10, 10).seed(3).build();
        let scrambled = UnstructuredMeshBuilder::new(10, 10)
            .seed(3)
            .scramble_numbering(true)
            .build();
        assert_eq!(plain.edge_count(), scrambled.edge_count());
        assert!(scrambled.is_symmetric());
        // Degree multiset is preserved by renumbering.
        let mut d1: Vec<usize> = (0..plain.len()).map(|i| plain.degree(i)).collect();
        let mut d2: Vec<usize> = (0..scrambled.len()).map(|i| scrambled.degree(i)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn long_edge_fraction_increases_degree() {
        let sparse = UnstructuredMeshBuilder::new(20, 20)
            .long_edge_fraction(0.0)
            .build();
        let dense = UnstructuredMeshBuilder::new(20, 20)
            .long_edge_fraction(0.5)
            .build();
        assert!(dense.average_degree() > sparse.average_degree());
    }

    #[test]
    fn coefficients_sum_to_one_per_node() {
        let m = UnstructuredMeshBuilder::new(8, 8).build();
        for i in 0..m.len() {
            let s: f64 = m.coefs(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "node {i}: coef sum {s}");
        }
    }
}
