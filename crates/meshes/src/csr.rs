//! Adjacency-list meshes (`count` / `adj` / `coef`, Figure 4 of the paper).
//!
//! The paper stores the mesh in three distributed arrays:
//!
//! ```text
//! count : array[1..n]        of integer   -- number of neighbours of node i
//! adj   : array[1..n, 1..k]  of integer   -- neighbour indices
//! coef  : array[1..n, 1..k]  of real      -- per-edge coefficients
//! ```
//!
//! [`AdjacencyMesh`] is the Rust equivalent: a padded (ragged-free) adjacency
//! matrix with a fixed per-node capacity `max_degree`, matching the paper's
//! fixed second array dimension, plus the per-node counts and coefficients.

/// A mesh in the paper's `count`/`adj`/`coef` representation.
///
/// Rows are nodes; each node `i` has `count[i]` valid entries in
/// `adj[i][0..count[i]]` and `coef[i][0..count[i]]`.  Entries beyond the
/// count are padding and must never be read — exactly the convention of the
/// Pascal arrays in Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjacencyMesh {
    n: usize,
    max_degree: usize,
    count: Vec<u32>,
    adj: Vec<u32>,
    coef: Vec<f64>,
}

impl AdjacencyMesh {
    /// Build a mesh from per-node neighbour lists and coefficients.
    ///
    /// All neighbour indices must be valid node indices; each node's
    /// neighbour and coefficient lists must have equal length.
    pub fn from_lists(neighbors: &[Vec<usize>], coefs: &[Vec<f64>]) -> Self {
        assert_eq!(
            neighbors.len(),
            coefs.len(),
            "neighbour and coefficient lists must cover the same nodes"
        );
        let n = neighbors.len();
        let max_degree = neighbors.iter().map(Vec::len).max().unwrap_or(0);
        let mut count = Vec::with_capacity(n);
        let mut adj = vec![0u32; n * max_degree];
        let mut coef = vec![0.0f64; n * max_degree];
        for (i, (nbrs, cs)) in neighbors.iter().zip(coefs).enumerate() {
            assert_eq!(
                nbrs.len(),
                cs.len(),
                "node {i}: neighbour/coefficient length mismatch"
            );
            count.push(nbrs.len() as u32);
            for (j, (&nb, &c)) in nbrs.iter().zip(cs).enumerate() {
                assert!(nb < n, "node {i}: neighbour index {nb} out of range");
                adj[i * max_degree + j] = nb as u32;
                coef[i * max_degree + j] = c;
            }
        }
        AdjacencyMesh {
            n,
            max_degree,
            count,
            adj,
            coef,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the mesh has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Fixed per-node neighbour capacity (the second dimension of `adj`).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Number of neighbours of node `i` (`count[i]`).
    pub fn degree(&self, i: usize) -> usize {
        self.count[i] as usize
    }

    /// Neighbour indices of node `i` (`adj[i, 1..count[i]]`).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let start = i * self.max_degree;
        &self.adj[start..start + self.degree(i)]
    }

    /// Per-edge coefficients of node `i` (`coef[i, 1..count[i]]`).
    pub fn coefs(&self, i: usize) -> &[f64] {
        let start = i * self.max_degree;
        &self.coef[start..start + self.degree(i)]
    }

    /// Total number of directed edges (sum of all degrees).
    pub fn edge_count(&self) -> usize {
        self.count.iter().map(|&c| c as usize).sum()
    }

    /// Average node degree — about 4 on the paper's rectangular grids,
    /// about 6 on 2-D unstructured meshes (§4).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.n as f64
        }
    }

    /// The raw `count` array (length `n`).
    pub fn count_array(&self) -> &[u32] {
        &self.count
    }

    /// The raw padded `adj` array (length `n × max_degree`, row-major).
    pub fn adj_array(&self) -> &[u32] {
        &self.adj
    }

    /// The raw padded `coef` array (length `n × max_degree`, row-major).
    pub fn coef_array(&self) -> &[f64] {
        &self.coef
    }

    /// Apply a node renumbering: `perm[old] = new`.  Both the node order and
    /// all adjacency references are relabelled.  Used to turn a nicely
    /// ordered mesh into an irregularly numbered one (stress for the
    /// inspector's range coalescing).
    pub fn renumber(&self, perm: &[usize]) -> AdjacencyMesh {
        assert_eq!(perm.len(), self.n, "permutation must cover every node");
        // Check that perm is a permutation.
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "perm is not a permutation");
            seen[p] = true;
        }
        let mut neighbors = vec![Vec::new(); self.n];
        let mut coefs = vec![Vec::new(); self.n];
        for old in 0..self.n {
            let new = perm[old];
            neighbors[new] = self
                .neighbors(old)
                .iter()
                .map(|&nb| perm[nb as usize])
                .collect();
            coefs[new] = self.coefs(old).to_vec();
        }
        AdjacencyMesh::from_lists(&neighbors, &coefs)
    }

    /// True when every edge `i -> j` has a matching edge `j -> i`.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for &j in self.neighbors(i) {
                if !self.neighbors(j as usize).contains(&(i as u32)) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AdjacencyMesh {
        AdjacencyMesh::from_lists(
            &[vec![1, 2], vec![0, 2], vec![0, 1]],
            &[vec![0.5, 0.5], vec![0.5, 0.5], vec![0.5, 0.5]],
        )
    }

    #[test]
    fn builds_padded_arrays() {
        let m = AdjacencyMesh::from_lists(
            &[vec![1], vec![0, 2, 3], vec![1], vec![1]],
            &[vec![1.0], vec![0.25, 0.25, 0.5], vec![1.0], vec![1.0]],
        );
        assert_eq!(m.len(), 4);
        assert_eq!(m.max_degree(), 3);
        assert_eq!(m.degree(0), 1);
        assert_eq!(m.degree(1), 3);
        assert_eq!(m.neighbors(1), &[0, 2, 3]);
        assert_eq!(m.coefs(1), &[0.25, 0.25, 0.5]);
        assert_eq!(m.edge_count(), 6);
        assert!((m.average_degree() - 1.5).abs() < 1e-12);
        assert_eq!(m.adj_array().len(), 12);
    }

    #[test]
    fn triangle_is_symmetric() {
        assert!(triangle().is_symmetric());
    }

    #[test]
    fn asymmetric_detected() {
        let m = AdjacencyMesh::from_lists(&[vec![1], vec![]], &[vec![1.0], vec![]]);
        assert!(!m.is_symmetric());
    }

    #[test]
    fn renumber_preserves_structure() {
        let m = triangle();
        let r = m.renumber(&[2, 0, 1]);
        assert_eq!(r.len(), 3);
        assert!(r.is_symmetric());
        assert_eq!(r.edge_count(), m.edge_count());
        // Old node 0 (now 2) was adjacent to old 1 and 2 (now 0 and 1).
        let mut nbrs: Vec<u32> = r.neighbors(2).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn renumber_rejects_non_permutation() {
        triangle().renumber(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_neighbor() {
        AdjacencyMesh::from_lists(&[vec![5]], &[vec![1.0]]);
    }

    #[test]
    fn empty_mesh() {
        let m = AdjacencyMesh::from_lists(&[], &[]);
        assert!(m.is_empty());
        assert_eq!(m.average_degree(), 0.0);
        assert!(m.is_symmetric());
    }
}
