//! Regular rectangular grids with the standard five-point Laplacian.
//!
//! "…in the tests here the grids used were simple rectangular grids, on
//! which we performed 100 Jacobi iterations with the standard five point
//! Laplacian." (§4).  Nodes are numbered row-major; interior nodes have four
//! neighbours, edge nodes three, corner nodes two.

use crate::csr::AdjacencyMesh;

/// An `nx × ny` rectangular grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegularGrid {
    nx: usize,
    ny: usize,
}

impl RegularGrid {
    /// Create a grid with `nx` columns and `ny` rows.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have positive extents");
        RegularGrid { nx, ny }
    }

    /// A square `n × n` grid (the paper's meshes are 64², 128², …, 1024²).
    pub fn square(n: usize) -> Self {
        RegularGrid::new(n, n)
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the grid has no nodes (never happens — extents are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node index of grid point `(row, col)`, row-major.
    pub fn node(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.ny && col < self.nx);
        row * self.nx + col
    }

    /// Grid coordinates `(row, col)` of a node index.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        debug_assert!(node < self.len());
        (node / self.nx, node % self.nx)
    }

    /// The four-neighbour (five-point stencil) adjacency of a node.
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        let (r, c) = self.coords(node);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.node(r - 1, c));
        }
        if r + 1 < self.ny {
            out.push(self.node(r + 1, c));
        }
        if c > 0 {
            out.push(self.node(r, c - 1));
        }
        if c + 1 < self.nx {
            out.push(self.node(r, c + 1));
        }
        out
    }

    /// Build the adjacency-list mesh for the five-point Laplacian.
    ///
    /// Every edge gets the Jacobi coefficient `1/4` ("standard five point
    /// Laplacian"); boundary nodes simply have fewer neighbours, as in the
    /// paper's `count` array.
    pub fn five_point_mesh(&self) -> AdjacencyMesh {
        let n = self.len();
        let mut neighbors = Vec::with_capacity(n);
        let mut coefs = Vec::with_capacity(n);
        for node in 0..n {
            let nbrs = self.neighbors(node);
            let cs = vec![0.25f64; nbrs.len()];
            neighbors.push(nbrs);
            coefs.push(cs);
        }
        AdjacencyMesh::from_lists(&neighbors, &coefs)
    }

    /// An initial field with a hot interior and cold boundary, handy for
    /// convergence demos.
    pub fn initial_field(&self) -> Vec<f64> {
        (0..self.len())
            .map(|node| {
                let (r, c) = self.coords(node);
                if r == 0 || c == 0 || r == self.ny - 1 || c == self.nx - 1 {
                    0.0
                } else {
                    1.0 + ((r * 31 + c * 17) % 97) as f64 / 97.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coords_roundtrip() {
        let g = RegularGrid::new(5, 3);
        assert_eq!(g.len(), 15);
        for n in 0..g.len() {
            let (r, c) = g.coords(n);
            assert_eq!(g.node(r, c), n);
        }
    }

    #[test]
    fn interior_edge_and_corner_degrees() {
        let g = RegularGrid::square(4);
        let m = g.five_point_mesh();
        // Corner.
        assert_eq!(m.degree(g.node(0, 0)), 2);
        // Edge.
        assert_eq!(m.degree(g.node(0, 1)), 3);
        // Interior.
        assert_eq!(m.degree(g.node(1, 1)), 4);
        assert!(m.is_symmetric());
    }

    #[test]
    fn five_point_coefficients_are_quarter() {
        let m = RegularGrid::square(3).five_point_mesh();
        for i in 0..m.len() {
            for &c in m.coefs(i) {
                assert_eq!(c, 0.25);
            }
        }
    }

    #[test]
    fn average_degree_approaches_four_for_large_grids() {
        let m = RegularGrid::square(64).five_point_mesh();
        let avg = m.average_degree();
        assert!(avg > 3.8 && avg < 4.0, "avg = {avg}");
    }

    #[test]
    fn edge_count_matches_formula() {
        // Directed edges of an nx x ny grid: 2*(nx-1)*ny + 2*(ny-1)*nx.
        let g = RegularGrid::new(7, 5);
        let m = g.five_point_mesh();
        assert_eq!(m.edge_count(), 2 * 6 * 5 + 2 * 4 * 7);
    }

    #[test]
    fn initial_field_has_cold_boundary() {
        let g = RegularGrid::square(8);
        let f = g.initial_field();
        for c in 0..8 {
            assert_eq!(f[g.node(0, c)], 0.0);
            assert_eq!(f[g.node(7, c)], 0.0);
        }
        assert!(f[g.node(3, 3)] > 0.0);
    }
}
