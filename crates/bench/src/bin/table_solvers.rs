//! Session & typed reductions: CG and red–black Gauss–Seidel.
//!
//! Runs the two reduction-heavy solvers over a partitioned scrambled mesh on
//! both backends and checks the Session API's claims: bit-identical
//! residual/change histories across dmsim, native and the sequential
//! replays; inspector cost amortised across iterations; and exact
//! per-reduction message accounting (every reduction is the tree
//! allreduce's `2(P−1)` messages of 8 bytes, visible as the dmsim counter
//! delta between a checked and an unchecked run).  `--smoke` (or `KALI_QUICK=1`) shrinks the run for CI;
//! any violated invariant exits nonzero so CI fails loudly.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_solvers(smoke) {
        std::process::exit(1);
    }
}
