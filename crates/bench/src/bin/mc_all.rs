//! Trace-level model-checking sweep: record the message runtime's event
//! traces behind the cost hooks, prove them race-free with the
//! happens-before analyzer (`kali_core::mc`), and re-execute every solve
//! under perturbed wildcard-delivery orders (LIFO, seeded shuffles,
//! systematic rotation) asserting bitwise-identical results — for every
//! solver/distribution/backend configuration.
//!
//! `--smoke` (or `KALI_QUICK=1`) runs the reduced matrix CI uses; the full
//! sweep covers more rank counts and a larger mesh.  Exits nonzero on any
//! violation or divergence.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_mc_all(smoke) {
        std::process::exit(1);
    }
}
