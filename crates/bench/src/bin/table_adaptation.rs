//! Adaptive-mesh amortisation under churn (the §3.2 claim stressed).
//!
//! The paper amortises the inspector over "many repetitions of the forall"
//! on a *static* mesh.  This table adapts the mesh every `k` sweeps
//! (deterministic refine/coarsen, rebalanced placement, redistributed live
//! data) and sweeps `k`: inspector cost per sweep must fall toward the
//! static-mesh figure as `k` grows, while the bounded schedule cache keeps
//! peak residency at or below its capacity no matter how many distinct
//! (version, fingerprint) keys the run mints.
//!
//! Runs every configuration on **both** backends — dmsim for the simulated
//! cost breakdown, the native threaded backend for wall-clock execution —
//! and checks the two produce bit-identical fields (and match the
//! sequential replay).  `--smoke` (or `KALI_QUICK=1`) shrinks the run for
//! CI; any violated invariant exits nonzero so CI fails loudly.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_adaptation(smoke) {
        std::process::exit(1);
    }
}
