//! Figure 7: NCUBE/7, 100 sweeps over a 128×128 mesh, varying processors.
fn main() {
    let rows = bench_tables::measure_fig7();
    bench_tables::print_table(
        "Figure 7: run-time analysis, varying processors (NCUBE/7, 128x128, 100 sweeps)",
        &rows,
        bench_tables::PAPER_FIG7_NCUBE_PROCS,
    );
}
