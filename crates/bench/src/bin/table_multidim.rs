//! Multi-dimensional foralls over `dist by [block, *]` decompositions.
//!
//! Two claims, both checked (the binary exits nonzero on violation, CI runs
//! it with `--smoke`):
//!
//! 1. A separable affine shift stencil over `[block, *]` plans through the
//!    multi-dimensional **compile-time** analysis: zero planning messages,
//!    zero inspector runs, while the halo it derives is nonempty.  An
//!    indirect (data-dependent) reference pattern over the same
//!    decomposition falls back to the **cached inspector** — one collective
//!    inspector run, then cache hits.
//! 2. The 2-D phase-change demo — alternating-direction smoothing with the
//!    live field redistributed `[block, *]` ↔ `[*, block]` between phases —
//!    is bit-identical across dmsim, the native backend and a sequential
//!    replay, and its per-phase `CommReport`s show the stencil halo traffic
//!    turning into redistribution traffic when the strategy switches.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_multidim(smoke) {
        std::process::exit(1);
    }
}
