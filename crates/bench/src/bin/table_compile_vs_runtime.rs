//! §3.2: compile-time analysis eliminates the run-time set computation when
//! closed forms exist.  Compares the cost of planning the Figure 1 shift
//! loop (affine subscripts) with the compile-time analyser vs the inspector.
use distrib::DimDist;
use dmsim::{CostModel, Machine};
use kali_core::{AffineMap, ParallelLoop, ScheduleCache};

fn main() {
    let n = if bench_tables::quick_mode() {
        4_096
    } else {
        65_536
    };
    println!("\n=== Compile-time vs run-time analysis of the Figure 1 shift loop (N = {n}) ===");
    println!(
        "{:>10}  {:>6}  {:>24}  {:>24}",
        "machine", "procs", "compile-time plan (s)", "inspector plan (s)"
    );
    for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
        for procs in [4usize, 16, 64] {
            let machine = Machine::new(procs, cost.clone());
            // Compile-time path.
            let (ct, _) = machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let loop_ = ParallelLoop::over_1d(1, n - 1, dist.clone());
                let mut cache = ScheduleCache::new();
                let before = proc.clock();
                let s = loop_.plan(proc, &mut cache, &dist, &[AffineMap::shift(1)], 0);
                assert!(s.recv_len <= 1);
                proc.clock() - before
            });
            // Run-time (inspector) path for the same references.
            let (rt, _) = machine.run_stats(|proc| {
                let dist = DimDist::block(n, proc.nprocs());
                let loop_ = ParallelLoop::over_1d(2, n - 1, dist.clone());
                let mut cache = ScheduleCache::new();
                let before = proc.clock();
                let s = loop_.plan_indirect(proc, &mut cache, &dist, 0, |i, refs| {
                    refs.push(i + 1);
                });
                assert!(s.recv_len <= 1);
                proc.clock() - before
            });
            let ct_max = ct.iter().cloned().fold(0.0, f64::max);
            let rt_max = rt.iter().cloned().fold(0.0, f64::max);
            println!(
                "{:>10}  {:>6}  {:>24.4}  {:>24.4}",
                cost.name, procs, ct_max, rt_max
            );
        }
    }
    println!("(compile-time planning performs no per-element checks and no communication)");
}
