//! Static verification sweep: prove schedule duality, tag-space safety,
//! deadlock freedom, SPMD conformance and determinism-contract conformance
//! for every solver/distribution/backend configuration — at plan time,
//! without executing the solvers.
//!
//! `--smoke` (or `KALI_QUICK=1`) runs the reduced matrix CI uses; the full
//! sweep covers more rank counts and a larger mesh.  Exits nonzero on any
//! violation.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_verify_all(smoke) {
        std::process::exit(1);
    }
}
