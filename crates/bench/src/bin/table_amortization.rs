//! §3.2 claim: saving the inspector's sets between executions amortises the
//! run-time analysis over many sweeps.  Sweep count is varied; with the
//! schedule cache the inspector cost is constant, without it it grows
//! linearly.
use dmsim::CostModel;
use solvers::{run_jacobi_experiment, ExperimentParams};

fn main() {
    let quick = bench_tables::quick_mode();
    let sweeps: Vec<usize> = if quick {
        vec![1, 5, 10]
    } else {
        vec![1, 10, 100, 1000]
    };
    println!("\n=== Schedule-cache amortisation (NCUBE/7, 64x64 mesh, 16 processors) ===");
    println!(
        "{:>8}  {:>18}  {:>18}  {:>22}",
        "sweeps", "overhead (cached)", "overhead (no cache)", "inspector (no cache, s)"
    );
    for &s in &sweeps {
        let base = ExperimentParams {
            cost: CostModel::ncube7(),
            nprocs: 16,
            mesh_side: 64,
            sweeps: s,
            compute_speedup: false,
            extrapolate_from: None,
            overlap: true,
            disable_schedule_cache: false,
            convergence_check_every: None,
        };
        let cached = run_jacobi_experiment(&base);
        let uncached = run_jacobi_experiment(&ExperimentParams {
            disable_schedule_cache: true,
            convergence_check_every: None,
            ..base
        });
        println!(
            "{:>8}  {:>17.1}%  {:>17.1}%  {:>22.2}",
            s,
            cached.times.inspector_overhead() * 100.0,
            uncached.times.inspector_overhead() * 100.0,
            uncached.times.inspector
        );
    }
    println!("(the paper's tables assume 100 sweeps with the cached inspector)");
}
