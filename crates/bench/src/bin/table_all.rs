//! Run every reproduction table in one go (set KALI_QUICK=1 for a fast pass).
fn main() {
    bench_tables::print_table(
        "Figure 7: NCUBE/7, varying processors (128x128, 100 sweeps)",
        &bench_tables::measure_fig7(),
        bench_tables::PAPER_FIG7_NCUBE_PROCS,
    );
    bench_tables::print_table(
        "Figure 8: iPSC/2, varying processors (128x128, 100 sweeps)",
        &bench_tables::measure_fig8(),
        bench_tables::PAPER_FIG8_IPSC_PROCS,
    );
    bench_tables::print_table(
        "Figure 9: NCUBE/7, varying problem size (128 processors, 100 sweeps)",
        &bench_tables::measure_fig9(),
        bench_tables::PAPER_FIG9_NCUBE_MESH,
    );
    bench_tables::print_table(
        "Figure 10: iPSC/2, varying problem size (32 processors, 100 sweeps)",
        &bench_tables::measure_fig10(),
        bench_tables::PAPER_FIG10_IPSC_MESH,
    );
    let mut ok = bench_tables::run_partition_locality();
    ok &= bench_tables::run_adaptation(bench_tables::quick_mode());
    ok &= bench_tables::run_multidim(bench_tables::quick_mode());
    ok &= bench_tables::run_solvers(bench_tables::quick_mode());
    ok &= bench_tables::run_collectives(bench_tables::quick_mode());
    ok &= bench_tables::run_native_scaling(bench_tables::quick_mode());
    ok &= bench_tables::run_verify_all(bench_tables::quick_mode());
    ok &= bench_tables::run_mc_all(bench_tables::quick_mode());
    if !ok {
        std::process::exit(1);
    }
}
