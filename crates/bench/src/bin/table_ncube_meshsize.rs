//! Figure 9: NCUBE/7, 100 sweeps on 128 processors, varying mesh size.
fn main() {
    let rows = bench_tables::measure_fig9();
    bench_tables::print_table(
        "Figure 9: run-time analysis, varying problem size (NCUBE/7, 128 processors, 100 sweeps)",
        &rows,
        bench_tables::PAPER_FIG9_NCUBE_MESH,
    );
}
