//! Figure 10: iPSC/2, 100 sweeps on 32 processors, varying mesh size.
fn main() {
    let rows = bench_tables::measure_fig10();
    bench_tables::print_table(
        "Figure 10: run-time analysis, varying problem size (iPSC/2, 32 processors, 100 sweeps)",
        &rows,
        bench_tables::PAPER_FIG10_IPSC_MESH,
    );
}
