//! §4 narrative claim: worst-case (single-sweep) inspector overhead.
//!
//! "In the worst case, where one performs only one sweep, the inspector
//! overhead on the NCUBE would range from 45% on 2 processors to 93% on 128
//! processors, while on the iPSC it ranges from 35% to 41%."
use dmsim::CostModel;
use solvers::{run_jacobi_experiment, ExperimentParams};

fn main() {
    println!("\n=== Single-sweep (worst case) inspector overhead ===");
    println!(
        "{:>10}  {:>6}  {:>14}  {:>14}  {:>10}",
        "machine", "procs", "executor (s)", "inspector (s)", "overhead"
    );
    for (cost, procs) in [
        (CostModel::ncube7(), vec![2usize, 4, 8, 16, 32, 64, 128]),
        (CostModel::ipsc2(), vec![2, 4, 8, 16, 32]),
    ] {
        for p in procs {
            let params = ExperimentParams {
                sweeps: 1,
                extrapolate_from: None,
                ..ExperimentParams::paper_processor_row(cost.clone(), p)
            };
            let row = run_jacobi_experiment(&params);
            println!(
                "{:>10}  {:>6}  {:>14.3}  {:>14.3}  {:>9.1}%",
                row.machine,
                row.nprocs,
                row.times.executor,
                row.times.inspector,
                row.times.inspector_overhead() * 100.0
            );
        }
    }
    println!("(paper: NCUBE 45%..93% from 2..128 processors; iPSC 35%..41%)");
}
