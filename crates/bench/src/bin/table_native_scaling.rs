//! Intra-rank scaling table: the same native Jacobi solve at worker-pool
//! sizes 1, 2, 4 and 8, with wall-clock time and speedup over one worker,
//! plus a bitwise identity check across every configuration.  `--smoke`
//! (or `KALI_QUICK=1`) shrinks the grid for CI.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_native_scaling(smoke) {
        std::process::exit(1);
    }
}
