//! Communication fast paths: tree collectives and closed-form stripes.
//!
//! Measures the machine-wide message cost of the binomial-tree allreduce
//! against the flat allgather-fold it replaced (and the recursive-doubling
//! allgather) across a processor sweep, checking `2(P−1)` messages of 8
//! bytes per reduction and bitwise-identical results across ranks, backends
//! and the `tree_combine_partials` replay.  Then checks the stripe
//! planner's zero-message claim: red–black planning on a chain mesh runs
//! no inspector and sends nothing, while a scrambled mesh still pays the
//! inspector's global exchange.  `--smoke` (or `KALI_QUICK=1`) shrinks the
//! run for CI; any violated invariant exits nonzero so CI fails loudly.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || bench_tables::quick_mode();
    if !bench_tables::run_collectives(smoke) {
        std::process::exit(1);
    }
}
