//! Block vs connectivity-partitioned placement on scrambled unstructured
//! meshes.
//!
//! The paper's test grids make the block distribution the "obvious" domain
//! decomposition (§4); on an irregularly *numbered* unstructured mesh block
//! placement is essentially random and almost every relaxation reference is
//! nonlocal.  This table runs the same Jacobi program under both placements
//! — changing nothing but the distribution, the paper's §2.4 workflow — and
//! reports the dmsim locality counters: nonlocal references, message
//! volume, halo size, simulated time, and the schedule-cache counters the
//! runs relied on.  Exits nonzero unless the partitioned placement comes
//! out strictly lower on nonlocal references and message volume.
fn main() {
    if !bench_tables::run_partition_locality() {
        std::process::exit(1);
    }
}
