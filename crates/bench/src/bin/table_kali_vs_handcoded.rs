//! §1 claim: "the performance of the resulting message-passing code is in
//! many cases virtually identical to that which would be achieved had the
//! user programmed directly in a message-passing language."
//!
//! Compares the Kali-generated executor (inspector + schedule + searched
//! nonlocal accesses) against a hand-coded halo-exchange Jacobi with the
//! distribution hard-wired, on both machine models.
use baseline::handcoded_jacobi;
use distrib::DimDist;
use dmsim::{CostModel, Machine};
use meshes::RegularGrid;
use solvers::{jacobi_sweeps, JacobiConfig};

fn main() {
    let quick = bench_tables::quick_mode();
    let side = if quick { 32 } else { 64 };
    let sweeps = if quick { 10 } else { 100 };
    let grid = RegularGrid::square(side);
    let mesh = grid.five_point_mesh();
    let initial = grid.initial_field();

    println!("\n=== Kali-generated code vs hand-coded message passing ({side}x{side}, {sweeps} sweeps) ===");
    println!(
        "{:>10}  {:>6}  {:>12}  {:>16}  {:>12}  {:>8}",
        "machine", "procs", "kali (s)", "hand-coded (s)", "kali/hand", "kali incl. inspector"
    );
    for cost in [CostModel::ncube7(), CostModel::ipsc2()] {
        for procs in [2usize, 8, 32] {
            let machine = Machine::new(procs, cost.clone());
            let kali = machine.run(|proc| {
                let dist = DimDist::block(mesh.len(), proc.nprocs());
                jacobi_sweeps(
                    proc,
                    &mesh,
                    &dist,
                    &initial,
                    &JacobiConfig::with_sweeps(sweeps),
                )
            });
            let hand = machine.run(|proc| handcoded_jacobi(proc, &mesh, &initial, sweeps));
            let kali_exec = kali.iter().map(|o| o.executor_time).fold(0.0, f64::max);
            let kali_total = kali.iter().map(|o| o.total_time).fold(0.0, f64::max);
            let hand_total = hand.iter().map(|o| o.total_time).fold(0.0, f64::max);
            println!(
                "{:>10}  {:>6}  {:>12.2}  {:>16.2}  {:>11.2}x  {:>8.2}x",
                cost.name,
                procs,
                kali_exec,
                hand_total,
                kali_exec / hand_total,
                kali_total / hand_total
            );
        }
    }
    println!("(executor-to-hand-coded ratios close to 1.0 support the paper's claim;");
    println!(" the residual gap is the run-time system's access/search overhead discussed in §4)");
}
