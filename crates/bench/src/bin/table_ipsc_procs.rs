//! Figure 8: iPSC/2, 100 sweeps over a 128×128 mesh, varying processors.
fn main() {
    let rows = bench_tables::measure_fig8();
    bench_tables::print_table(
        "Figure 8: run-time analysis, varying processors (iPSC/2, 128x128, 100 sweeps)",
        &rows,
        bench_tables::PAPER_FIG8_IPSC_PROCS,
    );
}
