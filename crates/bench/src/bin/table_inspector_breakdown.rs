//! §4 narrative claim: the NCUBE/7 inspector time is U-shaped in the number
//! of processors (locality-checking loop shrinks ∝ 1/P, the global
//! concatenation grows ∝ log P), while the iPSC/2 inspector decreases
//! monotonically because the locality loop always dominates.
use dmsim::CostModel;
use solvers::{run_jacobi_experiment, ExperimentParams};

fn main() {
    println!("\n=== Inspector time vs processor count (128x128 mesh) ===");
    println!(
        "{:>10}  {:>6}  {:>16}  {:>22}",
        "machine", "procs", "inspector (s)", "hypercube dimensions"
    );
    for (cost, procs) in [
        (CostModel::ncube7(), vec![2usize, 4, 8, 16, 32, 64, 128]),
        (CostModel::ipsc2(), vec![2, 4, 8, 16, 32]),
    ] {
        let mut prev = f64::INFINITY;
        let mut minimum_at = 0usize;
        let mut minimum = f64::INFINITY;
        for &p in &procs {
            let params = ExperimentParams {
                extrapolate_from: Some(2),
                ..ExperimentParams::paper_processor_row(cost.clone(), p)
            };
            let row = run_jacobi_experiment(&params);
            let dims = (p as f64).log2() as u32;
            println!(
                "{:>10}  {:>6}  {:>16.3}  {:>22}",
                row.machine, p, row.times.inspector, dims
            );
            if row.times.inspector < minimum {
                minimum = row.times.inspector;
                minimum_at = p;
            }
            prev = row.times.inspector;
        }
        let _ = prev;
        println!("  -> {} inspector minimum at P = {} (paper: NCUBE/7 minimum near 16, iPSC/2 still decreasing at 32)\n", cost.name, minimum_at);
    }
}
